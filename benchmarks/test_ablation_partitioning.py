"""Ablation — strip vs 2-D grid partitioning (DeepThings' choice).

DeepThings partitions feature maps into 2-D grids; MoDNN/AOFL/PICO use
horizontal strips.  Halo overhead scales with tile *perimeter* over
*area*: with many devices a strip becomes a thin full-width sliver
whose two halo edges dwarf its payload, while a near-square grid tile
keeps the halo fraction lower — so for deeply fused segments at high
device counts the grid does **less** redundant compute *and* holds
smaller tiles.  Strips win on simplicity (2 neighbours, 1-D stitch) and
match the grid at small device counts (a 2×1 grid *is* two strips).
This bench quantifies the trade-off on a 9-unit VGG16 prefix.
"""

from __future__ import annotations

from repro.cost.flops import segment_flops
from repro.models.zoo import get_model
from repro.partition.fused import segment_input_region
from repro.partition.grid import grid_partition, grid_shape_for
from repro.partition.strips import equal_partition, strip_regions


def compare(n_devices: int, n_fused: int):
    model = get_model("vgg16")
    _, h, w = model.out_shape(n_fused - 1)
    strips = strip_regions(h, w, equal_partition(h, n_devices))
    rows, cols = grid_shape_for(n_devices)
    grid = grid_partition(h, w, rows, cols)

    def totals(regions):
        flops = sum(
            segment_flops(model, 0, n_fused, r) for r in regions if not r.empty
        )
        # Peak per-device input memory: the largest tile any device holds.
        c_in = model.input_shape[0]
        peak = max(
            (
                segment_input_region(model, 0, n_fused, r).area * c_in * 4
                for r in regions
                if not r.empty
            ),
            default=0,
        )
        return flops, peak

    return totals(strips), totals(grid)


def test_strips_vs_grid_8_devices(benchmark):
    (strip_flops, strip_mem), (grid_flops, grid_mem) = benchmark.pedantic(
        compare, args=(8, 9), rounds=1, iterations=1
    )
    print()
    print(f"strips: {strip_flops / 1e9:.2f} GFLOPs, peak tile {strip_mem / 1e6:.2f} MB")
    print(f"grid:   {grid_flops / 1e9:.2f} GFLOPs, peak tile {grid_mem / 1e6:.2f} MB")
    # At 8 devices the 2x4 grid's squarer tiles beat thin strips on both
    # redundant compute and peak memory (perimeter/area effect).
    assert grid_flops <= strip_flops
    assert grid_mem <= strip_mem


def test_strips_match_grid_2_devices(benchmark):
    # At 2 devices the grid degenerates to two strips (rotated 90°; the
    # map and kernels are symmetric, so the costs coincide exactly).
    (strip_flops, strip_mem), (grid_flops, grid_mem) = benchmark.pedantic(
        compare, args=(2, 9), rounds=1, iterations=1
    )
    assert grid_flops == strip_flops
    assert grid_mem == strip_mem
