"""Ablation — design choices called out in DESIGN.md.

1. Pareto-frontier DP vs the paper's Algorithm 1 under tight latency
   budgets (Algorithm 1 prunes greedily and can miss feasible plans).
2. Capacity-weighted divide-and-conquer strips vs naive equal strips on
   a heterogeneous stage (Algorithm 2's contribution).
"""

from __future__ import annotations

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.core.dp_planner import plan_homogeneous
from repro.core.pareto import plan_pareto
from repro.cost.comm import NetworkModel
from repro.cost.stage_cost import stage_time
from repro.models.toy import toy_chain
from repro.partition.regions import Region
from repro.partition.strips import equal_partition, strip_regions, weighted_partition

NET = NetworkModel.from_mbps(50.0)


def budget_sweep():
    model = toy_chain(10, 2, input_hw=64, base_channels=32)
    cluster = pi_cluster(6, 800)
    free = plan_pareto(model, cluster, NET)
    # Feasible budgets live between the best single-stage latency (the
    # minimum any plan can achieve) and the unconstrained optimum's
    # latency; sweep that interval.
    from repro.core.dp_planner import StageTimeTable

    homo = cluster.homogenized()
    ts = StageTimeTable(model, homo.devices[0], NET)
    lat_min = min(ts(0, model.n_units, p) for p in range(1, len(cluster) + 1))
    rows = []
    for factor in (1.0, 0.75, 0.5, 0.25, 0.05):
        t_lim = lat_min + factor * (free.latency - lat_min)
        dp = plan_homogeneous(model, cluster, NET, t_lim=t_lim)
        pareto = plan_pareto(model, cluster, NET, t_lim=t_lim)
        rows.append(
            (
                factor,
                dp.period if dp else float("inf"),
                pareto.period if pareto else float("inf"),
            )
        )
    return rows


def test_pareto_vs_algorithm1(benchmark):
    rows = benchmark.pedantic(budget_sweep, rounds=1, iterations=1)
    print()
    print(f"{'budget':>7s}  {'Alg.1 period':>13s}  {'Pareto period':>14s}")
    for factor, dp_p, pareto_p in rows:
        print(f"{factor:7.0%}  {dp_p:13.4f}  {pareto_p:14.4f}")
    for _factor, dp_p, pareto_p in rows:
        # The frontier planner never loses to the greedy DP.
        assert pareto_p <= dp_p + 1e-12


def weighted_vs_equal():
    model = toy_chain(6, 1, input_hw=64, base_channels=32)
    cluster = heterogeneous_cluster([1800, 1200, 600, 600])
    _, h, w = model.final_shape
    caps = [d.capacity for d in cluster]
    weighted = [
        (dev, Region.from_bounds(iv.start, iv.end, 0, w))
        for dev, iv in zip(cluster, weighted_partition(h, caps))
    ]
    equal = [
        (dev, reg)
        for dev, reg in zip(
            cluster, strip_regions(h, w, equal_partition(h, len(cluster)))
        )
    ]
    t_weighted = stage_time(model, 0, model.n_units, weighted, NET).total
    t_equal = stage_time(model, 0, model.n_units, equal, NET).total
    return t_weighted, t_equal


def test_weighted_vs_equal_partition(benchmark):
    t_weighted, t_equal = benchmark.pedantic(weighted_vs_equal, rounds=1, iterations=1)
    print()
    print(f"weighted strips: {t_weighted:.4f}s   equal strips: {t_equal:.4f}s")
    # Capacity-weighting must win on a 3x-skewed cluster.
    assert t_weighted < t_equal
