"""Fig. 12 — PICO speedup for graph-structured CNNs.

Paper claims: with 8 devices PICO reaches ~5× speedup on ResNet34 and
~4× on InceptionV3; the effect is stronger at low CPU frequency; the
ResNet speedup beats Inception because inception blocks bundle more
layers, leaving the best cut points unreachable inside blocks.
"""

from __future__ import annotations

from repro.experiments import fig12_speedup


def test_fig12(benchmark, once):
    result = once(
        benchmark,
        fig12_speedup.run,
        model_names=("resnet34", "inception_v3"),
        freqs_mhz=(600.0, 1000.0),
        device_counts=(2, 4, 8),
    )
    print()
    print(result.format())
    res8 = result.speedup_at("resnet34", 600.0, 8)
    inc8 = result.speedup_at("inception_v3", 600.0, 8)
    # Paper bands: ~5x (ResNet34), ~4x (InceptionV3) at 8 devices.
    assert 3.0 < res8 < 8.0
    assert 2.0 < inc8 < 7.0
    # ResNet beats Inception (block-granularity effect).  In our cost
    # model the gap is clear at 1 GHz where communication weighs more;
    # at 600 MHz both sit in the 4.9-5.1x band and the ordering is
    # within noise (recorded in EXPERIMENTS.md).
    assert result.speedup_at("resnet34", 1000.0, 8) > result.speedup_at(
        "inception_v3", 1000.0, 8
    )
    # Speedup grows with the device count.
    assert res8 > result.speedup_at("resnet34", 600.0, 2)
    # Lower frequency -> compute-bound -> at least as much speedup.
    assert (
        result.speedup_at("resnet34", 600.0, 8)
        >= result.speedup_at("resnet34", 1000.0, 8) - 0.25
    )
