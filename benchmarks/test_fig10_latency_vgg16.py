"""Fig. 10 — average inference latency, VGG16, Poisson workloads.

Paper claims: average latency reduced 1.7–6.5× vs the fused-layer
baselines under heavy workload; PICO/APICO stay nearly flat while EFL's
latency explodes as the load crosses its capacity; at light load the
one-stage schemes can beat PICO, and APICO picks them.
"""

from __future__ import annotations

from repro.experiments import fig10_latency


def test_fig10_vgg16(benchmark, once):
    result = once(
        benchmark,
        fig10_latency.run,
        "vgg16",
        workload_fractions=(0.4, 0.6, 0.8, 1.0, 1.2, 1.5),
        horizon_s=600.0,
    )
    print()
    print(result.format())
    efl = dict(result.series("EFL"))
    ofl = dict(result.series("OFL"))
    pico = dict(result.series("PICO"))
    apico = dict(result.series("APICO"))
    # Heavy load: the paper's 1.7-6.5x latency reduction band vs EFL.
    assert 1.7 < efl[1.5] / min(pico[1.5], apico[1.5])
    # PICO stays stable while EFL explodes.
    assert pico[1.5] / pico[0.4] < 3.0
    assert efl[1.5] / efl[0.4] > 4.0
    # Light load: one-stage OFL beats the pipeline (single task uses the
    # whole cluster), which is why APICO exists.
    assert ofl[0.4] < pico[0.4]
    # APICO at light load tracks OFL, not PICO.
    assert apico[0.4] <= pico[0.4] * 1.05
    # APICO never collapses at heavy load either.
    assert apico[1.5] <= efl[1.5] / 1.7
