"""Cost-model vs real runtime (Eq. 5 calibration loop, on this host).

Not a paper table — validates that the analytic model driving every
reproduced figure predicts real pipelined execution on this machine to
within a small constant factor, and that distributed outputs are exact.
"""

from __future__ import annotations

from repro.experiments import runtime_validation


def test_runtime_validation(benchmark, once):
    result = once(benchmark, runtime_validation.run, n_workers=2, n_tasks=10)
    print()
    print(result.format())
    # Outputs must be bit-close regardless of timing.
    assert result.max_output_error < 1e-3
    # Timing prediction within a small constant factor: the runtime adds
    # pickling + IPC the analytic model does not see, and worker
    # processes share this host's cores.
    assert 0.2 < result.ratio < 25.0
