"""Fig. 11 — average inference latency, YOLOv2, Poisson workloads.

Same claims as Fig. 10 on the deeper detection model, including the
100 %-workload bar chart comparison (latency at exactly the EFL
capacity).
"""

from __future__ import annotations

from repro.experiments import fig10_latency


def test_fig11_yolov2(benchmark, once):
    result = once(
        benchmark,
        fig10_latency.run,
        "yolov2",
        workload_fractions=(0.4, 0.8, 1.0, 1.2, 1.5),
        horizon_s=600.0,
    )
    print()
    print(result.format())
    efl = dict(result.series("EFL"))
    pico = dict(result.series("PICO"))
    apico = dict(result.series("APICO"))
    # The 100% workload bar (Fig. 11b): PICO/APICO below EFL.
    assert pico[1.0] < efl[1.0]
    assert apico[1.0] < efl[1.0]
    # Heavy-load latency reduction in (and beyond) the paper band.
    assert efl[1.5] / min(pico[1.5], apico[1.5]) > 1.7
    # PICO's curve is flat relative to EFL's.
    assert pico[1.5] / pico[0.4] < 3.0
    assert efl[1.5] / efl[0.4] > 4.0
