"""Ablation — throughput "under various network settings".

The paper's abstract claims 1.8–6.2× throughput improvement across
network settings; this bench sweeps the WLAN bandwidth and checks the
gain band plus the expected trend: the scarcer the bandwidth, the more
a fused/pipelined scheme gains over communication-heavy execution, and
PICO adapts its stage count to the bandwidth.
"""

from __future__ import annotations

from repro.cluster.device import pi_cluster
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.zoo import get_model
from repro.schemes.early_fused import EarlyFusedScheme
from repro.schemes.pico import PicoScheme


def sweep(mbps_values):
    model = get_model("vgg16")
    cluster = pi_cluster(8, 600)
    rows = []
    for mbps in mbps_values:
        net = NetworkModel.from_mbps(mbps)
        pico = plan_cost(model, PicoScheme().plan(model, cluster, net), net)
        efl = plan_cost(model, EarlyFusedScheme().plan(model, cluster, net), net)
        rows.append((mbps, pico.period, efl.period, efl.period / pico.period))
    return rows


def test_bandwidth_sweep(benchmark):
    rows = benchmark.pedantic(
        sweep, args=((10.0, 25.0, 50.0, 100.0, 300.0),), rounds=1, iterations=1
    )
    print()
    print(f"{'Mbps':>6s}  {'PICO period':>12s}  {'EFL period':>12s}  {'gain':>6s}")
    for mbps, pico_p, efl_p, gain in rows:
        print(f"{mbps:6.0f}  {pico_p:12.3f}  {efl_p:12.3f}  {gain:6.2f}x")
    gains = [gain for *_rest, gain in rows]
    # The paper's 1.8-6.2x band should hold across the sweep.
    assert all(1.5 < g < 8.0 for g in gains)
    # Periods improve monotonically with bandwidth for both schemes.
    pico_periods = [r[1] for r in rows]
    assert pico_periods == sorted(pico_periods, reverse=True)
