"""Fig. 9 — cluster capacity executing YOLOv2.

Paper claims: same ordering as Fig. 8, plus the layer-wise anomaly —
YOLOv2 has nearly twice VGG16's layers, so at a rich CPU frequency
(1 GHz) LW's per-layer communication overhead cancels the gain from
adding devices.
"""

from __future__ import annotations

from repro.experiments import fig08_capacity


def test_fig09_yolov2(benchmark, once):
    result = once(
        benchmark,
        fig08_capacity.run,
        "yolov2",
        freqs_mhz=(600.0, 1000.0),
        device_counts=(1, 4, 8),
        sim_tasks=15,
    )
    print()
    print(result.format())
    for freq in (600.0, 1000.0):
        periods = {
            (p.scheme, p.n_devices): p.period_s
            for p in result.points
            if p.freq_mhz == freq
        }
        for n in (4, 8):
            assert periods[("PICO", n)] <= periods[("OFL", n)]
            assert periods[("OFL", n)] <= periods[("EFL", n)] + 1e-9
    # The LW anomaly: at 1 GHz, going 1 -> 8 devices barely helps (or
    # hurts); the compute saved is offset by 28 scatter/gathers.
    lw = {p.n_devices: p.period_s for p in result.points
          if p.scheme == "LW" and p.freq_mhz == 1000.0}
    assert lw[8] > 0.5 * lw[1]
    # Whereas PICO still scales.
    pico = {p.n_devices: p.period_s for p in result.points
            if p.scheme == "PICO" and p.freq_mhz == 1000.0}
    assert pico[8] < 0.5 * pico[1]
