"""Fig. 4 — computation overhead of fused-layer parallelism on VGG16.

Paper claim: per-device FLOPs shrink with more devices (4a) but total
FLOPs across devices grow with both the device count and the number of
fused layers (4b) — the redundant-computation motivation.
"""

from __future__ import annotations

from repro.experiments import fig04_fused_redundancy


def test_fig04(benchmark, once):
    result = once(
        benchmark,
        fig04_fused_redundancy.run,
        device_counts=(1, 2, 4, 8),
        fused_counts=(4, 7, 10, 13),
    )
    print()
    print(result.format())
    by_key = {(p.n_devices, p.n_fused_units): p for p in result.points}
    for n_fused in (4, 7, 10, 13):
        # Fig. 4a: per-device work decreases with devices.
        assert (
            by_key[(8, n_fused)].per_device_gflops
            < by_key[(1, n_fused)].per_device_gflops
        )
        # Fig. 4b: total work increases with devices.
        assert (
            by_key[(8, n_fused)].total_gflops > by_key[(1, n_fused)].total_gflops
        )
    # Redundancy grows with fusion depth at fixed cluster size.
    overhead = lambda p: p.total_gflops / p.single_device_gflops
    assert overhead(by_key[(8, 13)]) > overhead(by_key[(8, 4)])
