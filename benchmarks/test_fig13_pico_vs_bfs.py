"""Fig. 13 — PICO vs the BFS optimum on the toy model.

Paper claims: on an 8-conv + 2-pool toy deployed on 6 heterogeneous
devices, all PICO devices stay well utilised; BFS reaches higher
utilisation still (≈95 % vs ≈80 %), at an exponentially larger planning
cost (Table II) — PICO's quality is "acceptable".
"""

from __future__ import annotations

from repro.experiments import fig13_pico_vs_bfs


def test_fig13(benchmark, once):
    result = once(benchmark, fig13_pico_vs_bfs.run, sim_tasks=60)
    print()
    print(result.format())
    assert result.bfs_optimal_proven
    # BFS period is optimal, PICO close behind (paper: acceptable gap).
    assert result.bfs_period_s <= result.pico_period_s
    assert result.pico_period_s <= result.bfs_period_s * 1.5
    # Utilisation shape: both well-loaded, BFS at least PICO's level.
    assert result.pico.average_utilization > 0.4
    assert (
        result.bfs.average_utilization
        >= result.pico.average_utilization - 0.15
    )
    # Redundancy stays low for both (single-digit percentages).
    assert result.pico.average_redundancy < 0.15
    assert result.bfs.average_redundancy < 0.15
