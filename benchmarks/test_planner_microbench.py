"""Planner micro-benchmarks: raw wall-clock of the core algorithms.

Not a paper table — engineering health checks for the library itself:
Algorithm 1 on the real evaluation models, Algorithm 2 adaptation, and
the Pareto-frontier ablation planner.
"""

from __future__ import annotations

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.core.dp_planner import plan_homogeneous
from repro.core.heterogeneous import adapt_to_cluster
from repro.core.pareto import plan_pareto
from repro.cost.comm import NetworkModel
from repro.models.zoo import get_model

NET = NetworkModel.from_mbps(50.0)


def test_dp_vgg16_8dev(benchmark):
    model = get_model("vgg16")
    cluster = pi_cluster(8, 600)
    plan = benchmark(plan_homogeneous, model, cluster, NET)
    assert plan is not None and plan.n_stages >= 1


def test_dp_yolov2_8dev(benchmark):
    model = get_model("yolov2")
    cluster = pi_cluster(8, 600)
    plan = benchmark(plan_homogeneous, model, cluster, NET)
    assert plan is not None


def test_adapt_table1_cluster(benchmark):
    model = get_model("vgg16")
    cluster = heterogeneous_cluster([1200, 1200, 800, 800, 600, 600, 600, 600])
    homo = plan_homogeneous(model, cluster, NET)
    plan = benchmark(adapt_to_cluster, model, homo, cluster)
    assert plan.n_stages == homo.n_stages


def test_pareto_vgg16_8dev(benchmark):
    model = get_model("vgg16")
    cluster = pi_cluster(8, 600)
    plan = benchmark(plan_pareto, model, cluster, NET)
    assert plan is not None
