"""Planner micro-benchmarks: raw wall-clock of the core algorithms.

Not a paper table — engineering health checks for the library itself:
Algorithm 1 on the real evaluation models (vectorized cost tables, both
cold and warm, plus the scalar reference), Algorithm 2 adaptation, and
the Pareto-frontier ablation planner.
"""

from __future__ import annotations

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.core.dp_planner import plan_homogeneous, plan_homogeneous_reference
from repro.core.heterogeneous import adapt_to_cluster
from repro.core.pareto import plan_pareto
from repro.cost.comm import NetworkModel
from repro.cost.flops import DEFAULT_OPTIONS
from repro.cost.tables import SegmentCostTable, SegmentTable
from repro.models.zoo import get_model

NET = NetworkModel.from_mbps(50.0)


def test_dp_vgg16_8dev(benchmark):
    model = get_model("vgg16")
    cluster = pi_cluster(8, 600)
    plan = benchmark(plan_homogeneous, model, cluster, NET)
    assert plan is not None and plan.n_stages >= 1


def test_dp_vgg16_8dev_cold(benchmark):
    """Vectorized planner including SegmentTable construction."""
    model = get_model("vgg16")
    cluster = pi_cluster(8, 600)
    device = cluster.homogenized().devices[0]

    def plan_cold():
        table = SegmentCostTable(
            model, device, NET, DEFAULT_OPTIONS,
            segments=SegmentTable(model, DEFAULT_OPTIONS),
        )
        return plan_homogeneous(model, cluster, NET, table=table)

    plan = benchmark(plan_cold)
    assert plan is not None


def test_dp_vgg16_8dev_warm(benchmark):
    """Vectorized planner against a populated shared table (re-planning)."""
    model = get_model("vgg16")
    cluster = pi_cluster(8, 600)
    device = cluster.homogenized().devices[0]
    table = SegmentCostTable(
        model, device, NET, DEFAULT_OPTIONS,
        segments=SegmentTable(model, DEFAULT_OPTIONS),
    )
    plan_homogeneous(model, cluster, NET, table=table)  # populate
    plan = benchmark(plan_homogeneous, model, cluster, NET, table=table)
    assert plan is not None


def test_dp_vgg16_8dev_reference(benchmark):
    """The seed's scalar per-query cost model (the baseline)."""
    model = get_model("vgg16")
    cluster = pi_cluster(8, 600)
    plan = benchmark(plan_homogeneous_reference, model, cluster, NET)
    assert plan is not None


def test_segment_table_build_vgg16(benchmark):
    """Raw cost of the FLOP/boundary prefix-table construction."""
    model = get_model("vgg16")
    table = benchmark(SegmentTable, model, DEFAULT_OPTIONS)
    assert table.exact(0, model.n_units)


def test_dp_yolov2_8dev(benchmark):
    model = get_model("yolov2")
    cluster = pi_cluster(8, 600)
    plan = benchmark(plan_homogeneous, model, cluster, NET)
    assert plan is not None


def test_adapt_table1_cluster(benchmark):
    model = get_model("vgg16")
    cluster = heterogeneous_cluster([1200, 1200, 800, 800, 600, 600, 600, 600])
    homo = plan_homogeneous(model, cluster, NET)
    plan = benchmark(adapt_to_cluster, model, homo, cluster)
    assert plan.n_stages == homo.n_stages


def test_pareto_vgg16_8dev(benchmark):
    model = get_model("vgg16")
    cluster = pi_cluster(8, 600)
    plan = benchmark(plan_pareto, model, cluster, NET)
    assert plan is not None
