"""Ablation — intra-block (branch) partitioning, the paper's future work.

The paper attributes InceptionV3's smaller speedup to PICO's inability
to partition inside blocks.  We implement that partition for concat
blocks (whole paths per device: zero redundancy, priced by the heaviest
path) and measure where it actually helps:

* per-stage: on the 17×17 factorised-conv blocks (7×1/1×7 kernels whose
  halos are enormous relative to the map) branch layout beats spatial
  strips by 8–14 % at 8 devices;
* end-to-end: the planner adopts branch stages once enough devices sit
  on a single block (observed at 16 devices), but at the paper's
  8-device scale the pipeline bottleneck is elsewhere, so the period is
  unchanged — intra-block partitioning alone does **not** close the
  Fig. 12 gap; the binding constraint is block *granularity* of the
  chain itself, not the within-stage layout.
"""

from __future__ import annotations

from repro.cluster.device import pi_cluster
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.stage_cost import branch_stage_time, homogeneous_stage_time
from repro.models.zoo import get_model
from repro.partition.branches import assign_paths_lpt, is_branchable, path_flops
from repro.schemes.pico import PicoScheme

NET = NetworkModel.from_mbps(50.0)


def per_stage_table():
    model = get_model("inception_v3")
    dev = pi_cluster(8, 600).devices[0]
    rows = []
    for idx, unit in enumerate(model.units):
        if not is_branchable(unit):
            continue
        strip = homogeneous_stage_time(model, idx, idx + 1, 8, dev, NET).total
        groups = assign_paths_lpt(path_flops(model, idx), [dev.capacity] * 8)
        branch = branch_stage_time(
            model, idx, tuple((dev, g) for g in groups), NET
        ).total
        rows.append((unit.name, model.out_shape(idx)[1], strip, branch))
    return rows


def test_branch_vs_strip_per_stage(benchmark):
    rows = benchmark.pedantic(per_stage_table, rounds=1, iterations=1)
    print()
    print(f"{'block':<10s} {'map':>4s} {'strips':>8s} {'branch':>8s} {'winner':>8s}")
    branch_wins = 0
    for name, hw, strip, branch in rows:
        winner = "branch" if branch < strip else "strips"
        branch_wins += branch < strip
        print(f"{name:<10s} {hw:>4d} {strip:>7.3f}s {branch:>7.3f}s {winner:>8s}")
    # The factorised 17x17 blocks must favour branch layout.
    seventeen = [r for r in rows if r[1] == 17 and "6a" not in r[0]]
    assert sum(1 for _, _, s, b in seventeen if b < s) >= 3
    assert branch_wins >= 3


def test_end_to_end_never_worse(benchmark):
    model = get_model("inception_v3")
    cluster = pi_cluster(8, 600)

    def both():
        base = plan_cost(model, PicoScheme().plan(model, cluster, NET), NET)
        branchy = plan_cost(
            model, PicoScheme(branch_parallel=True).plan(model, cluster, NET), NET
        )
        return base.period, branchy.period

    base_p, branch_p = benchmark.pedantic(both, rounds=1, iterations=1)
    print()
    print(f"PICO period {base_p:.3f}s, PICO+B period {branch_p:.3f}s")
    assert branch_p <= base_p + 1e-12
