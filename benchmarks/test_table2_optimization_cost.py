"""Table II — planner wall-clock: PICO heuristic vs exhaustive BFS.

Paper claims: PICO plans in < 1 s on every (layers, devices) grid
point, while BFS grows sharply — minutes at (10, 6) and over an hour by
(12, 6) / (8, 8).  We reproduce the grid with a per-cell BFS budget so
the suite terminates; budget-capped cells correspond to the paper's
"> 1 h" entries.
"""

from __future__ import annotations

from repro.experiments import table2_optimization_cost


def test_table2(benchmark, once):
    result = once(
        benchmark,
        table2_optimization_cost.run,
        grid=((4, 4), (8, 4), (12, 4), (16, 4), (8, 6), (10, 6)),
        bfs_budget_s=45.0,
    )
    print()
    print(result.format())
    by_key = {(r.n_layers, r.n_devices): r for r in result.rows}
    # PICO: the paper's "< 1s" column, everywhere.
    assert all(r.pico_seconds < 1.0 for r in result.rows)
    # BFS cost grows with layers at fixed devices.
    assert by_key[(16, 4)].bfs_seconds > by_key[(4, 4)].bfs_seconds
    # ...and explodes with devices at fixed layers.
    assert by_key[(8, 6)].bfs_seconds > by_key[(8, 4)].bfs_seconds
    # Wherever BFS finished, the heuristic is never meaningfully better
    # than the optimum (tiny negative gaps can appear because Algorithm
    # 2's divide-and-conquer rounding differs from BFS's partition by a
    # row or two).
    for row in result.rows:
        if row.bfs_completed:
            assert row.period_gap >= -0.02
