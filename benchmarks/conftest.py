"""Benchmark configuration.

Every benchmark regenerates one paper table/figure through the
experiment harnesses, prints the same rows/series the paper reports,
and asserts its qualitative shape.  The experiment functions are
deterministic end-to-end pipelines (planner + simulator), so each is
measured with a single pedantic round — wall-clock variance across
rounds is planner-internal caching, not signal.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark ``func`` with one warm round and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
