"""Fig. 2 — per-layer communication and computation overhead.

Paper claim: conv layers provide 99.19 % of VGG16's and 99.59 % of
YOLOv2's computation, while the per-layer communication share varies
widely.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig02_layer_profile


@pytest.mark.parametrize("model_name", ["vgg16", "yolov2"])
def test_fig02(benchmark, once, model_name):
    result = once(benchmark, fig02_layer_profile.run, model_name)
    print()
    print(result.format())
    assert result.conv_computation_share > 0.99
    # Communication share varies across layers (paper Fig. 2's bars).
    comm = [l.communication_share for l in result.layers]
    assert max(comm) > 3 * min(c for c in comm if c > 0)
