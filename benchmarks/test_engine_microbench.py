"""Inference-engine micro-benchmarks: numpy conv throughput, the
packed-GEMM fast path against the reference kernels, and the
split/stitch overhead the paper claims is negligible (§IV-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.nn.executor import Engine
from repro.nn.tiles import compile_segment, extract_tile, run_segment
from repro.nn.weights import init_weights
from repro.partition.regions import Region


def test_full_inference_toy(benchmark):
    model = toy_chain(8, 2, input_hw=64, in_channels=1, base_channels=32)
    engine = Engine(model, seed=0)
    x = np.random.default_rng(0).standard_normal(model.input_shape).astype(np.float32)
    out = benchmark(engine.forward_features, x)
    assert out.shape == model.final_shape


@pytest.mark.parametrize("fast", [False, True], ids=["reference", "fast"])
def test_vgg16_features(benchmark, fast):
    """Reference vs packed-GEMM feature extraction on the same weights;
    compare the two rows to see the fast path's gain."""
    model = get_model("vgg16", input_hw=64)
    engine = Engine(model, init_weights(model, 0), fast=fast)
    x = np.random.default_rng(0).standard_normal(model.input_shape).astype(np.float32)
    engine.forward_features(x)  # warm packed-weight cache / arenas
    out = benchmark(engine.forward_features, x)
    assert out.shape == model.final_shape


@pytest.mark.parametrize("fast", [False, True], ids=["reference", "fast"])
def test_inception_block(benchmark, fast):
    """One multi-path block unit — the shape that additionally gains
    from branch threading when REPRO_THREADS > 1."""
    model = get_model("inception_v3", input_hw=96)
    engine = Engine(model, init_weights(model, 0), fast=fast)
    x = np.random.default_rng(0).standard_normal(model.input_shape).astype(np.float32)
    from repro.models.graph import BlockUnit

    idx = next(
        i for i, u in enumerate(model.units) if isinstance(u, BlockUnit)
    )
    for unit in model.units[:idx]:
        x = engine.run_unit(unit, x)
    engine.run_unit(model.units[idx], x)  # warm
    out = benchmark(engine.run_unit, model.units[idx], x)
    assert out.shape == model.out_shape(idx)


def test_tile_program_execution(benchmark):
    model = toy_chain(6, 1, input_hw=64, in_channels=3, base_channels=16)
    engine = Engine(model, seed=0)
    x = np.random.default_rng(1).standard_normal(model.input_shape).astype(np.float32)
    _, h, w = model.final_shape
    program = compile_segment(model, 0, model.n_units, Region.from_bounds(0, h // 2, 0, w))
    tile = extract_tile(x, program.input_region)
    out = benchmark(run_segment, engine, program, tile)
    assert out.shape[1] == h // 2


def test_split_stitch_overhead(benchmark):
    """The paper: 'the time consumption of feature split and stitch can
    be ignored' — measure extract+place against one conv layer."""
    rng = np.random.default_rng(2)
    fmap = rng.standard_normal((64, 112, 112)).astype(np.float32)
    region = Region.from_bounds(10, 70, 0, 112)
    out = np.empty_like(fmap)

    def split_and_stitch():
        tile = extract_tile(fmap, region)
        out[:, region.rows.start : region.rows.end] = tile
        return tile

    tile = benchmark(split_and_stitch)
    assert tile.shape == (64, 60, 112)
