"""Fig. 8 — cluster capacity executing VGG16.

Paper claims: PICO has the lowest inference period at every CPU
frequency and device count; throughput with 8 devices improves
1.8–6.2× over the baselines; layer-wise gains little from extra
devices because of per-layer communication.
"""

from __future__ import annotations

from repro.experiments import fig08_capacity


def test_fig08_vgg16(benchmark, once):
    result = once(
        benchmark,
        fig08_capacity.run,
        "vgg16",
        freqs_mhz=(600.0, 800.0, 1000.0),
        device_counts=(1, 2, 4, 8),
        sim_tasks=20,
    )
    print()
    print(result.format())
    for freq in (600.0, 800.0, 1000.0):
        periods = {
            (p.scheme, p.n_devices): p.period_s
            for p in result.points
            if p.freq_mhz == freq
        }
        for n in (2, 4, 8):
            assert periods[("PICO", n)] <= periods[("OFL", n)]
            assert periods[("OFL", n)] <= periods[("EFL", n)] + 1e-9
        # PICO period strictly improves 2 -> 8 devices.
        assert periods[("PICO", 8)] < periods[("PICO", 2)]
    # Throughput gain over EFL at 8 devices in the paper's 1.8-6.2x band
    # (we accept a slightly wider envelope for the simulated substrate).
    gain = result.throughput_at("PICO", 600.0, 8) / result.throughput_at(
        "EFL", 600.0, 8
    )
    assert 1.5 < gain < 8.0
