"""Table I — utilisation and redundancy ratios on the heterogeneous
cluster (2×1.2 GHz, 2×800 MHz, 4×600 MHz), VGG16 and YOLOv2.

Paper claims: PICO keeps utilisation high (77 % / 95 % averages) with
single-digit redundancy; LW has minimal redundancy but the worst
utilisation; the fused-layer schemes keep devices busy but waste a
large share on redundant halo computation.
"""

from __future__ import annotations

from repro.experiments import table1_utilization


def test_table1(benchmark, once):
    result = once(
        benchmark,
        table1_utilization.run,
        model_names=("vgg16", "yolov2"),
        sim_tasks=30,
    )
    print()
    print(result.format())
    for model in ("vgg16", "yolov2"):
        lw = result.get(model, "LW")
        efl = result.get(model, "EFL")
        ofl = result.get(model, "OFL")
        pico = result.get(model, "PICO")
        # LW: minimal redundancy, worst utilisation.
        assert lw.average_redundancy <= min(
            efl.average_redundancy, ofl.average_redundancy,
            pico.average_redundancy,
        ) + 1e-9
        assert lw.average_utilization < pico.average_utilization
        # PICO: top utilisation, redundancy below both fused schemes.
        assert pico.average_utilization >= max(
            efl.average_utilization, ofl.average_utilization
        ) - 0.05
        assert pico.average_redundancy < min(
            efl.average_redundancy, ofl.average_redundancy
        )
        # Fused schemes burn double-digit shares on redundant halo work.
        assert efl.average_redundancy > 0.02
        assert ofl.average_redundancy > 0.02
