"""Ablation — WLAN contention across pipeline stages.

The paper's Eq. 10 lets every stage's transfers proceed in parallel;
on one shared 802.11 medium they cannot.  This bench quantifies the
optimism: PICO's period under (a) the paper's contention-free model,
(b) the analytic shared-medium bound, and (c) event-level simulation
with a single network token — across bandwidths.  At 50 Mbps the
contention penalty on VGG16 is what separates our simulator's
throughput from a real testbed's.
"""

from __future__ import annotations

import repro
from repro.cluster.device import pi_cluster
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions
from repro.models.zoo import get_model
from repro.schemes.pico import PicoScheme
from repro.workload.arrivals import saturation_arrivals


def sweep(mbps_values):
    model = get_model("vgg16")
    cluster = pi_cluster(8, 600)
    rows = []
    for mbps in mbps_values:
        net = NetworkModel.from_mbps(mbps)
        plan = PicoScheme().plan(model, cluster, net)
        paper = plan_cost(model, plan, net).period
        bound = plan_cost(model, plan, net, CostOptions(shared_medium=True)).period
        sim = repro.simulate(
            model, plan, network=net, arrivals=saturation_arrivals(40),
            shared_medium=True,
        ).steady_state(5)
        measured = 1.0 / sim.throughput
        rows.append((mbps, paper, bound, measured))
    return rows


def test_contention_sweep(benchmark):
    rows = benchmark.pedantic(sweep, args=((10.0, 50.0, 300.0),), rounds=1,
                              iterations=1)
    print()
    print(f"{'Mbps':>6s} {'Eq.10 period':>13s} {'shared bound':>13s} "
          f"{'event-level':>12s}")
    for mbps, paper, bound, measured in rows:
        print(f"{mbps:>6.0f} {paper:>12.3f}s {bound:>12.3f}s {measured:>11.3f}s")
    for _mbps, paper, bound, measured in rows:
        # The analytic bound sandwiches the event-level measurement.
        assert bound >= paper - 1e-9
        assert measured >= bound * 0.98
        # ...and the event-level period is not wildly above the bound
        # (comm/comp overlap recovers most of it).
        assert measured <= max(bound, paper) * 2.0
    # Contention matters more as bandwidth shrinks.
    penalties = [m / p for _, p, _, m in rows]
    assert penalties[0] >= penalties[-1] - 0.05
