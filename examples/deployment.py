#!/usr/bin/env python
"""Deployment workflow: plan → validate memory → visualise → ship JSON.

Walks the full artefact pipeline an operator would run before pushing a
plan to a fleet: plan VGG16 under a latency bound, check every device
fits the Pi's 2 GB (minus OS) memory budget, render the cost table and
pipeline timeline, export the plan as JSON, and reload it to prove the
artefact is self-contained.

Run:  python examples/deployment.py
"""

import os
import tempfile

from repro import (
    heterogeneous_cluster,
    load_plan,
    render_plan,
    render_timeline,
    wifi_50mbps,
)
from repro.core.serialize import dump_plan
from repro.cost.memory import check_memory, plan_memory
from repro.models import vgg16
from repro.schemes import PicoScheme


def main() -> None:
    model = vgg16()
    cluster = heterogeneous_cluster([1200, 1200, 800, 800, 600, 600, 600, 600])
    network = wifi_50mbps()

    # Plan with a latency bound: at most 10 s end-to-end per frame.
    plan = PicoScheme(t_lim=10.0).plan(model, cluster, network)
    print(render_plan(model, plan, network))

    # Memory validation against a 1.5 GB usable budget per Pi.
    budget = int(1.5 * 1024**3)
    report = check_memory(model, plan, budget_bytes=budget)
    print(f"\nmemory check passed (budget {budget / 1024**3:.1f} GB/device):")
    for entry in report:
        print(
            f"  {entry.device_name:<16s} "
            f"{entry.weight_bytes / 1e6:7.1f} MB weights + "
            f"{entry.activation_bytes / 1e6:6.1f} MB activations"
        )
    heaviest = max(plan_memory(model, plan), key=lambda e: e.total_bytes)
    print(
        f"heaviest device: {heaviest.device_name} "
        f"({heaviest.total_bytes / 1e6:.1f} MB total)"
    )

    # Timeline of the first tasks through the pipeline.
    print()
    print(render_timeline(model, plan, network, n_tasks=5))

    # Ship the plan as a self-contained JSON artefact.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "vgg16_plan.json")
        dump_plan(plan, path)
        size = os.path.getsize(path)
        reloaded = load_plan(path)
        assert reloaded == plan
        print(f"\nplan serialised to {size} bytes of JSON and reloaded intact")


if __name__ == "__main__":
    main()
