#!/usr/bin/env python
"""Smart home scenario: adaptive scheme switching over a day/night load.

The paper's motivating example (§II): home devices are idle while the
occupants are at work and busy when they return.  A camera pushes
YOLOv2 detection tasks to the cluster; the workload alternates between
a light and a heavy Poisson phase.  APICO runs the one-stage OFL plan
while it is fastest, then switches to the PICO pipeline when the
arrival rate crosses OFL's capacity.

Run:  python examples/smart_home.py
"""

import numpy as np

from repro import (
    build_apico_switcher,
    pi_cluster,
    simulate,
    wifi_50mbps,
)
from repro.core.plan import plan_cost
from repro.models import yolov2
from repro.schemes import EarlyFusedScheme, OptimalFusedScheme, PicoScheme
from repro.workload import day_night_trace


def main() -> None:
    model = yolov2()
    cluster = pi_cluster(8, freq_mhz=600)
    network = wifi_50mbps()

    ofl_plan = OptimalFusedScheme().plan(model, cluster, network)
    ofl_capacity = plan_cost(model, ofl_plan, network).throughput
    print(f"one-stage (OFL) capacity: {60 * ofl_capacity:.1f} tasks/min")

    # Quiet morning, busy evening, quiet night, busy morning rush.
    trace = day_night_trace(
        light_rate=0.15 * ofl_capacity,
        heavy_rate=1.3 * ofl_capacity,
        phase_duration_s=600.0,
        cycles=2,
    )
    arrivals = trace.sample(np.random.default_rng(7))
    print(f"trace: {len(arrivals)} tasks over {trace.horizon_s / 60:.0f} min\n")

    print(f"{'scheme':>7s} {'avg lat':>9s} {'p95 lat':>9s} {'completed':>10s}")
    for name, scheme in (
        ("EFL", EarlyFusedScheme()),
        ("OFL", OptimalFusedScheme()),
        ("PICO", PicoScheme()),
    ):
        sim = simulate(model, scheme, cluster, network=network,
                       arrivals=arrivals)
        print(
            f"{name:>7s} {sim.avg_latency:>8.2f}s "
            f"{sim.percentile_latency(95):>8.2f}s {sim.completed:>10d}"
        )

    switcher = build_apico_switcher(model, cluster, network)
    sim = simulate(model, switcher, network=network, arrivals=arrivals)
    usage = ", ".join(f"{k}: {v}" for k, v in sorted(sim.plan_usage.items()))
    print(
        f"{'APICO':>7s} {sim.avg_latency:>8.2f}s "
        f"{sim.percentile_latency(95):>8.2f}s {sim.completed:>10d}"
        f"   (tasks per plan -> {usage})"
    )


if __name__ == "__main__":
    main()
