#!/usr/bin/env python
"""Quickstart: plan and evaluate pipelined CNN inference in ~20 lines.

Plans VGG16 on the paper's testbed (8 Raspberry-Pi 4Bs behind a 50 Mbps
WiFi AP), prints the PICO pipeline, and compares all four
parallelization schemes analytically.

Run:  python examples/quickstart.py
"""

from repro import evaluate, pi_cluster, plan, wifi_50mbps
from repro.core.plan import plan_cost
from repro.models import vgg16
from repro.schemes import (
    EarlyFusedScheme,
    LayerWiseScheme,
    OptimalFusedScheme,
    PicoScheme,
)


def main() -> None:
    model = vgg16()
    cluster = pi_cluster(8, freq_mhz=600)
    network = wifi_50mbps()

    # One call: Algorithm 1 (DP) + Algorithm 2 (heterogeneous greedy).
    pipeline = plan(model, cluster, network)
    print(pipeline.describe())
    cost = evaluate(model, pipeline, network)
    print(
        f"\nPICO: period {cost.period:.2f}s -> "
        f"{60 * cost.throughput:.1f} inferences/min, "
        f"pipeline latency {cost.latency:.2f}s\n"
    )

    print(f"{'scheme':>7s} {'stages':>7s} {'period':>9s} {'latency':>9s} {'thpt/min':>9s}")
    for scheme in (
        LayerWiseScheme(),
        EarlyFusedScheme(),
        OptimalFusedScheme(),
        PicoScheme(),
    ):
        p = scheme.plan(model, cluster, network)
        c = plan_cost(model, p, network)
        print(
            f"{scheme.name:>7s} {p.n_stages:>7d} {c.period:>8.2f}s "
            f"{c.latency:>8.2f}s {60 * c.throughput:>9.1f}"
        )


if __name__ == "__main__":
    main()
