#!/usr/bin/env python
"""Heterogeneous cluster study: Algorithm 2 in action.

Builds the paper's Table I cluster (2×1.2 GHz, 2×800 MHz, 4×600 MHz
Raspberry-Pis), plans VGG16 with every scheme, and reports per-device
utilisation and redundancy under a saturated workload — then shows how
PICO re-plans as the WLAN bandwidth changes ("various network
settings").

Run:  python examples/heterogeneous_cluster.py
"""

from repro import (
    NetworkModel,
    heterogeneous_cluster,
    simulate,
    utilization_table,
    wifi_50mbps,
)
from repro.core.plan import plan_cost
from repro.models import vgg16
from repro.schemes import (
    EarlyFusedScheme,
    LayerWiseScheme,
    OptimalFusedScheme,
    PicoScheme,
)
from repro.workload import saturation_arrivals


def main() -> None:
    model = vgg16()
    cluster = heterogeneous_cluster([1200, 1200, 800, 800, 600, 600, 600, 600])
    network = wifi_50mbps()

    print("=== Table-I style report (saturated workload) ===")
    for scheme in (
        LayerWiseScheme(),
        EarlyFusedScheme(),
        OptimalFusedScheme(),
        PicoScheme(),
    ):
        plan = scheme.plan(model, cluster, network)
        sim = simulate(
            model, plan, network=network, arrivals=saturation_arrivals(40)
        )
        table = utilization_table(model, plan, network, sim, scheme_name=scheme.name)
        print()
        print(table.format())
        print(f"  throughput: {60 * sim.throughput:.1f} tasks/min")

    print("\n=== PICO across network settings ===")
    print(f"{'Mbps':>6s} {'stages':>7s} {'period':>9s} {'latency':>9s}")
    for mbps in (10, 25, 50, 100, 300):
        net = NetworkModel.from_mbps(mbps)
        plan = PicoScheme().plan(model, cluster, net)
        cost = plan_cost(model, plan, net)
        print(
            f"{mbps:>6d} {plan.n_stages:>7d} {cost.period:>8.2f}s "
            f"{cost.latency:>8.2f}s"
        )


if __name__ == "__main__":
    main()
