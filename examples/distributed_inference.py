#!/usr/bin/env python
"""Real distributed inference across worker processes.

Plans a small CNN on an emulated heterogeneous cluster, then actually
executes the pipeline: one OS process per device role, tensors moving
over framed TCP, overlapping halo tiles split and stitched exactly as
in the paper's Fig. 6 workflow.  Verifies the distributed outputs are
bit-close to single-process inference, reports the measured pipeline
throughput, and finishes with a worker-failure recovery demo.

Run:  python examples/distributed_inference.py
"""

import time

import numpy as np

from repro import DistributedPipeline, heterogeneous_cluster, wifi_50mbps
from repro.models import toy_chain
from repro.nn import Engine, init_weights
from repro.schemes import EarlyFusedScheme, PicoScheme


def main() -> None:
    model = toy_chain(8, 2, input_hw=64, in_channels=3, base_channels=16)
    cluster = heterogeneous_cluster([1200, 1000, 800, 600])
    network = wifi_50mbps()
    weights = init_weights(model, seed=42)
    engine = Engine(model, weights)

    plan = PicoScheme().plan(model, cluster, network)
    print(plan.describe())

    rng = np.random.default_rng(0)
    frames = [
        rng.standard_normal(model.input_shape).astype(np.float32)
        for _ in range(8)
    ]

    print("\nrunning locally (reference)...")
    started = time.perf_counter()
    references = [engine.forward_features(x) for x in frames]
    local_s = time.perf_counter() - started

    print("running distributed (one process per device role)...")
    with DistributedPipeline(model, plan, weights=weights) as pipe:
        outputs, stats = pipe.run_batch(frames)

    max_err = max(
        float(np.abs(out - ref).max()) for out, ref in zip(outputs, references)
    )
    print(f"max |distributed - local| = {max_err:.2e}  (bit-close: {max_err < 1e-3})")
    print(
        f"local: {len(frames) / local_s:.1f} frames/s   "
        f"distributed pipeline: {stats.throughput:.1f} frames/s   "
        f"avg latency {stats.avg_latency * 1000:.1f} ms"
    )

    print("\n=== failure injection ===")
    efl_plan = EarlyFusedScheme(n_fused=6).plan(model, cluster, network)
    victim = efl_plan.stages[0].assignments[1][0].name
    print(f"killing worker on {victim} after its first tile...")
    with DistributedPipeline(
        model, efl_plan, weights=weights, recover=True, fail_after={victim: 1}
    ) as pipe:
        outputs, stats = pipe.run_batch(frames)
    max_err = max(
        float(np.abs(out - ref).max()) for out, ref in zip(outputs, references)
    )
    print(
        f"recovered {stats.recoveries} time(s); outputs still correct "
        f"(max err {max_err:.2e})"
    )


if __name__ == "__main__":
    main()
