"""Tests for the EWMA workload estimator (paper Eq. 15)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.adaptive.estimator import ArrivalRateTracker, EwmaEstimator


class TestEwmaEstimator:
    def test_eq15_single_step(self):
        est = EwmaEstimator(beta=0.4, initial=1.0)
        assert est.update(2.0) == pytest.approx(0.4 * 2.0 + 0.6 * 1.0)

    def test_converges_to_constant_input(self):
        est = EwmaEstimator(beta=0.3)
        for _ in range(200):
            est.update(5.0)
        assert est.value == pytest.approx(5.0, rel=1e-6)

    def test_beta_one_tracks_exactly(self):
        est = EwmaEstimator(beta=1.0, initial=9.0)
        assert est.update(3.0) == 3.0

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            EwmaEstimator(beta=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(beta=1.5)

    def test_negative_measurement_rejected(self):
        with pytest.raises(ValueError):
            EwmaEstimator(beta=0.5).update(-1.0)

    def test_reset(self):
        est = EwmaEstimator(beta=0.5, initial=4.0)
        est.update(8.0)
        est.reset(1.0)
        assert est.value == 1.0

    @given(
        beta=st.floats(0.01, 1.0),
        values=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50),
    )
    def test_property_stays_within_observed_range(self, beta, values):
        est = EwmaEstimator(beta=beta, initial=values[0])
        for v in values:
            est.update(v)
        assert min(values) - 1e-9 <= est.value <= max(values) + 1e-9


class TestArrivalRateTracker:
    def test_constant_rate_estimated(self):
        tracker = ArrivalRateTracker(window_s=10.0, beta=0.5)
        rate = 2.0  # arrivals per second
        estimate = 0.0
        for i in range(1, 200):
            estimate = tracker.observe(i / rate)
        assert estimate == pytest.approx(rate, rel=0.15)

    def test_rate_decays_when_arrivals_stop_then_resume_slow(self):
        tracker = ArrivalRateTracker(window_s=5.0, beta=0.5)
        for i in range(1, 50):
            tracker.observe(i * 0.1)  # 10/s burst
        fast = tracker.rate
        # Then very sparse arrivals.
        for i in range(30):
            tracker.observe(5.0 + i * 10.0)
        assert tracker.rate < fast / 2

    def test_time_going_backwards_rejected(self):
        tracker = ArrivalRateTracker()
        tracker.observe(5.0)
        with pytest.raises(ValueError):
            tracker.observe(4.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ArrivalRateTracker(window_s=0.0)

    def test_initial_rate_seed(self):
        tracker = ArrivalRateTracker(initial_rate=3.0)
        assert tracker.rate == 3.0
