"""Tests for Algorithm 1 (DP planner) including brute-force optimality."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.cluster.device import pi_cluster
from repro.core.dp_planner import StageTimeTable, plan_homogeneous
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain


@pytest.fixture
def net():
    return NetworkModel.from_mbps(50.0)


def brute_force_best(model, cluster, net, t_lim=math.inf):
    """Enumerate every contiguous split + device-count composition."""
    homo = cluster.homogenized()
    device = homo.devices[0]
    ts = StageTimeTable(model, device, net)
    n, d = model.n_units, len(cluster)
    best = None
    for k in range(1, min(n, d) + 1):
        for cuts in itertools.combinations(range(1, n), k - 1):
            bounds = (0,) + cuts + (n,)
            segs = list(zip(bounds, bounds[1:]))
            for counts in itertools.product(range(1, d + 1), repeat=k):
                if sum(counts) > d:
                    continue
                costs = [ts(s, e, p) for (s, e), p in zip(segs, counts)]
                latency = sum(costs)
                if latency > t_lim:
                    continue
                period = max(costs)
                if best is None or (period, latency) < best:
                    best = (period, latency)
    return best


class TestPlanHomogeneous:
    def test_matches_bruteforce_small(self, net):
        model = toy_chain(5, 1, input_hw=32)
        cluster = pi_cluster(3, 800)
        plan = plan_homogeneous(model, cluster, net)
        best = brute_force_best(model, cluster, net)
        assert plan is not None and best is not None
        assert plan.period == pytest.approx(best[0])

    def test_matches_bruteforce_other_shape(self, net):
        model = toy_chain(4, 0, input_hw=24, in_channels=3)
        cluster = pi_cluster(4, 600)
        plan = plan_homogeneous(model, cluster, net)
        best = brute_force_best(model, cluster, net)
        assert plan.period == pytest.approx(best[0])

    def test_stages_contiguous_and_within_budget(self, net):
        model = toy_chain(6, 1, input_hw=32)
        cluster = pi_cluster(4, 800)
        plan = plan_homogeneous(model, cluster, net)
        assert plan.stages[0].start == 0
        assert plan.stages[-1].end == model.n_units
        for a, b in zip(plan.stages, plan.stages[1:]):
            assert a.end == b.start
        assert plan.devices_used <= len(cluster)

    def test_single_device_single_stage(self, net):
        model = toy_chain(3, 0, input_hw=16)
        cluster = pi_cluster(1, 600)
        plan = plan_homogeneous(model, cluster, net)
        assert plan.n_stages == 1
        assert plan.period == pytest.approx(plan.latency)

    def test_latency_limit_enforced(self, net):
        # Large enough that the unconstrained optimum is a multi-stage
        # pipeline, so a latency budget can actually bind.
        model = toy_chain(8, 2, input_hw=64)
        cluster = pi_cluster(6, 800)
        free = plan_homogeneous(model, cluster, net)
        assert free.n_stages > 1
        # Find the minimum achievable latency by brute force, then pick
        # a budget strictly between it and the unconstrained optimum's
        # latency — guaranteed feasible yet actually binding.
        homo = cluster.homogenized()
        ts = StageTimeTable(model, homo.devices[0], net)
        min_latency = min(
            ts(0, model.n_units, p) for p in range(1, len(cluster) + 1)
        )
        assert min_latency < free.latency  # the constraint can bind
        t_lim = (min_latency + free.latency) / 2
        limited = plan_homogeneous(model, cluster, net, t_lim=t_lim)
        assert limited is not None
        assert limited.latency <= t_lim
        assert limited.period >= free.period

    def test_infeasible_limit_returns_none(self, net):
        model = toy_chain(4, 0, input_hw=16)
        cluster = pi_cluster(2, 600)
        assert plan_homogeneous(model, cluster, net, t_lim=1e-9) is None

    def test_period_never_worse_than_single_stage(self, net):
        model = toy_chain(6, 2, input_hw=32)
        cluster = pi_cluster(6, 600)
        homo = cluster.homogenized()
        ts = StageTimeTable(model, homo.devices[0], net)
        single = ts(0, model.n_units, len(cluster))
        plan = plan_homogeneous(model, cluster, net)
        assert plan.period <= single + 1e-12

    def test_more_devices_never_hurt(self, net):
        model = toy_chain(5, 1, input_hw=32)
        p4 = plan_homogeneous(model, pi_cluster(4, 800), net)
        p8 = plan_homogeneous(model, pi_cluster(8, 800), net)
        assert p8.period <= p4.period + 1e-12


class FakeTable:
    """A Ts provider with hand-injected stage costs (default 10.0)."""

    def __init__(self, costs):
        self.costs = costs

    def __call__(self, start, end, p):
        return self.costs.get((start, end, p), 10.0)

    def best(self, start, end, p):
        return (self(start, end, p), False)

    def is_branch(self, start, end, p):
        return False


class TestStageCountTieBreak:
    def test_ties_break_towards_fewer_stages(self, net):
        """Two plans tie at (period 2.0, latency 3.0) with 3 devices:
        a 3-stage split and a 2-stage split.  The DP must return the
        2-stage one — fewer stages means less inter-stage traffic for
        equal analytic cost."""
        model = toy_chain(4, 0, input_hw=16)  # 4 units
        cluster = pi_cluster(3, 600)
        table = FakeTable({
            (0, 1, 1): 0.5,
            (1, 2, 1): 0.5,
            (2, 4, 1): 2.0,  # 3-stage plan: periods (.5, .5, 2.0)
            (0, 3, 2): 2.0,
            (3, 4, 1): 1.0,  # 2-stage plan: periods (2.0, 1.0)
        })
        plan = plan_homogeneous(model, cluster, net, table=table)
        assert plan is not None
        assert plan.period == 2.0
        assert plan.latency == 3.0
        assert plan.n_stages == 2
        assert [(s.start, s.end, s.n_devices) for s in plan.stages] == [
            (0, 3, 2),
            (3, 4, 1),
        ]


class TestStageTimeTable:
    def test_caches(self, net):
        model = toy_chain(3, 0, input_hw=16)
        device = pi_cluster(2, 600).devices[0]
        ts = StageTimeTable(model, device, net)
        first = ts(0, 2, 1)
        assert ts(0, 2, 1) == first
        assert (0, 2, 1) in ts._cache
