"""Tests for the one-shot reproduction report generator."""

from __future__ import annotations

import pytest

from repro.experiments.full_report import FAST, FULL, ReportScale, generate_report

pytestmark = pytest.mark.slow  # drives every experiment end-to-end


@pytest.fixture(scope="module")
def tiny_scale():
    """A miniature scale so the test finishes in seconds."""
    return ReportScale(
        name="tiny",
        capacity_device_counts=(2, 4),
        capacity_freqs=(600.0,),
        latency_fractions=(0.8,),
        latency_horizon_s=120.0,
        latency_repeats=1,
        sim_tasks=6,
        bfs_budget_s=10.0,
        table2_grid=((4, 4),),
        speedup_devices=(4,),
    )


@pytest.fixture(scope="module")
def report(tiny_scale):
    messages = []
    text = generate_report(tiny_scale, progress=messages.append)
    return text, messages


def test_every_section_present(report):
    text, _ = report
    for heading in (
        "Fig. 2", "Fig. 4", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
        "Fig. 12", "Fig. 13", "Table I", "Table II",
    ):
        assert f"## {heading}" in text


def test_progress_callback_used(report):
    _, messages = report
    assert any("table 2" in m for m in messages)


def test_report_is_markdown_with_code_blocks(report):
    text, _ = report
    assert text.startswith("# PICO reproduction report")
    assert text.count("```") % 2 == 0


def test_scales_defined():
    assert FAST.name == "fast"
    assert FULL.name == "full"
    assert len(FULL.latency_fractions) > len(FAST.latency_fractions)
