"""Tests for the command-line interface (in-process, no subprocesses)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.serialize import load_plan


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestModels:
    def test_lists_zoo(self, capsys):
        code, out = run_cli(capsys, "models")
        assert code == 0
        for name in ("vgg16", "yolov2", "resnet34", "inception_v3"):
            assert name in out


class TestDescribe:
    def test_prints_layers(self, capsys):
        code, out = run_cli(capsys, "describe", "vgg16")
        assert code == 0
        assert "conv1_1" in out and "fc8" in out

    def test_unknown_model(self, capsys):
        with pytest.raises(KeyError):
            run_cli(capsys, "describe", "alexnet")


class TestPlan:
    def test_plan_toy(self, capsys):
        code, out = run_cli(
            capsys, "plan", "fig13_toy", "--devices", "4", "--freq", "800"
        )
        assert code == 0
        assert "period" in out and "pipelined" in out

    def test_plan_heterogeneous_and_save(self, capsys, tmp_path):
        path = tmp_path / "plan.json"
        code, out = run_cli(
            capsys, "plan", "fig13_toy", "--freqs", "1200,800,600",
            "--save", str(path),
        )
        assert code == 0
        plan = load_plan(str(path))
        assert plan.mode == "pipelined"
        names = {d.name for s in plan.stages for d in s.devices}
        assert any("1200" in n for n in names)


class TestCompare:
    def test_all_schemes_listed(self, capsys):
        code, out = run_cli(
            capsys, "compare", "fig13_toy", "--devices", "4", "--freq", "800"
        )
        assert code == 0
        for scheme in ("LW", "EFL", "OFL", "PICO"):
            assert scheme in out


class TestSimulate:
    def test_reports_latencies(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "fig13_toy", "--devices", "4", "--freq", "800",
            "--load", "0.8", "--horizon", "30",
        )
        assert code == 0
        for scheme in ("EFL", "OFL", "PICO", "APICO"):
            assert scheme in out

    def test_points_at_the_scenario_simulator(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "fig13_toy", "--devices", "4", "--freq", "800",
            "--load", "0.5", "--horizon", "10",
        )
        assert code == 0
        assert "repro sim" in out


class TestSim:
    def test_one_link_default(self, capsys):
        code, out = run_cli(
            capsys, "sim", "fig13_toy", "--devices", "4", "--freq", "800",
            "--horizon", "20",
        )
        assert code == 0
        assert "topology wlan" in out
        assert "served:" in out
        assert "plan usage:" in out

    def test_star_with_churn_prints_recovery(self, capsys):
        code, out = run_cli(
            capsys, "sim", "fig13_toy", "--devices", "4", "--freq", "800",
            "--topology", "star", "--arrivals", "flash-crowd",
            "--horizon", "20", "--rate", "0.5",
            "--churn", "pi2:5:10",
        )
        assert code == 0
        assert "topology star" in out
        assert "device_dead" in out
        assert "device_join" in out
        assert "replan" in out

    def test_trace_replay_from_file(self, capsys, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# recorded\n0.5\n1.0\n2.5\n")
        code, out = run_cli(
            capsys, "sim", "fig13_toy", "--devices", "4", "--freq", "800",
            "--arrivals", "trace-replay", "--trace", str(path),
        )
        assert code == 0
        assert "3 done" in out

    def test_trace_replay_requires_file(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys, "sim", "fig13_toy", "--devices", "4",
                "--arrivals", "trace-replay",
            )

    def test_stats_mode_constant_memory(self, capsys):
        code, out = run_cli(
            capsys, "sim", "fig13_toy", "--devices", "4", "--freq", "800",
            "--horizon", "10", "--stats",
        )
        assert code == 0
        assert "constant memory" in out

    def test_contended_rejected_off_one_link(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys, "sim", "fig13_toy", "--devices", "4",
                "--topology", "mesh", "--contended",
            )

    def test_unknown_arrivals_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys, "sim", "fig13_toy", "--devices", "4",
                "--arrivals", "zipf",
            )


class TestTimeline:
    def test_draws_stages(self, capsys):
        code, out = run_cli(
            capsys, "timeline", "fig13_toy", "--devices", "4", "--freq", "800",
            "--tasks", "3",
        )
        assert code == 0
        assert "stage 0" in out


class TestServe:
    def test_serve_reports_stats(self, capsys):
        code, out = run_cli(
            capsys, "serve", "fig13_toy", "--devices", "4", "--freq", "800",
            "--load", "0.6", "--frames", "16", "--no-compute",
        )
        assert code == 0
        assert "served:" in out

    def test_max_batch_prints_batch_stats(self, capsys):
        code, out = run_cli(
            capsys, "serve", "fig13_toy", "--devices", "4", "--freq", "800",
            "--load", "0.9", "--frames", "24", "--no-compute",
            "--max-batch", "4", "--batch-timeout", "0.01",
            "--policy", "block",
        )
        assert code == 0
        assert "frames/batch" in out

    def test_max_batch_one_omits_batch_stats(self, capsys):
        code, out = run_cli(
            capsys, "serve", "fig13_toy", "--devices", "4", "--freq", "800",
            "--load", "0.5", "--frames", "8", "--no-compute",
        )
        assert code == 0
        assert "frames/batch" not in out


class TestSchemeIop:
    def test_plan_iop_saves_channel_groups(self, capsys, tmp_path):
        path = tmp_path / "iop.json"
        code, out = run_cli(
            capsys, "plan", "fig13_toy", "--freqs", "1200,1000,800,600",
            "--scheme", "iop", "--save", str(path),
        )
        assert code == 0
        assert "exclusive" in out
        assert "channel-parallel" in out
        plan = load_plan(str(path))
        assert any(s.channel_groups is not None for s in plan.stages)
        for stage in plan.stages:
            if stage.channel_groups is None:
                continue
            cursor = 0
            for lo, hi in stage.channel_groups:
                assert lo == cursor
                cursor = hi

    def test_sim_iop(self, capsys):
        code, out = run_cli(
            capsys, "sim", "fig13_toy", "--freqs", "1200,800,600",
            "--scheme", "iop", "--horizon", "10",
        )
        assert code == 0
        assert "served:" in out
        assert "IOP" in out

    def test_serve_iop(self, capsys):
        code, out = run_cli(
            capsys, "serve", "fig13_toy", "--freqs", "1200,800,600",
            "--scheme", "iop", "--load", "0.5", "--frames", "6",
            "--no-compute",
        )
        assert code == 0
        assert "served:" in out

    def test_fleet_iop(self, capsys):
        code, out = run_cli(
            capsys, "fleet", "--freqs", "1200,1000,800,600",
            "--tenant", "cam:fig13_toy:0.5:10.0",
            "--scheme", "iop", "--frames", "3",
        )
        assert code == 0
        assert "cam" in out and "fleet:" in out


class TestPlannerExact:
    def test_serve_planner_exact(self, capsys):
        code, out = run_cli(
            capsys, "serve", "fig13_toy", "--freqs", "1500,900,600",
            "--planner", "exact", "--load", "0.5", "--frames", "6",
            "--no-compute",
        )
        assert code == 0
        assert "served:" in out

    def test_sim_planner_exact(self, capsys):
        code, out = run_cli(
            capsys, "sim", "fig13_toy", "--freqs", "1500,900,600",
            "--planner", "exact", "--horizon", "10",
        )
        assert code == 0
        assert "served:" in out

    def test_exact_rejects_other_schemes(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys, "serve", "fig13_toy", "--freqs", "1500,900,600",
                "--scheme", "lw", "--planner", "exact", "--frames", "2",
                "--no-compute",
            )

    def test_fleet_planner_exact(self, capsys):
        code, out = run_cli(
            capsys, "fleet", "--freqs", "1500,900,600",
            "--tenant", "cam:fig13_toy:0.5:10.0",
            "--planner", "exact", "--frames", "3",
        )
        assert code == 0
        assert "fleet:" in out


class TestGap:
    def test_reports_gap(self, capsys):
        code, out = run_cli(
            capsys, "gap", "fig13_toy", "--freqs", "1500,900,600"
        )
        assert code == 0
        assert "greedy (Algorithm 1+2)" in out
        assert "exact (branch-and-bound)" in out
        assert "optimality gap:" in out

    def test_homogeneous_gap_is_zero(self, capsys):
        code, out = run_cli(
            capsys, "gap", "fig13_toy", "--devices", "3", "--freq", "1000"
        )
        assert code == 0
        assert "optimality gap: 0.00%" in out
        assert "greedy plan is optimal" in out

    def test_period_bound_returns_greedy(self, capsys):
        code, out = run_cli(
            capsys, "gap", "fig13_toy", "--freqs", "1500,900,600",
            "--period-bound", "1e-9",
        )
        assert code == 0
        assert "optimality gap: 0.00%" in out
