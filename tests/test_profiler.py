"""Tests for the alpha regression and host calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.profiler import calibrate_host, fit_alpha


class TestFitAlpha:
    def test_recovers_exact_alpha(self):
        capacity = 1e9
        flops = [1e8, 2e8, 5e8, 1e9]
        alpha_true = 1.7
        times = [alpha_true * f / capacity for f in flops]
        assert fit_alpha(flops, times, capacity) == pytest.approx(alpha_true)

    def test_recovers_alpha_with_noise(self):
        rng = np.random.default_rng(0)
        capacity = 1e9
        flops = list(rng.uniform(1e8, 1e9, size=50))
        alpha_true = 2.3
        times = [alpha_true * f / capacity * rng.uniform(0.95, 1.05) for f in flops]
        assert fit_alpha(flops, times, capacity) == pytest.approx(alpha_true, rel=0.05)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_alpha([1.0], [1.0, 2.0], 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_alpha([], [], 1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            fit_alpha([1.0], [1.0], 0.0)

    def test_all_zero_flops_rejected(self):
        with pytest.raises(ValueError):
            fit_alpha([0.0, 0.0], [1.0, 1.0], 1.0)

    def test_negative_fit_rejected(self):
        with pytest.raises(ValueError):
            fit_alpha([1e6], [-1.0], 1e6)


class TestCalibrateHost:
    def test_produces_plausible_capacity(self):
        result = calibrate_host(sizes=(48, 64), repeats=2)
        # Any host runs numpy matmuls between 10 MFLOP/s and 10 TFLOP/s.
        assert 1e7 < result.flops_per_second < 1e13
        assert result.samples == 4
        assert result.rms_residual_s >= 0.0
