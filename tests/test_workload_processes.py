"""Tests for the lazy arrival processes and the ``get_arrivals`` registry."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.workload import (
    ArrivalProcess,
    CompositeProcess,
    DiurnalProcess,
    FlashCrowdProcess,
    PoissonProcess,
    SaturationProcess,
    TraceReplayProcess,
    UniformProcess,
    available_arrivals,
    day_night_process,
    get_arrivals,
    poisson_arrivals,
)


class TestPoissonProcess:
    def test_matches_legacy_list_draw_for_draw(self):
        legacy = poisson_arrivals(2.0, 30.0, np.random.default_rng(7))
        process = PoissonProcess(2.0, horizon_s=30.0)
        streamed = list(process.times(np.random.default_rng(7)))
        assert streamed == legacy

    def test_default_seed_is_deterministic(self):
        process = PoissonProcess(1.0, horizon_s=20.0)
        assert list(process) == list(process)
        assert process.sample() == list(process.times())

    def test_count_bound(self):
        process = PoissonProcess(5.0, n_tasks=17)
        times = process.sample()
        assert len(times) == 17
        assert times == sorted(times)

    def test_needs_a_bound(self):
        with pytest.raises(ValueError):
            PoissonProcess(1.0)


class TestLaziness:
    def test_billion_task_process_streams_in_constant_memory(self):
        # Materialising 10^9 floats would need gigabytes; taking the
        # first few from the iterator must not.
        process = PoissonProcess(1000.0, n_tasks=10**9)
        head = list(itertools.islice(process.times(), 5))
        assert len(head) == 5
        assert head == sorted(head)

    def test_times_returns_an_iterator_not_a_list(self):
        process = DiurnalProcess(1.0, 5.0, period_s=60.0, horizon_s=60.0)
        stream = process.times()
        assert iter(stream) is stream


class TestEnvelopes:
    def test_flash_crowd_rate_shape(self):
        crowd = FlashCrowdProcess(
            base_rate=2.0, peak_rate=20.0, t_start=100.0,
            ramp_s=10.0, hold_s=50.0, decay_s=10.0, horizon_s=300.0,
        )
        assert crowd.rate_at(-1.0) == 0.0
        assert crowd.rate_at(50.0) == pytest.approx(2.0)
        assert crowd.rate_at(105.0) == pytest.approx(11.0)  # mid-ramp
        assert crowd.rate_at(130.0) == pytest.approx(20.0)  # hold
        assert crowd.rate_at(165.0) == pytest.approx(11.0)  # mid-decay
        assert crowd.rate_at(250.0) == pytest.approx(2.0)   # back to base
        assert crowd.rate_at(300.0) == 0.0

    def test_flash_crowd_empirical_burst(self):
        crowd = FlashCrowdProcess(
            base_rate=2.0, peak_rate=40.0, t_start=100.0,
            ramp_s=5.0, hold_s=60.0, decay_s=5.0, horizon_s=300.0,
        )
        times = crowd.sample(np.random.default_rng(3))
        before = sum(1 for t in times if t < 100.0)
        during = sum(1 for t in times if 105.0 <= t < 165.0)
        # ~200 baseline arrivals in [0,100) vs ~2400 during the hold.
        assert during / 60.0 > 5 * (before / 100.0)
        assert times == sorted(times)

    def test_flash_crowd_default_horizon_ends_after_decay(self):
        crowd = FlashCrowdProcess(1.0, 10.0, 30.0, 5.0, 20.0, 10.0)
        assert crowd.horizon_s == pytest.approx(65.0)

    def test_diurnal_trough_and_peak(self):
        diurnal = DiurnalProcess(
            base_rate=1.0, peak_rate=9.0, period_s=86400.0,
            horizon_s=86400.0,
        )
        assert diurnal.rate_at(0.0) == pytest.approx(1.0)
        assert diurnal.rate_at(43200.0) == pytest.approx(9.0)
        # Envelope is always within [base, peak].
        for t in range(0, 86400, 3600):
            assert 1.0 - 1e-9 <= diurnal.rate_at(float(t)) <= 9.0 + 1e-9

    def test_thinned_sampling_is_seed_deterministic(self):
        crowd = FlashCrowdProcess(2.0, 20.0, 10.0, 5.0, 10.0, 5.0)
        a = crowd.sample(np.random.default_rng(11))
        b = crowd.sample(np.random.default_rng(11))
        c = crowd.sample(np.random.default_rng(12))
        assert a == b
        assert a != c

    def test_day_night_matches_phased_trace(self):
        process = day_night_process(1.0, 5.0, 30.0, cycles=2)
        times = process.sample(np.random.default_rng(0))
        assert times == sorted(times)
        assert process.rate_at(10.0) == pytest.approx(1.0)
        assert process.rate_at(40.0) == pytest.approx(5.0)


class TestTraceReplay:
    def test_file_source_with_comments(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# recorded submits\n0.5\n\n1.25\n3.0\n")
        process = TraceReplayProcess(str(path))
        assert process.sample() == [0.5, 1.25, 3.0]

    def test_scale_offset_and_count(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1.0\n2.0\n3.0\n4.0\n")
        process = TraceReplayProcess(
            str(path), time_scale=0.5, time_offset=10.0, n_tasks=3
        )
        assert process.sample() == [10.5, 11.0, 11.5]

    def test_in_memory_sequence(self):
        process = TraceReplayProcess([0.0, 0.0, 2.5])
        assert process.sample() == [0.0, 0.0, 2.5]

    def test_backwards_time_names_the_entry(self):
        process = TraceReplayProcess([1.0, 2.0, 1.5])
        with pytest.raises(ValueError, match="entry 2"):
            process.sample()

    def test_rate_is_zero_by_convention(self):
        assert TraceReplayProcess([1.0]).rate_at(1.0) == 0.0


class TestSimpleProcesses:
    def test_uniform_spacing(self):
        times = UniformProcess(2.0, horizon_s=3.0).sample()
        assert times == pytest.approx([0.5, 1.0, 1.5, 2.0, 2.5])

    def test_saturation_all_at_zero(self):
        process = SaturationProcess(5)
        assert process.sample() == [0.0] * 5
        assert process.rate_at(0.0) == math.inf

    def test_composite_merges_sorted(self):
        merged = CompositeProcess(
            [UniformProcess(1.0, 5.0), UniformProcess(2.0, 5.0)]
        ).sample()
        assert merged == sorted(merged)
        assert len(merged) == 4 + 9
        assert CompositeProcess(
            [UniformProcess(1.0, 5.0), UniformProcess(2.0, 5.0)]
        ).rate_at(1.0) == pytest.approx(3.0)


class TestRegistry:
    def test_available_covers_the_processes(self):
        names = available_arrivals()
        for name in (
            "poisson", "uniform", "saturation", "day-night",
            "diurnal", "flash-crowd", "trace-replay", "composite",
        ):
            assert name in names
        assert names == tuple(sorted(names))

    def test_get_arrivals_builds_instances(self):
        process = get_arrivals("poisson", rate=2.0, horizon_s=10.0)
        assert isinstance(process, PoissonProcess)
        crowd = get_arrivals(
            "flash-crowd", base_rate=1.0, peak_rate=5.0,
            t_start=10.0, ramp_s=2.0, hold_s=5.0, decay_s=2.0,
        )
        assert isinstance(crowd, FlashCrowdProcess)

    def test_name_normalisation(self):
        process = get_arrivals("Flash_Crowd", base_rate=1.0, peak_rate=5.0,
                               t_start=1.0, ramp_s=1.0, hold_s=1.0,
                               decay_s=1.0)
        assert isinstance(process, FlashCrowdProcess)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="poisson"):
            get_arrivals("zipf")

    def test_everything_is_an_arrival_process(self):
        assert issubclass(PoissonProcess, ArrivalProcess)
        assert issubclass(TraceReplayProcess, ArrivalProcess)
