"""Fault tolerance: detection, retry/backoff, churn re-planning, and
the unified public API.

The recovery contract under test: with the default ``"migrate"``
repartition policy, a crashed device's *compiled* tasks move verbatim
to survivors, so tile geometry — and therefore every output float — is
unchanged.  Only a full re-plan (threshold breach or a stage losing all
its devices) changes geometry, and then outputs are float-close, not
bit-equal.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.cluster.device import Cluster, pi_cluster
from repro.cluster.simulator import (
    simulate_adaptive as real_simulate_adaptive,
    simulate_plan as real_simulate_plan,
)
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.core import InProcTransport, PipelineSession, SimTransport
from repro.runtime.faults import (
    FaultSchedule,
    RuntimeConfig,
    StageFailure,
    churn_replanner,
)
from repro.runtime.program import compile_plan
from repro.runtime.trace import (
    RECOVERY_KINDS,
    Tracer,
    canonical_trace,
    coerce_tracer,
)
from repro.schemes import available_schemes, get_scheme
from repro.schemes.base import PlanningError, weighted_assignments
from repro.schemes.local import local_fallback_plan
from repro.schemes.pico import PicoScheme
from repro.serve import PipelineServer, ServerConfig


@pytest.fixture(scope="module")
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture(scope="module")
def model():
    return toy_chain(6, 1, input_hw=40, in_channels=3, base_channels=8)


@pytest.fixture(scope="module")
def cluster():
    return pi_cluster(4, 800.0)


@pytest.fixture(scope="module")
def plan(model, cluster, net):
    return PicoScheme().plan(model, cluster, net)


@pytest.fixture(scope="module")
def program(model, plan):
    return compile_plan(model, plan)


@pytest.fixture(scope="module")
def weights(model):
    return init_weights(model, seed=0)


@pytest.fixture(scope="module")
def frames(model):
    rng = np.random.default_rng(7)
    return [
        rng.standard_normal(model.input_shape).astype(np.float32)
        for _ in range(3)
    ]


@pytest.fixture(scope="module")
def baseline(model, program, weights, frames):
    with PipelineSession(
        program, InProcTransport(Engine(model, weights))
    ) as session:
        return session.run_batch(frames)


def _run_faulty(model, program, weights, frames, faults, backend, net,
                config=None, replanner=None):
    engine = Engine(model, weights)
    if backend == "inproc":
        transport = InProcTransport(engine, faults=faults)
    else:
        transport = SimTransport(engine, net, faults=faults)
    tracer = Tracer()
    with PipelineSession(
        program, transport, tracer,
        config or RuntimeConfig(), replanner=replanner,
    ) as session:
        outputs = session.run_batch(frames)
    return outputs, tracer.events


def _recovery(events):
    return [e.kind for e in events if e.kind in RECOVERY_KINDS]


# ---------------------------------------------------------------------------
# RuntimeConfig / FaultSchedule primitives
# ---------------------------------------------------------------------------


class TestRuntimeConfig:
    def test_defaults_and_backoff(self):
        cfg = RuntimeConfig()
        assert cfg.max_retries >= 1
        assert cfg.backoff(0) == pytest.approx(cfg.backoff_base_s)
        assert cfg.backoff(2) == pytest.approx(
            cfg.backoff_base_s * cfg.backoff_factor**2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(max_retries=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RuntimeConfig(replan_threshold=1.5)
        with pytest.raises(ValueError):
            RuntimeConfig(repartition="teleport")


class TestFaultSchedule:
    def test_chainable_and_immutable(self):
        base = FaultSchedule()
        full = base.crash("pi0", at_frame=1).drop("pi1", frame=0)
        assert base.empty and not full.empty
        assert full.crashes[0].device == "pi0"

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule().crash("pi0", at_frame=-1)
        with pytest.raises(ValueError):
            FaultSchedule().delay("pi0", frame=0, seconds=-0.1)
        with pytest.raises(ValueError):
            FaultSchedule().drop("pi0", frame=0, times=0)
        with pytest.raises(ValueError):
            FaultSchedule().flaky_link("pi0", frame=0, failures=0)

    def test_injector_consumes_drops(self):
        inj = FaultSchedule().drop("pi0", frame=2).start()
        assert not inj.take_drop("pi0", 1)
        assert inj.take_drop("pi0", 2)
        assert not inj.take_drop("pi0", 2)  # consumed
        assert inj.crashed("pi0", 2) is False

    def test_injector_crash_is_permanent(self):
        inj = FaultSchedule().crash("pi1", at_frame=1).start()
        assert not inj.crashed("pi1", 0)
        assert inj.crashed("pi1", 1) and inj.crashed("pi1", 5)


# ---------------------------------------------------------------------------
# Crash recovery: migrate policy is bit-exact on both backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["inproc", "sim"])
def test_crash_recovery_bit_exact(model, program, weights, frames,
                                  baseline, net, backend):
    victim = program.stages[0].tasks[0].device_name
    faults = FaultSchedule().crash(victim, at_frame=1)
    outputs, events = _run_faulty(
        model, program, weights, frames, faults, backend, net
    )
    assert len(outputs) == len(baseline)
    for got, want in zip(outputs, baseline):
        assert np.array_equal(got, want)
    recovery = _recovery(events)
    assert "device_dead" in recovery and "frame_replayed" in recovery
    assert recovery.index("device_dead") < recovery.index("frame_replayed")


def test_crash_canonical_traces_agree(model, program, weights, frames,
                                      net):
    victim = program.stages[0].tasks[0].device_name
    faults = FaultSchedule().crash(victim, at_frame=1)
    _, ev_a = _run_faulty(
        model, program, weights, frames, faults, "inproc", net
    )
    _, ev_b = _run_faulty(
        model, program, weights, frames, faults, "sim", net
    )
    assert canonical_trace(ev_a) == canonical_trace(ev_b)


@pytest.mark.parametrize("backend", ["inproc", "sim"])
def test_drop_and_flaky_retry(model, program, weights, frames, baseline,
                              net, backend):
    dev0 = program.stages[0].tasks[0].device_name
    faults = (FaultSchedule()
              .drop(dev0, frame=0)
              .flaky_link(dev0, frame=2))
    outputs, events = _run_faulty(
        model, program, weights, frames, faults, backend, net
    )
    for got, want in zip(outputs, baseline):
        assert np.array_equal(got, want)
    retries = [(e.frame, e.device) for e in events if e.kind == "retry"]
    assert (0, dev0) in retries and (2, dev0) in retries
    # a retried fault never kills the device
    assert "device_dead" not in _recovery(events)


def test_delay_inflates_sim_clock_only(model, program, weights, frames,
                                       baseline, net):
    dev0 = program.stages[0].tasks[0].device_name
    slow = FaultSchedule().delay(dev0, frame=1, seconds=0.5)
    outputs, events = _run_faulty(
        model, program, weights, frames, slow, "sim", net
    )
    _, clean_events = _run_faulty(
        model, program, weights, frames, FaultSchedule(), "sim", net
    )
    for got, want in zip(outputs, baseline):
        assert np.array_equal(got, want)
    # virtual clock stretches, canonical (timestamp-free) trace doesn't
    assert max(e.end for e in events) > max(e.end for e in clean_events)
    assert canonical_trace(events) == canonical_trace(clean_events)


def test_fault_free_run_emits_no_recovery_events(model, program, weights,
                                                 frames, net):
    _, events = _run_faulty(
        model, program, weights, frames, FaultSchedule(), "inproc", net
    )
    assert _recovery(events) == []


# ---------------------------------------------------------------------------
# Escalation: stage wiped out -> forced replan / degrade / raise
# ---------------------------------------------------------------------------


def test_stage_wipeout_without_replanner_raises(model, program, weights,
                                                frames, net):
    stage0 = [t.device_name for t in program.stages[0].tasks]
    faults = FaultSchedule()
    for name in stage0:
        faults = faults.crash(name, at_frame=0)
    engine = Engine(model, weights)
    with PipelineSession(
        program, InProcTransport(engine, faults=faults),
        Tracer(), RuntimeConfig(),
    ) as session:
        with pytest.raises(StageFailure):
            session.run_batch(frames)


def test_stage_wipeout_with_replanner_recovers(model, program, weights,
                                               frames, baseline, cluster,
                                               net):
    stage0 = [t.device_name for t in program.stages[0].tasks]
    faults = FaultSchedule()
    for name in stage0:
        faults = faults.crash(name, at_frame=1)
    replanner = churn_replanner(
        model, cluster, net, scheme=PicoScheme()
    )
    outputs, events = _run_faulty(
        model, program, weights, frames, faults, "inproc", net,
        replanner=replanner,
    )
    recovery = _recovery(events)
    assert recovery.count("device_dead") == len(stage0)
    assert "replan" in recovery or "degraded" in recovery
    # re-planned geometry differs, so float-close rather than bit-equal
    for got, want in zip(outputs, baseline):
        assert np.allclose(got, want, atol=1e-4)


def test_churn_replanner_needs_scheme_or_switcher(model, cluster, net):
    with pytest.raises(ValueError):
        churn_replanner(model, cluster, net)


def test_local_fallback_plan_is_single_exclusive_stage(model, cluster):
    fallback = local_fallback_plan(model, cluster.devices[0])
    assert len(fallback.stages) == 1
    stage = fallback.stages[0]
    assert stage.start == 0 and stage.end == len(model.units)
    assert len(stage.assignments) == 1


# ---------------------------------------------------------------------------
# Planner guard + switcher re-planning
# ---------------------------------------------------------------------------


def test_weighted_assignments_overfull_raises(net):
    tiny = toy_chain(2, 0, input_hw=4, in_channels=3, base_channels=4)
    crowd = pi_cluster(8, 800.0).devices
    with pytest.raises(PlanningError):
        weighted_assignments(tiny, 1, crowd)
    idle_ok = weighted_assignments(tiny, 1, crowd, allow_idle=True)
    assert len(idle_ok) == len(crowd)
    assert any(region.empty for _, region in idle_ok)


def test_switcher_replan_over_survivors(model, cluster, net):
    from repro.adaptive.switcher import build_apico_switcher

    switcher = build_apico_switcher(model, cluster, net)
    survivors = Cluster(cluster.devices[1:])
    fresh = switcher.replan(model, survivors, net)
    for cand in fresh.candidates:
        for stage in cand.plan.stages:
            for device, _ in stage.assignments:
                assert device.name != cluster.devices[0].name


# ---------------------------------------------------------------------------
# Unified public API: get_scheme, simulate, shims, coerce_tracer
# ---------------------------------------------------------------------------


class TestSchemeRegistry:
    def test_known_names(self):
        assert set(available_schemes()) == {"pico", "lw", "efl", "ofl", "iop"}
        for name in available_schemes():
            assert get_scheme(name) is not None

    def test_case_insensitive(self):
        assert type(get_scheme(" PICO ")) is type(get_scheme("pico"))

    def test_unknown_name_lists_available(self):
        with pytest.raises(PlanningError, match="pico"):
            get_scheme("nope")


class TestSimulateDispatch:
    ARRIVALS = (0.0, 0.05, 0.1)

    def test_name_scheme_and_plan_agree(self, model, cluster, plan, net):
        by_name = repro.simulate(
            model, "pico", cluster, network=net, arrivals=self.ARRIVALS
        )
        by_scheme = repro.simulate(
            model, PicoScheme(), cluster, network=net,
            arrivals=self.ARRIVALS,
        )
        by_plan = repro.simulate(
            model, plan, network=net, arrivals=self.ARRIVALS
        )
        assert by_name.makespan == pytest.approx(by_scheme.makespan)
        assert by_name.makespan == pytest.approx(by_plan.makespan)
        assert by_name.completed == len(self.ARRIVALS)

    def test_requires_arrivals(self, model, cluster):
        with pytest.raises(ValueError, match="arrivals"):
            repro.simulate(model, "pico", cluster)

    def test_scheme_needs_cluster(self, model):
        with pytest.raises(ValueError):
            repro.simulate(model, "pico", arrivals=self.ARRIVALS)

    def test_bare_plan_rejects_crashes(self, model, plan, net):
        faults = FaultSchedule().crash("pi0", at_frame=1)
        with pytest.raises(ValueError):
            repro.simulate(
                model, plan, network=net, arrivals=self.ARRIVALS,
                faults=faults,
            )

    def test_switcher_rejects_faults(self, model, cluster, net):
        from repro.adaptive.switcher import build_apico_switcher

        switcher = build_apico_switcher(model, cluster, net)
        faults = FaultSchedule().crash("pi0", at_frame=1)
        with pytest.raises(ValueError):
            repro.simulate(
                model, switcher, cluster, network=net,
                arrivals=self.ARRIVALS, faults=faults,
            )

    def test_rejects_unknown_target(self, model, cluster):
        with pytest.raises(TypeError):
            repro.simulate(model, 42, cluster, arrivals=self.ARRIVALS)

    def test_churn_emits_recovery_events(self, model, cluster, net):
        faults = FaultSchedule().crash(
            cluster.devices[0].name, at_frame=1
        )
        result = repro.simulate(
            model, "pico", cluster, network=net,
            arrivals=(0.0, 0.2, 0.4, 0.6), faults=faults, trace=True,
        )
        kinds = [e.kind for e in result.trace if e.kind in RECOVERY_KINDS]
        assert "device_dead" in kinds
        assert "replan" in kinds or "degraded" in kinds
        assert result.completed == 4


class TestShimsRemoved:
    """The 1.x ``simulate_plan``/``simulate_adaptive`` deprecation
    shims were removed in 2.0 (use :func:`repro.simulate`); the
    module-level originals in :mod:`repro.cluster.simulator` remain
    the internal API."""

    ARRIVALS = (0.0, 0.05, 0.1)

    def test_shims_gone_from_package(self):
        assert not hasattr(repro, "simulate_plan")
        assert not hasattr(repro, "simulate_adaptive")
        assert "simulate_plan" not in repro.__all__
        assert "simulate_adaptive" not in repro.__all__

    def test_simulate_matches_module_function(self, model, plan, net):
        unified = repro.simulate(
            model, plan, network=net, arrivals=self.ARRIVALS
        )
        real = real_simulate_plan(model, plan, net, self.ARRIVALS)
        assert unified.makespan == pytest.approx(real.makespan)

    def test_module_functions_do_not_warn(self, model, plan, net):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            real_simulate_plan(model, plan, net, self.ARRIVALS)
            real_simulate_adaptive  # still importable internal API


class TestCoerceTracer:
    def test_contract(self):
        assert coerce_tracer(None) is None
        assert coerce_tracer(False) is None
        assert isinstance(coerce_tracer(True), Tracer)
        tracer = Tracer()
        assert coerce_tracer(tracer) is tracer
        with pytest.raises(TypeError):
            coerce_tracer("yes")


def test_public_all_exports_fault_api():
    for name in ("RuntimeConfig", "FaultSchedule", "simulate",
                 "get_scheme", "available_schemes", "churn_replanner"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None


# ---------------------------------------------------------------------------
# Faults under serving load: a crash with >= 2 frames in flight
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def load_frames(model):
    rng = np.random.default_rng(21)
    return [
        rng.standard_normal(model.input_shape).astype(np.float32)
        for _ in range(4)
    ]


@pytest.fixture(scope="module")
def load_baseline(model, program, weights, load_frames):
    with PipelineSession(
        program, InProcTransport(Engine(model, weights))
    ) as session:
        return session.run_batch(load_frames)


class TestFaultsUnderLoad:
    """The PR-4 recovery ladder must hold with the pipeline full.

    All four frames are submitted at t=0 with a queue deep enough to
    hold them, so when the victim device dies at frame 1 there are
    frames ahead of it, behind it, and (on the threaded backend)
    genuinely concurrent with it.  Every admitted frame must complete
    bit-exactly (migrate keeps tile geometry) or be reported — never
    silently lost.
    """

    def _serve_with_faults(self, model, program, weights, net, faults,
                           backend, load_frames, config=None,
                           replanner=None):
        engine = Engine(model, weights)
        if backend == "inproc":
            transport = InProcTransport(engine, faults=faults)
        else:
            transport = SimTransport(engine, net, faults=faults)
        server = PipelineServer(
            program, transport,
            config or ServerConfig(queue_capacity=8, policy="block"),
            tracer=True, runtime_config=RuntimeConfig(),
            replanner=replanner,
        )
        try:
            return server.serve(load_frames, arrivals=[0.0] * len(load_frames))
        finally:
            server.close()

    def _assert_no_silent_loss(self, result, n_submitted):
        assert result.submitted == n_submitted
        accounted = (
            len(result.completed) + len(result.shed) + len(result.failed)
        )
        assert accounted == n_submitted
        assert sorted(r.frame for r in result.records) == list(
            range(n_submitted)
        )

    @pytest.mark.parametrize("backend", ["inproc", "sim"])
    def test_crash_with_frames_in_flight_bit_exact(
        self, model, program, weights, net, load_frames, load_baseline,
        backend,
    ):
        victim = program.stages[0].tasks[0].device_name
        faults = FaultSchedule().crash(victim, at_frame=1)
        result = self._serve_with_faults(
            model, program, weights, net, faults, backend, load_frames
        )
        self._assert_no_silent_loss(result, len(load_frames))
        assert not result.failed and not result.shed
        for i, want in enumerate(load_baseline):
            assert np.array_equal(result.outputs[i], want), (
                f"frame {i} corrupted by in-flight crash on {backend}"
            )
        recovery = _recovery(result.trace)
        assert "device_dead" in recovery and "frame_replayed" in recovery

    def test_crash_while_shedding_keeps_accounting(
        self, model, program, weights, net, load_frames, load_baseline
    ):
        victim = program.stages[0].tasks[0].device_name
        faults = FaultSchedule().crash(victim, at_frame=1)
        config = ServerConfig(queue_capacity=2, policy="shed")
        result = self._serve_with_faults(
            model, program, weights, net, faults, "sim", load_frames,
            config=config,
        )
        self._assert_no_silent_loss(result, len(load_frames))
        assert result.shed, "a 2-deep queue with 4 frames at t=0 must shed"
        assert not result.failed
        for record in result.completed:
            assert np.array_equal(
                result.outputs[record.frame], load_baseline[record.frame]
            )

    def test_stage_wipeout_under_load_replays_on_fresh_plan(
        self, model, program, weights, net, cluster, load_frames,
        load_baseline,
    ):
        """Threaded drain-time recovery: every stage-0 device dies with
        the pipeline full; a churn replanner repairs the plan and the
        lost frames are replayed from their original inputs."""
        stage0 = [t.device_name for t in program.stages[0].tasks]
        faults = FaultSchedule()
        for name in stage0:
            faults = faults.crash(name, at_frame=1)
        replanner = churn_replanner(model, cluster, net, scheme=PicoScheme())
        result = self._serve_with_faults(
            model, program, weights, net, faults, "inproc", load_frames,
            replanner=replanner,
        )
        self._assert_no_silent_loss(result, len(load_frames))
        assert not result.failed and not result.shed
        recovery = _recovery(result.trace)
        assert recovery.count("device_dead") == len(stage0)
        assert "replan" in recovery or "degraded" in recovery
        assert any(r.replayed for r in result.completed)
        # re-planned geometry differs, so float-close rather than bit-equal
        for i, want in enumerate(load_baseline):
            assert np.allclose(result.outputs[i], want, atol=1e-4)

    def test_shm_worker_crash_recovers_and_unlinks(
        self, model, plan, weights, load_frames, load_baseline,
    ):
        """A real forked worker dies mid-batch over the shared-memory
        transport: the ladder repartitions onto survivors, replays the
        lost frame, and close() still unlinks every ring segment (the
        conftest guard fails the test on any leak)."""
        from repro.runtime.coordinator import DistributedPipeline

        victim = plan.stages[0].assignments[1][0].name
        with DistributedPipeline(
            model, plan, weights=weights, transport="shm",
            recover=True, fail_after={victim: 1},
        ) as pipe:
            outs, stats = pipe.run_batch(load_frames)
        assert stats.recoveries >= 1
        # Survivor rebalance changes tile geometry, so float-close.
        for i, want in enumerate(load_baseline):
            assert np.allclose(outs[i], want, atol=1e-4), (
                f"frame {i} corrupted by shm worker crash"
            )
