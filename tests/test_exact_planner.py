"""Regression properties of the branch-and-bound exact planner.

The three analytic anchors (mirrored by the ``repro.bench.exact`` gates
on the committed ``BENCH_exact.json``):

* **homogeneous equality** — with all capacities equal the canonical
  stage realization is Algorithm 1's equal split, the two search spaces
  coincide, and the exact period must *equal* the DP period;
* **greedy dominance** — on heterogeneous mixes with pairwise-distinct
  capacities the greedy plan is the search's incumbent under the same
  canonical realization, so the exact period is always ``<=`` greedy;
* **degenerate pruning** — ``period_bound=0.0`` prunes every node and
  the planner must return the incumbent untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.device import heterogeneous_cluster
from repro.core.dp_planner import plan_homogeneous
from repro.core.exact import (
    MAX_EXACT_DEVICES,
    ExactScheme,
    plan_exact,
    realize_exact,
)
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.core import InProcTransport, PipelineSession
from repro.schemes import PlanningError
from repro.schemes.pico import PicoScheme

NETWORK = NetworkModel.from_mbps(50.0)

#: Heterogeneous mixes with pairwise-distinct capacities: Algorithm 2's
#: strongest-first realization of any stage subset is then canonical,
#: so "exact <= greedy" compares identical plan realizations.
HET_MIXES = (
    [1500.0, 900.0, 600.0],
    [1200.0, 1000.0, 800.0, 600.0],
    [1500.0, 1200.0, 900.0, 700.0, 500.0],
)


@pytest.fixture(scope="module")
def model():
    return toy_chain(4, 1, input_hw=24, in_channels=3, base_channels=8)


@pytest.mark.parametrize("n_devices", [2, 3, 4])
def test_exact_equals_dp_on_homogeneous_cluster(model, n_devices):
    cluster = heterogeneous_cluster([1000.0] * n_devices)
    homo = plan_homogeneous(model, cluster, NETWORK)
    assert homo is not None
    exact = plan_exact(model, cluster, NETWORK)
    assert exact.period == homo.period
    assert exact.gap == 0.0


@pytest.mark.parametrize("freqs", HET_MIXES, ids=["het3", "het4", "het5"])
def test_exact_never_worse_than_greedy(model, freqs):
    cluster = heterogeneous_cluster(freqs)
    greedy = plan_cost(
        model, PicoScheme().plan(model, cluster, NETWORK), NETWORK
    )
    exact = plan_exact(model, cluster, NETWORK)
    assert exact.period <= greedy.period
    assert exact.incumbent_period == greedy.period
    assert exact.gap >= 0.0


@pytest.mark.parametrize("freqs", HET_MIXES, ids=["het3", "het4", "het5"])
def test_zero_period_bound_returns_incumbent(model, freqs):
    """Pruning everything must reproduce the greedy incumbent exactly —
    the search can only ever improve on it."""
    cluster = heterogeneous_cluster(freqs)
    bounded = plan_exact(model, cluster, NETWORK, period_bound=0.0)
    assert not bounded.improved
    assert bounded.period == bounded.incumbent_period
    greedy = plan_cost(
        model, PicoScheme().plan(model, cluster, NETWORK), NETWORK
    )
    assert bounded.period == greedy.period
    # The incumbent stages mirror the greedy plan's segments.
    greedy_plan = PicoScheme().plan(model, cluster, NETWORK)
    assert [(s.start, s.end) for s in bounded.stages] == [
        (s.start, s.end) for s in greedy_plan.stages
    ]


@pytest.mark.parametrize("freqs", HET_MIXES, ids=["het3", "het4", "het5"])
def test_realized_plan_cost_reproduces_search_period(model, freqs):
    cluster = heterogeneous_cluster(freqs)
    exact = plan_exact(model, cluster, NETWORK)
    realized = plan_cost(model, realize_exact(model, exact), NETWORK)
    assert realized.period == exact.period
    assert realized.latency == exact.latency


def test_search_statistics_are_consistent(model):
    cluster = heterogeneous_cluster(HET_MIXES[1])
    exact = plan_exact(model, cluster, NETWORK)
    assert exact.nodes > 0
    assert 0 <= exact.pruned <= exact.nodes
    assert exact.n_stages == len(exact.stages)
    # Stages tile the unit chain and use disjoint devices.
    assert exact.stages[0].start == 0
    assert exact.stages[-1].end == model.n_units
    names = [d.name for s in exact.stages for d in s.devices]
    assert len(names) == len(set(names))
    for prev, nxt in zip(exact.stages, exact.stages[1:]):
        assert prev.end == nxt.start


def test_exact_rejects_large_clusters(model):
    cluster = heterogeneous_cluster(
        [600.0 + 100.0 * i for i in range(MAX_EXACT_DEVICES + 1)]
    )
    with pytest.raises(PlanningError):
        plan_exact(model, cluster, NETWORK)
    # But an explicit override accepts it.
    plan_exact(
        model, cluster, NETWORK, period_bound=0.0,
        max_devices=MAX_EXACT_DEVICES + 1,
    )


def test_exact_scheme_plan_runs_and_matches_engine(model):
    """The --planner exact path end-to-end: the realized plan compiles
    and serves a frame bit-identical to the plain engine forward."""
    cluster = heterogeneous_cluster(HET_MIXES[0])
    plan = ExactScheme().plan(model, cluster, NETWORK)
    weights = init_weights(model, seed=0)
    engine = Engine(model, weights)
    rng = np.random.default_rng(11)
    frame = rng.standard_normal(model.input_shape).astype(np.float32)
    transport = InProcTransport(engine)
    session = PipelineSession.from_plan(model, plan, transport)
    try:
        out = session.run_frame(frame)
    finally:
        transport.close()
    assert np.array_equal(out, engine.forward_features(frame))
