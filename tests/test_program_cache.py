"""SegmentProgram compile cache: identity hits, statistics, clearing,
and equality with the uncached compilers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.toy import toy_chain
from repro.nn import tiles
from repro.partition.regions import Region


@pytest.fixture(autouse=True)
def fresh_cache():
    tiles.clear_program_cache()
    yield
    tiles.clear_program_cache()


@pytest.fixture
def model():
    return toy_chain(4, 1, input_hw=32, in_channels=2)


def _region(model):
    _, h, w = model.final_shape
    return Region.from_bounds(0, h // 2, 0, w)


class TestSegmentCache:
    def test_returns_identical_object(self, model):
        region = _region(model)
        first = tiles.compile_segment_cached(model, 0, model.n_units, region)
        second = tiles.compile_segment_cached(model, 0, model.n_units, region)
        assert second is first

    def test_equal_key_built_fresh_still_hits(self, model):
        """Keys are structural: a region built from the same bounds (not
        the same object) must hit, as must an equal model spec."""
        first = tiles.compile_segment_cached(model, 0, 2, _region(model))
        info0 = tiles.program_cache_info()["segment"]
        again = tiles.compile_segment_cached(
            toy_chain(4, 1, input_hw=32, in_channels=2), 0, 2, _region(model)
        )
        info1 = tiles.program_cache_info()["segment"]
        assert again is first
        assert info1.hits == info0.hits + 1
        assert info1.misses == info0.misses

    def test_matches_uncached_compiler(self, model):
        region = _region(model)
        cached = tiles.compile_segment_cached(model, 0, model.n_units, region)
        uncached = tiles.compile_segment(model, 0, model.n_units, region)
        assert cached.input_region == uncached.input_region
        assert len(cached.units) == len(uncached.units)

    def test_distinct_keys_miss(self, model):
        _, h, w = model.final_shape
        tiles.compile_segment_cached(model, 0, 2, _region(model))
        tiles.compile_segment_cached(
            model, 0, 2, Region.from_bounds(0, max(1, h // 4), 0, w)
        )
        info = tiles.program_cache_info()["segment"]
        assert info.misses == 2

    def test_clear(self, model):
        region = _region(model)
        first = tiles.compile_segment_cached(model, 0, 2, region)
        tiles.clear_program_cache()
        info = tiles.program_cache_info()["segment"]
        assert info.currsize == 0
        second = tiles.compile_segment_cached(model, 0, 2, region)
        assert second is not first


class TestBlockPathCache:
    def test_block_paths_cached(self):
        from tests.test_branch_runtime import inception_like_model

        model = inception_like_model()
        first = tiles.compile_block_paths_cached(model, 1, (0, 2))
        # list input normalises to the same tuple key
        second = tiles.compile_block_paths_cached(model, 1, [0, 2])
        assert second is first
        info = tiles.program_cache_info()["block_paths"]
        assert info.hits >= 1 and info.misses == 1


class TestExecutionThroughCache:
    def test_cached_program_runs_exact(self, model):
        from repro.nn.executor import Engine

        engine = Engine(model, seed=0)
        x = (
            np.random.default_rng(0)
            .standard_normal(model.input_shape)
            .astype(np.float32)
        )
        full = engine.forward_features(x)
        region = _region(model)
        program = tiles.compile_segment_cached(model, 0, model.n_units, region)
        tile = tiles.extract_tile(x, program.input_region)
        out = tiles.run_segment(engine, program, tile)
        np.testing.assert_array_equal(
            out, full[:, region.rows.start : region.rows.end]
        )
