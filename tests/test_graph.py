"""Tests for model graphs (units, blocks, shape inference)."""

from __future__ import annotations

import pytest

from repro.models.graph import BlockUnit, LayerUnit, Model, chain_model
from repro.models.layers import ConvSpec, DenseSpec, conv1x1, conv3x3, maxpool2
from repro.models.resnet import basic_block


class TestLayerUnit:
    def test_delegation(self):
        unit = LayerUnit(conv3x3("c", 3, 16))
        assert unit.name == "c"
        assert unit.kind == "conv"
        assert unit.in_channels == 3
        assert unit.out_channels(3) == 16
        assert unit.out_spatial((10, 10)) == (10, 10)
        assert unit.total_stride(3, (10, 10)) == (1, 1)
        assert unit.paths() == ((unit.layer,),)
        assert unit.merge is None


class TestBlockUnit:
    def test_residual_identity(self):
        block = basic_block("b", 16, 16)
        assert block.in_channels == 16
        assert block.out_channels(16) == 16
        assert block.out_spatial((8, 8)) == (8, 8)
        assert block.total_stride(16, (8, 8)) == (1, 1)

    def test_residual_downsample(self):
        block = basic_block("b", 16, 32, stride=2)
        assert block.out_channels(16) == 32
        assert block.out_spatial((8, 8)) == (4, 4)
        assert block.total_stride(16, (8, 8)) == (2, 2)

    def test_concat_channels_sum(self):
        block = BlockUnit(
            "inc",
            ((conv1x1("a", 8, 4),), (conv3x3("b", 8, 6),)),
            merge="concat",
        )
        assert block.out_channels(8) == 10

    def test_add_channel_mismatch_rejected(self):
        block = BlockUnit(
            "bad",
            ((conv1x1("a", 8, 4),), (conv1x1("b", 8, 6),)),
            merge="add",
        )
        with pytest.raises(ValueError):
            block.out_channels(8)

    def test_spatial_mismatch_rejected(self):
        block = BlockUnit(
            "bad",
            (
                (conv3x3("a", 8, 8),),
                (ConvSpec("b", 8, 8, kernel_size=3, stride=2, padding=1),),
            ),
            merge="add",
        )
        with pytest.raises(ValueError):
            block.out_spatial((8, 8))

    def test_all_identity_rejected(self):
        with pytest.raises(ValueError):
            BlockUnit("bad", ((), ()), merge="add")

    def test_unknown_merge_rejected(self):
        with pytest.raises(ValueError):
            BlockUnit("bad", ((conv1x1("a", 4, 4),),), merge="mul")

    def test_unknown_post_activation_rejected(self):
        with pytest.raises(ValueError):
            BlockUnit(
                "bad", ((conv1x1("a", 4, 4),),), merge="add", post_activation="swish"
            )


class TestModel:
    def test_shape_inference(self):
        model = chain_model(
            "m", (3, 16, 16), [conv3x3("c1", 3, 8), maxpool2("p", 8), conv3x3("c2", 8, 4)]
        )
        assert model.in_shape(0) == (3, 16, 16)
        assert model.out_shape(0) == (8, 16, 16)
        assert model.out_shape(1) == (8, 8, 8)
        assert model.final_shape == (4, 8, 8)
        assert model.n_units == 3

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chain_model("m", (3, 16, 16), [conv3x3("c1", 4, 8)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Model("m", (3, 8, 8), ())

    def test_head_feature_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chain_model(
                "m", (3, 8, 8), [conv3x3("c", 3, 4)],
                head=[DenseSpec("fc", 100, 10)],
            )

    def test_head_chain_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chain_model(
                "m", (3, 8, 8), [conv3x3("c", 3, 4)],
                head=[DenseSpec("fc1", 4 * 64, 10), DenseSpec("fc2", 20, 5)],
            )

    def test_iter_layers_flattens_blocks(self):
        model = Model(
            "m", (3, 8, 8),
            (LayerUnit(conv3x3("stem", 3, 16)), basic_block("b1", 16, 16)),
        )
        names = [info.layer.name for info in model.iter_layers()]
        assert names == ["stem", "b1.conv1", "b1.conv2"]
        infos = list(model.iter_layers())
        assert infos[0].path_index is None
        assert infos[1].path_index == 0
        assert infos[1].in_shape == (16, 8, 8)

    def test_layer_counts(self):
        model = chain_model(
            "m", (3, 16, 16), [conv3x3("c1", 3, 8), maxpool2("p", 8)]
        )
        assert model.conv_layer_count() == 1
        assert model.pool_layer_count() == 1

    def test_describe_mentions_every_unit(self):
        model = chain_model("m", (3, 8, 8), [conv3x3("c1", 3, 4), maxpool2("p", 4)])
        text = model.describe()
        assert "c1" in text and "p" in text
