"""Engine fast-path behaviour: packed-weight caching, BN folding,
chain arenas and threaded execution, all checked against the reference
configuration on the same weights."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.nn import parallel
from repro.nn.executor import Engine
from repro.nn.weights import init_weights


def _input(model, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(model.input_shape).astype(np.float32)


@pytest.fixture
def serial_pool():
    """Force serial execution for a test, restoring the env default."""
    parallel.set_threads(1)
    yield
    parallel.set_threads(None)


class TestFastVsReference:
    def test_chain_model_bit_exact(self):
        """groups == 1, no BN: the fast path must be bitwise identical,
        and repeat runs (which reuse the ping-pong arenas) must be too."""
        model = toy_chain(6, 2, input_hw=64, in_channels=3)
        weights = init_weights(model, 3)
        ref = Engine(model, weights, fast=False)
        fast = Engine(model, weights, fast=True)
        x = _input(model)
        want = ref.forward_features(x)
        first = fast.forward_features(x)
        np.testing.assert_array_equal(first, want)
        # The first output must survive the second frame's arena reuse.
        second = fast.forward_features(_input(model, seed=9))
        np.testing.assert_array_equal(first, want)
        assert not np.array_equal(second, first)
        np.testing.assert_array_equal(fast.forward_features(x), want)

    def test_vgg16_end_to_end_bit_exact(self):
        model = get_model("vgg16", input_hw=32)
        weights = init_weights(model, 0)
        x = _input(model)
        np.testing.assert_array_equal(
            Engine(model, weights, fast=True).run(x),
            Engine(model, weights, fast=False).run(x),
        )

    def test_unfolded_bn_bit_exact(self):
        """fast=True, fold_bn=False keeps the separate BN pass — the
        conv GEMM is bit-exact, so the whole layer is too."""
        model = get_model("resnet34", input_hw=32)
        weights = init_weights(model, 1)
        x = _input(model)
        np.testing.assert_array_equal(
            Engine(model, weights, fast=True, fold_bn=False).forward_features(x),
            Engine(model, weights, fast=False).forward_features(x),
        )

    def test_folded_bn_within_float32_rounding(self):
        """Folding BN into the packed weight re-associates the per
        channel scale — equal to float32 rounding, not bitwise."""
        model = get_model("resnet34", input_hw=32)
        weights = init_weights(model, 1)
        x = _input(model)
        want = Engine(model, weights, fast=False).forward_features(x)
        got = Engine(model, weights, fast=True).forward_features(x)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_grouped_conv_model_close(self):
        model = get_model("mobilenet_v2", input_hw=32)
        weights = init_weights(model, 2)
        x = _input(model)
        want = Engine(model, weights, fast=False).forward_features(x)
        got = Engine(model, weights, fast=True, fold_bn=False).forward_features(x)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)


class TestThreading:
    def test_threaded_equals_serial(self):
        """Block paths fan out on the pool; merge order is fixed by
        position, so threading must not change a single bit."""
        model = get_model("inception_v3", input_hw=96)
        weights = init_weights(model, 4)
        engine = Engine(model, weights, fast=True)
        x = _input(model)
        try:
            parallel.set_threads(1)
            serial = engine.forward_features(x)
            parallel.set_threads(3)
            threaded = engine.forward_features(x)
        finally:
            parallel.set_threads(None)
        np.testing.assert_array_equal(threaded, serial)

    def test_serial_fallback_used(self, serial_pool):
        assert parallel.get_pool() is None
        assert parallel.configured_threads() == 1


class TestPackedCache:
    def test_cache_populates_lazily_and_refreshes(self):
        model = toy_chain(3, 0, input_hw=16, in_channels=2)
        weights = init_weights(model, 5)
        engine = Engine(model, weights, fast=True)
        assert not engine._packed
        x = _input(model)
        baseline = engine.forward_features(x)
        assert len(engine._packed) == 3
        # Mutating weights without refresh serves stale packed matrices.
        name = model.units[0].layer.name
        engine.weights[name]["weight"] = engine.weights[name]["weight"] * 2.0
        np.testing.assert_array_equal(engine.forward_features(x), baseline)
        engine.refresh_weights()
        assert not engine._packed
        assert not np.array_equal(engine.forward_features(x), baseline)

    def test_partial_weights_pack_on_demand(self):
        """A worker ships only its segment's layers; packing must not
        touch absent entries."""
        model = toy_chain(4, 0, input_hw=16, in_channels=1)
        full = init_weights(model, 6)
        first = model.units[0].layer
        engine = Engine(model, {first.name: full[first.name]}, fast=True)
        ref = Engine(model, full, fast=False)
        x = _input(model)
        np.testing.assert_array_equal(
            engine.run_layer(first, x, engine.spec_pads(first)),
            ref.run_layer(first, x, ref.spec_pads(first)),
        )
        with pytest.raises(KeyError):
            second = model.units[1].layer
            engine.run_layer(second, x, engine.spec_pads(second))
