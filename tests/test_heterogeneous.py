"""Tests for Algorithm 2 (greedy heterogeneous adaptation)."""

from __future__ import annotations

import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.core.dp_planner import plan_homogeneous
from repro.core.heterogeneous import adapt_to_cluster
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain


@pytest.fixture
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture
def model():
    return toy_chain(6, 1, input_hw=32)


def test_segments_preserved(model, net):
    cluster = heterogeneous_cluster([1200, 1000, 800, 600])
    homo = plan_homogeneous(model, cluster, net)
    plan = adapt_to_cluster(model, homo, cluster)
    assert [(s.start, s.end) for s in plan.stages] == [
        (h.start, h.end) for h in homo.stages
    ]
    assert [len(s.assignments) for s in plan.stages] == [
        h.n_devices for h in homo.stages
    ]


def test_each_device_used_at_most_once(model, net):
    cluster = heterogeneous_cluster([1200, 1000, 800, 800, 600, 600])
    homo = plan_homogeneous(model, cluster, net)
    plan = adapt_to_cluster(model, homo, cluster)
    names = [d.name for s in plan.stages for d in s.devices]
    assert len(names) == len(set(names))


def test_partitions_cover_each_stage(model, net):
    cluster = heterogeneous_cluster([1200, 800, 600, 600])
    homo = plan_homogeneous(model, cluster, net)
    plan = adapt_to_cluster(model, homo, cluster)
    for stage in plan.stages:
        _, h, w = model.out_shape(stage.end - 1)
        rows = sorted(
            (a[1].rows for a in stage.assignments), key=lambda iv: iv.start
        )
        pos = 0
        for iv in rows:
            assert iv.start == pos
            pos = iv.end
        assert pos == h


def test_faster_devices_get_bigger_strips(net):
    model = toy_chain(4, 0, input_hw=64)
    cluster = heterogeneous_cluster([1800, 600])
    homo = plan_homogeneous(model, cluster, net)
    plan = adapt_to_cluster(model, homo, cluster)
    for stage in plan.stages:
        if len(stage.assignments) < 2:
            continue
        by_cap = sorted(stage.assignments, key=lambda a: -a[0].capacity)
        assert by_cap[0][1].height >= by_cap[-1][1].height


def test_homogeneous_adaptation_is_identity_cost(net, model):
    """On an already-homogeneous cluster, adaptation must not change
    the analytic period."""
    cluster = pi_cluster(4, 800)
    homo = plan_homogeneous(model, cluster, net)
    plan = adapt_to_cluster(model, homo, cluster)
    cost = plan_cost(model, plan, net)
    assert cost.period == pytest.approx(homo.period, rel=1e-6)


def test_heterogeneous_beats_naive_equal_partition(net):
    """Capacity-weighted strips must beat equal strips on a skewed
    cluster (the point of Algorithm 2)."""
    from repro.core.plan import PipelinePlan, StagePlan
    from repro.partition.regions import Region
    from repro.partition.strips import equal_partition, strip_regions

    model = toy_chain(4, 0, input_hw=64)
    cluster = heterogeneous_cluster([1800, 600])
    homo = plan_homogeneous(model, cluster, net)
    adapted = adapt_to_cluster(model, homo, cluster)
    adapted_cost = plan_cost(model, adapted, net)

    naive_stages = []
    for stage in adapted.stages:
        _, h, w = model.out_shape(stage.end - 1)
        regions = strip_regions(h, w, equal_partition(h, len(stage.assignments)))
        naive_stages.append(
            StagePlan(
                stage.start,
                stage.end,
                tuple((dev, reg) for (dev, _), reg in zip(stage.assignments, regions)),
            )
        )
    naive = PipelinePlan(model.name, tuple(naive_stages), mode=adapted.mode)
    naive_cost = plan_cost(model, naive, net)
    assert adapted_cost.period <= naive_cost.period + 1e-12


def test_too_many_devices_needed_rejected(net, model):
    big = pi_cluster(6, 800)
    small = pi_cluster(2, 800)
    homo = plan_homogeneous(model, big, net)
    if homo.devices_used > 2:
        with pytest.raises(ValueError):
            adapt_to_cluster(model, homo, small)
