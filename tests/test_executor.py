"""Tests for the full-map numpy engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.graph import Model
from repro.models.layers import DenseSpec, conv3x3, maxpool2
from repro.models.graph import LayerUnit
from repro.models.resnet import basic_block
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.weights import init_weights


@pytest.fixture
def chain_engine():
    model = toy_chain(3, 1, input_hw=16, in_channels=3, base_channels=4)
    return Engine(model, seed=0)


class TestEngine:
    def test_forward_shapes(self, chain_engine, rng):
        x = rng.standard_normal(chain_engine.model.input_shape).astype(np.float32)
        out = chain_engine.forward_features(x)
        assert out.shape == chain_engine.model.final_shape

    def test_deterministic(self, chain_engine, rng):
        x = rng.standard_normal(chain_engine.model.input_shape).astype(np.float32)
        a = chain_engine.forward_features(x)
        b = chain_engine.forward_features(x)
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_weights(self, rng):
        model = toy_chain(2, 0, input_hw=8, in_channels=1, base_channels=4)
        x = rng.standard_normal(model.input_shape).astype(np.float32)
        a = Engine(model, seed=7).forward_features(x)
        b = Engine(model, seed=7).forward_features(x)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_weights(self, rng):
        model = toy_chain(2, 0, input_hw=8, in_channels=1, base_channels=4)
        x = rng.standard_normal(model.input_shape).astype(np.float32)
        a = Engine(model, seed=1).forward_features(x)
        b = Engine(model, seed=2).forward_features(x)
        assert not np.allclose(a, b)

    def test_bad_input_shape_rejected(self, chain_engine):
        with pytest.raises(ValueError):
            chain_engine.forward_features(np.zeros((3, 8, 8), dtype=np.float32))

    def test_relu_applied(self, chain_engine, rng):
        x = rng.standard_normal(chain_engine.model.input_shape).astype(np.float32)
        out = chain_engine.forward_features(x)
        assert out.min() >= 0.0  # every layer ends in relu


class TestBlocks:
    def test_residual_add_and_post_relu(self, rng):
        model = Model(
            "m", (4, 8, 8), (basic_block("b", 4, 4),)
        )
        engine = Engine(model, seed=0)
        x = rng.standard_normal((4, 8, 8)).astype(np.float32)
        out = engine.forward_features(x)
        assert out.shape == (4, 8, 8)
        assert out.min() >= 0.0  # post-activation relu

    def test_identity_shortcut_contributes(self, rng):
        """Zeroing the main path must leave the (relu'd) input."""
        model = Model("m", (4, 8, 8), (basic_block("b", 4, 4),))
        weights = init_weights(model, seed=0)
        for name in ("b.conv1", "b.conv2"):
            weights[name]["weight"][:] = 0.0
            weights[name]["gamma"][:] = 0.0
            weights[name]["beta"][:] = 0.0
        engine = Engine(model, weights)
        x = rng.standard_normal((4, 8, 8)).astype(np.float32)
        out = engine.forward_features(x)
        np.testing.assert_allclose(out, np.maximum(x, 0.0), atol=1e-6)

    def test_concat_channel_order(self, rng):
        from repro.models.graph import BlockUnit
        from repro.models.layers import conv1x1

        block = BlockUnit(
            "inc", ((conv1x1("a", 2, 3),), (conv1x1("b", 2, 5),)), merge="concat"
        )
        model = Model("m", (2, 4, 4), (block,))
        engine = Engine(model, seed=0)
        x = rng.standard_normal((2, 4, 4)).astype(np.float32)
        out = engine.forward_features(x)
        assert out.shape == (8, 4, 4)
        # First 3 channels must equal running path a alone.
        a_only = engine.run_layer(block.paths[0][0], x, (0, 0, 0, 0))
        np.testing.assert_allclose(out[:3], a_only, atol=1e-6)


class TestHead:
    def test_head_applied(self, rng):
        model = Model(
            "m",
            (3, 8, 8),
            (LayerUnit(conv3x3("c", 3, 4)), LayerUnit(maxpool2("p", 4))),
            head=(DenseSpec("fc", 4 * 4 * 4, 10, activation="softmax"),),
        )
        engine = Engine(model, seed=0)
        x = rng.standard_normal((3, 8, 8)).astype(np.float32)
        out = engine.run(x)
        assert out.shape == (10,)
        assert np.isclose(out.sum(), 1.0, atol=1e-5)

    def test_headless_run_flattens(self, chain_engine, rng):
        x = rng.standard_normal(chain_engine.model.input_shape).astype(np.float32)
        out = chain_engine.run(x)
        assert out.ndim == 1


class TestZooExecution:
    @pytest.mark.parametrize(
        "name,hw", [("vgg16", 64), ("resnet34", 64)]
    )
    def test_small_resolution_forward(self, name, hw, rng):
        from repro.models.zoo import get_model

        model = get_model(name, input_hw=hw)
        engine = Engine(model, seed=0)
        x = rng.standard_normal(model.input_shape).astype(np.float32)
        out = engine.forward_features(x)
        assert out.shape == model.final_shape


class TestBatchedEngine:
    """Cross-frame ``(C, B, H, W)`` maps through the layer dispatch."""

    def _stacked(self, rng, b=3, hw=16, c=3):
        frames = [
            rng.standard_normal((c, hw, hw)).astype(np.float32)
            for _ in range(b)
        ]
        return frames, np.ascontiguousarray(np.stack(frames, axis=1))

    def test_batched_conv_exact_equals_per_frame(self, chain_engine, rng):
        layer = chain_engine.model.units[0].layer
        frames, stacked = self._stacked(rng)
        ph, pw = layer.padding
        pads = (ph, ph, pw, pw)
        got = chain_engine.run_layer(layer, stacked, pads)
        for b, frame in enumerate(frames):
            single = chain_engine.run_layer(layer, frame, pads)
            np.testing.assert_array_equal(got[:, b], single)

    def test_batch_gemm_tall_is_float_close(self, rng):
        model = toy_chain(3, 1, input_hw=16, in_channels=3, base_channels=4)
        exact = Engine(model, seed=0)
        tall = Engine(model, exact.weights, batch_gemm="tall")
        layer = model.units[0].layer
        frames, stacked = self._stacked(rng)
        pads = (1, 1, 1, 1)
        want = exact.run_layer(layer, stacked, pads)
        got = tall.run_layer(layer, stacked, pads)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_batch_gemm_mode_validation(self):
        model = toy_chain(2, 0, input_hw=8, in_channels=1, base_channels=4)
        with pytest.raises(ValueError, match="batch_gemm"):
            Engine(model, seed=0, batch_gemm="fused")

    def test_batch_gemm_env_default(self, monkeypatch):
        model = toy_chain(2, 0, input_hw=8, in_channels=1, base_channels=4)
        monkeypatch.delenv("REPRO_BATCH_GEMM", raising=False)
        assert Engine(model, seed=0).batch_gemm == "exact"
        monkeypatch.setenv("REPRO_BATCH_GEMM", "tall")
        assert Engine(model, seed=0).batch_gemm == "tall"
