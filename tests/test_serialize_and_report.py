"""Tests for plan serialisation, the report renderer and the shared-medium
cost option."""

from __future__ import annotations

import json

import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.core.plan import plan_cost
from repro.core.serialize import dump_plan, load_plan, plan_from_dict, plan_to_dict
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions
from repro.models.toy import toy_chain
from repro.report import render_plan, render_timeline, stage_schedule
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme


NET = NetworkModel.from_mbps(50.0)


@pytest.fixture
def model():
    return toy_chain(6, 1, input_hw=48, in_channels=3)


@pytest.fixture
def plan(model):
    return PicoScheme().plan(model, heterogeneous_cluster([1200, 800, 600, 600]), NET)


class TestSerialize:
    def test_roundtrip_equality(self, plan):
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_roundtrip_exclusive(self, model):
        excl = OptimalFusedScheme().plan(model, pi_cluster(3, 800), NET)
        assert plan_from_dict(plan_to_dict(excl)) == excl

    def test_json_serialisable(self, plan):
        text = json.dumps(plan_to_dict(plan))
        assert plan_from_dict(json.loads(text)) == plan

    def test_file_roundtrip(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        dump_plan(plan, str(path))
        assert load_plan(str(path)) == plan

    def test_version_checked(self, plan):
        data = plan_to_dict(plan)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            plan_from_dict(data)

    def test_cost_preserved(self, model, plan):
        loaded = plan_from_dict(plan_to_dict(plan))
        assert plan_cost(model, loaded, NET).period == pytest.approx(
            plan_cost(model, plan, NET).period
        )


class TestStageSchedule:
    def test_pipelined_steady_state(self):
        schedule = stage_schedule([1.0, 2.0], n_tasks=3)
        # Stage 1 is the bottleneck: tasks finish 2s apart.
        ends = [end for (_, _, end) in schedule[1]]
        assert ends == pytest.approx([3.0, 5.0, 7.0])
        # Stage 0 starts task k as soon as it is free.
        starts = [start for (_, start, _) in schedule[0]]
        assert starts == pytest.approx([0.0, 1.0, 2.0])

    def test_exclusive_back_to_back(self):
        schedule = stage_schedule([1.0, 2.0], n_tasks=2, mode="exclusive")
        assert schedule[0][1][1] == pytest.approx(3.0)  # task 1 starts after task 0

    def test_invalid_tasks(self):
        with pytest.raises(ValueError):
            stage_schedule([1.0], n_tasks=0)


class TestReport:
    def test_render_plan_mentions_stages_and_period(self, model, plan):
        text = render_plan(model, plan, NET)
        assert "period" in text and "stage" in text
        assert f"{plan.n_stages - 1:>5d}" in text or str(plan.n_stages - 1) in text

    def test_render_timeline_shape(self, model, plan):
        text = render_timeline(model, plan, NET, n_tasks=4, width=60)
        lines = text.splitlines()
        assert len(lines) == plan.n_stages + 1
        # Each task digit appears somewhere.
        body = "\n".join(lines[:-1])
        for digit in "0123":
            assert digit in body

    def test_render_timeline_exclusive_single_row(self, model):
        excl = OptimalFusedScheme().plan(model, pi_cluster(3, 800), NET)
        text = render_timeline(model, excl, NET, n_tasks=3)
        assert len(text.splitlines()) == 2  # one server row + axis


class TestSharedMedium:
    def test_period_accounts_total_comm(self, model, plan):
        base = plan_cost(model, plan, NET)
        shared = plan_cost(model, plan, NET, CostOptions(shared_medium=True))
        total_comm = sum(sc.t_comm for sc in base.stage_costs)
        assert shared.period == pytest.approx(max(base.period, total_comm))
        assert shared.period >= base.period

    def test_exclusive_unchanged(self, model):
        excl = OptimalFusedScheme().plan(model, pi_cluster(3, 800), NET)
        base = plan_cost(model, excl, NET)
        shared = plan_cost(model, excl, NET, CostOptions(shared_medium=True))
        assert shared.period == pytest.approx(base.period)
