"""Tests for weight initialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.graph import Model
from repro.models.layers import ConvSpec, DenseSpec, conv3x3
from repro.models.resnet import basic_block
from repro.models.toy import toy_chain
from repro.models.graph import chain_model
from repro.nn.weights import init_weights


def test_conv_params_present():
    model = toy_chain(2, 1, input_hw=16)
    weights = init_weights(model)
    assert set(weights) == {"conv1", "conv2"}  # pools have no params
    assert weights["conv1"]["weight"].shape == (16, 1, 3, 3)
    assert weights["conv1"]["bias"].shape == (16,)


def test_bn_params_when_requested():
    model = chain_model(
        "m", (3, 8, 8),
        [ConvSpec("c", 3, 4, kernel_size=3, batch_norm=True, bias=False)],
    )
    params = init_weights(model)["c"]
    assert {"weight", "gamma", "beta", "mean", "var"} <= set(params)
    assert "bias" not in params
    assert np.all(params["var"] > 0)


def test_block_internals_initialised():
    model = Model("m", (4, 8, 8), (basic_block("b", 4, 8, stride=2),))
    weights = init_weights(model)
    assert {"b.conv1", "b.conv2", "b.downsample"} <= set(weights)


def test_head_initialised():
    model = chain_model(
        "m", (3, 8, 8), [conv3x3("c", 3, 4)],
        head=[DenseSpec("fc", 4 * 64, 10)],
    )
    weights = init_weights(model)
    assert weights["fc"]["weight"].shape == (10, 256)


def test_seed_reproducible():
    model = toy_chain(2, 0, input_hw=8)
    a = init_weights(model, seed=3)
    b = init_weights(model, seed=3)
    np.testing.assert_array_equal(a["conv1"]["weight"], b["conv1"]["weight"])


def test_duplicate_layer_names_rejected():
    model = chain_model(
        "m", (3, 8, 8), [conv3x3("dup", 3, 4), conv3x3("dup", 4, 4)]
    )
    with pytest.raises(ValueError):
        init_weights(model)


def test_float32_dtype():
    weights = init_weights(toy_chain(1, 0, input_hw=8))
    assert weights["conv1"]["weight"].dtype == np.float32
