"""Tests for plan datatypes and plan costing (paper Eq. 10–11)."""

from __future__ import annotations

import pytest

from repro.cluster.device import Device
from repro.core.plan import PipelinePlan, StagePlan, plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.partition.regions import Region


@pytest.fixture
def model():
    return toy_chain(4, 0, input_hw=16, in_channels=3, base_channels=8)


@pytest.fixture
def net():
    return NetworkModel.from_mbps(100.0)


def full_region(model, end):
    _, h, w = model.out_shape(end - 1)
    return Region.full(h, w)


def two_stage_plan(model, mode="pipelined"):
    d1, d2 = Device("a", 1e6), Device("b", 1e6)
    return PipelinePlan(
        model.name,
        (
            StagePlan(0, 2, ((d1, full_region(model, 2)),)),
            StagePlan(2, 4, ((d2, full_region(model, 4)),)),
        ),
        mode=mode,
    )


class TestStagePlan:
    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            StagePlan(2, 2, ((Device("d", 1.0), Region.full(2, 2)),))

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            StagePlan(0, 1, ())

    def test_accessors(self, model):
        stage = StagePlan(0, 2, ((Device("d", 1.0), full_region(model, 2)),))
        assert stage.n_units == 2
        assert [d.name for d in stage.devices] == ["d"]


class TestPipelinePlan:
    def test_gap_rejected(self, model):
        d = Device("d", 1.0)
        with pytest.raises(ValueError):
            PipelinePlan(
                model.name,
                (
                    StagePlan(0, 1, ((d, full_region(model, 1)),)),
                    StagePlan(2, 4, ((d, full_region(model, 4)),)),
                ),
            )

    def test_must_start_at_zero(self, model):
        d = Device("d", 1.0)
        with pytest.raises(ValueError):
            PipelinePlan(
                model.name, (StagePlan(1, 4, ((d, full_region(model, 4)),)),)
            )

    def test_pipelined_device_reuse_rejected(self, model):
        d = Device("d", 1.0)
        with pytest.raises(ValueError):
            PipelinePlan(
                model.name,
                (
                    StagePlan(0, 2, ((d, full_region(model, 2)),)),
                    StagePlan(2, 4, ((d, full_region(model, 4)),)),
                ),
                mode="pipelined",
            )

    def test_exclusive_device_reuse_allowed(self, model):
        d = Device("d", 1.0)
        plan = PipelinePlan(
            model.name,
            (
                StagePlan(0, 2, ((d, full_region(model, 2)),)),
                StagePlan(2, 4, ((d, full_region(model, 4)),)),
            ),
            mode="exclusive",
        )
        assert plan.n_stages == 2

    def test_unknown_mode_rejected(self, model):
        d = Device("d", 1.0)
        with pytest.raises(ValueError):
            PipelinePlan(
                model.name,
                (StagePlan(0, 4, ((d, full_region(model, 4)),)),),
                mode="magic",
            )

    def test_all_devices_dedup(self, model):
        plan = two_stage_plan(model, mode="exclusive")
        assert len(plan.all_devices) == 2

    def test_describe(self, model):
        text = two_stage_plan(model).describe()
        assert "stage 0" in text and "stage 1" in text


class TestPlanCost:
    def test_pipelined_period_is_max(self, model, net):
        plan = two_stage_plan(model, "pipelined")
        cost = plan_cost(model, plan, net)
        totals = [sc.total for sc in cost.stage_costs]
        assert cost.period == pytest.approx(max(totals))
        assert cost.latency == pytest.approx(sum(totals))
        assert cost.latency > cost.period

    def test_exclusive_period_is_sum(self, model, net):
        plan = two_stage_plan(model, "exclusive")
        cost = plan_cost(model, plan, net)
        assert cost.period == pytest.approx(cost.latency)

    def test_throughput_inverse_period(self, model, net):
        plan = two_stage_plan(model)
        cost = plan_cost(model, plan, net)
        assert cost.throughput == pytest.approx(1.0 / cost.period)

    def test_incomplete_plan_rejected(self, model, net):
        d = Device("d", 1.0)
        plan = PipelinePlan(
            model.name, (StagePlan(0, 2, ((d, full_region(model, 2)),)),)
        )
        with pytest.raises(ValueError):
            plan_cost(model, plan, net)
