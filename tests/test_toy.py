"""Tests for configurable toy chains."""

from __future__ import annotations

import pytest

from repro.models.toy import fig13_model, toy_chain


def test_conv_count():
    assert toy_chain(5).conv_layer_count() == 5


def test_pool_count_and_spread():
    model = toy_chain(8, 2, input_hw=64)
    assert model.pool_layer_count() == 2
    kinds = [u.kind for u in model.units]
    # Pools are interior, not stacked at the ends.
    assert kinds[0] == "conv" and kinds[-1] == "conv"


def test_channels_double_after_pool():
    model = toy_chain(4, 1, input_hw=32, base_channels=16)
    channels = [s[0] for s in model.shapes]
    assert max(channels) == 32


def test_input_too_small_rejected():
    with pytest.raises(ValueError):
        toy_chain(4, 4, input_hw=16)


def test_zero_convs_rejected():
    with pytest.raises(ValueError):
        toy_chain(0)


def test_negative_pools_rejected():
    with pytest.raises(ValueError):
        toy_chain(4, -1)


def test_custom_name():
    assert toy_chain(3, name="bob").name == "bob"
    assert toy_chain(3, 1).name == "toy_c3p1"


def test_fig13_matches_paper():
    model = fig13_model()
    assert (model.conv_layer_count(), model.pool_layer_count()) == (8, 2)
    assert model.input_shape == (1, 64, 64)
