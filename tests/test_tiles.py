"""Region-restricted execution must be bit-exact with full-map slicing.

This is the correctness heart of the whole system: a pipeline stage
executing its tile program must produce exactly the values the full
model would, or distributed inference would silently change outputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.graph import BlockUnit, Model, chain_model
from repro.models.layers import ConvSpec, PoolSpec, conv1x1, conv3x3, maxpool2
from repro.models.resnet import basic_block
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.tiles import compile_segment, extract_tile, run_segment
from repro.partition.regions import Region
from repro.partition.strips import equal_partition


def unit_outputs(engine, x):
    outs = [x]
    for unit in engine.model.units:
        outs.append(engine.run_unit(unit, outs[-1]))
    return outs


def assert_tiles_match(model, start, end, parts, seed=0, atol=1e-4):
    engine = Engine(model, seed=seed)
    rng = np.random.default_rng(seed + 99)
    x = rng.standard_normal(model.input_shape).astype(np.float32)
    outs = unit_outputs(engine, x)
    _, h, w = model.out_shape(end - 1)
    for iv in equal_partition(h, parts):
        if iv.empty:
            continue
        region = Region.from_bounds(iv.start, iv.end, 0, w)
        program = compile_segment(model, start, end, region)
        tile = extract_tile(outs[start], program.input_region)
        got = run_segment(engine, program, tile)
        want = extract_tile(outs[end], region)
        np.testing.assert_allclose(got, want, atol=atol, rtol=1e-4)


class TestChainSegments:
    def test_whole_model_two_strips(self, small_model):
        assert_tiles_match(small_model, 0, small_model.n_units, 2)

    def test_whole_model_three_strips(self, small_model):
        assert_tiles_match(small_model, 0, small_model.n_units, 3)

    def test_prefix_segment(self, medium_model):
        assert_tiles_match(medium_model, 0, 3, 2)

    def test_suffix_segment(self, medium_model):
        n = medium_model.n_units
        assert_tiles_match(medium_model, n - 3, n, 2)

    def test_middle_segment(self, medium_model):
        assert_tiles_match(medium_model, 2, 5, 3)

    def test_more_strips_than_rows(self):
        model = toy_chain(2, 2, input_hw=16, in_channels=1)
        # Final map is 4x4; 6 strips leaves some devices empty.
        assert_tiles_match(model, 0, model.n_units, 6)

    def test_single_row_strips(self, small_model):
        _, h, _ = small_model.final_shape
        assert_tiles_match(small_model, 0, small_model.n_units, h)


class TestBlockSegments:
    def test_residual_identity_block(self):
        model = Model(
            "m", (4, 16, 16),
            (basic_block("b1", 4, 4), basic_block("b2", 4, 4)),
        )
        assert_tiles_match(model, 0, 2, 3)

    def test_residual_downsample_block(self):
        model = Model(
            "m", (4, 16, 16),
            (basic_block("b1", 4, 8, stride=2), basic_block("b2", 8, 8)),
        )
        assert_tiles_match(model, 0, 2, 2)

    def test_inception_style_block(self):
        paths = (
            (conv1x1("a", 4, 2),),
            (ConvSpec("b", 4, 3, kernel_size=5, padding=2),),
            (
                PoolSpec("pool", 4, kernel_size=3, stride=1, padding=1, kind_="avg"),
                conv1x1("proj", 4, 2),
            ),
        )
        model = Model("m", (4, 12, 12), (BlockUnit("inc", paths, merge="concat"),))
        assert_tiles_match(model, 0, 1, 3)

    def test_reduction_style_block(self):
        paths = (
            (ConvSpec("a", 4, 4, kernel_size=3, stride=2),),
            (PoolSpec("pool", 4, kernel_size=3, stride=2),),
        )
        model = Model("m", (4, 13, 13), (BlockUnit("red", paths, merge="concat"),))
        assert_tiles_match(model, 0, 1, 2)

    def test_non_square_kernels(self):
        layers = [
            ConvSpec("h", 3, 4, kernel_size=(1, 7), padding=(0, 3)),
            ConvSpec("v", 4, 4, kernel_size=(7, 1), padding=(3, 0)),
        ]
        model = chain_model("m", (3, 14, 14), layers)
        assert_tiles_match(model, 0, 2, 2)


class TestProgramValidation:
    def test_bad_segment_rejected(self, small_model):
        with pytest.raises(ValueError):
            compile_segment(small_model, 2, 2, Region.full(4, 4))

    def test_empty_region_rejected(self, small_model):
        with pytest.raises(ValueError):
            compile_segment(small_model, 0, 1, Region.from_bounds(2, 2, 0, 4))

    def test_wrong_tile_shape_rejected(self, small_model):
        engine = Engine(small_model, seed=0)
        _, h, w = small_model.out_shape(0)
        program = compile_segment(
            small_model, 0, 1, Region.from_bounds(0, 2, 0, w)
        )
        with pytest.raises(ValueError):
            run_segment(engine, program, np.zeros((3, 1, 1), dtype=np.float32))


@st.composite
def random_chain_config(draw):
    """A random small chain + segment + strip split."""
    n_layers = draw(st.integers(1, 4))
    layers = []
    cin = draw(st.integers(1, 3))
    first_cin = cin
    hw = draw(st.integers(10, 20))
    cur_hw = hw
    for i in range(n_layers):
        kind = draw(st.sampled_from(["conv", "pool"]))
        if kind == "pool" and cur_hw >= 4:
            layers.append(maxpool2(f"p{i}", cin))
            cur_hw //= 2
        else:
            k = draw(st.sampled_from([1, 3, 5]))
            cout = draw(st.integers(1, 4))
            layers.append(
                ConvSpec(f"c{i}", cin, cout, kernel_size=k, padding=k // 2)
            )
            cin = cout
    parts = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 50))
    return first_cin, hw, layers, parts, seed


class TestPropertyRandomChains:
    @given(config=random_chain_config())
    @settings(max_examples=25, deadline=None)
    def test_random_chain_tiles_bit_exact(self, config):
        cin, hw, layers, parts, seed = config
        model = chain_model("rand", (cin, hw, hw), layers)
        assert_tiles_match(model, 0, model.n_units, parts, seed=seed)
