"""Integration tests: branch-parallel stages on the real runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.device import Device, pi_cluster
from repro.core.plan import PipelinePlan, StagePlan
from repro.models.graph import BlockUnit, LayerUnit, Model
from repro.models.layers import ConvSpec, conv1x1, conv3x3
from repro.nn.executor import Engine
from repro.nn.tiles import compile_block_paths, extract_tile, run_segment
from repro.nn.weights import init_weights
from repro.partition.branches import assign_paths_lpt, path_flops
from repro.partition.regions import Region
from repro.runtime.coordinator import DistributedPipeline


def inception_like_model():
    """Stem conv + 3-path concat block + tail conv."""
    paths = (
        (conv1x1("b1", 8, 4),),
        (
            conv1x1("b3r", 8, 4),
            conv3x3("b3", 4, 6),
        ),
        (ConvSpec("b5", 8, 5, kernel_size=5, padding=2),),
    )
    units = (
        LayerUnit(conv3x3("stem", 3, 8)),
        BlockUnit("mix", paths, merge="concat"),
        LayerUnit(conv1x1("tail", 15, 4)),
    )
    return Model("branchy", (3, 20, 20), units)


@pytest.fixture(scope="module")
def model():
    return inception_like_model()


@pytest.fixture(scope="module")
def weights(model):
    return init_weights(model, seed=11)


class TestCompileBlockPaths:
    def test_subset_matches_full_channels(self, model, weights):
        engine = Engine(model, weights)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(model.input_shape).astype(np.float32)
        stem_out = engine.run_unit(model.units[0], x)
        full_out = engine.run_unit(model.units[1], stem_out)
        # Path channel layout: b1 -> [0,4), b3 -> [4,10), b5 -> [10,15).
        cases = [((0,), slice(0, 4)), ((1,), slice(4, 10)), ((2,), slice(10, 15)),
                 ((0, 2), None)]
        for paths, sl in cases:
            program = compile_block_paths(model, 1, paths)
            tile = extract_tile(stem_out, program.input_region)
            got = run_segment(engine, program, tile)
            if sl is not None:
                np.testing.assert_allclose(got, full_out[sl], atol=1e-5)
            else:
                want = np.concatenate([full_out[0:4], full_out[10:15]])
                np.testing.assert_allclose(got, want, atol=1e-5)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            compile_block_paths(model, 0, (0,))  # not a block
        with pytest.raises(ValueError):
            compile_block_paths(model, 1, ())
        with pytest.raises(ValueError):
            compile_block_paths(model, 1, (7,))


def branch_plan(model, cluster):
    """3-stage plan whose middle stage is branch-parallel."""
    devices = list(cluster.devices)
    _, h0, w0 = model.out_shape(0)
    _, h1, w1 = model.out_shape(1)
    _, h2, w2 = model.out_shape(2)
    groups = assign_paths_lpt(
        path_flops(model, 1), [devices[1].capacity, devices[2].capacity]
    )
    return PipelinePlan(
        model.name,
        (
            StagePlan(0, 1, ((devices[0], Region.full(h0, w0)),)),
            StagePlan(
                1,
                2,
                (
                    (devices[1], Region.full(h1, w1)),
                    (devices[2], Region.full(h1, w1)),
                ),
                path_groups=groups,
            ),
            StagePlan(2, 3, ((devices[3], Region.full(h2, w2)),)),
        ),
    )


class TestBranchRuntime:
    def test_distributed_matches_local(self, model, weights):
        cluster = pi_cluster(4, 1000)
        plan = branch_plan(model, cluster)
        engine = Engine(model, weights)
        rng = np.random.default_rng(1)
        xs = [rng.standard_normal(model.input_shape).astype(np.float32)
              for _ in range(3)]
        refs = [engine.forward_features(x) for x in xs]
        with DistributedPipeline(model, plan, weights=weights) as pipe:
            outs, stats = pipe.run_batch(xs)
        for out, ref in zip(outs, refs):
            np.testing.assert_allclose(out, ref, atol=1e-4, rtol=1e-4)
        assert stats.throughput > 0

    def test_branch_worker_failure_recovers(self, model, weights):
        cluster = pi_cluster(4, 1000)
        plan = branch_plan(model, cluster)
        victim = plan.stages[1].assignments[0][0].name
        engine = Engine(model, weights)
        rng = np.random.default_rng(2)
        xs = [rng.standard_normal(model.input_shape).astype(np.float32)
              for _ in range(3)]
        refs = [engine.forward_features(x) for x in xs]
        with DistributedPipeline(
            model, plan, weights=weights, recover=True, fail_after={victim: 1}
        ) as pipe:
            outs, stats = pipe.run_batch(xs)
        for out, ref in zip(outs, refs):
            np.testing.assert_allclose(out, ref, atol=1e-4, rtol=1e-4)
        assert stats.recoveries >= 1
