"""Tests for the APICO adaptive switcher."""

from __future__ import annotations

import pytest

from repro.adaptive.switcher import AdaptiveSwitcher, CandidatePlan, build_apico_switcher
from repro.adaptive.estimator import ArrivalRateTracker
from repro.cluster.device import Device, pi_cluster
from repro.core.plan import PipelinePlan, StagePlan
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.partition.regions import Region


def make_candidate(name, period, latency, mode="pipelined"):
    model = toy_chain(2, 0, input_hw=8)
    _, h, w = model.final_shape
    d1, d2 = Device(f"{name}-a", 1.0), Device(f"{name}-b", 1.0)
    plan = PipelinePlan(
        model.name,
        (
            StagePlan(0, 1, ((d1, Region.full(8, 8)),)),
            StagePlan(1, 2, ((d2, Region.full(h, w)),)),
        ),
        mode=mode,
    )
    return CandidatePlan(name, plan, period, latency)


@pytest.fixture
def candidates():
    # One-stage scheme: short latency, long period.
    one_stage = make_candidate("ONE", period=2.0, latency=2.0, mode="exclusive")
    # Pipeline: short period, longer latency.
    pipeline = make_candidate("PIPE", period=0.5, latency=3.0)
    return one_stage, pipeline


class TestChoose:
    def test_light_load_prefers_one_stage(self, candidates):
        switcher = AdaptiveSwitcher(candidates)
        assert switcher.choose(0.01).name == "ONE"

    def test_heavy_load_prefers_pipeline(self, candidates):
        switcher = AdaptiveSwitcher(candidates)
        assert switcher.choose(0.45).name == "PIPE"

    def test_crossover_exists(self, candidates):
        switcher = AdaptiveSwitcher(candidates)
        choices = [switcher.choose(r).name for r in (0.01, 0.1, 0.2, 0.3, 0.45)]
        assert choices[0] == "ONE" and choices[-1] == "PIPE"
        # Monotone: once it flips to PIPE it stays.
        flipped = False
        for name in choices:
            if name == "PIPE":
                flipped = True
            elif flipped:
                pytest.fail(f"non-monotone switch sequence {choices}")

    def test_beyond_one_stage_capacity_only_pipeline_stable(self, candidates):
        switcher = AdaptiveSwitcher(candidates)
        assert switcher.choose(1.0).name == "PIPE"  # 1/period(ONE) = 0.5 < 1


class TestOnArrival:
    def test_switches_under_ramping_load(self, candidates):
        tracker = ArrivalRateTracker(window_s=5.0, beta=0.9)
        switcher = AdaptiveSwitcher(candidates, tracker)
        # Sparse arrivals: stays one-stage.
        t = 0.0
        for _ in range(5):
            t += 30.0
            assert switcher.on_arrival(t).name == "ONE"
        # Burst at 2/s: must flip to the pipeline.
        for _ in range(100):
            t += 0.5
            active = switcher.on_arrival(t)
        assert active.name == "PIPE"

    def test_hysteresis_blocks_marginal_switch(self, candidates):
        tracker = ArrivalRateTracker(window_s=10.0, beta=1.0, initial_rate=0.01)
        switcher = AdaptiveSwitcher(candidates, tracker, hysteresis=0.99)
        # ~0.4/s keeps both plans stable (ONE: rho=0.8, PIPE: rho=0.2);
        # PIPE is better but not by 99%, so hysteresis pins ONE.
        t = 0.0
        for _ in range(100):
            t += 3.0
            switcher.on_arrival(t)
        assert switcher.choose(tracker.rate).name == "PIPE"  # would switch
        assert switcher.active.name == "ONE"  # but hysteresis held it

    def test_hysteresis_never_pins_saturated_plan(self, candidates):
        """Overload overrides hysteresis: a plan that cannot keep up is
        abandoned for the higher-capacity one."""
        tracker = ArrivalRateTracker(window_s=5.0, beta=1.0, initial_rate=0.01)
        switcher = AdaptiveSwitcher(candidates, tracker, hysteresis=0.99)
        t = 0.0
        for _ in range(100):
            t += 1.0  # 1/s: ONE saturated (capacity 0.5/s), PIPE stable
            switcher.on_arrival(t)
        assert switcher.active.name == "PIPE"

    def test_invalid_hysteresis_rejected(self, candidates):
        with pytest.raises(ValueError):
            AdaptiveSwitcher(candidates, hysteresis=-0.1)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveSwitcher(())


class TestBuildApico:
    def test_default_candidates_are_pico_and_ofl(self):
        model = toy_chain(4, 1, input_hw=32, in_channels=3)
        cluster = pi_cluster(4, 800)
        net = NetworkModel.from_mbps(50.0)
        switcher = build_apico_switcher(model, cluster, net)
        names = {c.name for c in switcher.candidates}
        assert names == {"PICO", "OFL"}
        pico = next(c for c in switcher.candidates if c.name == "PICO")
        ofl = next(c for c in switcher.candidates if c.name == "OFL")
        assert pico.period <= ofl.period + 1e-12
        assert ofl.period == pytest.approx(ofl.latency)


class TestBatchKnob:
    """Cross-frame batch size as an adaptive knob."""

    def _batched(self, candidates, batches=(1, 2, 4)):
        return AdaptiveSwitcher(candidates, batch_candidates=batches)

    def test_default_keeps_batching_off(self, candidates):
        switcher = AdaptiveSwitcher(candidates)
        assert switcher.batch_candidates == (1,)
        assert switcher.active_batch == 1
        assert switcher.choose_batch(50.0) == 1

    def test_invalid_batch_candidates_rejected(self, candidates):
        with pytest.raises(ValueError, match="batch_candidates"):
            AdaptiveSwitcher(candidates, batch_candidates=())
        with pytest.raises(ValueError, match="batch_candidates"):
            AdaptiveSwitcher(candidates, batch_candidates=(0, 2))
        with pytest.raises(ValueError, match="batch_candidates"):
            AdaptiveSwitcher(candidates, batch_candidates=(1.5,))

    def test_candidates_sorted_and_deduped(self, candidates):
        switcher = AdaptiveSwitcher(candidates, batch_candidates=(4, 1, 2, 2))
        assert switcher.batch_candidates == (1, 2, 4)

    def test_light_load_prefers_singletons(self, candidates):
        switcher = self._batched(candidates)
        # Cold start and light load: the forming delay buries batching.
        assert switcher.choose_batch(0.0) == 1
        assert switcher.choose_batch(0.01) == 1

    def test_batching_extends_the_stable_region(self, candidates):
        # PIPE has period 0.5 (capacity 2/s, all compute with
        # comm_fraction 0).  Past that rate only b > 1 keeps a finite
        # estimate: batched_period(b) < period, so batching is the only
        # stable choice and the switcher must pick it.
        switcher = self._batched(candidates)
        pipe = [c for c in candidates if c.name == "PIPE"][0]
        switcher._active = pipe
        rate = 1.05 * (1.0 / pipe.period)
        assert pipe.batched_period(4) < pipe.period
        chosen = switcher.choose_batch(rate)
        assert chosen > 1

    def test_comm_dominated_plan_never_batches(self):
        # comm scales linearly with B: an all-comm plan gains nothing.
        all_comm = make_candidate("COMM", period=1.0, latency=1.0)
        all_comm = CandidatePlan(
            all_comm.name, all_comm.plan, all_comm.period,
            all_comm.latency, comm_fraction=1.0,
        )
        assert all_comm.batched_period(4) == pytest.approx(1.0)
        switcher = AdaptiveSwitcher((all_comm,), batch_candidates=(1, 2, 4))
        for rate in (0.1, 0.5, 0.9):
            assert switcher.choose_batch(rate) == 1

    def test_on_arrival_updates_active_batch(self, candidates):
        switcher = self._batched(candidates)
        assert switcher.active_batch == 1
        pipe = [c for c in candidates if c.name == "PIPE"][0]
        # Flood past the unbatched capacity (2/s for PIPE) but inside
        # the batched stable region (b=4 serves up to ~2.46/s).
        for i in range(400):
            switcher.on_arrival(i * 0.45)
        assert switcher.active.name == "PIPE"
        rate = switcher.tracker.rate
        if rate * pipe.period > 1.0:
            assert switcher.active_batch > 1

    def test_batched_helpers_identity_at_one(self, candidates):
        for c in candidates:
            assert c.batched_period(1) == c.period
            assert c.batched_latency(1) == c.latency
            assert c.estimated_latency(0.2, batch=1) == c.estimated_latency(0.2)
