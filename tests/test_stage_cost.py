"""Tests for stage timing (paper Eq. 5–9)."""

from __future__ import annotations

import pytest

from repro.cluster.device import Device, pi_cluster, raspberry_pi
from repro.cost.comm import NetworkModel, region_bytes
from repro.cost.flops import CostOptions, head_flops, segment_flops
from repro.cost.stage_cost import (
    homogeneous_stage_time,
    single_device_time,
    stage_time,
)
from repro.models.graph import chain_model
from repro.models.layers import DenseSpec, conv3x3
from repro.models.toy import toy_chain
from repro.partition.fused import segment_input_region
from repro.partition.regions import Region


@pytest.fixture
def model():
    return toy_chain(3, 1, input_hw=16, in_channels=3, base_channels=8)


@pytest.fixture
def net():
    return NetworkModel.from_mbps(50.0)


class TestStageTime:
    def test_eq9_hand_computed(self, model, net):
        device = Device("d", capacity=1e6, alpha=1.0)
        _, h, w = model.final_shape
        region = Region.full(h, w)
        cost = stage_time(model, 0, model.n_units, [(device, region)], net)
        flops = segment_flops(model, 0, model.n_units, region)
        in_region = segment_input_region(model, 0, model.n_units, region)
        nbytes = region_bytes(3, in_region) + region_bytes(
            model.final_shape[0], region
        )
        assert cost.t_comp == pytest.approx(flops / 1e6)
        assert cost.t_comm == pytest.approx(net.transfer_time(nbytes))
        assert cost.total == pytest.approx(cost.t_comp + cost.t_comm)

    def test_comp_is_max_comm_is_sum(self, model, net):
        fast = Device("fast", capacity=2e6)
        slow = Device("slow", capacity=1e6)
        _, h, w = model.final_shape
        top = Region.from_bounds(0, h // 2, 0, w)
        bottom = Region.from_bounds(h // 2, h, 0, w)
        cost = stage_time(model, 0, model.n_units, [(fast, top), (slow, bottom)], net)
        assert cost.t_comp == pytest.approx(max(dc.t_comp for dc in cost.devices))
        assert cost.t_comm == pytest.approx(sum(dc.t_comm for dc in cost.devices))

    def test_empty_region_free(self, model, net):
        device = Device("d", capacity=1e6)
        _, h, w = model.final_shape
        cost = stage_time(
            model, 0, 1,
            [(device, Region.full(16, 16)), (device, Region.from_bounds(0, 0, 0, 16))],
            net,
        )
        assert cost.devices[1].t_comp == 0.0
        assert cost.devices[1].t_comm == 0.0

    def test_no_assignments_rejected(self, model, net):
        with pytest.raises(ValueError):
            stage_time(model, 0, 1, [], net)

    def test_head_billed_to_fastest(self, net):
        model = chain_model(
            "m", (3, 8, 8), [conv3x3("c", 3, 4)],
            head=[DenseSpec("fc", 256, 10)],
        )
        fast = Device("fast", capacity=2e6)
        slow = Device("slow", capacity=1e6)
        cost = stage_time(
            model, 0, 1,
            [(slow, Region.from_bounds(0, 4, 0, 8)), (fast, Region.from_bounds(4, 8, 0, 8))],
            net,
            with_head=True,
        )
        assert cost.t_head == pytest.approx(head_flops(model) / 2e6)

    def test_head_skipped_without_flag(self, net):
        model = chain_model(
            "m", (3, 8, 8), [conv3x3("c", 3, 4)],
            head=[DenseSpec("fc", 256, 10)],
        )
        device = Device("d", capacity=1e6)
        cost = stage_time(model, 0, 1, [(device, Region.full(8, 8))], net)
        assert cost.t_head == 0.0

    def test_head_skipped_when_option_disabled(self, net):
        model = chain_model(
            "m", (3, 8, 8), [conv3x3("c", 3, 4)],
            head=[DenseSpec("fc", 256, 10)],
        )
        device = Device("d", capacity=1e6)
        cost = stage_time(
            model, 0, 1, [(device, Region.full(8, 8))], net,
            options=CostOptions(include_head=False), with_head=True,
        )
        assert cost.t_head == 0.0


class TestHomogeneousStageTime:
    def test_matches_manual_equal_split(self, model, net):
        device = raspberry_pi("avg", 1000)
        cost = homogeneous_stage_time(model, 0, model.n_units, 2, device, net)
        assert len(cost.devices) == 2
        _, h, w = model.final_shape
        halves = [dc.out_region.height for dc in cost.devices]
        assert sum(halves) == h

    def test_more_devices_lower_compute(self, model, net):
        device = raspberry_pi("avg", 1000)
        one = homogeneous_stage_time(model, 0, model.n_units, 1, device, net)
        four = homogeneous_stage_time(model, 0, model.n_units, 4, device, net)
        assert four.t_comp < one.t_comp
        assert four.t_comm > one.t_comm  # halo + per-device transfers


class TestSingleDeviceTime:
    def test_equals_full_flops_over_capacity(self, model):
        device = Device("d", capacity=1e6)
        got = single_device_time(model, device)
        _, h, w = model.final_shape
        want = sum(
            segment_flops(
                model, i, i + 1,
                Region.full(model.out_shape(i)[1], model.out_shape(i)[2]),
            )
            for i in range(model.n_units)
        ) / 1e6
        assert got == pytest.approx(want)

    def test_scales_inversely_with_capacity(self, model):
        slow = single_device_time(model, Device("s", 1e6))
        fast = single_device_time(model, Device("f", 2e6))
        assert slow == pytest.approx(2 * fast)

    def test_cluster_parallel_beats_single(self, model, net):
        cluster = pi_cluster(4, 1000)
        single = single_device_time(model, cluster.devices[0])
        stage = homogeneous_stage_time(
            model, 0, model.n_units, 4, cluster.devices[0], net
        )
        assert stage.t_comp < single
