"""Tests for the M/D/1 estimates (Theorem 2), validated against a
discrete-event simulation of the actual queue."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.adaptive.queueing import (
    average_inference_latency,
    md1_waiting_time,
    stable,
    theorem2_literal,
)


def simulate_md1(period: float, arrival_rate: float, n_tasks: int, seed: int = 0):
    """Exact M/D/1 queue: deterministic service, Poisson arrivals."""
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_tasks))
    free_at = 0.0
    waits = []
    for t in arrivals:
        start = max(t, free_at)
        waits.append(start - t)
        free_at = start + period
    return float(np.mean(waits))


class TestStability:
    def test_stable(self):
        assert stable(1.0, 0.5)
        assert not stable(1.0, 1.0)
        assert not stable(2.0, 0.6)


class TestWaitingTime:
    def test_zero_rate_zero_wait(self):
        assert md1_waiting_time(1.0, 0.0) == 0.0

    def test_unstable_is_infinite(self):
        assert md1_waiting_time(1.0, 1.0) == math.inf
        assert md1_waiting_time(2.0, 0.9) == math.inf

    def test_pollaczek_khinchine_value(self):
        # rho = 0.5: Wq = lam p^2 / (2 (1-rho)) = 0.5*1/(2*0.5) = 0.5
        assert md1_waiting_time(1.0, 0.5) == pytest.approx(0.5)

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_matches_simulation(self, rho):
        period = 0.7
        rate = rho / period
        sim = simulate_md1(period, rate, n_tasks=40000, seed=42)
        theory = md1_waiting_time(period, rate)
        assert sim == pytest.approx(theory, rel=0.08)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            md1_waiting_time(-1.0, 0.5)

    @given(
        period=st.floats(0.01, 10.0),
        rho=st.floats(0.0, 0.99),
    )
    def test_property_monotone_in_load(self, period, rho):
        rate = rho / period
        lighter = md1_waiting_time(period, rate * 0.5)
        heavier = md1_waiting_time(period, rate)
        assert lighter <= heavier + 1e-12


class TestAverageLatency:
    def test_adds_pipeline_latency(self):
        got = average_inference_latency(1.0, 3.0, 0.5)
        assert got == pytest.approx(0.5 + 3.0)

    def test_latency_below_period_rejected(self):
        with pytest.raises(ValueError):
            average_inference_latency(2.0, 1.0, 0.1)

    def test_one_stage_scheme_period_equals_latency(self):
        # The paper's "for one-stage schemes p equals t".
        got = average_inference_latency(2.0, 2.0, 0.2)
        assert got == pytest.approx(md1_waiting_time(2.0, 0.2) + 2.0)


class TestTheorem2Literal:
    def test_printed_formula(self):
        p, lam, t = 1.0, 0.5, 3.0
        rho = p * lam
        want = p * (2 - rho) / (2 * (1 - rho)) + t
        assert theorem2_literal(p, t, lam) == pytest.approx(want)

    def test_equals_wait_plus_period_plus_latency(self):
        """Documents the paper's double count: literal = Wq + p + t."""
        p, lam, t = 0.8, 0.6, 2.0
        assert theorem2_literal(p, t, lam) == pytest.approx(
            md1_waiting_time(p, lam) + p + t
        )

    def test_unstable_infinite(self):
        assert theorem2_literal(1.0, 1.0, 2.0) == math.inf

    @given(p=st.floats(0.01, 5.0), t_extra=st.floats(0.0, 10.0), rho=st.floats(0.0, 0.95))
    def test_property_literal_exceeds_correct_by_period(self, p, t_extra, rho):
        lam = rho / p
        t = p + t_extra
        diff = theorem2_literal(p, t, lam) - average_inference_latency(p, t, lam)
        assert diff == pytest.approx(p)


class TestBatchedLatency:
    def test_batch_one_is_theorem2(self):
        from repro.adaptive.queueing import batched_inference_latency

        for rate in (0.0, 0.1, 0.4):
            assert batched_inference_latency(
                2.0, 3.0, rate, 1
            ) == average_inference_latency(2.0, 3.0, rate)

    def test_forming_delay_dominates_light_load(self):
        from repro.adaptive.queueing import batched_inference_latency

        # At a trickle, waiting for batch-mates costs ~(b-1)/(2λ).
        lam = 0.001
        t1 = batched_inference_latency(0.5, 1.0, lam, 1)
        t4 = batched_inference_latency(0.5, 1.0, lam, 4)
        assert t4 > t1
        assert t4 - 1.0 >= (4 - 1) / (2 * lam) * 0.99

    def test_zero_rate_never_forms(self):
        from repro.adaptive.queueing import batched_inference_latency

        assert batched_inference_latency(0.5, 1.0, 0.0, 2) == math.inf

    def test_unstable_is_infinite(self):
        from repro.adaptive.queueing import batched_inference_latency

        assert batched_inference_latency(1.0, 1.0, 1.5, 2) == math.inf

    def test_validation(self):
        from repro.adaptive.queueing import batched_inference_latency

        with pytest.raises(ValueError, match="batch"):
            batched_inference_latency(1.0, 1.0, 0.5, 0)
        with pytest.raises(ValueError, match="below period"):
            batched_inference_latency(2.0, 1.0, 0.1, 2)
        with pytest.raises(ValueError, match="non-negative"):
            batched_inference_latency(1.0, 1.0, -0.1, 2)
