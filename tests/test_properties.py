"""Cross-cutting property-based tests on system invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.device import Device
from repro.cluster.simulator import simulate_plan
from repro.core.plan import PipelinePlan, StagePlan, plan_cost
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.cost.comm import NetworkModel
from repro.cost.flops import segment_flops, segment_owned_flops
from repro.models.toy import toy_chain
from repro.nn.ops import conv2d
from repro.partition.regions import Region
from repro.partition.strips import strip_regions, weighted_partition

NET = NetworkModel.from_mbps(50.0)
MODEL = toy_chain(5, 1, input_hw=32, in_channels=3)


def brute_grouped_conv(x, w, groups, pads):
    xp = np.pad(x, ((0, 0), (pads[0], pads[1]), (pads[2], pads[3])))
    cout = w.shape[0]
    kh, kw = w.shape[2:]
    oh, ow = xp.shape[1] - kh + 1, xp.shape[2] - kw + 1
    cin_g = x.shape[0] // groups
    out_g = cout // groups
    out = np.zeros((cout, oh, ow), dtype=np.float64)
    for o in range(cout):
        g = o // out_g
        xs = xp[g * cin_g : (g + 1) * cin_g]
        for i in range(oh):
            for j in range(ow):
                out[o, i, j] = np.sum(xs[:, i : i + kh, j : j + kw] * w[o])
    return out.astype(np.float32)


class TestGroupedConvProperty:
    @given(
        groups=st.sampled_from([1, 2, 4]),
        cin_g=st.integers(1, 2),
        out_g=st.integers(1, 2),
        k=st.sampled_from([1, 3]),
        pad=st.integers(0, 1),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_bruteforce(self, groups, cin_g, out_g, k, pad, seed):
        rng = np.random.default_rng(seed)
        cin, cout = groups * cin_g, groups * out_g
        x = rng.standard_normal((cin, 6, 6)).astype(np.float32)
        w = rng.standard_normal((cout, cin_g, k, k)).astype(np.float32)
        got = conv2d(x, w, None, (1, 1), (pad, pad, pad, pad), groups=groups)
        want = brute_grouped_conv(x, w, groups, (pad, pad, pad, pad))
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)


class TestRedundancyProperty:
    @given(
        cut=st.integers(1, 15),
        start=st.integers(0, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_owned_never_exceeds_actual(self, cut, start):
        end = MODEL.n_units
        if start >= end:
            return
        _, h, w = MODEL.out_shape(end - 1)
        cut = cut % h
        if cut == 0:
            return
        region = Region.from_bounds(0, cut, 0, w)
        actual = segment_flops(MODEL, start, end, region)
        owned = segment_owned_flops(MODEL, start, end, region)
        assert owned <= actual + 1e-6

    @given(weights=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_weighted_partition_owned_sums_to_full(self, weights):
        _, h, w = MODEL.final_shape
        rows = weighted_partition(h, weights)
        total_owned = sum(
            segment_owned_flops(MODEL, 0, MODEL.n_units, region)
            for region in strip_regions(h, w, rows)
            if not region.empty
        )
        full = segment_flops(MODEL, 0, MODEL.n_units, Region.full(h, w))
        assert total_owned == pytest.approx(full, rel=1e-9)


def _random_plan(n_stage_units, device_caps):
    """Build a valid pipelined plan from stage sizes and capacities."""
    stages = []
    pos = 0
    dev_idx = 0
    for units, caps in zip(n_stage_units, device_caps):
        end = pos + units
        _, h, w = MODEL.out_shape(end - 1)
        devices = [
            Device(f"d{dev_idx + i}", float(c)) for i, c in enumerate(caps)
        ]
        dev_idx += len(caps)
        rows = weighted_partition(h, [d.capacity for d in devices])
        assignments = tuple(
            (d, Region.from_bounds(iv.start, iv.end, 0, w))
            for d, iv in zip(devices, rows)
        )
        stages.append(StagePlan(pos, end, assignments))
        pos = end
    return PipelinePlan(MODEL.name, tuple(stages), mode="pipelined")


@st.composite
def random_plans(draw):
    n_units = MODEL.n_units
    n_stages = draw(st.integers(1, min(3, n_units)))
    # Random contiguous split of the units.
    cuts = sorted(
        draw(
            st.lists(
                st.integers(1, n_units - 1),
                min_size=n_stages - 1,
                max_size=n_stages - 1,
                unique=True,
            )
        )
    )
    bounds = [0] + cuts + [n_units]
    sizes = [b - a for a, b in zip(bounds, bounds[1:])]
    caps = [
        draw(
            st.lists(st.floats(1e8, 1e10), min_size=1, max_size=3)
        )
        for _ in sizes
    ]
    return _random_plan(sizes, caps)


class TestPlanProperties:
    @given(plan=random_plans())
    @settings(max_examples=20, deadline=None)
    def test_serialize_roundtrip(self, plan):
        assert plan_from_dict(plan_to_dict(plan)) == plan

    @given(plan=random_plans())
    @settings(max_examples=15, deadline=None)
    def test_period_le_latency(self, plan):
        cost = plan_cost(MODEL, plan, NET)
        assert cost.period <= cost.latency + 1e-12

    @given(plan=random_plans(), n_tasks=st.integers(1, 10))
    @settings(max_examples=10, deadline=None)
    def test_simulator_conservation(self, plan, n_tasks):
        """Every arrival completes; latencies are at least the plan
        latency; completions are FIFO."""
        cost = plan_cost(MODEL, plan, NET)
        sim = simulate_plan(MODEL, plan, NET, [0.1 * i for i in range(n_tasks)])
        assert sim.completed == n_tasks
        for record in sim.tasks:
            assert record.latency >= cost.latency - 1e-9
        completions = [t.completion for t in sim.tasks]
        assert completions == sorted(completions)
