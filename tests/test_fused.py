"""Tests for fused-segment region propagation (chain & block back-prop)."""

from __future__ import annotations

import pytest

from repro.models.graph import BlockUnit, LayerUnit
from repro.models.layers import ConvSpec, conv1x1, conv3x3, maxpool2
from repro.models.resnet import basic_block
from repro.models.toy import toy_chain
from repro.partition.fused import (
    chain_backprop,
    chain_forward_hw,
    segment_input_region,
    segment_owned_region,
    unit_input_region,
    unit_owned_input,
)
from repro.partition.regions import Interval, Region


class TestChainForward:
    def test_sizes(self):
        chain = (conv3x3("c1", 3, 8), maxpool2("p1", 8), conv3x3("c2", 8, 8))
        sizes = chain_forward_hw(chain, (32, 32))
        assert sizes == [(32, 32), (32, 32), (16, 16), (16, 16)]


class TestChainBackprop:
    def test_single_conv_same(self):
        chain = (conv3x3("c", 3, 8),)
        tiles = chain_backprop(chain, (16, 16), Region.from_bounds(4, 8, 0, 16))
        assert tiles.input.region == Region.from_bounds(3, 9, 0, 16)
        assert tiles.input.cols.pad_lo == 1 and tiles.input.cols.pad_hi == 1

    def test_halo_grows_per_layer(self):
        chain = (conv3x3("c1", 3, 8), conv3x3("c2", 8, 8), conv3x3("c3", 8, 8))
        out = Region.from_bounds(8, 10, 0, 32)
        tiles = chain_backprop(chain, (32, 32), out)
        assert tiles.input.region.rows == Interval(5, 13)  # +3 halo each side

    def test_pool_doubles(self):
        chain = (maxpool2("p", 8), conv3x3("c", 8, 8))
        out = Region.from_bounds(2, 4, 0, 16)
        tiles = chain_backprop(chain, (32, 32), out)
        # conv needs rows [1,5), pool projects to [2,10)
        assert tiles.input.region.rows == Interval(2, 10)

    def test_output_regions_chain(self):
        chain = (conv3x3("c1", 3, 8), conv3x3("c2", 8, 8))
        out = Region.from_bounds(4, 6, 2, 8)
        tiles = chain_backprop(chain, (16, 16), out)
        # Each layer's output region is the next layer's clipped input.
        assert tiles.tiles[0].output == tiles.tiles[1].input.region
        assert tiles.tiles[-1].output == out

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            chain_backprop((), (8, 8), Region.full(8, 8))


class TestUnitInputRegion:
    def test_layer_unit(self):
        unit = LayerUnit(conv3x3("c", 3, 8))
        got = unit_input_region(unit, (16, 16), Region.from_bounds(4, 8, 4, 8))
        assert got == Region.from_bounds(3, 9, 3, 9)

    def test_residual_block_union_includes_identity(self):
        block = basic_block("b", 8, 8, stride=1)
        out = Region.from_bounds(4, 8, 0, 16)
        got = unit_input_region(block, (16, 16), out)
        # The two 3x3 convs need a 2-row halo; identity needs out itself.
        assert got == Region.from_bounds(2, 10, 0, 16)

    def test_downsample_block(self):
        block = basic_block("b", 8, 16, stride=2)
        out = Region.from_bounds(0, 4, 0, 8)
        got = unit_input_region(block, (16, 16), out)
        # main path: conv2 needs rows [0,5) of mid; conv1 (stride2, pad1)
        # needs rows [0,10) of input; shortcut conv1x1 stride2 needs [0,7).
        assert got.rows == Interval(0, 10)

    def test_inception_like_union_is_hull(self):
        paths = (
            (conv1x1("a", 8, 4),),
            (ConvSpec("b", 8, 4, kernel_size=5, padding=2),),
        )
        block = BlockUnit("inc", paths, merge="concat")
        out = Region.from_bounds(6, 8, 0, 16)
        got = unit_input_region(block, (16, 16), out)
        assert got.rows == Interval(4, 10)  # 5x5 halo dominates


class TestSegmentRegions:
    def test_whole_model_full_region_is_input(self):
        model = toy_chain(3, 1, input_hw=32)
        _, h, w = model.final_shape
        got = segment_input_region(model, 0, model.n_units, Region.full(h, w))
        assert got == Region.full(32, 32)

    def test_bad_segment_rejected(self):
        model = toy_chain(3, 0, input_hw=16)
        with pytest.raises(ValueError):
            segment_input_region(model, 2, 2, Region.full(16, 16))
        with pytest.raises(ValueError):
            segment_input_region(model, 0, 99, Region.full(16, 16))

    def test_owned_region_has_no_halo(self):
        model = toy_chain(4, 1, input_hw=32)
        out = Region.from_bounds(0, 8, 0, 16)  # after 1 pool: 16x16 map
        owned = segment_owned_region(model, 0, model.n_units, out)
        actual = segment_input_region(model, 0, model.n_units, out)
        assert actual.contains(owned)
        assert owned.rows == Interval(0, 16)  # stride-2 projection only

    def test_owned_partition_disjoint(self):
        model = toy_chain(4, 1, input_hw=32)
        _, h, w = model.final_shape
        cut = h // 2
        top = segment_owned_region(
            model, 0, model.n_units, Region.from_bounds(0, cut, 0, w)
        )
        bottom = segment_owned_region(
            model, 0, model.n_units, Region.from_bounds(cut, h, 0, w)
        )
        assert top.rows.overlap(bottom.rows) == 0
        assert top.rows.end == bottom.rows.start


class TestUnitOwned:
    def test_layer_unit_stride(self):
        unit = LayerUnit(maxpool2("p", 8))
        got = unit_owned_input(unit, (16, 16), Region.from_bounds(2, 4, 0, 8))
        assert got.rows == Interval(4, 8)

    def test_block_stride(self):
        block = basic_block("b", 8, 16, stride=2)
        got = unit_owned_input(block, (16, 16), Region.from_bounds(1, 3, 0, 8))
        assert got.rows == Interval(2, 6)
