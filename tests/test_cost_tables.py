"""Equivalence suite: vectorized cost tables vs the scalar oracle.

The :mod:`repro.cost.tables` layer must be *bit-for-bit* identical to
the reference cost model — ``SegmentCostTable`` vs
``homogeneous_stage_time``, ``SegmentTable.stage_total`` vs
``stage_time`` — and the vectorized planners must return exactly the
same plans as the scalar-backed reference DP.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.core.bfs import bfs_optimal
from repro.core.dp_planner import (
    StageTimeTable,
    plan_homogeneous,
    plan_homogeneous_reference,
)
from repro.core.pareto import plan_pareto
from repro.cost.comm import NetworkModel
from repro.cost.flops import DEFAULT_OPTIONS
from repro.cost.stage_cost import homogeneous_stage_time, stage_time
from repro.cost.tables import (
    SegmentCostTable,
    SegmentTable,
    get_cost_table,
    get_segment_table,
)
from repro.models.graph import chain_model
from repro.models.layers import ConvSpec, conv3x3
from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.partition.regions import Interval, Region
from repro.partition.strips import weighted_partition

NET = NetworkModel.from_mbps(50.0)
OPTIONS = DEFAULT_OPTIONS

#: Model zoo at benchmark-friendly resolutions; every architecture kind
#: (plain chain, residual, concat blocks, depthwise, non-square kernels).
ZOO_CASES = [
    ("toy", lambda: toy_chain(6, 2, input_hw=48)),
    ("vgg16", lambda: get_model("vgg16", input_hw=64)),
    ("resnet34", lambda: get_model("resnet34", input_hw=64)),
    ("inception_v3", lambda: get_model("inception_v3", input_hw=96)),
    ("mobilenet_v2", lambda: get_model("mobilenet_v2", input_hw=64)),
    ("yolov2", lambda: get_model("yolov2", input_hw=64)),
]
ZOO_IDS = [name for name, _ in ZOO_CASES]


@pytest.fixture(scope="module", params=[build for _, build in ZOO_CASES], ids=ZOO_IDS)
def model(request):
    return request.param()


class TestBitForBitEquivalence:
    def test_all_segments_exact(self, model):
        """No real CNN here pads past its kernel, so the closed form
        must cover every segment."""
        table = SegmentTable(model, OPTIONS)
        n = model.n_units
        assert all(
            table.exact(s, e) for s in range(n) for e in range(s + 1, n + 1)
        )

    def test_equal_strips_match_oracle(self, model):
        """SegmentCostTable == homogeneous_stage_time(...).total, exact
        float equality, across every segment and p in 1..8."""
        device = pi_cluster(1, 600).devices[0]
        vec = SegmentCostTable(model, device, NET, OPTIONS)
        n = model.n_units
        for start in range(n):
            for end in range(start + 1, n + 1):
                for p in (1, 2, 3, 8):
                    expected = homogeneous_stage_time(
                        model, start, end, p, device, NET, OPTIONS,
                        with_head=end == n,
                    ).total
                    assert vec(start, end, p) == expected, (start, end, p)

    def test_weighted_strips_match_oracle(self, model):
        """stage_total on heterogeneous weighted strips == stage_time."""
        cluster = heterogeneous_cluster([600.0, 800.0, 1200.0])
        devices = list(cluster)
        table = SegmentTable(model, OPTIONS)
        n = model.n_units
        segments = (
            [(0, e) for e in range(1, n + 1)]
            + [(s, n) for s in range(n)]
            + [(s, s + 2) for s in range(n - 2)]
        )
        for start, end in segments:
            _, h, w = table.out_shape(end)
            rows = weighted_partition(h, [d.capacity for d in devices])
            assignments = list(zip(devices, rows))
            regions = [
                (d, Region(iv, Interval(0, w))) for d, iv in assignments
            ]
            expected = stage_time(
                model, start, end, regions, NET, OPTIONS,
                with_head=end == n,
            ).total
            got = table.stage_total(
                start, end, assignments, NET, with_head=end == n
            )
            assert got == expected, (start, end)


@pytest.mark.slow
class TestPlanEquivalence:
    @pytest.mark.parametrize("n_devices", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_unbounded(self, model, n_devices):
        cluster = pi_cluster(n_devices, 600)
        ref = plan_homogeneous_reference(model, cluster, NET, OPTIONS)
        vec = plan_homogeneous(model, cluster, NET, OPTIONS)
        assert ref is not None and vec is not None
        assert (vec.stages, vec.period, vec.latency) == (
            ref.stages,
            ref.period,
            ref.latency,
        )

    def test_finite_t_lim(self, model):
        """A budget strictly between the single-stage minimum latency
        and the unconstrained optimum's latency binds for real."""
        cluster = pi_cluster(6, 600)
        free = plan_homogeneous_reference(model, cluster, NET, OPTIONS)
        assert free is not None
        ts = StageTimeTable(model, cluster.homogenized().devices[0], NET, OPTIONS)
        min_latency = min(
            ts(0, model.n_units, p) for p in range(1, len(cluster) + 1)
        )
        for t_lim in (
            (min_latency + free.latency) / 2,
            free.latency,
            min_latency * 0.5,  # infeasible: both must return None
        ):
            ref = plan_homogeneous_reference(
                model, cluster, NET, OPTIONS, t_lim=t_lim
            )
            vec = plan_homogeneous(model, cluster, NET, OPTIONS, t_lim=t_lim)
            if ref is None:
                assert vec is None
            else:
                assert vec is not None
                assert (vec.stages, vec.period, vec.latency) == (
                    ref.stages,
                    ref.period,
                    ref.latency,
                )

    def test_pareto(self, model):
        cluster = pi_cluster(4, 600)
        device = cluster.homogenized().devices[0]
        reference_ts = StageTimeTable(model, device, NET, OPTIONS)
        for t_lim in (math.inf, None):
            kwargs = {} if t_lim is None else {"t_lim": t_lim}
            ref = plan_pareto(
                model, cluster, NET, OPTIONS, table=reference_ts, **kwargs
            )
            vec = plan_pareto(model, cluster, NET, OPTIONS, **kwargs)
            assert ref is not None and vec is not None
            assert (vec.stages, vec.period, vec.latency) == (
                ref.stages,
                ref.period,
                ref.latency,
            )


class TestBranchParallel:
    def test_branch_stages_match_reference(self):
        model = get_model("inception_v3", input_hw=96)
        cluster = pi_cluster(6, 600)
        ref = plan_homogeneous_reference(
            model, cluster, NET, OPTIONS, allow_branch=True
        )
        vec = plan_homogeneous(
            model, cluster, NET, OPTIONS, allow_branch=True
        )
        assert ref is not None and vec is not None
        assert (vec.stages, vec.period, vec.latency) == (
            ref.stages,
            ref.period,
            ref.latency,
        )


class TestBfsTable:
    def test_same_result_with_and_without_table(self):
        model = toy_chain(4, 1, input_hw=32)
        cluster = heterogeneous_cluster([600.0, 800.0, 1000.0])
        with_table = bfs_optimal(
            model, cluster, NET, OPTIONS,
            table=get_segment_table(model, OPTIONS),
        )
        # Force the scalar path by handing over a table that claims no
        # segment is exact.
        class NeverExact(SegmentTable):
            def exact(self, start, end):
                return False

        without = bfs_optimal(
            model, cluster, NET, OPTIONS, table=NeverExact(model, OPTIONS)
        )
        assert with_table.optimal and without.optimal
        assert with_table.period == without.period
        assert with_table.latency == without.latency


class TestScalarFallback:
    def test_overpadded_layer_falls_back_to_oracle(self):
        """padding >= kernel lets a strip's intermediate interval clip
        to empty — the one case the closed form cannot express.  The
        table must flag it and still answer through the oracle."""
        layers = [
            conv3x3("c1", 1, 8),
            ConvSpec("overpad", 8, 8, kernel_size=1, stride=1, padding=1),
            conv3x3("c2", 8, 8),
        ]
        model = chain_model("overpadded", (1, 16, 16), layers)
        table = SegmentTable(model, OPTIONS)
        n = model.n_units
        # Segments *ending at* the over-padded layer see its clipped
        # boundaries directly and collapse; a later conv's halo re-widens
        # the intervals, so longer segments stay exact.
        assert not table.exact(0, 2)
        assert not table.exact(1, 2)
        device = pi_cluster(1, 600).devices[0]
        vec = SegmentCostTable(model, device, NET, OPTIONS, segments=table)
        for start in range(n):
            for end in range(start + 1, n + 1):
                for p in (1, 2, 4):
                    expected = homogeneous_stage_time(
                        model, start, end, p, device, NET, OPTIONS,
                        with_head=end == n,
                    ).total
                    assert vec(start, end, p) == expected, (start, end, p)
        ref = plan_homogeneous_reference(model, pi_cluster(3, 600), NET, OPTIONS)
        got = plan_homogeneous(model, pi_cluster(3, 600), NET, OPTIONS)
        assert (got.stages, got.period, got.latency) == (
            ref.stages,
            ref.period,
            ref.latency,
        )


class TestRegistry:
    def test_tables_are_shared(self):
        model = toy_chain(3, 0, input_hw=16)
        assert get_segment_table(model, OPTIONS) is get_segment_table(
            model, OPTIONS
        )
        device = pi_cluster(2, 600).devices[0]
        a = get_cost_table(model, device, NET, OPTIONS)
        b = get_cost_table(model, device, NET, OPTIONS)
        assert a is b
        assert a.segments is get_segment_table(model, OPTIONS)
        # A different configuration gets its own cost table but shares
        # the geometry.
        c = get_cost_table(model, device, NET, OPTIONS, allow_branch=True)
        assert c is not a and c.segments is a.segments

    def test_min_cost_upto_is_running_minimum(self):
        model = toy_chain(4, 1, input_hw=32)
        device = pi_cluster(1, 600).devices[0]
        table = SegmentCostTable(model, device, NET, OPTIONS)
        n = model.n_units
        for p_max in range(1, 6):
            expected = min(table(1, n, p) for p in range(1, p_max + 1))
            assert table.min_cost_upto(1, n, p_max) == expected
