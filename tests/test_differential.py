"""Differential matrix: every scheme × model family × backend.

The repo's strongest end-to-end guarantee, checked exhaustively: for
every registered scheme and a small family of architectures, the
execution backends (in-process threads, virtual-clock simulator, local
plan executor, and — in its own cells, since it forks real workers —
the shared-memory transport) produce **bit-identical** feature maps —
equal to the plain ``Engine.forward_features`` reference — and report
equivalent canonical traces.  Both frame-at-a-time and with multiple
frames in flight through the serving layer.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache

import numpy as np
import pytest

from repro.cluster.device import heterogeneous_cluster
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.coordinator import ShmTransport
from repro.runtime.core import InProcTransport, PipelineSession, SimTransport
from repro.runtime.trace import Tracer, canonical_trace
from repro.schemes import available_schemes, get_scheme
from repro.schemes.local import LocalPlanExecutor
from repro.serve import PipelineServer, ServerConfig

NETWORK = NetworkModel.from_mbps(50.0)
CLUSTER = heterogeneous_cluster([1200, 1000, 800, 600])
BACKENDS = ("inproc", "sim", "local")

MODELS = {
    "toy": lambda: toy_chain(4, 1, input_hw=24, in_channels=3,
                             base_channels=8),
    "vggish": lambda: toy_chain(6, 2, input_hw=32, in_channels=3,
                                base_channels=8),
    "resnetish": lambda: get_model("resnet34", input_hw=64),
}


@lru_cache(maxsize=None)
def _model(model_key):
    return MODELS[model_key]()


@lru_cache(maxsize=None)
def _weights(model_key):
    return init_weights(_model(model_key), seed=0)


@lru_cache(maxsize=None)
def _plan(model_key, scheme_name):
    return get_scheme(scheme_name).plan(_model(model_key), CLUSTER, NETWORK)


def _engine(model_key):
    return Engine(_model(model_key), _weights(model_key))


def _frame(model_key, seed=7):
    rng = np.random.default_rng(seed)
    shape = _model(model_key).input_shape
    return rng.standard_normal(shape).astype(np.float32)


def _run_backend(backend, model_key, scheme_name, frame):
    """One frame through one backend; returns (features, canonical trace)."""
    model = _model(model_key)
    plan = _plan(model_key, scheme_name)
    if backend == "local":
        executor = LocalPlanExecutor(_engine(model_key), plan, trace=True)
        out = executor.forward_features(frame)
        return out, canonical_trace(executor.trace)
    if backend == "inproc":
        transport = InProcTransport(_engine(model_key))
    elif backend == "shm":
        transport = ShmTransport(_model(model_key), _weights(model_key))
    else:
        transport = SimTransport(_engine(model_key), NETWORK, compute=True)
    tracer = Tracer()
    session = PipelineSession.from_plan(model, plan, transport, tracer)
    try:
        out = session.run_frame(frame)
    finally:
        transport.close()
    return out, canonical_trace(tracer.events)


def _assert_matches_reference(out, want, scheme_name, context):
    """Served features vs the plain full-model forward.

    Spatial strip partitions (PICO, OFL) keep every accumulation shape
    identical to the reference, so they are bit-exact.  EFL and LW fuse
    layers with channel-block outputs whose GEMM shapes differ from the
    full-model call — BLAS may re-block the accumulation, so those two
    are float-close (error compounds over fused layers) rather than
    bit-identical.  IOP's channel-sliced GEMMs shrink the M dimension
    the same way, so it shares that exactness class (the backends still
    agree bit-for-bit with *each other* in every class).
    """
    if scheme_name in ("efl", "lw", "iop"):
        np.testing.assert_allclose(
            out, want, rtol=5e-4, atol=1e-6, err_msg=context
        )
    else:
        assert np.array_equal(out, want), context


def _check_matrix_cell(model_key, scheme_name):
    frame = _frame(model_key)
    want = _engine(model_key).forward_features(frame)
    outs, traces = {}, {}
    for backend in BACKENDS:
        out, trace = _run_backend(backend, model_key, scheme_name, frame)
        _assert_matches_reference(
            out, want, scheme_name,
            f"{backend} diverged from Engine.forward_features for "
            f"{scheme_name} on {model_key}",
        )
        outs[backend] = out
        traces[backend] = trace
    # Whatever the scheme, the three backends run the same compiled
    # split/compute/stitch and must agree bit-for-bit with each other.
    assert np.array_equal(outs["inproc"], outs["sim"])
    assert np.array_equal(outs["inproc"], outs["local"])
    # The wall-clock and virtual backends emit the *same* canonical
    # sequence (the trace-smoke contract); the local executor walks the
    # same plan so its event count must agree too.
    assert traces["inproc"] == traces["sim"]
    assert len(traces["local"]) == len(traces["inproc"])


def _check_in_flight_cell(model_key, scheme_name, n_frames=3):
    """The same plan with ``n_frames`` concurrently in flight."""
    model = _model(model_key)
    plan = _plan(model_key, scheme_name)
    frames = [_frame(model_key, seed=100 + i) for i in range(n_frames)]
    engine = _engine(model_key)
    want = [engine.forward_features(f) for f in frames]
    config = ServerConfig(queue_capacity=n_frames + 1, policy="block")
    per_frame_counts = {}
    outs = {}
    for backend in ("inproc", "sim"):
        if backend == "inproc":
            transport = InProcTransport(_engine(model_key))
        else:
            transport = SimTransport(_engine(model_key), NETWORK,
                                     compute=True)
        server = PipelineServer.from_plan(
            model, plan, transport, config=config, tracer=True
        )
        result = server.serve(frames, arrivals=[0.0] * n_frames)
        server.close()
        assert len(result.completed) == n_frames
        assert not result.failed and not result.shed
        for i, w in enumerate(want):
            _assert_matches_reference(
                result.outputs[i], w, scheme_name,
                f"{backend} frame {i} diverged with {n_frames} in flight "
                f"({scheme_name} on {model_key})",
            )
        outs[backend] = result.outputs
        per_frame_counts[backend] = Counter(
            e[0] for e in canonical_trace(result.trace)
        )
    for i in range(n_frames):
        assert np.array_equal(outs["inproc"][i], outs["sim"][i])
    # Interleaving may reorder events across stages, but each frame must
    # pass through exactly the same canonical steps on both backends.
    assert per_frame_counts["inproc"] == per_frame_counts["sim"]


@pytest.mark.parametrize("scheme_name", available_schemes())
@pytest.mark.parametrize("model_key", ["toy", "vggish"])
def test_single_frame_matrix(model_key, scheme_name):
    _check_matrix_cell(model_key, scheme_name)


@pytest.mark.parametrize("scheme_name", available_schemes())
@pytest.mark.parametrize("model_key", ["toy", "vggish"])
def test_frames_in_flight_matrix(model_key, scheme_name):
    _check_in_flight_cell(model_key, scheme_name)


def _check_shm_cell(model_key, scheme_name):
    """The shared-memory transport against the in-process reference.

    Separate from the main matrix because every cell forks real worker
    processes; the agreement contract is the same — bit-identical
    outputs and identical canonical traces.
    """
    frame = _frame(model_key)
    want, want_trace = _run_backend("inproc", model_key, scheme_name, frame)
    out, trace = _run_backend("shm", model_key, scheme_name, frame)
    assert np.array_equal(out, want), (
        f"shm diverged from inproc for {scheme_name} on {model_key}"
    )
    assert trace == want_trace, (
        f"shm canonical trace differs for {scheme_name} on {model_key}"
    )


@pytest.mark.parametrize("scheme_name", available_schemes())
def test_single_frame_matrix_shm(scheme_name):
    _check_shm_cell("toy", scheme_name)


def test_frames_in_flight_shm():
    """Multiple frames through the threaded server over shm workers."""
    model_key, scheme_name, n_frames = "toy", "pico", 3
    model = _model(model_key)
    plan = _plan(model_key, scheme_name)
    frames = [_frame(model_key, seed=100 + i) for i in range(n_frames)]
    engine = _engine(model_key)
    want = [engine.forward_features(f) for f in frames]
    config = ServerConfig(queue_capacity=n_frames + 1, policy="block")
    transport = ShmTransport(model, _weights(model_key))
    server = PipelineServer.from_plan(model, plan, transport, config=config)
    try:
        result = server.serve(frames, arrivals=[0.0] * n_frames)
    finally:
        server.close()
    assert len(result.completed) == n_frames
    assert not result.failed and not result.shed
    for i, w in enumerate(want):
        assert np.array_equal(result.outputs[i], w), (
            f"shm frame {i} diverged with {n_frames} in flight"
        )


@pytest.mark.slow
@pytest.mark.parametrize("scheme_name", available_schemes())
@pytest.mark.parametrize("model_key", ["vggish", "resnetish"])
def test_single_frame_matrix_shm_large(model_key, scheme_name):
    _check_shm_cell(model_key, scheme_name)


@pytest.mark.slow
@pytest.mark.parametrize("scheme_name", available_schemes())
def test_single_frame_matrix_resnetish(scheme_name):
    _check_matrix_cell("resnetish", scheme_name)


@pytest.mark.slow
@pytest.mark.parametrize("scheme_name", available_schemes())
def test_frames_in_flight_matrix_resnetish(scheme_name):
    _check_in_flight_cell("resnetish", scheme_name, n_frames=2)


def test_local_executor_sequential_frames_match_engine():
    """Frame-at-a-time on the local executor, several frames in a row —
    no state leaks between frames."""
    engine = _engine("toy")
    executor = LocalPlanExecutor(engine, _plan("toy", "pico"))
    for i in range(3):
        frame = _frame("toy", seed=200 + i)
        assert np.array_equal(
            executor.forward_features(frame), engine.forward_features(frame)
        )


# ---------------------------------------------------------------------------
# Cross-frame batching: a stacked (C, B, H, W) batch through the same
# compiled programs must be bit-identical to the per-frame loop.
# ---------------------------------------------------------------------------


def _run_backend_batched(backend, model_key, scheme_name, frames):
    """A stacked batch through one backend; returns per-frame outputs."""
    model = _model(model_key)
    plan = _plan(model_key, scheme_name)
    if backend == "inproc":
        transport = InProcTransport(_engine(model_key))
    else:
        transport = SimTransport(_engine(model_key), NETWORK, compute=True)
    session = PipelineSession.from_plan(model, plan, transport)
    try:
        return session.run_stacked(frames)
    finally:
        transport.close()


def _check_batched_cell(model_key, scheme_name, batch):
    frames = [_frame(model_key, seed=300 + i) for i in range(batch)]
    # The per-frame loop is the oracle: batched execution must be
    # BIT-identical to it, on top of matching the engine reference
    # within the scheme's exactness class.
    per_frame = [
        _run_backend("inproc", model_key, scheme_name, f)[0] for f in frames
    ]
    engine = _engine(model_key)
    for backend in ("inproc", "sim"):
        outs = _run_backend_batched(backend, model_key, scheme_name, frames)
        assert len(outs) == batch
        for i, (out, want) in enumerate(zip(outs, per_frame)):
            assert np.array_equal(out, want), (
                f"{backend} batched frame {i} is not bit-identical to the "
                f"per-frame loop ({scheme_name} on {model_key}, B={batch})"
            )
            _assert_matches_reference(
                out, engine.forward_features(frames[i]), scheme_name,
                f"{backend} batched frame {i} diverged from the engine "
                f"({scheme_name} on {model_key}, B={batch})",
            )


@pytest.mark.parametrize("batch", [2, 4])
@pytest.mark.parametrize("scheme_name", available_schemes())
def test_batched_matrix_toy(scheme_name, batch):
    _check_batched_cell("toy", scheme_name, batch)


@pytest.mark.slow
@pytest.mark.parametrize("batch", [2, 4])
@pytest.mark.parametrize("scheme_name", available_schemes())
@pytest.mark.parametrize("model_key", ["vggish", "resnetish"])
def test_batched_matrix_large(model_key, scheme_name, batch):
    _check_batched_cell(model_key, scheme_name, batch)


@pytest.mark.parametrize("scheme_name", available_schemes())
def test_batched_serving_matches_per_frame_serving(scheme_name):
    """The served batched outputs and completion set equal the per-frame
    server's, on both the threaded and the analytic path."""
    model_key = "toy"
    model = _model(model_key)
    plan = _plan(model_key, scheme_name)
    n_frames = 6
    frames = [_frame(model_key, seed=400 + i) for i in range(n_frames)]
    baseline_cfg = ServerConfig(queue_capacity=n_frames + 1, policy="block")
    batched_cfg = ServerConfig(
        queue_capacity=n_frames + 1, policy="block", max_batch=3
    )
    results = {}
    for label, backend, config in (
        ("base", "sim", baseline_cfg),
        ("sim", "sim", batched_cfg),
        ("inproc", "inproc", batched_cfg),
    ):
        if backend == "inproc":
            transport = InProcTransport(_engine(model_key))
        else:
            transport = SimTransport(_engine(model_key), NETWORK,
                                     compute=True)
        server = PipelineServer.from_plan(
            model, plan, transport, config=config
        )
        try:
            results[label] = server.serve(frames, arrivals=[0.0] * n_frames)
        finally:
            server.close()
    base = results["base"]
    assert len(base.completed) == n_frames
    for label in ("sim", "inproc"):
        result = results[label]
        assert {r.frame for r in result.completed} == {
            r.frame for r in base.completed
        }
        assert not result.shed and not result.failed
        for i in range(n_frames):
            assert np.array_equal(result.outputs[i], base.outputs[i]), (
                f"{label} batched serving diverged on frame {i} "
                f"({scheme_name})"
            )
    # The analytic path must actually form batches for this workload.
    assert results["sim"].mean_batch > 1.0


# ---------------------------------------------------------------------------
# Property: run_segment over a stacked batch == per-tile runs, for any
# batch size, seed and compiled segment of the toy model.
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.nn.tiles import run_segment  # noqa: E402
from repro.runtime.program import (  # noqa: E402
    compile_plan,
    split_stage,
    stack_frames,
    stitch_stage,
    unstack_frames,
)


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
    scheme_name=st.sampled_from(("pico", "efl", "ofl", "lw", "iop")),
)
def test_property_stacked_run_segment_equals_per_tile(batch, seed, scheme_name):
    """For every stage task of a compiled plan: running the stacked
    (C, B, H, W) tile equals stacking the per-frame runs, bitwise."""
    engine = _engine("toy")
    program = compile_plan(_model("toy"), _plan("toy", scheme_name))
    rng = np.random.default_rng(seed)
    frames = [
        rng.standard_normal(_model("toy").input_shape).astype(np.float32)
        for _ in range(batch)
    ]
    stacked = stack_frames(frames)
    for stage in program.stages:
        tiles_b = split_stage(stage.tasks, stacked)
        tiles_f = [split_stage(stage.tasks, f) for f in frames]
        outs_b = []
        for t_index, (task, tile_b) in enumerate(zip(stage.tasks, tiles_b)):
            out_b = run_segment(engine, task.program, tile_b)
            per_tile = [
                run_segment(engine, task.program, tiles_f[b][t_index])
                for b in range(batch)
            ]
            assert np.array_equal(out_b, stack_frames(per_tile)), (
                f"stage {stage.index} task {t_index} ({scheme_name}, "
                f"B={batch}, seed={seed})"
            )
            outs_b.append(out_b)
        stacked = stitch_stage(stage, stage.tasks, outs_b)
        frames = unstack_frames(stacked)
