"""Differential matrix: every scheme × model family × backend.

The repo's strongest end-to-end guarantee, checked exhaustively: for
every registered scheme and a small family of architectures, the three
execution backends (in-process threads, virtual-clock simulator, local
plan executor) produce **bit-identical** feature maps — equal to the
plain ``Engine.forward_features`` reference — and report equivalent
canonical traces.  Both frame-at-a-time and with multiple frames in
flight through the serving layer.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache

import numpy as np
import pytest

from repro.cluster.device import heterogeneous_cluster
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.core import InProcTransport, PipelineSession, SimTransport
from repro.runtime.trace import Tracer, canonical_trace
from repro.schemes import available_schemes, get_scheme
from repro.schemes.local import LocalPlanExecutor
from repro.serve import PipelineServer, ServerConfig

NETWORK = NetworkModel.from_mbps(50.0)
CLUSTER = heterogeneous_cluster([1200, 1000, 800, 600])
BACKENDS = ("inproc", "sim", "local")

MODELS = {
    "toy": lambda: toy_chain(4, 1, input_hw=24, in_channels=3,
                             base_channels=8),
    "vggish": lambda: toy_chain(6, 2, input_hw=32, in_channels=3,
                                base_channels=8),
    "resnetish": lambda: get_model("resnet34", input_hw=64),
}


@lru_cache(maxsize=None)
def _model(model_key):
    return MODELS[model_key]()


@lru_cache(maxsize=None)
def _weights(model_key):
    return init_weights(_model(model_key), seed=0)


@lru_cache(maxsize=None)
def _plan(model_key, scheme_name):
    return get_scheme(scheme_name).plan(_model(model_key), CLUSTER, NETWORK)


def _engine(model_key):
    return Engine(_model(model_key), _weights(model_key))


def _frame(model_key, seed=7):
    rng = np.random.default_rng(seed)
    shape = _model(model_key).input_shape
    return rng.standard_normal(shape).astype(np.float32)


def _run_backend(backend, model_key, scheme_name, frame):
    """One frame through one backend; returns (features, canonical trace)."""
    model = _model(model_key)
    plan = _plan(model_key, scheme_name)
    if backend == "local":
        executor = LocalPlanExecutor(_engine(model_key), plan, trace=True)
        out = executor.forward_features(frame)
        return out, canonical_trace(executor.trace)
    if backend == "inproc":
        transport = InProcTransport(_engine(model_key))
    else:
        transport = SimTransport(_engine(model_key), NETWORK, compute=True)
    tracer = Tracer()
    session = PipelineSession.from_plan(model, plan, transport, tracer)
    try:
        out = session.run_frame(frame)
    finally:
        transport.close()
    return out, canonical_trace(tracer.events)


def _assert_matches_reference(out, want, scheme_name, context):
    """Served features vs the plain full-model forward.

    Spatial strip partitions (PICO, OFL) keep every accumulation shape
    identical to the reference, so they are bit-exact.  EFL and LW fuse
    layers with channel-block outputs whose GEMM shapes differ from the
    full-model call — BLAS may re-block the accumulation, so those two
    are float-close (1 ulp-scale) rather than bit-identical.
    """
    if scheme_name in ("efl", "lw"):
        np.testing.assert_allclose(
            out, want, rtol=2e-4, atol=1e-6, err_msg=context
        )
    else:
        assert np.array_equal(out, want), context


def _check_matrix_cell(model_key, scheme_name):
    frame = _frame(model_key)
    want = _engine(model_key).forward_features(frame)
    outs, traces = {}, {}
    for backend in BACKENDS:
        out, trace = _run_backend(backend, model_key, scheme_name, frame)
        _assert_matches_reference(
            out, want, scheme_name,
            f"{backend} diverged from Engine.forward_features for "
            f"{scheme_name} on {model_key}",
        )
        outs[backend] = out
        traces[backend] = trace
    # Whatever the scheme, the three backends run the same compiled
    # split/compute/stitch and must agree bit-for-bit with each other.
    assert np.array_equal(outs["inproc"], outs["sim"])
    assert np.array_equal(outs["inproc"], outs["local"])
    # The wall-clock and virtual backends emit the *same* canonical
    # sequence (the trace-smoke contract); the local executor walks the
    # same plan so its event count must agree too.
    assert traces["inproc"] == traces["sim"]
    assert len(traces["local"]) == len(traces["inproc"])


def _check_in_flight_cell(model_key, scheme_name, n_frames=3):
    """The same plan with ``n_frames`` concurrently in flight."""
    model = _model(model_key)
    plan = _plan(model_key, scheme_name)
    frames = [_frame(model_key, seed=100 + i) for i in range(n_frames)]
    engine = _engine(model_key)
    want = [engine.forward_features(f) for f in frames]
    config = ServerConfig(queue_capacity=n_frames + 1, policy="block")
    per_frame_counts = {}
    outs = {}
    for backend in ("inproc", "sim"):
        if backend == "inproc":
            transport = InProcTransport(_engine(model_key))
        else:
            transport = SimTransport(_engine(model_key), NETWORK,
                                     compute=True)
        server = PipelineServer.from_plan(
            model, plan, transport, config=config, tracer=True
        )
        result = server.serve(frames, arrivals=[0.0] * n_frames)
        server.close()
        assert len(result.completed) == n_frames
        assert not result.failed and not result.shed
        for i, w in enumerate(want):
            _assert_matches_reference(
                result.outputs[i], w, scheme_name,
                f"{backend} frame {i} diverged with {n_frames} in flight "
                f"({scheme_name} on {model_key})",
            )
        outs[backend] = result.outputs
        per_frame_counts[backend] = Counter(
            e[0] for e in canonical_trace(result.trace)
        )
    for i in range(n_frames):
        assert np.array_equal(outs["inproc"][i], outs["sim"][i])
    # Interleaving may reorder events across stages, but each frame must
    # pass through exactly the same canonical steps on both backends.
    assert per_frame_counts["inproc"] == per_frame_counts["sim"]


@pytest.mark.parametrize("scheme_name", available_schemes())
@pytest.mark.parametrize("model_key", ["toy", "vggish"])
def test_single_frame_matrix(model_key, scheme_name):
    _check_matrix_cell(model_key, scheme_name)


@pytest.mark.parametrize("scheme_name", available_schemes())
@pytest.mark.parametrize("model_key", ["toy", "vggish"])
def test_frames_in_flight_matrix(model_key, scheme_name):
    _check_in_flight_cell(model_key, scheme_name)


@pytest.mark.slow
@pytest.mark.parametrize("scheme_name", available_schemes())
def test_single_frame_matrix_resnetish(scheme_name):
    _check_matrix_cell("resnetish", scheme_name)


@pytest.mark.slow
@pytest.mark.parametrize("scheme_name", available_schemes())
def test_frames_in_flight_matrix_resnetish(scheme_name):
    _check_in_flight_cell("resnetish", scheme_name, n_frames=2)


def test_local_executor_sequential_frames_match_engine():
    """Frame-at-a-time on the local executor, several frames in a row —
    no state leaks between frames."""
    engine = _engine("toy")
    executor = LocalPlanExecutor(engine, _plan("toy", "pico"))
    for i in range(3):
        frame = _frame("toy", seed=200 + i)
        assert np.array_equal(
            executor.forward_features(frame), engine.forward_features(frame)
        )
