"""Shared fixtures: small models, clusters and networks used across the suite."""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.runtime.shm import SHM_PREFIX


@pytest.fixture
def network() -> NetworkModel:
    """The paper's 50 Mbps WiFi."""
    return NetworkModel.from_mbps(50.0)


@pytest.fixture
def fast_network() -> NetworkModel:
    """A near-free network, for isolating compute effects."""
    return NetworkModel.from_mbps(10000.0)


@pytest.fixture
def homo4():
    return pi_cluster(4, 1000)


@pytest.fixture
def homo8():
    return pi_cluster(8, 600)


@pytest.fixture
def hetero4():
    return heterogeneous_cluster([1200, 1000, 800, 600])


@pytest.fixture
def hetero8():
    return heterogeneous_cluster([1200, 1200, 800, 800, 600, 600, 600, 600])


@pytest.fixture
def small_model():
    """A 4-conv / 1-pool chain on 32×32 RGB input — fast to execute."""
    return toy_chain(4, 1, input_hw=32, in_channels=3, base_channels=8)


@pytest.fixture
def medium_model():
    """A 6-conv / 2-pool chain on 48×48 input."""
    return toy_chain(6, 2, input_hw=48, in_channels=3, base_channels=8)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True)
def _no_global_rng_use():
    """Seed-discipline guard: fail any test that draws from NumPy's
    *global* RNG (``np.random.rand`` and friends).

    Library and test code must thread explicit
    ``np.random.default_rng(seed)`` generators; a global draw makes a
    test's output depend on execution order, the classic source of
    nondeterministic suites.  The guard seeds the global state to a
    fixed value before each test and asserts it is untouched after.
    """
    np.random.seed(0)
    before = np.random.get_state()
    yield
    after = np.random.get_state()
    same = before[0] == after[0] and all(
        np.array_equal(a, b) for a, b in zip(before[1:], after[1:])
    )
    assert same, (
        "test consumed NumPy's global RNG (np.random.*) — use an "
        "explicit np.random.default_rng(seed) generator instead"
    )


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    """Resource-hygiene guard: fail any test that leaves a shared-memory
    ring segment behind in ``/dev/shm``.

    Every :class:`repro.runtime.shm.ShmRing` the creator side opens must
    be unlinked by the time the test ends — through ``close()``, the
    fault ladder, or the atexit sweep.  A leaked segment outlives the
    process and eats tmpfs until reboot, so treat it as a test failure
    (after best-effort cleanup so one leak doesn't cascade).
    """
    if not os.path.isdir("/dev/shm"):  # non-Linux: nothing to guard
        yield
        return
    pattern = f"/dev/shm/{SHM_PREFIX}*"
    before = set(glob.glob(pattern))
    yield
    leaked = set(glob.glob(pattern)) - before
    for path in leaked:
        try:
            os.unlink(path)
        except OSError:
            pass
    assert not leaked, (
        f"test leaked shared-memory segments: {sorted(leaked)} — every "
        "ShmRing creator must destroy() its rings (ShmTransport.close "
        "does this; bare rings in tests must clean up explicitly)"
    )
