"""Tests for the exhaustive BFS search and the Pareto-frontier DP."""

from __future__ import annotations

import math

import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.core.bfs import bfs_optimal
from repro.core.dp_planner import plan_homogeneous
from repro.core.heterogeneous import adapt_to_cluster
from repro.core.pareto import plan_pareto
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain


@pytest.fixture
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture
def model():
    return toy_chain(4, 1, input_hw=32)


class TestBFS:
    def test_not_worse_than_pico(self, model, net):
        cluster = heterogeneous_cluster([1200, 800, 600])
        result = bfs_optimal(model, cluster, net)
        assert result.optimal
        homo = plan_homogeneous(model, cluster, net)
        pico = plan_cost(model, adapt_to_cluster(model, homo, cluster), net)
        assert result.period <= pico.period + 1e-9

    def test_plan_valid(self, model, net):
        cluster = pi_cluster(3, 800)
        result = bfs_optimal(model, cluster, net)
        plan = result.plan
        assert plan is not None
        assert plan.stages[0].start == 0
        assert plan.stages[-1].end == model.n_units
        cost = plan_cost(model, plan, net)
        assert cost.period == pytest.approx(result.period)

    def test_deadline_returns_incumbent(self, net):
        model = toy_chain(8, 2, input_hw=64)
        cluster = heterogeneous_cluster([1200, 1000, 800, 800, 600, 600])
        result = bfs_optimal(model, cluster, net, deadline_s=0.05)
        # Either it got lucky and finished, or it reports non-optimal.
        if not result.optimal:
            assert result.elapsed_s >= 0.05

    def test_latency_budget_respected(self, model, net):
        cluster = pi_cluster(3, 800)
        free = bfs_optimal(model, cluster, net)
        budget = free.latency * 0.9
        constrained = bfs_optimal(model, cluster, net, t_lim=budget)
        if constrained.plan is not None:
            assert constrained.latency <= budget + 1e-9

    def test_max_stages_cap(self, model, net):
        cluster = pi_cluster(4, 800)
        result = bfs_optimal(model, cluster, net, max_stages=1)
        assert result.plan is not None
        assert result.plan.n_stages == 1

    def test_single_device(self, net):
        model = toy_chain(3, 0, input_hw=16)
        cluster = pi_cluster(1, 600)
        result = bfs_optimal(model, cluster, net)
        assert result.plan.n_stages == 1

    def test_device_classes_collapse_search(self, model, net):
        """Homogeneous 4 devices must explore far fewer nodes than 4
        distinct capacity classes."""
        homo = bfs_optimal(model, pi_cluster(4, 800), net)
        hetero = bfs_optimal(
            model, heterogeneous_cluster([1200, 1000, 800, 600]), net
        )
        assert homo.nodes_explored < hetero.nodes_explored


class TestPareto:
    def test_matches_dp_unconstrained(self, model, net):
        """With t_lim = inf the DP is exact, so Pareto must agree."""
        cluster = pi_cluster(4, 800)
        dp = plan_homogeneous(model, cluster, net)
        pareto = plan_pareto(model, cluster, net)
        assert pareto.period == pytest.approx(dp.period)

    def test_never_worse_than_dp_under_budget(self, net):
        model = toy_chain(6, 1, input_hw=32)
        cluster = pi_cluster(5, 800)
        free = plan_pareto(model, cluster, net)
        for factor in (0.95, 0.8, 0.65):
            t_lim = free.latency * factor if free.latency > 0 else math.inf
            dp = plan_homogeneous(model, cluster, net, t_lim=t_lim)
            pareto = plan_pareto(model, cluster, net, t_lim=t_lim)
            if pareto is None:
                assert dp is None
                continue
            assert pareto.latency <= t_lim + 1e-12
            if dp is not None:
                assert pareto.period <= dp.period + 1e-12

    def test_infeasible_returns_none(self, model, net):
        assert plan_pareto(model, pi_cluster(2, 600), net, t_lim=1e-9) is None

    def test_stages_contiguous(self, model, net):
        plan = plan_pareto(model, pi_cluster(4, 800), net)
        assert plan.stages[0].start == 0
        assert plan.stages[-1].end == model.n_units
        for a, b in zip(plan.stages, plan.stages[1:]):
            assert a.end == b.start
