"""Fast-configuration runs of every experiment harness, asserting the
paper's qualitative shapes.  The full-size sweeps live in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.cost.comm import NetworkModel
from repro.experiments import (
    fig02_layer_profile,
    fig04_fused_redundancy,
    fig08_capacity,
    fig10_latency,
    fig12_speedup,
    fig13_pico_vs_bfs,
    table1_utilization,
    table2_optimization_cost,
)
from repro.experiments.common import format_table


NET = NetworkModel.from_mbps(50.0)


class TestFig2:
    @pytest.mark.parametrize("model_name", ["vgg16", "yolov2"])
    def test_conv_dominates_compute(self, model_name):
        result = fig02_layer_profile.run(model_name)
        # Paper: 99.19% (VGG16), 99.59% (YOLOv2).
        assert result.conv_computation_share > 0.99

    def test_shares_sum_to_one(self):
        result = fig02_layer_profile.run("vgg16")
        assert sum(l.computation_share for l in result.layers) == pytest.approx(1.0)
        assert sum(l.communication_share for l in result.layers) == pytest.approx(1.0)

    def test_format_lists_layers(self):
        text = fig02_layer_profile.run("vgg16").format()
        assert "conv1_1" in text and "pool5" in text


class TestFig4:
    def test_total_flops_grow_with_devices_and_depth(self):
        result = fig04_fused_redundancy.run(
            device_counts=(1, 4, 8), fused_counts=(4, 10)
        )
        by_key = {(p.n_devices, p.n_fused_units): p for p in result.points}
        # More devices -> more total FLOPs (Fig. 4b).
        assert by_key[(8, 10)].total_gflops > by_key[(4, 10)].total_gflops
        assert by_key[(4, 10)].total_gflops > by_key[(1, 10)].total_gflops
        # Deeper fusion amplifies the redundancy ratio.
        shallow = by_key[(8, 4)].total_gflops / by_key[(8, 4)].single_device_gflops
        deep = by_key[(8, 10)].total_gflops / by_key[(8, 10)].single_device_gflops
        assert deep > shallow

    def test_per_device_flops_shrink_with_devices(self):
        result = fig04_fused_redundancy.run(device_counts=(1, 8), fused_counts=(7,))
        by_key = {(p.n_devices, p.n_fused_units): p for p in result.points}
        assert by_key[(8, 7)].per_device_gflops < by_key[(1, 7)].per_device_gflops


class TestFig8Capacity:
    def test_scheme_ordering_and_device_scaling(self):
        result = fig08_capacity.run(
            "vgg16", freqs_mhz=(600.0,), device_counts=(2, 8), sim_tasks=10
        )
        for n in (2, 8):
            periods = {
                p.scheme: p.period_s
                for p in result.points
                if p.n_devices == n and p.freq_mhz == 600.0
            }
            assert periods["PICO"] <= periods["OFL"] <= periods["EFL"]
        # PICO period improves with more devices.
        p2 = dict(result.periods("PICO", 600.0))
        assert p2[8] < p2[2]

    def test_throughput_accessor(self):
        result = fig08_capacity.run(
            "vgg16", freqs_mhz=(600.0,), device_counts=(4,), sim_tasks=10,
            include_lw=False,
        )
        thpt = result.throughput_at("PICO", 600.0, 4)
        assert thpt > result.throughput_at("EFL", 600.0, 4)
        with pytest.raises(KeyError):
            result.throughput_at("PICO", 600.0, 99)


class TestFig10Latency:
    def test_pico_flat_efl_explodes(self):
        result = fig10_latency.run(
            "vgg16", workload_fractions=(0.4, 1.2), horizon_s=300.0
        )
        efl = dict(result.series("EFL"))
        pico = dict(result.series("PICO"))
        apico = dict(result.series("APICO"))
        # EFL deteriorates much faster than PICO from 40% to 120% load...
        assert efl[1.2] / efl[0.4] > 2.0
        assert pico[1.2] / pico[0.4] < 2.0
        # ...and is far above PICO once the cluster is overloaded.
        assert efl[1.2] > 2.5 * pico[1.2]
        # APICO tracks within reach of the best static scheme.
        best = min(efl[1.2], dict(result.series("OFL"))[1.2], pico[1.2])
        assert apico[1.2] <= best * 2.0

    def test_apico_usage_reported(self):
        result = fig10_latency.run(
            "vgg16", workload_fractions=(1.2,), horizon_s=200.0
        )
        (point,) = [p for p in result.points if p.scheme == "APICO"]
        assert point.plan_usage  # non-empty usage histogram


class TestFig12Speedup:
    def test_speedup_grows_with_devices(self):
        result = fig12_speedup.run(
            model_names=("resnet34",), freqs_mhz=(600.0,), device_counts=(2, 8)
        )
        assert result.speedup_at("resnet34", 600.0, 8) > result.speedup_at(
            "resnet34", 600.0, 2
        )

    def test_resnet_speedup_band(self):
        # Paper: ~5x for ResNet34 with 8 devices.
        result = fig12_speedup.run(
            model_names=("resnet34",), freqs_mhz=(600.0,), device_counts=(8,)
        )
        s = result.speedup_at("resnet34", 600.0, 8)
        assert 3.0 < s < 8.0


class TestFig13:
    def test_bfs_at_least_as_good_and_utilised(self):
        result = fig13_pico_vs_bfs.run(sim_tasks=30, bfs_deadline_s=60.0)
        assert result.bfs_period_s <= result.pico_period_s + 1e-9
        # Paper shape: both well-utilised, BFS at least as good as PICO
        # (up to noise); absolute levels depend on the comm/compute
        # balance of the unstated toy channel widths.
        assert result.pico.average_utilization > 0.4
        assert result.bfs.average_utilization >= result.pico.average_utilization - 0.15
        text = result.format()
        assert "PICO" in text and "BFS" in text


class TestTable1:
    def test_paper_shape(self):
        result = table1_utilization.run(
            model_names=("vgg16",), sim_tasks=15
        )
        lw = result.get("vgg16", "LW")
        efl = result.get("vgg16", "EFL")
        ofl = result.get("vgg16", "OFL")
        pico = result.get("vgg16", "PICO")
        # LW: minimal redundancy, worst utilisation.
        assert lw.average_redundancy <= min(
            efl.average_redundancy, ofl.average_redundancy
        )
        assert lw.average_utilization <= min(
            efl.average_utilization, pico.average_utilization
        )
        # PICO: highest utilisation, redundancy below both fused schemes
        # (the paper's headline Table I shape).
        assert pico.average_utilization >= max(
            lw.average_utilization,
            efl.average_utilization,
            ofl.average_utilization,
        )
        assert pico.average_redundancy < min(
            efl.average_redundancy, ofl.average_redundancy
        )
        with pytest.raises(KeyError):
            result.get("vgg16", "NOPE")


class TestTable2:
    def test_pico_fast_bfs_blows_up(self):
        result = table2_optimization_cost.run(
            grid=((4, 4), (8, 4)), bfs_budget_s=30.0
        )
        for row in result.rows:
            assert row.pico_seconds < 1.0  # the paper's "< 1s" column
            if row.bfs_completed:
                assert row.period_gap >= -0.02  # ~optimal (D&C rounding tolerance)
        text = result.format()
        assert "PICO" in text


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1
