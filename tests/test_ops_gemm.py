"""Fast-kernel exactness: packed-GEMM conv and tap-max pooling against
the original reference kernels.

The fast path's contract is *bitwise* equality for ``groups == 1``
convolutions and max pooling — both lower to the identical float
operation sequence — so these tests use ``assert_array_equal``, not
allclose.  Grouped convolutions go through a batched matmul whose
per-group accumulation order may differ from the reference einsum, so
they get tolerance checks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import ops


def _rand(shape, seed):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestGemmBitExact:
    @given(
        cin=st.integers(1, 5),
        cout=st.integers(2, 6),
        kh=st.integers(1, 3),
        kw=st.integers(1, 3),
        sv=st.integers(1, 2),
        sh=st.integers(1, 2),
        top=st.integers(0, 2),
        bottom=st.integers(0, 2),
        left=st.integers(0, 2),
        right=st.integers(0, 2),
        size=st.integers(4, 10),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_gemm_equals_reference(
        self, cin, cout, kh, kw, sv, sh, top, bottom, left, right, size, seed
    ):
        """GEMM conv is bit-identical to the tensordot reference across
        kernels, strides and *asymmetric* padding (the virtual-padding
        im2col fills border taps without materialising the padded map).

        ``cout >= 2`` only: for a single output channel numpy's dot
        routes the reference's strided window operand through a
        different BLAS kernel (gemv vs gemm, 1-ULP apart), so the
        degenerate M=1 case gets a tolerance test below instead.
        """
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((cin, size, size)).astype(np.float32)
        w = rng.standard_normal((cout, cin, kh, kw)).astype(np.float32)
        b = rng.standard_normal(cout).astype(np.float32)
        pads = (top, bottom, left, right)
        got = ops.conv2d(x, w, b, (sv, sh), pads)
        want = ops.conv2d_reference(x, w, b, (sv, sh), pads)
        np.testing.assert_array_equal(got, want)

    def test_single_output_channel_float_close(self):
        """cout=1 convs (absent from every zoo model): the GEMM result
        is canonical-sgemm bits, the tensordot reference may take a
        gemv path on strided windows — equal to float32 rounding."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 4, 4)).astype(np.float32)
        w = rng.standard_normal((1, 1, 1, 2)).astype(np.float32)
        b = rng.standard_normal(1).astype(np.float32)
        got = ops.conv2d(x, w, b, (1, 2))
        want = ops.conv2d_reference(x, w, b, (1, 2))
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_no_bias_and_activationless(self):
        x, w = _rand((3, 12, 12), 0), _rand((8, 3, 3, 3), 1)
        np.testing.assert_array_equal(
            ops.conv2d(x, w, None, (1, 1), (1, 1, 1, 1)),
            ops.conv2d_reference(x, w, None, (1, 1), (1, 1, 1, 1)),
        )

    def test_padding_wider_than_input(self):
        """All-virtual rows/cols: taps that never touch the input."""
        x, w = _rand((2, 3, 3), 2), _rand((4, 2, 3, 3), 3)
        pads = (3, 3, 3, 3)
        np.testing.assert_array_equal(
            ops.conv2d(x, w, None, (2, 2), pads),
            ops.conv2d_reference(x, w, None, (2, 2), pads),
        )

    def test_packed_matches_unpacked(self):
        x, w, b = _rand((3, 10, 10), 4), _rand((5, 3, 3, 3), 5), _rand(5, 6)
        packed = ops.pack_conv_weight(w)
        got = ops.conv2d_packed(x, packed, b, (3, 3), (1, 1), (1, 1, 1, 1))
        np.testing.assert_array_equal(got, ops.conv2d(x, w, b, (1, 1), (1, 1, 1, 1)))

    def test_scratch_arenas_do_not_change_values(self):
        x, w, b = _rand((4, 9, 9), 7), _rand((6, 4, 3, 3), 8), _rand(6, 9)
        packed = ops.pack_conv_weight(w)
        plain = ops.conv2d_packed(x, packed, b, (3, 3), (1, 1), (1, 1, 1, 1))
        pad, out_pad = ops.ScratchPad(), ops.ScratchPad()
        for _ in range(3):  # arena reuse across frames must be invisible
            arena_out = ops.conv2d_packed(
                x, packed, b, (3, 3), (1, 1), (1, 1, 1, 1),
                scratch=pad, out_scratch=out_pad,
            )
            np.testing.assert_array_equal(arena_out, plain)

    def test_fused_activation_matches_post_activation(self):
        x, w, b = _rand((3, 8, 8), 10), _rand((4, 3, 3, 3), 11), _rand(4, 12)
        packed = ops.pack_conv_weight(w)
        fused = ops.conv2d_packed(
            x, packed, b, (3, 3), (1, 1), (0, 0, 0, 0), activation="relu"
        )
        unfused = ops.apply_activation(
            ops.conv2d_packed(x, packed, b, (3, 3), (1, 1), (0, 0, 0, 0)), "relu"
        )
        np.testing.assert_array_equal(fused, unfused)


class TestGroupedConv:
    @given(
        groups=st.sampled_from([2, 4]),
        mult=st.integers(1, 2),
        size=st.integers(5, 9),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_grouped_close_to_reference(self, groups, mult, size, seed):
        rng = np.random.default_rng(seed)
        cin = groups * 2
        cout = groups * mult
        x = rng.standard_normal((cin, size, size)).astype(np.float32)
        w = rng.standard_normal((cout, cin // groups, 3, 3)).astype(np.float32)
        got = ops.conv2d(x, w, None, (1, 1), (1, 1, 1, 1), groups=groups)
        want = ops.conv2d_reference(x, w, None, (1, 1), (1, 1, 1, 1), groups=groups)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    def test_depthwise(self):
        x = _rand((6, 8, 8), 13)
        w = _rand((6, 1, 3, 3), 14)
        got = ops.conv2d(x, w, None, (1, 1), (1, 1, 1, 1), groups=6)
        want = ops.conv2d_reference(x, w, None, (1, 1), (1, 1, 1, 1), groups=6)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)


class TestMaxPoolFast:
    @given(
        k=st.integers(2, 3),
        s=st.integers(1, 3),
        pad=st.integers(0, 1),
        size=st.integers(4, 11),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_tap_max_equals_reference(self, k, s, pad, size, seed):
        x = _rand((3, size, size), seed)
        pads = (pad, pad, pad, pad)
        got = ops.maxpool2d(x, (k, k), (s, s), pads)
        want = ops.maxpool2d_reference(x, (k, k), (s, s), pads)
        np.testing.assert_array_equal(got, want)

    def test_arena_output(self):
        x = _rand((4, 10, 10), 21)
        arena = ops.ScratchPad()
        got = ops.maxpool2d(x, (2, 2), (2, 2), out_scratch=arena)
        np.testing.assert_array_equal(
            got, ops.maxpool2d_reference(x, (2, 2), (2, 2))
        )


class TestInPlaceActivation:
    @pytest.mark.parametrize(
        "activation", ["relu", "leaky_relu", "relu6", "linear"]
    )
    def test_matches_out_of_place(self, activation):
        x = _rand((5, 7, 7), 30)
        want = ops.apply_activation(x.copy(), activation)
        got = ops.apply_activation_(x.copy(), activation)
        np.testing.assert_array_equal(got, want)

    def test_writes_through(self):
        x = _rand((4, 4), 31)
        out = ops.apply_activation_(x, "relu")
        assert out is x
        assert x.min() >= 0.0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            ops.apply_activation_(np.zeros(3, np.float32), "gelu")
