"""Tests for numpy tensor ops, including brute-force conv checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import ops


def brute_conv2d(x, w, b, stride, pads):
    """Reference convolution: explicit loops."""
    xp = np.pad(x, ((0, 0), (pads[0], pads[1]), (pads[2], pads[3])))
    cout, cin, kh, kw = w.shape
    sh, sw = stride
    oh = (xp.shape[1] - kh) // sh + 1
    ow = (xp.shape[2] - kw) // sw + 1
    out = np.zeros((cout, oh, ow), dtype=np.float64)
    for o in range(cout):
        for i in range(oh):
            for j in range(ow):
                window = xp[:, i * sh : i * sh + kh, j * sw : j * sw + kw]
                out[o, i, j] = np.sum(window * w[o])
    if b is not None:
        out += b[:, None, None]
    return out.astype(np.float32)


class TestConv2d:
    @given(
        cin=st.integers(1, 4),
        cout=st.integers(1, 4),
        kh=st.integers(1, 3),
        kw=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 1),
        size=st.integers(4, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_bruteforce(
        self, cin, cout, kh, kw, stride, pad, size, seed
    ):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((cin, size, size)).astype(np.float32)
        w = rng.standard_normal((cout, cin, kh, kw)).astype(np.float32)
        b = rng.standard_normal(cout).astype(np.float32)
        got = ops.conv2d(x, w, b, (stride, stride), (pad, pad, pad, pad))
        want = brute_conv2d(x, w, b, (stride, stride), (pad, pad, pad, pad))
        assert got.shape == want.shape
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_channel_mismatch_rejected(self):
        x = np.zeros((3, 8, 8), dtype=np.float32)
        w = np.zeros((4, 2, 3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            ops.conv2d(x, w, None)

    def test_no_bias(self):
        x = np.ones((1, 4, 4), dtype=np.float32)
        w = np.ones((1, 1, 2, 2), dtype=np.float32)
        out = ops.conv2d(x, w, None)
        assert np.all(out == 4.0)

    def test_non_square_kernel(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 6, 6)).astype(np.float32)
        w = rng.standard_normal((3, 2, 1, 5)).astype(np.float32)
        got = ops.conv2d(x, w, None, (1, 1), (0, 0, 2, 2))
        want = brute_conv2d(x, w, None, (1, 1), (0, 0, 2, 2))
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)
        assert got.shape == (3, 6, 6)


class TestPooling:
    def test_maxpool_basic(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = ops.maxpool2d(x, (2, 2), (2, 2))
        np.testing.assert_array_equal(out[0], [[5, 7], [13, 15]])

    def test_maxpool_padding_uses_neg_inf(self):
        x = -np.ones((1, 2, 2), dtype=np.float32)
        out = ops.maxpool2d(x, (2, 2), (2, 2), (1, 1, 1, 1))
        # Every window has at least one real value; -inf pads never win.
        assert np.all(out == -1.0)
        assert np.isfinite(out).all()

    def test_avgpool_count_include_pad(self):
        x = np.full((1, 2, 2), 4.0, dtype=np.float32)
        out = ops.avgpool2d(x, (2, 2), (2, 2), (1, 1, 1, 1))
        # Each 2x2 window holds one real 4.0 and three zeros.
        assert np.allclose(out, 1.0)

    def test_avgpool_global(self):
        x = np.arange(9, dtype=np.float32).reshape(1, 3, 3)
        out = ops.avgpool2d(x, (3, 3), (1, 1))
        assert out.shape == (1, 1, 1)
        assert np.isclose(out[0, 0, 0], 4.0)

    def test_kernel_too_big_rejected(self):
        x = np.zeros((1, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            ops.maxpool2d(x, (3, 3), (1, 1))

    def test_maxpool_non_square_input(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 7, 12)).astype(np.float32)
        got = ops.maxpool2d(x, (2, 2), (2, 2))
        want = ops.maxpool2d_reference(x, (2, 2), (2, 2))
        np.testing.assert_array_equal(got, want)
        assert got.shape == (2, 3, 6)

    def test_maxpool_non_square_kernel(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((3, 9, 9)).astype(np.float32)
        got = ops.maxpool2d(x, (2, 3), (1, 2))
        want = ops.maxpool2d_reference(x, (2, 3), (1, 2))
        np.testing.assert_array_equal(got, want)

    def test_maxpool_asymmetric_padding(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 6, 5)).astype(np.float32)
        got = ops.maxpool2d(x, (3, 3), (2, 2), (1, 0, 2, 0))
        want = ops.maxpool2d_reference(x, (3, 3), (2, 2), (1, 0, 2, 0))
        np.testing.assert_array_equal(got, want)
        assert np.isfinite(got).all()

    def test_maxpool_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            ops.maxpool2d(np.zeros((4, 4), dtype=np.float32), (2, 2), (2, 2))
        with pytest.raises(ValueError):
            ops.maxpool2d(
                np.zeros((1, 2, 1, 4, 4), dtype=np.float32), (2, 2), (2, 2)
            )

    def test_maxpool_batched_map_equals_per_frame(self):
        rng = np.random.default_rng(4)
        stacked = rng.standard_normal((3, 4, 8, 10)).astype(np.float32)
        got = ops.maxpool2d(stacked, (3, 2), (2, 2), (1, 1, 0, 1))
        want = ops.maxpool2d_reference(stacked, (3, 2), (2, 2), (1, 1, 0, 1))
        np.testing.assert_array_equal(got, want)
        for b in range(stacked.shape[1]):
            single = ops.maxpool2d(
                np.ascontiguousarray(stacked[:, b]), (3, 2), (2, 2), (1, 1, 0, 1)
            )
            np.testing.assert_array_equal(got[:, b], single)

    def test_avgpool_batched_map_equals_per_frame(self):
        rng = np.random.default_rng(5)
        stacked = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        got = ops.avgpool2d(stacked, (2, 2), (2, 2))
        for b in range(stacked.shape[1]):
            single = ops.avgpool2d(
                np.ascontiguousarray(stacked[:, b]), (2, 2), (2, 2)
            )
            np.testing.assert_array_equal(got[:, b], single)


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(ops.relu(x), [0.0, 0.0, 2.0])

    def test_leaky_relu_darknet_slope(self):
        x = np.array([-10.0, 10.0], dtype=np.float32)
        np.testing.assert_allclose(ops.leaky_relu(x), [-1.0, 10.0])

    def test_apply_activation_dispatch(self):
        x = np.array([-2.0], dtype=np.float32)
        assert ops.apply_activation(x, "relu")[0] == 0.0
        assert ops.apply_activation(x, "linear")[0] == -2.0
        assert np.isclose(ops.apply_activation(x, "leaky_relu")[0], -0.2)

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            ops.apply_activation(np.zeros(1, dtype=np.float32), "swish")


class TestBatchNorm:
    def test_normalises(self):
        x = np.full((2, 2, 2), 3.0, dtype=np.float32)
        out = ops.batch_norm(
            x,
            gamma=np.array([2.0, 1.0], dtype=np.float32),
            beta=np.array([0.0, 1.0], dtype=np.float32),
            mean=np.array([3.0, 3.0], dtype=np.float32),
            var=np.array([1.0, 1.0], dtype=np.float32),
            eps=0.0,
        )
        assert np.allclose(out[0], 0.0)
        assert np.allclose(out[1], 1.0)


class TestLinearSoftmax:
    def test_linear(self):
        w = np.array([[1.0, 2.0]], dtype=np.float32)
        b = np.array([0.5], dtype=np.float32)
        out = ops.linear(np.array([3.0, 4.0], dtype=np.float32), w, b)
        assert np.isclose(out[0], 11.5)

    def test_softmax_sums_to_one(self):
        out = ops.softmax(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        assert np.isclose(out.sum(), 1.0)
        assert out.argmax() == 2

    def test_softmax_overflow_safe(self):
        out = ops.softmax(np.array([1000.0, 1000.0], dtype=np.float32))
        assert np.allclose(out, 0.5)


class TestPad:
    def test_noop(self):
        x = np.ones((1, 2, 2), dtype=np.float32)
        assert ops.pad2d(x, (0, 0, 0, 0)) is x

    def test_pads(self):
        x = np.ones((1, 2, 2), dtype=np.float32)
        out = ops.pad2d(x, (1, 0, 0, 2))
        assert out.shape == (1, 3, 4)
        assert out[0, 0, 0] == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ops.pad2d(np.ones((1, 2, 2), dtype=np.float32), (-1, 0, 0, 0))
