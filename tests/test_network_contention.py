"""Tests for event-level WLAN contention in the simulator."""

from __future__ import annotations

import pytest

from repro.cluster.device import pi_cluster
from repro.cluster.simulator import simulate_plan
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions
from repro.models.toy import toy_chain
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme
from repro.workload.arrivals import saturation_arrivals


@pytest.fixture
def model():
    return toy_chain(6, 1, input_hw=48, in_channels=3, base_channels=8)


def measured_period(sim, warmup=5):
    trimmed = sim.steady_state(warmup)
    return 1.0 / trimmed.throughput if trimmed.throughput > 0 else float("inf")


class TestContention:
    def test_throughput_bounded_by_analytic_shared_medium(self, model):
        """With a slow WLAN, contention must push the measured period up
        to (at least) the analytic total-communication bound."""
        net = NetworkModel.from_mbps(5.0)  # comm-dominated
        cluster = pi_cluster(4, 1000)
        plan = PicoScheme().plan(model, cluster, net)
        if plan.n_stages < 2:
            pytest.skip("needs a multi-stage pipeline")
        bound = plan_cost(
            model, plan, net, CostOptions(shared_medium=True)
        ).period
        sim = simulate_plan(
            model, plan, net, saturation_arrivals(60), shared_medium=True
        )
        assert measured_period(sim) >= bound * 0.98

    def test_contention_never_faster_than_free_network(self, model):
        net = NetworkModel.from_mbps(10.0)
        cluster = pi_cluster(4, 1000)
        plan = PicoScheme().plan(model, cluster, net)
        free = simulate_plan(model, plan, net, saturation_arrivals(40))
        contended = simulate_plan(
            model, plan, net, saturation_arrivals(40), shared_medium=True
        )
        assert contended.throughput <= free.throughput * 1.001

    def test_negligible_comm_no_effect(self, model):
        """On a near-infinite network the token never binds."""
        net = NetworkModel.from_mbps(100000.0)
        cluster = pi_cluster(4, 1000)
        plan = PicoScheme().plan(model, cluster, net)
        free = simulate_plan(model, plan, net, saturation_arrivals(40))
        contended = simulate_plan(
            model, plan, net, saturation_arrivals(40), shared_medium=True
        )
        assert contended.throughput == pytest.approx(free.throughput, rel=0.02)

    def test_exclusive_plans_unchanged(self, model):
        """One-stage schemes hold the whole cluster anyway — serialising
        the network cannot change their task gap."""
        net = NetworkModel.from_mbps(20.0)
        cluster = pi_cluster(3, 800)
        plan = OptimalFusedScheme().plan(model, cluster, net)
        free = simulate_plan(model, plan, net, saturation_arrivals(20))
        contended = simulate_plan(
            model, plan, net, saturation_arrivals(20), shared_medium=True
        )
        assert contended.throughput == pytest.approx(free.throughput, rel=1e-6)

    def test_all_tasks_complete(self, model):
        net = NetworkModel.from_mbps(10.0)
        cluster = pi_cluster(4, 1000)
        plan = PicoScheme().plan(model, cluster, net)
        sim = simulate_plan(
            model, plan, net, saturation_arrivals(25), shared_medium=True
        )
        assert sim.completed == 25
        completions = [t.completion for t in sim.tasks]
        assert completions == sorted(completions)
