"""Tests for experiment result export (rows / CSV)."""

from __future__ import annotations

import csv

import pytest

from repro.experiments import (
    fig02_layer_profile,
    fig04_fused_redundancy,
    fig12_speedup,
    table2_optimization_cost,
)
from repro.experiments.export import rows_for, write_csv


class TestRowsFor:
    def test_fig2(self):
        rows = rows_for(fig02_layer_profile.run("vgg16"))
        assert len(rows) == 18
        assert set(rows[0]) == {
            "model", "layer", "kind", "computation_share", "communication_share"
        }
        assert sum(r["computation_share"] for r in rows) == pytest.approx(1.0)

    def test_fig4(self):
        result = fig04_fused_redundancy.run(
            device_counts=(1, 2), fused_counts=(4,)
        )
        rows = rows_for(result)
        assert len(rows) == 2
        assert rows[0]["n_fused_units"] == 4

    def test_fig12(self):
        result = fig12_speedup.run(
            model_names=("resnet34",), freqs_mhz=(600.0,), device_counts=(2,)
        )
        rows = rows_for(result)
        assert rows[0]["speedup"] > 1.0

    def test_table2(self):
        result = table2_optimization_cost.run(grid=((4, 4),), bfs_budget_s=10.0)
        rows = rows_for(result)
        assert rows[0]["n_layers"] == 4

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            rows_for(object())


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        rows = rows_for(fig02_layer_profile.run("vgg16"))
        path = tmp_path / "fig2.csv"
        write_csv(rows, str(path))
        with open(path) as handle:
            back = list(csv.DictReader(handle))
        assert len(back) == len(rows)
        assert back[0]["layer"] == rows[0]["layer"]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], str(tmp_path / "x.csv"))


class TestCliExperiment:
    def test_fig2_with_csv(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "out.csv"
        code = main(["experiment", "fig2", "--model", "vgg16", "--csv", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "conv1_1" in out
        assert path.exists()
