"""Tests for the network model and device/cluster descriptions."""

from __future__ import annotations

import pytest

from repro.cluster.device import (
    Cluster,
    Device,
    heterogeneous_cluster,
    pi_cluster,
    raspberry_pi,
)
from repro.cost.comm import NetworkModel, region_bytes, wifi_50mbps
from repro.partition.regions import Region


class TestNetworkModel:
    def test_from_mbps(self):
        net = NetworkModel.from_mbps(50.0)
        assert net.bandwidth_bytes_per_s == pytest.approx(6.25e6)
        assert net.mbps == pytest.approx(50.0)

    def test_transfer_time(self):
        net = NetworkModel.from_mbps(8.0)  # 1 MB/s
        assert net.transfer_time(2_000_000) == pytest.approx(2.0)

    def test_zero_bytes_free(self):
        assert wifi_50mbps().transfer_time(0) == 0.0

    def test_latency_added_per_message(self):
        net = NetworkModel.from_mbps(8.0, per_message_latency_s=0.01)
        assert net.transfer_time(1_000_000) == pytest.approx(1.01)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(0.0)

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(1.0, per_message_latency_s=-1.0)


class TestRegionBytes:
    def test_float32(self):
        assert region_bytes(16, Region.full(10, 10)) == 16 * 100 * 4

    def test_custom_width(self):
        assert region_bytes(2, Region.from_bounds(0, 3, 0, 5), bytes_per_value=2) == 60


class TestDevice:
    def test_compute_time_eq5(self):
        device = Device("d", capacity=100.0, alpha=2.0)
        assert device.compute_time(500.0) == pytest.approx(10.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Device("d", capacity=0.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Device("d", capacity=1.0, alpha=0.0)

    def test_raspberry_pi_scales_with_frequency(self):
        slow = raspberry_pi("a", 600)
        fast = raspberry_pi("b", 1200)
        assert fast.capacity == pytest.approx(2 * slow.capacity)


class TestCluster:
    def test_average_and_total(self):
        cluster = heterogeneous_cluster([1200, 800, 600, 600])
        assert cluster.total_capacity == pytest.approx(
            sum(d.capacity for d in cluster)
        )
        assert cluster.average_capacity == pytest.approx(cluster.total_capacity / 4)

    def test_homogenized_eq12(self):
        cluster = heterogeneous_cluster([1200, 600])
        homo = cluster.homogenized()
        assert len(homo) == 2
        assert all(
            d.capacity == pytest.approx(cluster.average_capacity) for d in homo
        )

    def test_fastest(self):
        cluster = heterogeneous_cluster([600, 1200, 800])
        assert cluster.fastest.capacity == raspberry_pi("x", 1200).capacity

    def test_sorted_by_capacity(self):
        cluster = heterogeneous_cluster([600, 1200, 800])
        caps = [d.capacity for d in cluster.sorted_by_capacity()]
        assert caps == sorted(caps, reverse=True)

    def test_duplicate_names_rejected(self):
        d = Device("same", 1.0)
        with pytest.raises(ValueError):
            Cluster((d, d))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster(())

    def test_pi_cluster_names_unique(self):
        cluster = pi_cluster(8, 600)
        assert len({d.name for d in cluster}) == 8
