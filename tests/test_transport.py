"""Tests for the framed TCP transport and its restricted codec."""

from __future__ import annotations

import io
import pickle
import pickletools
import socket
import struct
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.messages import Hello, TileResult, TileTask
from repro.runtime.transport import (
    MAX_FRAME_BYTES,
    Channel,
    TransportClosed,
    decode_message,
    encode_message,
    recv_message,
    send_message,
)


@pytest.fixture
def sock_pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip_simple(self, sock_pair):
        a, b = sock_pair
        send_message(a, {"x": 1, "y": [1, 2, 3]})
        assert recv_message(b) == {"x": 1, "y": [1, 2, 3]}

    def test_roundtrip_numpy(self, sock_pair):
        a, b = sock_pair
        arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        send_message(a, TileTask(7, arr, epoch=2))
        got = recv_message(b)
        assert isinstance(got, TileTask)
        assert got.task_id == 7 and got.epoch == 2
        np.testing.assert_array_equal(got.tile, arr)

    def test_multiple_messages_in_order(self, sock_pair):
        a, b = sock_pair
        for i in range(10):
            send_message(a, Hello(i))
        for i in range(10):
            assert recv_message(b).worker_id == i

    def test_large_message(self, sock_pair):
        a, b = sock_pair
        arr = np.ones((8, 256, 256), dtype=np.float32)  # 2 MB

        def sender():
            send_message(a, TileResult(1, 0, arr, 0.5))

        thread = threading.Thread(target=sender)
        thread.start()
        got = recv_message(b)
        thread.join()
        np.testing.assert_array_equal(got.tile, arr)

    def test_closed_peer_raises(self, sock_pair):
        a, b = sock_pair
        a.close()
        with pytest.raises(TransportClosed):
            recv_message(b)

    def test_partial_close_mid_frame(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x10partial")
        a.close()
        with pytest.raises(TransportClosed):
            recv_message(b)

    def test_oversized_frame_rejected(self, sock_pair):
        a, b = sock_pair
        a.sendall((1 << 40).to_bytes(8, "big"))
        with pytest.raises(ValueError):
            recv_message(b)

    def test_oversized_frame_rejected_before_allocation(self, sock_pair):
        # A corrupt length header must be refused from the header alone:
        # only 8 bytes are on the wire, so if recv_message tried to
        # allocate/receive the announced payload it would block forever.
        a, b = sock_pair
        b.settimeout(5.0)
        a.sendall((MAX_FRAME_BYTES + 1).to_bytes(8, "big"))
        with pytest.raises(ValueError, match="exceeds limit"):
            recv_message(b)

    def test_zero_length_frame_rejected(self, sock_pair):
        a, b = sock_pair
        a.sendall((0).to_bytes(8, "big"))
        with pytest.raises(ValueError, match="truncated"):
            recv_message(b)

    def test_truncated_header_raises_closed(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"\x00\x00\x00")  # 3 of 8 length bytes
        a.close()
        with pytest.raises(TransportClosed):
            recv_message(b)

    def test_peer_close_mid_payload(self, sock_pair):
        a, b = sock_pair
        payload = encode_message({"k": np.zeros((4, 4), dtype=np.float32)})
        a.sendall(len(payload).to_bytes(8, "big"))
        a.sendall(payload[: len(payload) // 2])
        a.close()
        with pytest.raises(TransportClosed):
            recv_message(b)


class TestCodec:
    def test_roundtrip_nested_structure(self):
        msg = {
            "arrays": [np.arange(6, dtype=np.int64).reshape(2, 3)],
            "tuple": (1, "two", 3.0),
            "none": None,
        }
        got = decode_message(memoryview(encode_message(msg)))
        np.testing.assert_array_equal(got["arrays"][0], msg["arrays"][0])
        assert got["tuple"] == msg["tuple"] and got["none"] is None

    def test_zero_size_array(self):
        arr = np.empty((0, 3), dtype=np.float32)
        got = decode_message(memoryview(encode_message(arr)))
        assert got.shape == (0, 3) and got.dtype == np.float32

    def test_noncontiguous_array(self):
        arr = np.arange(24, dtype=np.float64).reshape(4, 6)[::2, ::3]
        got = decode_message(memoryview(encode_message(arr)))
        np.testing.assert_array_equal(got, arr)

    def test_object_dtype_rejected_on_encode(self):
        with pytest.raises(TypeError, match="wire-safe"):
            encode_message(np.array([object()], dtype=object))

    def test_truncated_payload_rejected(self):
        payload = encode_message(np.ones((8, 8), dtype=np.float32))
        with pytest.raises(ValueError):
            decode_message(memoryview(payload[: len(payload) // 2]))

    def test_bad_codec_version_rejected(self):
        payload = bytearray(encode_message({"x": 1}))
        payload[0] = 99
        with pytest.raises(ValueError, match="codec version"):
            decode_message(memoryview(payload))

    def test_forbidden_global_rejected(self):
        # Hand-craft a frame whose skeleton pickle names os.system: the
        # restricted unpickler must refuse to resolve it.
        skeleton = pickletools.optimize(
            b"\x80\x04cos\nsystem\n."  # GLOBAL os.system
        )
        payload = struct.pack(">BI", 1, 0) + skeleton
        with pytest.raises(pickle.UnpicklingError, match="forbidden"):
            decode_message(memoryview(payload))

    def test_builtin_eval_rejected(self):
        skeleton = b"\x80\x04cbuiltins\neval\n."
        payload = struct.pack(">BI", 1, 0) + skeleton
        with pytest.raises(pickle.UnpicklingError, match="forbidden"):
            decode_message(memoryview(payload))

    def test_bad_array_reference_rejected(self):
        # A persistent id past the array table must not index random memory.
        buf = io.BytesIO()
        pickler = pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL)
        pickler.persistent_id = lambda obj: 5 if obj == "marker" else None
        pickler.dump("marker")
        payload = struct.pack(">BI", 1, 0) + buf.getvalue()
        with pytest.raises(pickle.UnpicklingError, match="bad array reference"):
            decode_message(memoryview(payload))

    @settings(max_examples=40, deadline=None)
    @given(
        dtype=st.sampled_from(
            ["f4", "f8", "i1", "i4", "i8", "u2", "u8", "c8", "?"]
        ),
        shape=st.lists(st.integers(0, 5), min_size=0, max_size=4),
    )
    def test_roundtrip_random_dtypes_shapes(self, dtype, shape):
        rng = np.random.default_rng(0)
        n = int(np.prod(shape)) if shape else 1
        arr = (rng.integers(0, 2, size=n) * rng.standard_normal(n)).astype(
            dtype
        ).reshape(shape)
        got = decode_message(memoryview(encode_message(arr)))
        assert got.dtype == arr.dtype and got.shape == arr.shape
        np.testing.assert_array_equal(got, arr)


class TestChannel:
    def test_send_recv(self, sock_pair):
        a, b = sock_pair
        ca, cb = Channel(a), Channel(b)
        ca.send("ping")
        assert cb.recv() == "ping"

    def test_close_idempotent(self, sock_pair):
        a, _ = sock_pair
        channel = Channel(a)
        channel.close()
        channel.close()  # no error

    def test_use_after_close_raises(self, sock_pair):
        a, _ = sock_pair
        channel = Channel(a)
        channel.close()
        with pytest.raises(TransportClosed):
            channel.send("x")
        with pytest.raises(TransportClosed):
            channel.recv()

    def test_context_manager(self, sock_pair):
        a, _ = sock_pair
        with Channel(a) as channel:
            pass
        with pytest.raises(TransportClosed):
            channel.send("x")
