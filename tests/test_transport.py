"""Tests for the framed TCP transport."""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.runtime.messages import Hello, TileResult, TileTask
from repro.runtime.transport import (
    Channel,
    TransportClosed,
    recv_message,
    send_message,
)


@pytest.fixture
def sock_pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip_simple(self, sock_pair):
        a, b = sock_pair
        send_message(a, {"x": 1, "y": [1, 2, 3]})
        assert recv_message(b) == {"x": 1, "y": [1, 2, 3]}

    def test_roundtrip_numpy(self, sock_pair):
        a, b = sock_pair
        arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        send_message(a, TileTask(7, arr, epoch=2))
        got = recv_message(b)
        assert isinstance(got, TileTask)
        assert got.task_id == 7 and got.epoch == 2
        np.testing.assert_array_equal(got.tile, arr)

    def test_multiple_messages_in_order(self, sock_pair):
        a, b = sock_pair
        for i in range(10):
            send_message(a, Hello(i))
        for i in range(10):
            assert recv_message(b).worker_id == i

    def test_large_message(self, sock_pair):
        a, b = sock_pair
        arr = np.ones((8, 256, 256), dtype=np.float32)  # 2 MB

        def sender():
            send_message(a, TileResult(1, 0, arr, 0.5))

        thread = threading.Thread(target=sender)
        thread.start()
        got = recv_message(b)
        thread.join()
        np.testing.assert_array_equal(got.tile, arr)

    def test_closed_peer_raises(self, sock_pair):
        a, b = sock_pair
        a.close()
        with pytest.raises(TransportClosed):
            recv_message(b)

    def test_partial_close_mid_frame(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x10partial")
        a.close()
        with pytest.raises(TransportClosed):
            recv_message(b)

    def test_oversized_frame_rejected(self, sock_pair):
        a, b = sock_pair
        a.sendall((1 << 40).to_bytes(8, "big"))
        with pytest.raises(ValueError):
            recv_message(b)


class TestChannel:
    def test_send_recv(self, sock_pair):
        a, b = sock_pair
        ca, cb = Channel(a), Channel(b)
        ca.send("ping")
        assert cb.recv() == "ping"

    def test_close_idempotent(self, sock_pair):
        a, _ = sock_pair
        channel = Channel(a)
        channel.close()
        channel.close()  # no error

    def test_use_after_close_raises(self, sock_pair):
        a, _ = sock_pair
        channel = Channel(a)
        channel.close()
        with pytest.raises(TransportClosed):
            channel.send("x")
        with pytest.raises(TransportClosed):
            channel.recv()

    def test_context_manager(self, sock_pair):
        a, _ = sock_pair
        with Channel(a) as channel:
            pass
        with pytest.raises(TransportClosed):
            channel.send("x")
