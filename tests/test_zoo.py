"""Tests pinning the model zoo against published architecture facts."""

from __future__ import annotations

import pytest

from repro.cost.flops import model_flops
from repro.models.zoo import available_models, get_model


class TestVGG16:
    def test_layer_counts_match_paper_table1(self):
        model = get_model("vgg16")
        assert model.conv_layer_count() == 13
        assert model.pool_layer_count() == 5
        assert len(model.head) == 3

    def test_final_shape(self):
        assert get_model("vgg16").final_shape == (512, 7, 7)

    def test_flops_match_published(self):
        # VGG16 is ~15.5 GMACs at 224x224.
        gmacs = model_flops(get_model("vgg16")) / 1e9
        assert 15.0 < gmacs < 16.0


class TestYOLOv2:
    def test_layer_counts_match_paper_table1(self):
        model = get_model("yolov2")
        assert model.conv_layer_count() == 23
        assert model.pool_layer_count() == 5
        assert not model.head  # 1x1 conv replaces the FC layer

    def test_input_448(self):
        assert get_model("yolov2").input_shape == (3, 448, 448)

    def test_deeper_than_vgg(self):
        # The paper: "nearly twice of VGG-16".
        yolo = get_model("yolov2")
        vgg = get_model("vgg16")
        assert yolo.n_units > 1.5 * vgg.n_units

    def test_detection_output_channels(self):
        model = get_model("yolov2")
        assert model.final_shape[0] == 5 * (5 + 80)


class TestResNet34:
    def test_block_structure(self):
        model = get_model("resnet34")
        blocks = [u for u in model.units if u.kind == "block"]
        assert len(blocks) == 16  # 3 + 4 + 6 + 3

    def test_conv_count(self):
        # 1 stem + 32 block convs + 3 downsample projections = 36.
        assert get_model("resnet34").conv_layer_count() == 36

    def test_flops_match_published(self):
        gmacs = model_flops(get_model("resnet34")) / 1e9
        assert 3.3 < gmacs < 4.0

    def test_final_shape(self):
        assert get_model("resnet34").final_shape == (512, 1, 1)


class TestInceptionV3:
    def test_block_structure(self):
        model = get_model("inception_v3")
        blocks = [u for u in model.units if u.kind == "block"]
        assert len(blocks) == 11  # 3 A + redA + 4 B + redB + 2 C

    def test_more_layers_per_block_than_resnet(self):
        # The paper's Fig. 12 explanation.
        inception = get_model("inception_v3")
        resnet = get_model("resnet34")
        inc_blocks = [u for u in inception.units if u.kind == "block"]
        res_blocks = [u for u in resnet.units if u.kind == "block"]
        inc_layers = sum(len(p) for b in inc_blocks for p in b.paths) / len(inc_blocks)
        res_layers = sum(len(p) for b in res_blocks for p in b.paths) / len(res_blocks)
        assert inc_layers > 2 * res_layers

    def test_final_channels(self):
        assert get_model("inception_v3").final_shape == (2048, 1, 1)

    def test_flops_ballpark(self):
        gmacs = model_flops(get_model("inception_v3")) / 1e9
        assert 5.0 < gmacs < 7.0  # ~5.7 published; flattened C adds a little


class TestToy:
    def test_fig13_model(self):
        model = get_model("fig13_toy")
        assert model.conv_layer_count() == 8
        assert model.pool_layer_count() == 2
        assert model.input_shape == (1, 64, 64)


class TestZoo:
    def test_available(self):
        names = available_models()
        assert {"vgg16", "yolov2", "resnet34", "inception_v3"} <= set(names)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_model("alexnet")

    def test_kwargs_forwarded(self):
        model = get_model("vgg16", input_hw=128)
        assert model.input_shape == (3, 128, 128)

    @pytest.mark.parametrize("name", ["vgg16", "yolov2", "resnet34", "inception_v3"])
    def test_shapes_consistent(self, name):
        model = get_model(name)
        # Shape inference must produce monotone non-increasing spatial dims.
        heights = [s[1] for s in model.shapes]
        assert all(a >= b for a, b in zip(heights, heights[1:]))
