"""Tests for the four parallelization schemes and their paper-expected
ordering."""

from __future__ import annotations

import pytest

from repro.cluster.device import pi_cluster
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.schemes.base import PlanningError
from repro.schemes.early_fused import EarlyFusedScheme, default_fuse_count
from repro.schemes.layer_wise import LayerWiseScheme
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme


@pytest.fixture
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture
def model():
    return toy_chain(6, 2, input_hw=64, in_channels=3)


@pytest.fixture
def cluster():
    return pi_cluster(4, 800)


class TestLayerWise:
    def test_one_phase_per_unit(self, model, cluster, net):
        plan = LayerWiseScheme().plan(model, cluster, net)
        assert plan.mode == "exclusive"
        assert plan.n_stages == model.n_units
        assert all(len(s.assignments) == len(cluster) for s in plan.stages)

    def test_cost_well_defined(self, model, cluster, net):
        plan = LayerWiseScheme().plan(model, cluster, net)
        cost = plan_cost(model, plan, net)
        assert cost.period == pytest.approx(cost.latency)
        assert cost.period > 0


class TestEarlyFused:
    def test_default_policy_fuses_early_units(self, model):
        k = default_fuse_count(model)
        assert 1 <= k < model.n_units

    def test_two_stages(self, model, cluster, net):
        plan = EarlyFusedScheme().plan(model, cluster, net)
        assert plan.mode == "exclusive"
        assert plan.n_stages == 2
        # First stage parallel, second on one (the fastest) device.
        assert len(plan.stages[0].assignments) == len(cluster)
        assert len(plan.stages[1].assignments) == 1

    def test_explicit_fuse_count(self, model, cluster, net):
        plan = EarlyFusedScheme(n_fused=3).plan(model, cluster, net)
        assert plan.stages[0].end == 3

    def test_fuse_everything(self, model, cluster, net):
        plan = EarlyFusedScheme(n_fused=model.n_units).plan(model, cluster, net)
        assert plan.n_stages == 1

    def test_overlong_fuse_rejected(self, model, cluster, net):
        with pytest.raises(PlanningError):
            EarlyFusedScheme(n_fused=model.n_units + 1).plan(model, cluster, net)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            EarlyFusedScheme(n_fused=0)


class TestOptimalFused:
    def test_exclusive_contiguous(self, model, cluster, net):
        plan = OptimalFusedScheme().plan(model, cluster, net)
        assert plan.mode == "exclusive"
        assert plan.stages[0].start == 0
        assert plan.stages[-1].end == model.n_units

    def test_not_worse_than_efl_or_lw(self, model, cluster, net):
        """OFL optimises over all fusion configurations including EFL's
        and (near) LW's, so its single-task time must be the best."""
        ofl = plan_cost(model, OptimalFusedScheme().plan(model, cluster, net), net)
        efl = plan_cost(model, EarlyFusedScheme().plan(model, cluster, net), net)
        lw = plan_cost(model, LayerWiseScheme().plan(model, cluster, net), net)
        assert ofl.latency <= efl.latency + 1e-9
        assert ofl.latency <= lw.latency + 1e-9

    def test_serial_groups_use_fastest(self, net):
        from repro.cluster.device import heterogeneous_cluster

        model = toy_chain(6, 2, input_hw=64, in_channels=3)
        cluster = heterogeneous_cluster([1200, 600, 600, 600])
        plan = OptimalFusedScheme().plan(model, cluster, net)
        for stage in plan.stages:
            if len(stage.assignments) == 1:
                assert stage.assignments[0][0].name == cluster.fastest.name


class TestPico:
    def test_pipelined_plan(self, model, cluster, net):
        plan = PicoScheme().plan(model, cluster, net)
        assert plan.mode == "pipelined"
        assert plan.stages[-1].end == model.n_units

    def test_infeasible_latency_raises(self, model, cluster, net):
        with pytest.raises(PlanningError):
            PicoScheme(t_lim=1e-12).plan(model, cluster, net)

    def test_invalid_t_lim_rejected(self):
        with pytest.raises(ValueError):
            PicoScheme(t_lim=0)

    def test_pareto_variant_at_least_as_good(self, model, cluster, net):
        dp = plan_cost(model, PicoScheme().plan(model, cluster, net), net)
        pareto = plan_cost(
            model, PicoScheme(use_pareto=True).plan(model, cluster, net), net
        )
        assert pareto.period <= dp.period + 1e-9


class TestPaperOrdering:
    """The shape the paper's Figs. 8–9 report, as invariants."""

    @pytest.mark.parametrize("model_name", ["vgg16", "yolov2"])
    def test_scheme_period_ordering(self, model_name, net):
        model = get_model(model_name)
        cluster = pi_cluster(8, 600)
        periods = {}
        for scheme in (
            LayerWiseScheme(), EarlyFusedScheme(), OptimalFusedScheme(), PicoScheme()
        ):
            plan = scheme.plan(model, cluster, net)
            periods[scheme.name] = plan_cost(model, plan, net).period
        assert periods["PICO"] < periods["OFL"] <= periods["EFL"] < periods["LW"]

    def test_pico_speedup_in_paper_band(self, net):
        """Throughput gain over EFL: 1.8–6.2x in the paper."""
        model = get_model("vgg16")
        cluster = pi_cluster(8, 600)
        efl = plan_cost(model, EarlyFusedScheme().plan(model, cluster, net), net)
        pico = plan_cost(model, PicoScheme().plan(model, cluster, net), net)
        gain = efl.period / pico.period
        assert 1.5 < gain < 8.0
