"""Tests for AOFL's per-group device-subset selection."""

from __future__ import annotations

import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.cluster.metrics import utilization_table
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.schemes.optimal_fused import OptimalFusedScheme

NET = NetworkModel.from_mbps(50.0)


def test_groups_never_exceed_cluster():
    model = toy_chain(6, 2, input_hw=64, in_channels=3)
    cluster = pi_cluster(5, 800)
    plan = OptimalFusedScheme().plan(model, cluster, NET)
    for stage in plan.stages:
        assert 1 <= len(stage.assignments) <= 5


def test_single_device_groups_use_fastest():
    model = toy_chain(6, 2, input_hw=64, in_channels=3)
    cluster = heterogeneous_cluster([1400, 600, 600])
    plan = OptimalFusedScheme().plan(model, cluster, NET)
    for stage in plan.stages:
        if len(stage.assignments) == 1:
            assert stage.assignments[0][0].name == cluster.fastest.name


def test_groups_use_fastest_prefix():
    """A k-device group must consist of the k fastest devices — adding
    a slower device never beats adding a faster one under weighted
    strips."""
    model = get_model("vgg16")
    cluster = heterogeneous_cluster([1200, 1200, 800, 800, 600, 600, 600, 600])
    plan = OptimalFusedScheme().plan(model, cluster, NET)
    ranked = [d.name for d in cluster.sorted_by_capacity()]
    for stage in plan.stages:
        names = [d.name for d in stage.devices]
        assert names == ranked[: len(names)]


def test_subset_selection_not_worse_than_all_devices():
    """Optimising the group width must beat (or match) the old
    always-all-devices AOFL."""
    from repro.cost.stage_cost import stage_time
    from repro.schemes.base import weighted_assignments

    model = get_model("yolov2")
    cluster = pi_cluster(8, 600)
    plan = OptimalFusedScheme().plan(model, cluster, NET)
    cost = plan_cost(model, plan, NET)
    # Rebuild the same cuts forced onto all 8 devices.
    all_dev_total = 0.0
    for stage in plan.stages:
        all_dev_total += stage_time(
            model, stage.start, stage.end,
            weighted_assignments(model, stage.end, cluster.devices),
            NET, with_head=stage.end == model.n_units,
        ).total
    assert cost.latency <= all_dev_total + 1e-9


def test_subset_reduces_redundancy_on_deep_models():
    """Narrower groups mean less halo: YOLOv2's OFL redundancy must be
    well below the all-device figure (~33 %)."""
    model = get_model("yolov2")
    cluster = heterogeneous_cluster([1200, 1200, 800, 800, 600, 600, 600, 600])
    plan = OptimalFusedScheme().plan(model, cluster, NET)
    table = utilization_table(model, plan, NET, scheme_name="OFL")
    assert table.average_redundancy < 0.25


def test_still_exclusive_single_task_mode():
    model = toy_chain(4, 1, input_hw=32, in_channels=3)
    plan = OptimalFusedScheme().plan(model, pi_cluster(3, 800), NET)
    assert plan.mode == "exclusive"
    cost = plan_cost(model, plan, NET)
    assert cost.period == pytest.approx(cost.latency)
