"""Property-based tests on planner invariants (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.device import pi_cluster
from repro.core.dp_planner import plan_homogeneous
from repro.core.heterogeneous import adapt_to_cluster
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain


@st.composite
def planner_instances(draw):
    n_conv = draw(st.integers(2, 6))
    n_pool = draw(st.integers(0, 2))
    hw = draw(st.sampled_from([32, 48]))
    devices = draw(st.integers(1, 5))
    freq = draw(st.sampled_from([600.0, 1000.0]))
    mbps = draw(st.sampled_from([10.0, 50.0, 200.0]))
    model = toy_chain(n_conv, n_pool, input_hw=hw, in_channels=3)
    return model, pi_cluster(devices, freq), NetworkModel.from_mbps(mbps)


class TestPlannerProperties:
    @given(instance=planner_instances())
    @settings(max_examples=15, deadline=None)
    def test_plan_structure_valid(self, instance):
        model, cluster, net = instance
        homo = plan_homogeneous(model, cluster, net)
        assert homo is not None
        assert homo.stages[0].start == 0
        assert homo.stages[-1].end == model.n_units
        for a, b in zip(homo.stages, homo.stages[1:]):
            assert a.end == b.start
        assert 1 <= homo.devices_used <= len(cluster)
        assert homo.period <= homo.latency + 1e-12

    @given(instance=planner_instances())
    @settings(max_examples=10, deadline=None)
    def test_adaptation_preserves_analytic_cost_on_homogeneous(self, instance):
        model, cluster, net = instance
        homo = plan_homogeneous(model, cluster, net)
        plan = adapt_to_cluster(model, homo, cluster)
        cost = plan_cost(model, plan, net)
        assert cost.period == pytest.approx(homo.period, rel=1e-6)
        assert cost.latency == pytest.approx(homo.latency, rel=1e-6)

    @given(
        n_conv=st.integers(3, 6),
        devices=st.integers(2, 5),
        mbps_pair=st.sampled_from([(10.0, 50.0), (20.0, 100.0), (50.0, 400.0)]),
    )
    @settings(max_examples=10, deadline=None)
    def test_period_monotone_in_bandwidth(self, n_conv, devices, mbps_pair):
        model = toy_chain(n_conv, 1, input_hw=32, in_channels=3)
        cluster = pi_cluster(devices, 800)
        slow = plan_homogeneous(model, cluster, NetworkModel.from_mbps(mbps_pair[0]))
        fast = plan_homogeneous(model, cluster, NetworkModel.from_mbps(mbps_pair[1]))
        assert fast.period <= slow.period + 1e-12

    @given(
        n_conv=st.integers(3, 6),
        base=st.integers(1, 4),
    )
    @settings(max_examples=10, deadline=None)
    def test_period_monotone_in_devices(self, n_conv, base):
        model = toy_chain(n_conv, 1, input_hw=32, in_channels=3)
        net = NetworkModel.from_mbps(50.0)
        small = plan_homogeneous(model, pi_cluster(base, 800), net)
        big = plan_homogeneous(model, pi_cluster(base + 2, 800), net)
        assert big.period <= small.period + 1e-12

    @given(
        n_conv=st.integers(3, 6),
        freq_pair=st.sampled_from([(600.0, 1200.0), (800.0, 1500.0)]),
    )
    @settings(max_examples=10, deadline=None)
    def test_period_monotone_in_frequency(self, n_conv, freq_pair):
        model = toy_chain(n_conv, 1, input_hw=32, in_channels=3)
        net = NetworkModel.from_mbps(50.0)
        slow = plan_homogeneous(model, pi_cluster(4, freq_pair[0]), net)
        fast = plan_homogeneous(model, pi_cluster(4, freq_pair[1]), net)
        assert fast.period <= slow.period + 1e-12
