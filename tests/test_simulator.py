"""Tests for the discrete-event cluster simulator."""

from __future__ import annotations

import pytest

from repro.adaptive.switcher import AdaptiveSwitcher, CandidatePlan
from repro.cluster.device import Device, pi_cluster
from repro.cluster.simulator import simulate_adaptive, simulate_plan
from repro.core.plan import PipelinePlan, StagePlan, plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.partition.regions import Region
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme
from repro.workload.arrivals import saturation_arrivals, uniform_arrivals


@pytest.fixture
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture
def model():
    return toy_chain(6, 1, input_hw=32, in_channels=3)


def simple_two_stage(model):
    d1, d2 = Device("a", 1e9), Device("b", 1e9)
    _, h2, w2 = model.out_shape(2)
    _, h, w = model.final_shape
    return PipelinePlan(
        model.name,
        (
            StagePlan(0, 3, ((d1, Region.full(h2, w2)),)),
            StagePlan(3, model.n_units, ((d2, Region.full(h, w)),)),
        ),
    )


class TestPipelinedSimulation:
    def test_single_task_latency_equals_plan_latency(self, model, net):
        plan = simple_two_stage(model)
        cost = plan_cost(model, plan, net)
        sim = simulate_plan(model, plan, net, [0.0])
        assert sim.completed == 1
        assert sim.tasks[0].latency == pytest.approx(cost.latency)

    def test_saturated_throughput_approaches_inverse_period(self, model, net):
        plan = simple_two_stage(model)
        cost = plan_cost(model, plan, net)
        n = 200
        sim = simulate_plan(model, plan, net, saturation_arrivals(n))
        assert sim.throughput == pytest.approx(1.0 / cost.period, rel=0.05)

    def test_tasks_complete_in_fifo_order(self, model, net):
        plan = simple_two_stage(model)
        sim = simulate_plan(model, plan, net, uniform_arrivals(5.0, 3.0))
        completions = [t.completion for t in sim.tasks]
        assert completions == sorted(completions)

    def test_light_load_no_waiting(self, model, net):
        plan = simple_two_stage(model)
        cost = plan_cost(model, plan, net)
        slow_rate = 0.1 / cost.period
        sim = simulate_plan(model, plan, net, uniform_arrivals(slow_rate, 60 * cost.period))
        assert all(t.waiting == pytest.approx(0.0, abs=1e-9) for t in sim.tasks)
        assert sim.avg_latency == pytest.approx(cost.latency, rel=1e-6)

    def test_overload_queue_grows(self, model, net):
        plan = simple_two_stage(model)
        cost = plan_cost(model, plan, net)
        rate = 2.0 / cost.period  # 200% load
        sim = simulate_plan(model, plan, net, uniform_arrivals(rate, 100 * cost.period))
        lat = [t.latency for t in sim.tasks]
        assert lat[-1] > lat[0] * 2  # latency keeps climbing

    def test_device_busy_accounted(self, model, net):
        """Busy time per task = compute + the device's own transfers
        (single-core CPU usage, as measured in the paper's Table I)."""
        plan = simple_two_stage(model)
        cost = plan_cost(model, plan, net)
        sim = simulate_plan(model, plan, net, [0.0])
        for sc in cost.stage_costs:
            for dc in sc.devices:
                assert sim.device_busy[dc.device.name] == pytest.approx(
                    dc.t_comp + dc.t_comm
                )


class TestExclusiveSimulation:
    def test_period_equals_latency_service(self, model, net):
        plan = OptimalFusedScheme().plan(model, pi_cluster(3, 800), net)
        cost = plan_cost(model, plan, net)
        sim = simulate_plan(model, plan, net, [0.0, 0.0])
        # Second task waits for the first: completion gap = latency.
        gap = sim.tasks[1].completion - sim.tasks[0].completion
        assert gap == pytest.approx(cost.latency, rel=1e-6)


class TestSimResultStats:
    def test_percentiles(self, model, net):
        plan = simple_two_stage(model)
        sim = simulate_plan(model, plan, net, saturation_arrivals(50))
        assert sim.percentile_latency(0) <= sim.percentile_latency(50)
        assert sim.percentile_latency(50) <= sim.percentile_latency(100)
        assert sim.percentile_latency(100) == pytest.approx(sim.max_latency)

    def test_percentile_validation(self, model, net):
        plan = simple_two_stage(model)
        sim = simulate_plan(model, plan, net, [0.0])
        with pytest.raises(ValueError):
            sim.percentile_latency(101)

    def test_empty_sim(self, model, net):
        plan = simple_two_stage(model)
        sim = simulate_plan(model, plan, net, [])
        assert sim.completed == 0
        assert sim.avg_latency == 0.0
        assert sim.throughput == 0.0

    def test_utilization_bounded(self, model, net):
        plan = simple_two_stage(model)
        sim = simulate_plan(model, plan, net, saturation_arrivals(100))
        for name in sim.device_busy:
            assert 0.0 <= sim.utilization(name) <= 1.0 + 1e-9


class TestAdaptiveSimulation:
    def test_switches_when_load_grows(self, net):
        """On VGG16 (where the one-stage OFL plan has the lower single-
        task latency), APICO must run OFL under light load and switch
        to the PICO pipeline once arrivals exceed OFL's capacity —
        the paper's Figs. 10/11 behaviour."""
        from repro.adaptive.switcher import build_apico_switcher
        from repro.models.vgg import vgg16

        model = vgg16()
        cluster = pi_cluster(8, 600)
        switcher = build_apico_switcher(model, cluster, net)
        ofl = next(c for c in switcher.candidates if c.name == "OFL")
        pico = next(c for c in switcher.candidates if c.name == "PICO")
        assert ofl.latency < pico.latency  # precondition for a crossover

        light = uniform_arrivals(0.2 / ofl.period, 40 * ofl.period)
        sim_light = simulate_adaptive(model, switcher, net, light)
        assert sim_light.plan_usage.get("OFL", 0) > sim_light.plan_usage.get(
            "PICO", 0
        )

        switcher2 = build_apico_switcher(model, cluster, net)
        heavy = uniform_arrivals(1.5 / ofl.period, 100 * ofl.period)
        sim_heavy = simulate_adaptive(model, switcher2, net, heavy)
        assert sim_heavy.plan_usage.get("PICO", 0) > sim_heavy.plan_usage.get(
            "OFL", 0
        )

    def test_single_candidate_never_switches(self, model, net):
        plan = simple_two_stage(model)
        cost = plan_cost(model, plan, net)
        switcher = AdaptiveSwitcher(
            (CandidatePlan("ONLY", plan, cost.period, cost.latency),)
        )
        sim = simulate_adaptive(model, switcher, net, saturation_arrivals(10))
        assert sim.plan_usage == {"ONLY": 10}
