"""Tests for intra-block (branch-parallel) partitioning — the paper's
future-work extension."""

from __future__ import annotations

import pytest

from repro.cluster.device import Device, pi_cluster
from repro.core.dp_planner import plan_homogeneous
from repro.core.heterogeneous import adapt_to_cluster
from repro.core.plan import PipelinePlan, StagePlan, plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import full_unit_flops
from repro.cost.stage_cost import branch_stage_time, homogeneous_stage_time
from repro.models.graph import Model
from repro.models.inception import inception_v3
from repro.models.resnet import basic_block
from repro.models.zoo import get_model
from repro.partition.branches import (
    assign_paths_lpt,
    is_branchable,
    path_flops,
    path_input_region,
    path_out_channels,
)
from repro.partition.regions import Region
from repro.schemes.pico import PicoScheme

NET = NetworkModel.from_mbps(50.0)


@pytest.fixture(scope="module")
def inception():
    return inception_v3()


def first_branchable(model):
    for idx, unit in enumerate(model.units):
        if is_branchable(unit):
            return idx
    raise AssertionError("no branchable unit")


class TestBranchable:
    def test_concat_blocks_qualify(self, inception):
        assert any(is_branchable(u) for u in inception.units)

    def test_add_blocks_do_not(self):
        assert not is_branchable(basic_block("b", 8, 8))

    def test_plain_layers_do_not(self, inception):
        assert not is_branchable(inception.units[0])


class TestPathAccounting:
    def test_path_flops_sum_to_unit(self, inception):
        idx = first_branchable(inception)
        assert sum(path_flops(inception, idx)) == pytest.approx(
            full_unit_flops(inception, idx)
        )

    def test_path_channels_sum_to_out(self, inception):
        idx = first_branchable(inception)
        assert sum(path_out_channels(inception, idx)) == (
            inception.out_shape(idx)[0]
        )

    def test_input_region_union(self, inception):
        idx = first_branchable(inception)
        unit = inception.units[idx]
        all_paths = tuple(range(len(unit.paths)))
        union = path_input_region(inception, idx, all_paths)
        for i in all_paths:
            single = path_input_region(inception, idx, (i,))
            assert union.contains(single)

    def test_non_branchable_rejected(self, inception):
        with pytest.raises(ValueError):
            path_flops(inception, 0)

    def test_empty_selection_rejected(self, inception):
        idx = first_branchable(inception)
        with pytest.raises(ValueError):
            path_input_region(inception, idx, ())


class TestLPT:
    def test_heaviest_to_fastest_first(self):
        groups = assign_paths_lpt([10.0, 1.0], [1.0, 5.0])
        # Heaviest path lands on the faster device.
        assert 0 in groups[1]

    def test_all_paths_assigned_once(self):
        groups = assign_paths_lpt([3.0, 1.0, 4.0, 1.0, 5.0], [1.0, 1.0, 1.0])
        flat = sorted(i for g in groups for i in g)
        assert flat == [0, 1, 2, 3, 4]

    def test_more_devices_than_paths(self):
        groups = assign_paths_lpt([1.0, 2.0], [1.0] * 4)
        assert sum(len(g) for g in groups) == 2

    def test_balances_normalised_load(self):
        groups = assign_paths_lpt([4.0, 4.0, 4.0, 4.0], [1.0, 1.0])
        loads = [sum(4.0 for _ in g) for g in groups]
        assert loads == [8.0, 8.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_paths_lpt([], [1.0])
        with pytest.raises(ValueError):
            assign_paths_lpt([1.0], [])
        with pytest.raises(ValueError):
            assign_paths_lpt([1.0], [0.0])


class TestBranchStageTime:
    def test_zero_redundancy(self, inception):
        idx = first_branchable(inception)
        unit = inception.units[idx]
        dev = Device("d", 1e9)
        groups = assign_paths_lpt(
            path_flops(inception, idx), [dev.capacity] * 2
        )
        cost = branch_stage_time(
            inception, idx, tuple((dev, g) for g in groups), NET
        )
        for dc in cost.devices:
            assert dc.redundancy_ratio == pytest.approx(0.0)
        assert len(unit.paths) >= 2

    def test_total_flops_conserved(self, inception):
        idx = first_branchable(inception)
        dev = Device("d", 1e9)
        groups = assign_paths_lpt(path_flops(inception, idx), [dev.capacity] * 3)
        cost = branch_stage_time(
            inception, idx, tuple((dev, g) for g in groups), NET
        )
        assert sum(dc.flops for dc in cost.devices) == pytest.approx(
            full_unit_flops(inception, idx)
        )

    def test_incomplete_coverage_rejected(self, inception):
        idx = first_branchable(inception)
        dev = Device("d", 1e9)
        with pytest.raises(ValueError):
            branch_stage_time(inception, idx, ((dev, (0,)),), NET)

    def test_branch_beats_strips_on_factorised_blocks(self, inception):
        """The 17x17 blocks with 7x1/1x7 kernels have tall halos; whole-
        path assignment must win at 8 devices (the measured motivation
        for this extension)."""
        dev = pi_cluster(8, 600).devices[0]
        wins = 0
        for idx, unit in enumerate(inception.units):
            if not is_branchable(unit):
                continue
            if inception.out_shape(idx)[1] != 17:
                continue
            strip = homogeneous_stage_time(inception, idx, idx + 1, 8, dev, NET).total
            groups = assign_paths_lpt(
                path_flops(inception, idx), [dev.capacity] * 8
            )
            branch = branch_stage_time(
                inception, idx, tuple((dev, g) for g in groups), NET
            ).total
            if branch < strip:
                wins += 1
        assert wins >= 3


class TestBranchPlans:
    def test_stageplan_validation(self):
        dev_a, dev_b = Device("a", 1.0), Device("b", 1.0)
        region = Region.full(8, 8)
        with pytest.raises(ValueError):  # multi-unit branch stage
            StagePlan(0, 2, ((dev_a, region),), path_groups=((0,),))
        with pytest.raises(ValueError):  # group/assignment mismatch
            StagePlan(0, 1, ((dev_a, region),), path_groups=((0,), (1,)))
        with pytest.raises(ValueError):  # duplicate path
            StagePlan(
                0, 1, ((dev_a, region), (dev_b, region)),
                path_groups=((0,), (0,)),
            )

    def test_allow_branch_never_worse(self):
        model = get_model("inception_v3")
        cluster = pi_cluster(8, 600)
        base = plan_homogeneous(model, cluster, NET)
        branchy = plan_homogeneous(model, cluster, NET, allow_branch=True)
        assert branchy.period <= base.period + 1e-12

    def test_adapted_branch_plan_costs_match(self):
        """If the homogeneous plan uses branch stages, adaptation must
        produce a valid plan whose cost evaluation succeeds."""
        model = get_model("inception_v3")
        cluster = pi_cluster(16, 600)
        net = NetworkModel.from_mbps(300.0)
        homo = plan_homogeneous(model, cluster, net, allow_branch=True)
        plan = adapt_to_cluster(model, homo, cluster)
        cost = plan_cost(model, plan, net)
        assert cost.period == pytest.approx(homo.period, rel=1e-6)

    def test_scheme_flag(self):
        scheme = PicoScheme(branch_parallel=True)
        assert scheme.name == "PICO+B"
        with pytest.raises(ValueError):
            PicoScheme(branch_parallel=True, use_pareto=True).plan(
                get_model("fig13_toy"), pi_cluster(2, 600), NET
            )
