"""Property-based tests for tiled compilation and region algebra.

Hypothesis drives random tile grids through the same
``split_stage`` → ``run_segment`` → ``stitch_stage`` path the runtime
uses, checking the two invariants everything else rests on:

* any rectangular partition of the output map round-trips **exactly**
  (bit-identical to the full-map forward), and
* the compiled task regions tile the output: areas sum to the full map
  with zero pairwise overlap.

Plus the 1-D receptive-field algebra those guarantees reduce to.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.cluster.device import Device
from repro.core.plan import StagePlan
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.tiles import run_segment
from repro.nn.weights import init_weights
from repro.partition.regions import (
    Interval,
    Region,
    owned_interval,
    receptive_interval,
)
from repro.runtime.program import compile_stage, split_stage, stitch_stage

MODEL = toy_chain(2, 1, input_hw=20, in_channels=3, base_channels=4)
WEIGHTS = init_weights(MODEL, seed=0)
ENGINE = Engine(MODEL, WEIGHTS)
N_UNITS = len(MODEL.units)
_, H_OUT, W_OUT = MODEL.out_shape(N_UNITS - 1)


def _grid_regions(row_cuts, col_cuts):
    """The rectangle grid induced by sorted interior cut points."""
    row_bounds = [0] + sorted(row_cuts) + [H_OUT]
    col_bounds = [0] + sorted(col_cuts) + [W_OUT]
    return [
        Region.from_bounds(r0, r1, c0, c1)
        for r0, r1 in zip(row_bounds, row_bounds[1:])
        for c0, c1 in zip(col_bounds, col_bounds[1:])
    ]


def _compile_grid(row_cuts, col_cuts):
    regions = _grid_regions(row_cuts, col_cuts)
    assignments = tuple(
        (Device(f"d{i}", 1e9), region) for i, region in enumerate(regions)
    )
    stage = StagePlan(0, N_UNITS, assignments)
    return compile_stage(MODEL, stage, 0)


cut_lists = lambda size: st.lists(
    st.integers(1, size - 1), unique=True, max_size=3
)


class TestTileGridRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        row_cuts=cut_lists(H_OUT),
        col_cuts=cut_lists(W_OUT),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_split_run_stitch_round_trips(self, row_cuts, col_cuts, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(MODEL.input_shape).astype(np.float32)
        stage = _compile_grid(row_cuts, col_cuts)

        def run_once():
            tiles = split_stage(stage.tasks, x)
            outs = [
                run_segment(ENGINE, task.program, tile)
                for task, tile in zip(stage.tasks, tiles)
            ]
            return stitch_stage(stage, stage.tasks, outs)

        stitched = run_once()
        # The tiled path itself is fully deterministic: bit-identical on
        # every run, whatever the grid.
        assert np.array_equal(stitched, run_once())
        # Against the full-map forward it is exact up to accumulation
        # order: BLAS blocks the GEMM reduction by matrix shape, so a
        # narrow tile may round the same dot product one ulp apart.
        np.testing.assert_allclose(
            stitched, ENGINE.forward_features(x), rtol=1e-5, atol=1e-6
        )

    @settings(max_examples=25, deadline=None)
    @given(row_cuts=cut_lists(H_OUT), col_cuts=cut_lists(W_OUT))
    def test_task_regions_tile_the_output(self, row_cuts, col_cuts):
        stage = _compile_grid(row_cuts, col_cuts)
        regions = [task.region for task in stage.tasks]
        assert sum(r.area for r in regions) == H_OUT * W_OUT
        full = Region.full(H_OUT, W_OUT)
        for i, a in enumerate(regions):
            assert full.contains(a)
            for b in regions[i + 1:]:
                assert a.overlap_area(b) == 0

    @settings(max_examples=25, deadline=None)
    @given(row_cuts=cut_lists(H_OUT), col_cuts=cut_lists(W_OUT))
    def test_input_tiles_cover_what_each_task_reads(self, row_cuts,
                                                    col_cuts):
        """Each task's input tile shape matches its program's region —
        the contract ``run_segment`` enforces at execution time."""
        stage = _compile_grid(row_cuts, col_cuts)
        x = np.zeros(MODEL.input_shape, dtype=np.float32)
        tiles = split_stage(stage.tasks, x)
        for task, tile in zip(stage.tasks, tiles):
            want = task.program.input_region
            assert tile.shape[1:] == (want.height, want.width)


class TestReceptiveIntervalAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(
        lo=st.integers(0, 12),
        length=st.integers(1, 8),
        kernel=st.integers(1, 5),
        stride=st.integers(1, 3),
        padding=st.integers(0, 2),
        in_size=st.integers(8, 40),
    )
    def test_receptive_window_bounds(self, lo, length, kernel, stride,
                                     padding, in_size):
        out = Interval(lo, lo + length)
        padded = receptive_interval(out, kernel, stride, padding, in_size)
        # The clipped interval lies in the real map.
        assert 0 <= padded.interval.start <= padded.interval.end <= in_size
        assert padded.pad_lo >= 0 and padded.pad_hi >= 0
        # Real rows plus virtual padding reconstruct the exact window a
        # padding-free convolution needs for this output interval.
        want = (length - 1) * stride + kernel
        assert padded.padded_length == want

    @settings(max_examples=50, deadline=None)
    @given(
        lo=st.integers(0, 8),
        left=st.integers(1, 6),
        right=st.integers(1, 6),
        kernel=st.integers(1, 5),
        stride=st.integers(1, 3),
        padding=st.integers(0, 2),
        in_size=st.integers(16, 40),
    )
    def test_adjacent_outputs_have_adjacent_receptive_hulls(
        self, lo, left, right, kernel, stride, padding, in_size
    ):
        """Splitting an output interval splits its receptive field: the
        parts' clipped intervals hull back to the whole's interval, and
        the outer padding belongs to the outer parts.

        Holds for real convolution geometry — windows that touch
        (``stride <= kernel``), padding below the kernel extent, and an
        output interval whose window fits the input map.  (With
        ``stride > kernel`` adjacent windows leave gaps and the hull
        identity fails by design.)"""
        assume(stride <= kernel)
        assume(padding < kernel)
        assume(
            (lo + left + right - 1) * stride + kernel - padding <= in_size
        )
        whole = Interval(lo, lo + left + right)
        a = Interval(lo, lo + left)
        b = Interval(lo + left, lo + left + right)
        rw = receptive_interval(whole, kernel, stride, padding, in_size)
        ra = receptive_interval(a, kernel, stride, padding, in_size)
        rb = receptive_interval(b, kernel, stride, padding, in_size)
        assert ra.interval.union_hull(rb.interval) == rw.interval
        assert ra.pad_lo == rw.pad_lo
        assert rb.pad_hi == rw.pad_hi

    @settings(max_examples=50, deadline=None)
    @given(
        cut=st.integers(1, 15),
        size=st.integers(16, 32),
        stride=st.integers(1, 3),
    )
    def test_owned_projections_are_disjoint_and_cover(self, cut, size,
                                                      stride):
        in_size = size * stride
        a = owned_interval(Interval(0, cut), stride, in_size)
        b = owned_interval(Interval(cut, size), stride, in_size)
        assert a.overlap(b) == 0
        assert a.union_hull(b) == Interval(0, in_size)


class TestIntervalAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(
        a0=st.integers(0, 20), al=st.integers(0, 10),
        b0=st.integers(0, 20), bl=st.integers(0, 10),
    )
    def test_intersect_overlap_hull_consistency(self, a0, al, b0, bl):
        a, b = Interval(a0, a0 + al), Interval(b0, b0 + bl)
        inter = a.intersect(b)
        assert len(inter) == a.overlap(b) == b.overlap(a)
        hull = a.union_hull(b)
        assert hull.contains(a) and hull.contains(b)
        assert len(hull) <= len(a) + len(b) + max(
            0, max(a.start, b.start) - min(a.end, b.end)
        )

    @settings(max_examples=50, deadline=None)
    @given(
        a0=st.integers(-5, 20), al=st.integers(0, 10),
        lo=st.integers(0, 10), span=st.integers(0, 15),
        offset=st.integers(-8, 8),
    )
    def test_clip_and_shift(self, a0, al, lo, span, offset):
        a = Interval(a0, a0 + al)
        clipped = a.clip(lo, lo + span)
        assert lo <= clipped.start <= clipped.end <= lo + span
        assert len(clipped) == a.overlap(Interval(lo, lo + span))
        shifted = a.shift(offset)
        assert len(shifted) == len(a)
        assert shifted.start == a.start + offset


def test_model_under_test_is_nontrivial():
    """Guard: the grid property exercises convs, ReLUs and a pool."""
    assert N_UNITS >= 3
    assert H_OUT >= 8 and W_OUT >= 8
    with pytest.raises(ValueError):
        Interval(3, 2)
