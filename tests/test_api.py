"""Tests for the top-level convenience API."""

from __future__ import annotations

import pytest

import repro
from repro.models.toy import toy_chain


def test_plan_defaults_to_pico_and_wifi():
    model = toy_chain(4, 1, input_hw=32, in_channels=3)
    cluster = repro.pi_cluster(4, 800)
    plan = repro.plan(model, cluster)
    assert plan.mode == "pipelined"
    assert plan.stages[-1].end == model.n_units


def test_evaluate_returns_cost():
    model = toy_chain(4, 1, input_hw=32, in_channels=3)
    cluster = repro.pi_cluster(4, 800)
    plan = repro.plan(model, cluster)
    cost = repro.evaluate(model, plan)
    assert cost.period > 0
    assert cost.latency >= cost.period


def test_plan_kwargs_forwarded():
    model = toy_chain(4, 1, input_hw=32, in_channels=3)
    cluster = repro.pi_cluster(4, 800)
    with pytest.raises(repro.schemes.PlanningError):
        repro.plan(model, cluster, t_lim=1e-12)


def test_version():
    assert repro.__version__


def test_get_model_exposed():
    assert repro.get_model("vgg16").name == "vgg16"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name
