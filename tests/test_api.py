"""Tests for the top-level convenience API."""

from __future__ import annotations

import pytest

import repro
from repro.models.toy import toy_chain


def test_plan_defaults_to_pico_and_wifi():
    model = toy_chain(4, 1, input_hw=32, in_channels=3)
    cluster = repro.pi_cluster(4, 800)
    plan = repro.plan(model, cluster)
    assert plan.mode == "pipelined"
    assert plan.stages[-1].end == model.n_units


def test_evaluate_returns_cost():
    model = toy_chain(4, 1, input_hw=32, in_channels=3)
    cluster = repro.pi_cluster(4, 800)
    plan = repro.plan(model, cluster)
    cost = repro.evaluate(model, plan)
    assert cost.period > 0
    assert cost.latency >= cost.period


def test_plan_kwargs_forwarded():
    model = toy_chain(4, 1, input_hw=32, in_channels=3)
    cluster = repro.pi_cluster(4, 800)
    with pytest.raises(repro.schemes.PlanningError):
        repro.plan(model, cluster, t_lim=1e-12)


def test_version():
    assert repro.__version__


def test_get_model_exposed():
    assert repro.get_model("vgg16").name == "vgg16"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


class TestSimulateBatched:
    def _setup(self):
        model = toy_chain(4, 1, input_hw=32, in_channels=3)
        cluster = repro.pi_cluster(4, 800)
        return model, cluster

    def test_batched_simulate_completes_everything(self):
        model, cluster = self._setup()
        sim = repro.simulate(
            model, "pico", cluster, arrivals=[0.0] * 8, max_batch=4,
        )
        assert sim.completed == 8
        assert sim.shed == ()

    def test_batching_beats_per_frame_on_exclusive_plan(self):
        # An exclusive (one-stage-at-a-time) plan cannot pipeline, so
        # back-to-back frames pay full latency each; batching amortises
        # the compute share and must finish the burst sooner.
        model, cluster = self._setup()
        arrivals = [0.0] * 8
        base = repro.simulate(model, "efl", cluster, arrivals=list(arrivals))
        batched = repro.simulate(
            model, "efl", cluster, arrivals=list(arrivals), max_batch=8,
        )
        assert batched.completed == base.completed == 8
        last = max(t.completion for t in batched.tasks)
        base_last = max(t.completion for t in base.tasks)
        assert last < base_last

    def test_max_batch_guards(self):
        model, cluster = self._setup()
        from repro.runtime.core import FaultSchedule

        with pytest.raises(ValueError, match="shared_medium"):
            repro.simulate(
                model, "pico", cluster, arrivals=[0.0], max_batch=2,
                shared_medium=True,
            )
        with pytest.raises(ValueError, match="faults"):
            repro.simulate(
                model, "pico", cluster, arrivals=[0.0], max_batch=2,
                faults=FaultSchedule().crash("pi0", at_frame=0),
            )
        with pytest.raises(ValueError, match="measured_services"):
            repro.simulate(
                model, "pico", cluster, arrivals=[0.0], max_batch=2,
                measured_services=[0.1],
            )

    def test_max_batch_with_queue_capacity_sheds(self):
        model, cluster = self._setup()
        sim = repro.simulate(
            model, "pico", cluster, arrivals=[0.0] * 10, max_batch=2,
            queue_capacity=4,
        )
        assert sim.submitted == 10
        assert len(sim.shed) > 0
        assert sim.completed + len(sim.shed) == 10
