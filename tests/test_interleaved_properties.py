"""Property tests for the IOP channel-partition algebra.

Three families, per the scheme's contracts:

* the capacity-weighted channel partition tiles ``[0, c_out)`` exactly
  and disjointly for arbitrary device counts and weights;
* de-interleaving channel slices is the exact inverse of interleaving —
  both on raw arrays and through the compiled runtime's
  ``split_stage``/``stitch_stage`` path, single-frame and batched;
* the vectorized channel cost tables agree **bit-for-bit** with the
  scalar oracle (``channel_slice_flops`` / ``channel_stage_time``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.device import Device, heterogeneous_cluster
from repro.cost.comm import NetworkModel
from repro.cost.flops import DEFAULT_OPTIONS
from repro.cost.stage_cost import channel_slice_flops, channel_stage_time
from repro.cost.tables import get_segment_table
from repro.models.toy import toy_chain
from repro.runtime.program import compile_plan, split_stage, stitch_stage
from repro.schemes import get_scheme
from repro.schemes.interleaved import channel_partition

NETWORK = NetworkModel.from_mbps(50.0)

_weights = st.lists(
    st.floats(min_value=0.05, max_value=100.0, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=8,
)


@pytest.fixture(scope="module")
def toy_model():
    return toy_chain(4, 1, input_hw=24, in_channels=3, base_channels=8)


# ---------------------------------------------------------------------------
# Partition algebra
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(c_out=st.integers(min_value=1, max_value=512), weights=_weights)
def test_property_partition_tiles_exactly(c_out, weights):
    """The intervals cover [0, c_out) disjointly, in order, one per
    device — surplus devices get empty (lo == hi) intervals."""
    groups = channel_partition(c_out, tuple(weights))
    assert len(groups) == len(weights)
    cursor = 0
    for lo, hi in groups:
        assert lo == cursor, f"gap or overlap at channel {cursor}: {groups}"
        assert hi >= lo
        cursor = hi
    assert cursor == c_out, f"partition does not reach c_out: {groups}"


@settings(max_examples=100, deadline=None)
@given(c_out=st.integers(min_value=1, max_value=256), weights=_weights)
def test_property_partition_balanced_when_weights_equal(c_out, weights):
    """Equal weights give a balanced split: slice sizes differ by at
    most one channel.  (Skewed weights may legitimately starve a slow
    device of a small c_out — its capacity share rounds to zero.)"""
    equal = tuple(1.0 for _ in weights)
    sizes = [hi - lo for lo, hi in channel_partition(c_out, equal)]
    assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# Interleave ∘ de-interleave == identity
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    c=st.integers(min_value=1, max_value=64),
    h=st.integers(min_value=1, max_value=8),
    w=st.integers(min_value=1, max_value=8),
    batch=st.integers(min_value=0, max_value=3),
    weights=_weights,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_interleave_roundtrip_identity(c, h, w, batch, weights, seed):
    """Slicing by the partition and scattering the slices back is the
    identity, bit-for-bit, for any rank (batch == 0 means (C, H, W))."""
    rng = np.random.default_rng(seed)
    shape = (c, h, w) if batch == 0 else (c, batch, h, w)
    x = rng.standard_normal(shape).astype(np.float32)
    groups = channel_partition(c, tuple(weights))
    out = np.empty_like(x)
    for lo, hi in groups:
        out[lo:hi] = x[lo:hi]
    assert np.array_equal(out, x)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_property_compiled_stitch_inverts_interleave(toy_model, seed):
    """Through the compiled runtime: for every channel-parallel stage of
    the IOP plan, stitching each task's slice of a map reassembles the
    map exactly, and every task's split input is the full map."""
    cluster = heterogeneous_cluster([1200, 1000, 800, 600])
    plan = get_scheme("iop").plan(toy_model, cluster, NETWORK)
    program = compile_plan(toy_model, plan)
    rng = np.random.default_rng(seed)
    checked = 0
    for stage in program.stages:
        if not stage.channel:
            continue
        y = rng.standard_normal(stage.out_shape).astype(np.float32)
        tiles = []
        for task in stage.tasks:
            (t_lo, t_hi, lo, hi), = task.channel_blocks
            assert (t_lo, t_hi) == (0, hi - lo)
            tiles.append(y[lo:hi])
        assert np.array_equal(stitch_stage(stage, stage.tasks, tiles), y)
        # The interleave scatter broadcasts the full input map.
        c_in, h_in, w_in = (
            toy_model.in_shape(stage.start)
        )
        x = rng.standard_normal((c_in, h_in, w_in)).astype(np.float32)
        for tile in split_stage(stage.tasks, x):
            assert np.array_equal(tile, x)
        checked += 1
    assert checked > 0, "IOP plan for the toy chain has no channel stages"


# ---------------------------------------------------------------------------
# Cost tables == scalar oracle, bit-for-bit
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    unit_index=st.integers(min_value=0, max_value=4),
    caps=st.lists(
        st.floats(min_value=100.0, max_value=2000.0, allow_nan=False),
        min_size=1,
        max_size=5,
    ),
)
def test_property_channel_cost_table_matches_oracle(toy_model, unit_index, caps):
    """`SegmentTable.channel_flops` / ``channel_stage_total`` reproduce
    the scalar ``channel_slice_flops`` / ``channel_stage_time`` exactly
    (same integers, same float operation order)."""
    devices = tuple(
        Device(f"d{i}", cap) for i, cap in enumerate(caps)
    )
    c_out = toy_model.out_shape(unit_index)[0]
    groups = channel_partition(c_out, tuple(d.capacity for d in devices))
    assignments = tuple(zip(devices, groups))
    table = get_segment_table(toy_model)
    for lo, hi in groups:
        assert float(table.channel_flops(unit_index, lo, hi)) == (
            channel_slice_flops(toy_model, unit_index, lo, hi, DEFAULT_OPTIONS)
        )
    for with_head in (False, True):
        scalar = channel_stage_time(
            toy_model, unit_index, assignments, NETWORK,
            DEFAULT_OPTIONS, with_head=with_head,
        ).total
        vectorized = table.channel_stage_total(
            unit_index, assignments, NETWORK, with_head=with_head
        )
        assert scalar == vectorized, (
            f"unit {unit_index} caps {caps} with_head={with_head}: "
            f"{scalar!r} != {vectorized!r}"
        )


def test_channel_cost_rejects_non_tiling_intervals(toy_model):
    """Both the scalar and the vectorized cost refuse a channel layout
    that leaves a gap, overlaps, or overruns c_out."""
    device = Device("d0", 1000.0)
    c_out = toy_model.out_shape(0)[0]
    table = get_segment_table(toy_model)
    for bad in (
        ((device, (1, c_out)),),          # gap at the front
        ((device, (0, c_out - 1)),),      # short of c_out
        ((device, (0, c_out + 1)),),      # overruns c_out
        ((device, (0, 2)), (device, (1, c_out))),  # overlap
    ):
        with pytest.raises(ValueError):
            channel_stage_time(toy_model, 0, bad, NETWORK)
        with pytest.raises(ValueError):
            table.channel_stage_total(0, bad, NETWORK)


def test_channel_cost_rejects_block_units():
    """Channel costs are layer-unit only: block units raise."""
    from repro.models.zoo import get_model

    model = get_model("resnet34", input_hw=64)
    block_index = next(
        i for i in range(model.n_units)
        if type(model.units[i]).__name__ == "BlockUnit"
    )
    device = Device("d0", 1000.0)
    c_out = model.out_shape(block_index)[0]
    with pytest.raises(ValueError):
        channel_slice_flops(model, block_index, 0, c_out)
    with pytest.raises(ValueError):
        get_segment_table(model).channel_stage_total(
            block_index, ((device, (0, c_out)),), NETWORK
        )
