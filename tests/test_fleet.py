"""Multi-tenant fleet serving: pool, scheduler, grants, bit-exactness.

The fleet layer's contract, from four angles:

* **Device pool** — leases are idempotent, occupancy scales effective
  capacity, death voids leases fleet-wide.
* **Scheduling** — placement is priority-ordered and SLO-aware; shared
  devices are costed at occupancy-scaled capacity; churn re-places a
  tenant over the survivors.
* **Isolation** — a tenant co-scheduled with others produces outputs
  bit-identical to the same tenant running alone on the same plan, on
  every backend (the repo's core invariant lifted fleet-wide).
* **Churn accounting** — one device death strands every affected
  tenant; each replans through the shared scheduler and no frame is
  silently lost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.switcher import build_apico_switcher
from repro.cluster.device import (
    DeviceLease,
    DevicePool,
    heterogeneous_cluster,
    pi_cluster,
)
from repro.cost.comm import NetworkModel
from repro.fleet import (
    FleetScheduler,
    FleetServer,
    ModelRegistry,
    TenantClass,
)
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.runtime.core import InProcTransport, SimTransport
from repro.runtime.faults import FaultSchedule, RuntimeConfig
from repro.schemes.base import PlanningError
from repro.schemes.layer_wise import LayerWiseScheme
from repro.schemes.pico import PicoScheme
from repro.serve import PipelineServer


@pytest.fixture(scope="module")
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture(scope="module")
def cluster():
    return heterogeneous_cluster([1200.0, 1000.0, 800.0, 600.0])


@pytest.fixture(scope="module")
def small_model():
    return toy_chain(4, 1, input_hw=24, in_channels=3, base_channels=8)


@pytest.fixture(scope="module")
def big_model():
    return toy_chain(6, 2, input_hw=32, in_channels=3, base_channels=8)


@pytest.fixture(scope="module")
def registry(small_model, big_model):
    reg = ModelRegistry()
    reg.register("small", small_model)
    reg.register("big", big_model)
    return reg


def _frames(model, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(model.input_shape).astype(np.float32)
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# DevicePool: leases, occupancy, effective capacity, death
# ---------------------------------------------------------------------------


class TestDevicePool:
    def test_lease_scales_effective_capacity(self, cluster):
        pool = DevicePool(cluster)
        name = cluster.devices[0].name
        nominal = cluster.devices[0].capacity
        assert pool.effective(name).capacity == nominal
        pool.lease("a", (name,))
        pool.lease("b", (name,))
        assert pool.occupancy(name) == 2
        assert pool.effective(name).capacity == pytest.approx(nominal / 2)
        # preview: what a third holder would see before committing
        preview = pool.effective(name, extra_holders=1)
        assert preview.capacity == pytest.approx(nominal / 3)

    def test_lease_idempotent_and_release(self, cluster):
        pool = DevicePool(cluster)
        name = cluster.devices[0].name
        first = pool.lease("a", (name,))
        again = pool.lease("a", (name,))
        assert pool.occupancy(name) == 1
        assert first[0].share == again[0].share == 1.0
        pool.release("a")
        assert pool.occupancy(name) == 0
        assert pool.devices_of("a") == ()

    def test_lease_rejects_dead_and_unknown(self, cluster):
        pool = DevicePool(cluster)
        victim = cluster.devices[1].name
        pool.mark_dead(victim)
        with pytest.raises(ValueError):
            pool.lease("a", (victim,))
        with pytest.raises(KeyError):
            pool.lease("a", ("no-such-device",))

    def test_death_voids_leases_and_names_tenants(self, cluster):
        pool = DevicePool(cluster)
        victim = cluster.devices[0].name
        other = cluster.devices[1].name
        pool.lease("a", (victim, other))
        pool.lease("b", (victim,))
        pool.lease("c", (other,))
        affected = pool.mark_dead(victim)
        assert sorted(affected) == ["a", "b"]
        assert victim in pool.dead
        assert pool.occupancy(victim) == 0
        assert all(d.name != victim for d in pool.alive())

    def test_candidates_prefer_idle_then_fast(self, cluster):
        pool = DevicePool(cluster)
        fastest = pool.candidates()[0]
        assert fastest.capacity == max(d.capacity for d in cluster.devices)
        pool.lease("a", (fastest.name,))
        assert pool.candidates()[0].name != fastest.name

    def test_lease_share_validation(self, cluster):
        with pytest.raises(ValueError):
            DeviceLease(cluster.devices[0], "a", 0.0)
        with pytest.raises(ValueError):
            DeviceLease(cluster.devices[0], "a", 1.5)


# ---------------------------------------------------------------------------
# TenantClass / ModelRegistry plumbing
# ---------------------------------------------------------------------------


class TestTenantClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantClass("", "m", rate=1.0, slo=1.0)
        with pytest.raises(ValueError):
            TenantClass("t", "m", rate=0.0, slo=1.0)
        with pytest.raises(ValueError):
            TenantClass("t", "m", rate=1.0, slo=0.0)
        with pytest.raises(ValueError):
            TenantClass("t", "m", rate=1.0, slo=1.0, policy="drop")
        with pytest.raises(ValueError):
            TenantClass("t", "m", rate=1.0, slo=1.0, queue_capacity=0)
        with pytest.raises(ValueError):
            TenantClass(
                "t", "m", rate=1.0, slo=1.0, min_devices=3, max_devices=2
            )

    def test_server_config(self):
        tenant = TenantClass(
            "t", "m", rate=1.0, slo=1.0, policy="block", queue_capacity=4
        )
        cfg = tenant.server_config(max_batch=2, batch_timeout=0.1)
        assert cfg.queue_capacity == 4
        assert cfg.policy == "block"
        assert cfg.max_batch == 2
        assert cfg.batch_timeout == 0.1


class TestModelRegistry:
    def test_register_idempotent_same_model(self, small_model):
        reg = ModelRegistry()
        entry = reg.register("m", small_model)
        assert reg.register("m", small_model) is entry
        assert "m" in reg and len(reg) == 1

    def test_register_conflict_raises(self, small_model, big_model):
        reg = ModelRegistry()
        reg.register("m", small_model)
        with pytest.raises(ValueError):
            reg.register("m", big_model)

    def test_get_unknown_lists_names(self, small_model):
        reg = ModelRegistry()
        reg.register("m", small_model)
        with pytest.raises(KeyError, match="m"):
            reg.get("nope")

    def test_compile_is_cached(self, small_model, cluster, net):
        reg = ModelRegistry()
        reg.register("m", small_model)
        plan = PicoScheme().plan(small_model, cluster, net)
        assert reg.compile("m", plan) is reg.compile("m", plan)


# ---------------------------------------------------------------------------
# FleetScheduler: SLO-aware placement, contention, churn
# ---------------------------------------------------------------------------


class TestFleetScheduler:
    def _tenants(self):
        return [
            TenantClass("alpha", "big", rate=2.0, slo=5.0, priority=1),
            TenantClass("beta", "small", rate=4.0, slo=5.0),
        ]

    def test_place_two_tenants(self, registry, cluster, net):
        sched = FleetScheduler(registry, cluster, net)
        placements = sched.place(self._tenants())
        assert set(placements) == {"alpha", "beta"}
        for name, pl in placements.items():
            assert pl.meets_slo, f"{name}: {pl.estimate} vs SLO"
            assert pl.devices == sched.grant_of(name)
            assert set(d.name for d in pl.plan.all_devices) <= set(pl.devices)

    def test_higher_priority_places_first(self, registry, cluster, net):
        sched = FleetScheduler(registry, cluster, net)
        placements = sched.place(self._tenants())
        fastest = max(cluster.devices, key=lambda d: d.capacity).name
        # alpha (priority 1) got first pick of the idle pool, so the
        # fastest device is in its grant unless it fit somewhere smaller
        assert fastest in placements["alpha"].devices

    def test_shared_device_is_costed_slower(self, registry, net):
        solo_cluster = pi_cluster(1, 1000.0)
        tenant_a = TenantClass("a", "small", rate=1.0, slo=60.0)
        tenant_b = TenantClass("b", "small", rate=1.0, slo=60.0)
        alone = FleetScheduler(registry, solo_cluster, net)
        alone_pl = alone.place([tenant_a])["a"]
        shared = FleetScheduler(registry, solo_cluster, net)
        shared_pl = shared.place([tenant_a, tenant_b])
        assert shared.pool.occupancy(solo_cluster.devices[0].name) == 2
        # both tenants share the only device: the re-costed period
        # prices the halved effective capacity
        assert shared_pl["a"].period > alone_pl.period

    def test_unregistered_model_raises(self, registry, cluster, net):
        sched = FleetScheduler(registry, cluster, net)
        with pytest.raises(KeyError):
            sched.place([TenantClass("x", "mystery", rate=1.0, slo=1.0)])

    def test_death_and_replacement(self, registry, cluster, net):
        sched = FleetScheduler(registry, cluster, net)
        placements = sched.place(self._tenants())
        victim = placements["alpha"].devices[0]
        affected = sched.on_device_dead(victim)
        assert "alpha" in affected
        assert sched.on_device_dead(victim) == ()  # idempotent
        replaced = sched.replace_tenant("alpha")
        assert victim not in replaced.devices
        assert sched.placements["alpha"] is replaced
        assert all(d != victim for d in sched.pool.devices_of("alpha"))

    def test_no_live_devices_raises(self, registry, net):
        solo_cluster = pi_cluster(1, 1000.0)
        sched = FleetScheduler(registry, solo_cluster, net)
        sched.place([TenantClass("a", "small", rate=1.0, slo=60.0)])
        sched.on_device_dead(solo_cluster.devices[0].name)
        with pytest.raises(PlanningError):
            sched.replace_tenant("a")


# ---------------------------------------------------------------------------
# AdaptiveSwitcher fleet grants
# ---------------------------------------------------------------------------


class TestSwitcherGrant:
    def test_grant_restricts_candidates(self, small_model, cluster, net):
        switcher = build_apico_switcher(small_model, cluster, net)
        all_devices = {
            d.name for c in switcher.candidates for d in c.plan.all_devices
        }
        assert switcher.granted is None
        switcher.grant(all_devices)
        single = {
            d.name
            for c in switcher.candidates
            if len(c.plan.all_devices) == 1
            for d in c.plan.all_devices
        }
        some = next(iter(single))
        switcher.grant((some,))
        assert all(
            d.name == some for d in switcher.active.plan.all_devices
        )
        switcher.grant(None)
        assert switcher.granted is None

    def test_impossible_grant_raises_and_resets(
        self, small_model, cluster, net
    ):
        switcher = build_apico_switcher(small_model, cluster, net)
        with pytest.raises(ValueError):
            switcher.grant(("no-such-device",))
        assert switcher.granted is None  # failed grant does not stick


# ---------------------------------------------------------------------------
# Fleet serving: co-scheduled output == running alone (bit-exact)
# ---------------------------------------------------------------------------


def _fleet_parent(backend, registry, net):
    entry = registry.get("big")
    if backend == "inproc":
        return InProcTransport(entry.engine)
    return SimTransport(entry.engine, net, compute=True)


def _alone_transport(backend, entry, net):
    if backend == "inproc":
        return InProcTransport(Engine(entry.model, entry.weights))
    return SimTransport(Engine(entry.model, entry.weights), net, compute=True)


class TestFleetDifferential:
    """Tenants co-scheduled on a shared pool stay bit-identical to the
    same tenant serving alone on the same plan — different models and
    different schemes sharing one parent transport."""

    N_FRAMES = 3

    @pytest.mark.parametrize("backend", ["inproc", "sim"])
    def test_two_tenants_bit_identical_to_alone(
        self, registry, cluster, net, backend
    ):
        tenants = [
            TenantClass("alpha", "big", rate=2.0, slo=10.0, priority=1),
            TenantClass("beta", "small", rate=4.0, slo=10.0),
        ]
        schemes = {"alpha": PicoScheme(), "beta": LayerWiseScheme()}
        scheduler = FleetScheduler(registry, cluster, net)
        parent = _fleet_parent(backend, registry, net)
        workloads = {
            "alpha": (
                _frames(registry.get("big").model, self.N_FRAMES, seed=1),
                [0.0] * self.N_FRAMES,
            ),
            "beta": (
                _frames(registry.get("small").model, self.N_FRAMES, seed=2),
                [0.0] * self.N_FRAMES,
            ),
        }
        with FleetServer(registry, scheduler, parent) as fleet:
            placements = fleet.admit(tenants, schemes=schemes)
            result = fleet.serve(workloads)

        for tenant in tenants:
            shared = result.tenants[tenant.name].result
            assert len(shared.completed) == self.N_FRAMES
            entry = registry.get(tenant.model)
            program = registry.compile(
                tenant.model, placements[tenant.name].plan
            )
            alone_server = PipelineServer(
                program,
                _alone_transport(backend, entry, net),
                tenant.server_config(),
            )
            try:
                alone = alone_server.serve(
                    workloads[tenant.name][0],
                    arrivals=workloads[tenant.name][1],
                )
            finally:
                alone_server.close()
            for i in range(self.N_FRAMES):
                assert np.array_equal(
                    shared.outputs[i], alone.outputs[i]
                ), (
                    f"{tenant.name} frame {i} differs co-scheduled vs "
                    f"alone on {backend}"
                )

    @pytest.mark.slow
    def test_two_tenants_bit_identical_over_shm(self, registry, cluster, net):
        from repro.runtime.coordinator import ShmTransport

        tenants = [
            TenantClass("alpha", "big", rate=2.0, slo=10.0, priority=1),
            TenantClass("beta", "small", rate=4.0, slo=10.0),
        ]
        scheduler = FleetScheduler(registry, cluster, net)
        big = registry.get("big")
        parent = ShmTransport(big.model, big.weights)
        workloads = {
            "alpha": ( _frames(big.model, 2, seed=1), [0.0, 0.0]),
            "beta": (
                _frames(registry.get("small").model, 2, seed=2),
                [0.0, 0.0],
            ),
        }
        try:
            with FleetServer(registry, scheduler, parent) as fleet:
                placements = fleet.admit(tenants)
                result = fleet.serve(workloads)
        finally:
            parent.close()
        for tenant in tenants:
            shared = result.tenants[tenant.name].result
            assert len(shared.completed) == 2
            entry = registry.get(tenant.model)
            program = registry.compile(
                tenant.model, placements[tenant.name].plan
            )
            alone_t = ShmTransport(entry.model, entry.weights)
            alone_server = PipelineServer(
                program, alone_t, tenant.server_config()
            )
            try:
                alone = alone_server.serve(
                    workloads[tenant.name][0],
                    arrivals=workloads[tenant.name][1],
                )
            finally:
                alone_server.close()
            for i in range(2):
                assert np.array_equal(shared.outputs[i], alone.outputs[i])


# ---------------------------------------------------------------------------
# Fleet churn: one death, every affected tenant replans, nothing lost
# ---------------------------------------------------------------------------


class TestFleetChurn:
    def test_death_replans_both_tenants_no_silent_loss(
        self, registry, net
    ):
        cluster = heterogeneous_cluster([1000.0, 800.0])
        # min_devices=2 forces both tenants onto both devices, so one
        # death strands them both
        tenants = [
            TenantClass(
                "alpha", "big", rate=1.0, slo=60.0, priority=1,
                min_devices=2,
            ),
            TenantClass(
                "beta", "small", rate=1.0, slo=60.0, min_devices=2,
            ),
        ]
        # scout the deterministic placement to pick a victim both hold
        scout = FleetScheduler(registry, cluster, net)
        scout_pl = scout.place(tenants)
        victims = set(scout_pl["alpha"].devices) & set(
            scout_pl["beta"].devices
        )
        assert victims, "tenants must overlap for a fleet-wide death"
        victim = sorted(victims)[0]
        faults = FaultSchedule().crash(victim, at_frame=1)
        scheduler = FleetScheduler(registry, cluster, net)

        big = registry.get("big")
        parent = InProcTransport(big.engine, faults=faults)
        n = 4
        workloads = {
            "alpha": (_frames(big.model, n, seed=3), [0.0] * n),
            "beta": (
                _frames(registry.get("small").model, n, seed=4),
                [0.0] * n,
            ),
        }
        with FleetServer(
            registry, scheduler, parent, runtime_config=RuntimeConfig()
        ) as fleet:
            placements = fleet.admit(tenants)
            result = fleet.serve(workloads)

        assert victim in scheduler.pool.dead
        for tenant in tenants:
            res = result.tenants[tenant.name].result
            accounted = (
                len(res.completed) + len(res.shed) + len(res.failed)
            )
            assert res.submitted == n and accounted == n, (
                f"{tenant.name}: silent frame loss"
            )
            assert not res.failed and not res.shed
            # outputs still correct: replayed frames ran on the
            # re-planned geometry, so float-close rather than bit-equal
            entry = registry.get(tenant.model)
            baseline_server = PipelineServer(
                registry.compile(tenant.model, placements[tenant.name].plan),
                InProcTransport(Engine(entry.model, entry.weights)),
                tenant.server_config(),
            )
            try:
                baseline = baseline_server.serve(
                    workloads[tenant.name][0],
                    arrivals=workloads[tenant.name][1],
                )
            finally:
                baseline_server.close()
            for i in range(n):
                assert np.allclose(
                    res.outputs[i], baseline.outputs[i], atol=1e-4
                ), f"{tenant.name} frame {i} corrupted by fleet churn"
            # both tenants moved off the victim
            assert victim not in scheduler.grant_of(tenant.name)
