"""Tests for per-device memory accounting."""

from __future__ import annotations

import pytest

from repro.cluster.device import pi_cluster
from repro.cost.comm import NetworkModel
from repro.cost.memory import (
    MemoryError_,
    check_memory,
    plan_memory,
    segment_activation_bytes,
    segment_weight_bytes,
)
from repro.models.graph import Model, chain_model
from repro.models.layers import ConvSpec, DenseSpec, conv3x3
from repro.models.resnet import basic_block
from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.partition.regions import Region
from repro.schemes.early_fused import EarlyFusedScheme
from repro.schemes.pico import PicoScheme

NET = NetworkModel.from_mbps(50.0)


class TestWeightBytes:
    def test_counts_conv_params(self):
        model = chain_model("m", (3, 8, 8), [conv3x3("c", 3, 4)])
        # 4*3*9 weights + 4 biases, float32.
        assert segment_weight_bytes(model, 0, 1) == (108 + 4) * 4

    def test_head_charged_to_last_segment(self):
        model = chain_model(
            "m", (3, 8, 8), [conv3x3("c1", 3, 4), conv3x3("c2", 4, 4)],
            head=[DenseSpec("fc", 256, 10)],
        )
        first = segment_weight_bytes(model, 0, 1)
        last = segment_weight_bytes(model, 1, 2)
        head_bytes = (256 * 10 + 10) * 4
        assert last - head_bytes == (4 * 4 * 9 + 4) * 4
        assert first == (4 * 3 * 9 + 4) * 4

    def test_block_internals_counted(self):
        model = Model("m", (4, 8, 8), (basic_block("b", 4, 4),))
        got = segment_weight_bytes(model, 0, 1)
        expected_params = sum(
            info.layer.weight_count for info in model.iter_layers()
        )
        assert got == expected_params * 4

    def test_pools_free(self):
        model = toy_chain(1, 1, input_hw=16)
        conv_only = segment_weight_bytes(model, 0, 1)
        with_pool = segment_weight_bytes(model, 0, 2)
        assert conv_only == with_pool


class TestActivationBytes:
    def test_single_conv(self):
        model = chain_model("m", (3, 8, 8), [conv3x3("c", 3, 4)])
        got = segment_activation_bytes(model, 0, 1, Region.full(8, 8))
        assert got == (3 * 64 + 4 * 64) * 4

    def test_smaller_region_less_memory(self):
        model = toy_chain(3, 1, input_hw=32)
        _, h, w = model.final_shape
        full = segment_activation_bytes(model, 0, model.n_units, Region.full(h, w))
        half = segment_activation_bytes(
            model, 0, model.n_units, Region.from_bounds(0, h // 2, 0, w)
        )
        assert half < full

    def test_empty_region_zero(self):
        model = toy_chain(2, 0, input_hw=16)
        assert segment_activation_bytes(
            model, 0, 1, Region.from_bounds(3, 3, 0, 16)
        ) == 0

    def test_block_holds_union_plus_paths(self):
        model = Model("m", (4, 8, 8), (basic_block("b", 4, 4),))
        got = segment_activation_bytes(model, 0, 1, Region.full(8, 8))
        # At merge time: union input (4x8x8 + halo -> full map) plus two
        # path outputs of 4x8x8 each.
        assert got >= (4 * 64 + 2 * 4 * 64) * 4


class TestPlanMemory:
    def test_fused_depth_raises_per_device_weights(self):
        """Fusing more layers means each device stores more weights —
        DeepThings' memory argument, inverted."""
        model = get_model("vgg16")
        cluster = pi_cluster(4, 600)
        shallow = EarlyFusedScheme(n_fused=4).plan(model, cluster, NET)
        deep = EarlyFusedScheme(n_fused=10).plan(model, cluster, NET)
        shallow_mem = {m.device_name: m for m in plan_memory(model, shallow)}
        deep_mem = {m.device_name: m for m in plan_memory(model, deep)}
        # The parallel-prefix devices hold strictly more weights when
        # the fused prefix deepens.
        name = shallow.stages[0].assignments[1][0].name
        assert deep_mem[name].weight_bytes > shallow_mem[name].weight_bytes

    def test_pipeline_splits_weights(self):
        """PICO's stages split the model: no device holds all weights."""
        model = get_model("vgg16")
        cluster = pi_cluster(8, 600)
        plan = PicoScheme().plan(model, cluster, NET)
        total_weights = segment_weight_bytes(model, 0, model.n_units)
        for entry in plan_memory(model, plan):
            assert entry.weight_bytes < total_weights

    def test_report_covers_all_devices(self):
        model = toy_chain(4, 1, input_hw=32, in_channels=3)
        cluster = pi_cluster(3, 800)
        plan = PicoScheme().plan(model, cluster, NET)
        report = plan_memory(model, plan)
        assert {m.device_name for m in report} == {
            d.name for d in plan.all_devices
        }


class TestCheckMemory:
    def test_passes_with_big_budget(self):
        model = toy_chain(4, 1, input_hw=32, in_channels=3)
        plan = PicoScheme().plan(model, pi_cluster(3, 800), NET)
        report = check_memory(model, plan, budget_bytes=1 << 30)
        assert report

    def test_rejects_tiny_budget(self):
        model = toy_chain(4, 1, input_hw=32, in_channels=3)
        plan = PicoScheme().plan(model, pi_cluster(3, 800), NET)
        with pytest.raises(MemoryError_):
            check_memory(model, plan, budget_bytes=16)

    def test_per_device_budgets(self):
        model = toy_chain(4, 1, input_hw=32, in_channels=3)
        plan = PicoScheme().plan(model, pi_cluster(3, 800), NET)
        report = plan_memory(model, plan)
        budgets = {m.device_name: m.total_bytes for m in report}
        assert check_memory(model, plan, budgets)  # exact budgets pass
        victim = report[0].device_name
        budgets[victim] -= 1
        with pytest.raises(MemoryError_, match=victim.replace("@", ".")):
            check_memory(model, plan, budgets)

    def test_unlisted_devices_unchecked(self):
        model = toy_chain(4, 1, input_hw=32, in_channels=3)
        plan = PicoScheme().plan(model, pi_cluster(3, 800), NET)
        assert check_memory(model, plan, budget_bytes={"nonexistent": 1})
