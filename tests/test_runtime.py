"""Integration tests: the multiprocess runtime against local inference.

These spawn real worker processes and move tensors over TCP — the
distributed output must be bit-close to single-process execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.cost.comm import NetworkModel
from repro.models.graph import Model
from repro.models.resnet import basic_block
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.coordinator import DistributedPipeline, StageFailure
from repro.schemes.early_fused import EarlyFusedScheme
from repro.schemes.pico import PicoScheme


NET = NetworkModel.from_mbps(50.0)


@pytest.fixture
def model():
    return toy_chain(6, 1, input_hw=40, in_channels=3, base_channels=8)


@pytest.fixture
def weights(model):
    return init_weights(model, seed=5)


def reference_outputs(model, weights, xs):
    engine = Engine(model, weights)
    return [engine.forward_features(x) for x in xs]


def make_inputs(model, n, seed=9):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(model.input_shape).astype(np.float32) for _ in range(n)]


class TestPipelinedExecution:
    def test_matches_local_inference(self, model, weights):
        cluster = heterogeneous_cluster([1200, 1000, 800, 600])
        plan = PicoScheme().plan(model, cluster, NET)
        xs = make_inputs(model, 4)
        refs = reference_outputs(model, weights, xs)
        with DistributedPipeline(model, plan, weights=weights) as pipe:
            outs, stats = pipe.run_batch(xs)
        for out, ref in zip(outs, refs):
            np.testing.assert_allclose(out, ref, atol=1e-4, rtol=1e-4)
        assert len(stats.latencies) == 4
        assert stats.throughput > 0

    def test_block_model_distributed(self, rng):
        model = Model(
            "resblocks", (4, 24, 24),
            (basic_block("b1", 4, 8, stride=2), basic_block("b2", 8, 8)),
        )
        weights = init_weights(model, seed=2)
        plan = PicoScheme().plan(model, pi_cluster(2, 1000), NET)
        xs = [rng.standard_normal(model.input_shape).astype(np.float32) for _ in range(2)]
        refs = reference_outputs(model, weights, xs)
        with DistributedPipeline(model, plan, weights=weights) as pipe:
            outs, _ = pipe.run_batch(xs)
        for out, ref in zip(outs, refs):
            np.testing.assert_allclose(out, ref, atol=1e-4, rtol=1e-4)

    def test_submit_collect_interleaved(self, model, weights):
        plan = PicoScheme().plan(model, pi_cluster(2, 1000), NET)
        xs = make_inputs(model, 3)
        refs = reference_outputs(model, weights, xs)
        with DistributedPipeline(model, plan, weights=weights) as pipe:
            for x, ref in zip(xs, refs):
                pipe.submit(x)
                _, out = pipe.collect()
                np.testing.assert_allclose(out, ref, atol=1e-4, rtol=1e-4)

    def test_head_applied(self):
        from repro.models.vgg import vgg16

        model = vgg16(input_hw=32, num_classes=7)
        weights = init_weights(model, seed=0)
        plan = PicoScheme().plan(model, pi_cluster(2, 1500), NET)
        xs = make_inputs(model, 1)
        engine = Engine(model, weights)
        ref = engine.run(xs[0])
        with DistributedPipeline(model, plan, weights=weights) as pipe:
            outs, _ = pipe.run_batch(xs)
        assert outs[0].shape == (7,)
        np.testing.assert_allclose(outs[0], ref, atol=1e-4, rtol=1e-4)

    def test_bad_input_shape_rejected(self, model, weights):
        plan = PicoScheme().plan(model, pi_cluster(2, 1000), NET)
        with DistributedPipeline(model, plan, weights=weights) as pipe:
            with pytest.raises(ValueError):
                pipe.submit(np.zeros((1, 2, 2), dtype=np.float32))

    def test_submit_before_start_rejected(self, model, weights):
        plan = PicoScheme().plan(model, pi_cluster(2, 1000), NET)
        pipe = DistributedPipeline(model, plan, weights=weights)
        with pytest.raises(RuntimeError):
            pipe.submit(np.zeros(model.input_shape, dtype=np.float32))


class TestFailureRecovery:
    def test_worker_death_recovers_with_correct_output(self, model, weights):
        cluster = heterogeneous_cluster([1200, 1000, 800, 600])
        plan = EarlyFusedScheme(n_fused=4).plan(model, cluster, NET)
        # Kill a stage-0 worker that is NOT reused by the serial tail.
        victim = plan.stages[0].assignments[1][0].name
        xs = make_inputs(model, 4)
        refs = reference_outputs(model, weights, xs)
        with DistributedPipeline(
            model, plan, weights=weights, recover=True, fail_after={victim: 1}
        ) as pipe:
            outs, stats = pipe.run_batch(xs)
        for out, ref in zip(outs, refs):
            np.testing.assert_allclose(out, ref, atol=1e-4, rtol=1e-4)
        assert stats.recoveries >= 1

    def test_without_recover_flag_failure_surfaces(self, model, weights):
        cluster = heterogeneous_cluster([1200, 1000, 800, 600])
        plan = EarlyFusedScheme(n_fused=4).plan(model, cluster, NET)
        victim = plan.stages[0].assignments[1][0].name
        xs = make_inputs(model, 4)
        with DistributedPipeline(
            model, plan, weights=weights, recover=False, fail_after={victim: 1}
        ) as pipe:
            with pytest.raises((StageFailure, RuntimeError)):
                pipe.run_batch(xs)
