"""Smoke test for the engine benchmark harness: a tiny configuration
must produce a complete, JSON-serialisable report."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench.engine import DEFAULT_MODELS, run_suite
from repro.bench.exact import check_report
from repro.bench.exact import run_suite as run_exact_suite

BENCH_EXACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_exact.json"


def test_run_suite_smoke():
    report = run_suite(models=(("vgg16", 32),), repeats=1, seed=0)
    assert report["benchmark"] == "engine_fast_path"
    assert report["repeats"] == 1
    assert "baseline_note" in report
    for key in ("python", "numpy", "platform", "threads"):
        assert key in report["meta"]
    (entry,) = report["results"]
    assert entry["model"] == "vgg16"
    assert entry["input_hw"] == 32
    for key in (
        "ops_before_s",
        "ops_after_s",
        "features_before_s",
        "features_after_s",
        "end_to_end_before_s",
        "end_to_end_after_s",
        "speedup",
        "features_speedup",
    ):
        assert key in entry
    assert entry["end_to_end_before_s"] > 0
    assert entry["end_to_end_after_s"] > 0
    assert entry["speedup"] > 0
    assert "conv" in entry["ops_before_s"]
    assert entry["ops_before_s"]["conv"] > 0
    # The whole report must round-trip through JSON (what main() writes).
    assert json.loads(json.dumps(report)) == report


def test_default_models_are_paper_models():
    names = [name for name, _ in DEFAULT_MODELS]
    assert names == ["vgg16", "resnet34", "inception_v3"]


def test_exact_gap_quick_suite_smoke():
    """The optimality-gap harness on its CI subset: a tiny model on 2-3
    devices, homogeneous gap exactly zero, JSON-serialisable report."""
    report = run_exact_suite(quick=True)
    assert report["benchmark"] == "exact_planner_gap"
    assert report["quick"] is True
    cases = {r["case"]: r for r in report["results"]}
    assert set(cases) == {"toy/hom2", "toy/het3"}
    hom = cases["toy/hom2"]
    assert hom["homogeneous"] and hom["gap_pct"] == 0.0
    het = cases["toy/het3"]
    assert het["exact_period_s"] <= het["greedy_period_s"]
    assert het["gap_pct"] >= 0.0
    assert json.loads(json.dumps(report)) == report


def test_exact_gap_committed_report_reproduces_quick():
    """The quick subset of the committed BENCH_exact.json must
    reproduce exactly (analytic, deterministic numbers)."""
    assert check_report(str(BENCH_EXACT), quick=True) == []


@pytest.mark.slow
def test_exact_gap_committed_report_reproduces_full_zoo():
    """Full-zoo gap sweep: every committed cell — all four models x all
    four mixes — reproduces bit-for-bit."""
    assert check_report(str(BENCH_EXACT)) == []
