"""Smoke test for the engine benchmark harness: a tiny configuration
must produce a complete, JSON-serialisable report."""

from __future__ import annotations

import json

from repro.bench.engine import DEFAULT_MODELS, run_suite


def test_run_suite_smoke():
    report = run_suite(models=(("vgg16", 32),), repeats=1, seed=0)
    assert report["benchmark"] == "engine_fast_path"
    assert report["repeats"] == 1
    assert "baseline_note" in report
    for key in ("python", "numpy", "platform", "threads"):
        assert key in report["meta"]
    (entry,) = report["results"]
    assert entry["model"] == "vgg16"
    assert entry["input_hw"] == 32
    for key in (
        "ops_before_s",
        "ops_after_s",
        "features_before_s",
        "features_after_s",
        "end_to_end_before_s",
        "end_to_end_after_s",
        "speedup",
        "features_speedup",
    ):
        assert key in entry
    assert entry["end_to_end_before_s"] > 0
    assert entry["end_to_end_after_s"] > 0
    assert entry["speedup"] > 0
    assert "conv" in entry["ops_before_s"]
    assert entry["ops_before_s"]["conv"] > 0
    # The whole report must round-trip through JSON (what main() writes).
    assert json.loads(json.dumps(report)) == report


def test_default_models_are_paper_models():
    names = [name for name, _ in DEFAULT_MODELS]
    assert names == ["vgg16", "resnet34", "inception_v3"]
