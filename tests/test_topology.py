"""Tests for the 2.0 topology layer (links, routing, builders)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.comm import NetworkModel, coerce_network, wifi_50mbps
from repro.sim import NetworkLink, Topology


class TestNetworkLink:
    def test_mbps_roundtrip(self):
        link = NetworkLink.from_mbps("l", "a", "b", 50.0)
        assert link.mbps == pytest.approx(50.0)
        assert link.bandwidth_bytes_per_s == pytest.approx(50e6 / 8)

    def test_other_endpoint(self):
        link = NetworkLink("l", "a", "b", 1e6)
        assert link.other("a") == "b"
        assert link.other("b") == "a"

    def test_transfer_time_deterministic_expectation(self):
        link = NetworkLink(
            "l", "a", "b", 1e6, latency_s=0.01, jitter_s=0.004, loss=0.5
        )
        # (latency + jitter/2 + bytes/bw) / (1 - loss)
        expected = (0.01 + 0.002 + 0.5) / 0.5
        assert link.transfer_time(500_000) == pytest.approx(expected)

    def test_transfer_time_zero_bytes_pays_latency(self):
        link = NetworkLink("l", "a", "b", 1e6, latency_s=0.02)
        assert link.transfer_time(0) == pytest.approx(0.02)

    def test_transfer_time_sampled_at_least_deterministic_base(self):
        link = NetworkLink(
            "l", "a", "b", 1e6, latency_s=0.01, jitter_s=0.004, loss=0.3
        )
        rng = np.random.default_rng(0)
        base = 0.01 + 1e5 / 1e6  # one clean attempt, no jitter
        for _ in range(20):
            assert link.transfer_time(1e5, rng) >= base - 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink("l", "a", "b", 0.0)
        with pytest.raises(ValueError):
            NetworkLink("l", "a", "b", 1e6, loss=1.0)
        with pytest.raises(ValueError):
            NetworkLink("l", "a", "b", 1e6, latency_s=-1)


class TestTopologyRouting:
    def test_star_routes_via_hub(self):
        topo = Topology.star(["a", "b", "c"], hub="hub", mbps=50)
        route = topo.route("a", "b")
        assert len(route) == 2
        assert route[0].other("a") == "hub"
        assert route[1].other("hub") == "b"
        assert len(topo.route("hub", "c")) == 1

    def test_self_route_is_empty(self):
        topo = Topology.star(["a", "b"], mbps=50)
        assert topo.route("a", "a") == ()

    def test_mesh_is_single_hop(self):
        topo = Topology.mesh(["a", "b", "c"], mbps=50)
        for src in "abc":
            for dst in "abc":
                if src != dst:
                    assert len(topo.route(src, dst)) == 1

    def test_route_prefers_fast_path(self):
        # a--b direct but slow; a--r--b fast: Dijkstra picks two fast hops.
        topo = Topology(
            [
                NetworkLink.from_mbps("slow", "a", "b", 1.0),
                NetworkLink.from_mbps("ar", "a", "r", 1000.0),
                NetworkLink.from_mbps("rb", "r", "b", 1000.0),
            ]
        )
        assert [l.name for l in topo.route("a", "b")] == ["ar", "rb"]

    def test_unknown_node_raises(self):
        topo = Topology.star(["a", "b"], mbps=50)
        with pytest.raises(ValueError):
            topo.route("a", "nope")

    def test_disconnected_raises(self):
        topo = Topology(
            [
                NetworkLink("l1", "a", "b", 1e6),
                NetworkLink("l2", "c", "d", 1e6),
            ]
        )
        with pytest.raises(ValueError):
            topo.route("a", "c")

    def test_duplicate_link_name_rejected(self):
        topo = Topology([NetworkLink("l", "a", "b", 1e6)])
        with pytest.raises(ValueError):
            topo.add_link(NetworkLink("l", "b", "c", 1e6))

    def test_attach_detach_invalidate_routes(self):
        topo = Topology.star(["a", "b"], mbps=50)
        assert len(topo.route("a", "b")) == 2
        topo.attach("c", to="hub", mbps=50)
        assert len(topo.route("a", "c")) == 2
        topo.detach("c")
        with pytest.raises(ValueError):
            topo.route("a", "c")

    def test_path_time_sums_links(self):
        topo = Topology.star(["a", "b"], mbps=8, latency_s=0.01)
        # two hops, each 0.01s latency + nbytes/1e6
        assert topo.path_time("a", "b", 1e6) == pytest.approx(2 * (0.01 + 1.0))


class TestBuilders:
    def test_fat_tree_connects_all_hosts(self):
        devices = [f"d{i}" for i in range(6)]
        topo = Topology.fat_tree(devices, mbps=50)
        assert topo.entry == "core0"
        for device in devices:
            assert device in topo
            assert len(topo.route(topo.entry, device)) >= 2

    def test_fat_tree_core_paths_between_pods(self):
        devices = [f"d{i}" for i in range(8)]
        topo = Topology.fat_tree(devices, k=4, mbps=50)
        # d0 and d7 sit in different pods: host-edge-agg-core-agg-edge-host.
        assert len(topo.route("d0", "d7")) == 6

    def test_bus_degenerate(self):
        net = wifi_50mbps()
        topo = Topology.bus(net)
        assert topo.is_bus and not topo.contended
        assert len(topo.links) == 1
        assert topo.as_network_model() == net

    def test_star_summary_is_bottleneck(self):
        topo = Topology.star(["a", "b"], mbps=50, latency_s=0.005)
        model = topo.as_network_model()
        assert isinstance(model, NetworkModel)
        assert model.mbps == pytest.approx(50.0)
        assert model.per_message_latency_s == pytest.approx(0.005)

    def test_coerce_network_collapses_topology(self):
        topo = Topology.star(["a", "b"], mbps=25)
        assert coerce_network(topo).mbps == pytest.approx(25.0)
        assert coerce_network(None) == wifi_50mbps()
        with pytest.raises(TypeError):
            coerce_network(42)
