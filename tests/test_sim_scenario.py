"""Tests for the 2.0 scenario simulator.

The load-bearing guarantee: the degenerate one-link topology
reproduces the pre-2.0 single-WLAN simulator **bit for bit** — full
``SimResult`` equality including traces, shed lists and device-busy
totals — across schemes, both communication modes and admission
control.  On top of that: churn replanning, mobility joins, multi-hop
behaviour and the constant-memory stats mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.switcher import build_apico_switcher
from repro.cluster.device import pi_cluster
from repro.cluster.simulator import simulate_adaptive, simulate_plan
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.runtime.trace import Tracer
from repro.schemes.early_fused import EarlyFusedScheme
from repro.schemes.pico import PicoScheme
from repro.sim import (
    ChurnEvent,
    SimResult,
    SimStats,
    Topology,
    correlated_churn,
    simulate_scenario,
)
from repro.workload.arrivals import poisson_arrivals
from repro.workload.processes import PoissonProcess


@pytest.fixture
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture
def model():
    return toy_chain(6, 1, input_hw=32, in_channels=3)


@pytest.fixture
def cluster():
    return pi_cluster(4, 800)


def arrivals_list(rate=2.0, horizon=20.0, seed=5):
    return poisson_arrivals(rate, horizon, np.random.default_rng(seed))


class TestOneLinkDifferential:
    """The degenerate topology IS the old simulator, bit for bit."""

    @pytest.mark.parametrize("scheme_cls", [PicoScheme, EarlyFusedScheme])
    @pytest.mark.parametrize("contended", [False, True])
    @pytest.mark.parametrize("queue_capacity", [None, 3])
    def test_plan_replay_is_bit_identical(
        self, model, cluster, net, scheme_cls, contended, queue_capacity
    ):
        plan = scheme_cls().plan(model, cluster, net)
        arrivals = arrivals_list()
        old = simulate_plan(
            model, plan, net, arrivals, shared_medium=contended,
            trace=True, queue_capacity=queue_capacity,
        )
        new = simulate_scenario(
            model, plan,
            topology=Topology.bus(net, contended=contended),
            network=net, arrivals=arrivals, trace=True,
            queue_capacity=queue_capacity,
        )
        assert isinstance(new, SimResult)
        assert new == old  # full dataclass equality, trace included

    def test_adaptive_replay_is_bit_identical(self, model, cluster, net):
        arrivals = arrivals_list(rate=4.0)
        old = simulate_adaptive(
            model, build_apico_switcher(model, cluster, net), net, arrivals
        )
        new = simulate_scenario(
            model, build_apico_switcher(model, cluster, net),
            topology=Topology.bus(net), network=net, arrivals=arrivals,
        )
        assert new == old

    def test_lazy_process_matches_materialised_list(self, model, cluster, net):
        plan = PicoScheme().plan(model, cluster, net)
        legacy = poisson_arrivals(2.0, 20.0, np.random.default_rng(7))
        old = simulate_plan(model, plan, net, legacy)
        new = simulate_scenario(
            model, plan, topology=Topology.bus(net), network=net,
            arrivals=PoissonProcess(2.0, horizon_s=20.0), seed=7,
        )
        assert new == old


class TestChurn:
    def test_correlated_burst_replans_and_rejoins(self, model, cluster, net):
        churn = correlated_churn(
            ["pi2", "pi3"], at=4.0, stagger_s=0.5, rejoin_after=8.0
        )
        tracer = Tracer()
        result = simulate_scenario(
            model, PicoScheme(), cluster,
            topology=Topology.bus(net), network=net,
            arrivals=arrivals_list(rate=1.0, horizon=25.0),
            churn=churn, trace=tracer,
        )
        kinds = [e.kind for e in tracer.events if e.frame == -1]
        assert kinds.count("device_dead") == 2
        assert kinds.count("device_join") == 2
        assert kinds.count("replan") + kinds.count("degraded") == 4
        assert result.completed == result.submitted
        # The backlog migrates onto replanned pipelines eventually.
        assert any(name.startswith("PICO") for name in result.plan_usage)

    def test_scheme_accepted_by_name(self, model, cluster, net):
        result = simulate_scenario(
            model, "pico", cluster,
            topology=Topology.bus(net), network=net,
            arrivals=[0.0, 1.0],
            churn=[ChurnEvent(2.0, "pi3", "leave")],
        )
        assert result.completed == 2

    def test_join_only_device_starts_outside(self, model, cluster, net):
        tracer = Tracer()
        result = simulate_scenario(
            model, PicoScheme(), cluster,
            topology=Topology.bus(net), network=net,
            arrivals=arrivals_list(rate=1.0, horizon=10.0),
            churn=[ChurnEvent(5.0, "pi3", "join")],
            trace=tracer,
        )
        kinds = [e.kind for e in tracer.events if e.frame == -1]
        assert kinds == ["device_join", "replan"]
        assert result.completed == result.submitted

    def test_churn_needs_a_scheme(self, model, cluster, net):
        plan = PicoScheme().plan(model, cluster, net)
        with pytest.raises(ValueError, match="scheme"):
            simulate_scenario(
                model, plan, cluster,
                topology=Topology.bus(net), network=net, arrivals=[0.0],
                churn=[ChurnEvent(1.0, "pi0", "leave")],
            )

    def test_churn_unknown_device_rejected(self, model, cluster, net):
        with pytest.raises(ValueError, match="not in the cluster"):
            simulate_scenario(
                model, PicoScheme(), cluster,
                topology=Topology.bus(net), network=net, arrivals=[0.0],
                churn=[ChurnEvent(1.0, "ghost", "leave")],
            )

    def test_correlated_churn_validates(self):
        with pytest.raises(ValueError):
            correlated_churn([], at=1.0)
        events = correlated_churn(["a", "b"], at=2.0, stagger_s=1.0)
        assert [e.time for e in events] == [2.0, 3.0]


class TestMultiHop:
    def test_star_runs_and_contends(self, model, cluster, net):
        arrivals = arrivals_list(rate=1.0, horizon=10.0)
        bus = simulate_scenario(
            model, PicoScheme(), cluster,
            topology=Topology.bus(net), network=net, arrivals=arrivals,
        )
        star = simulate_scenario(
            model, PicoScheme(), cluster,
            topology=Topology.star([d.name for d in cluster], mbps=50.0),
            arrivals=arrivals,
        )
        assert star.completed == len(arrivals)
        # Two store-and-forward hops per transfer plus per-link FIFO
        # contention can only slow things down vs the folded one-link run.
        assert star.avg_latency >= bus.avg_latency - 1e-9

    def test_tighter_links_hurt(self, model, cluster):
        arrivals = arrivals_list(rate=1.0, horizon=10.0)
        names = [d.name for d in cluster]
        fast = simulate_scenario(
            model, PicoScheme(), cluster,
            topology=Topology.star(names, mbps=500.0), arrivals=arrivals,
        )
        slow = simulate_scenario(
            model, PicoScheme(), cluster,
            topology=Topology.star(names, mbps=5.0), arrivals=arrivals,
        )
        assert slow.makespan > fast.makespan

    def test_sampled_network_stays_deterministic_per_seed(self, model, cluster):
        names = [d.name for d in cluster]
        topo = Topology.star(names, mbps=50.0, jitter_s=0.002, loss=0.05)
        kwargs = dict(
            topology=topo, arrivals=[0.0, 1.0, 2.0], sample_network=True,
        )
        a = simulate_scenario(model, PicoScheme(), cluster, seed=3, **kwargs)
        b = simulate_scenario(model, PicoScheme(), cluster, seed=3, **kwargs)
        assert a == b


class TestStatsMode:
    def test_stats_agree_with_records(self, model, cluster, net):
        arrivals = arrivals_list(rate=2.0, horizon=15.0)
        kwargs = dict(
            topology=Topology.bus(net), network=net, arrivals=arrivals,
            queue_capacity=4,
        )
        full = simulate_scenario(model, PicoScheme(), cluster, **kwargs)
        stats = simulate_scenario(
            model, PicoScheme(), cluster, keep_records=False, **kwargs
        )
        assert isinstance(stats, SimStats)
        assert stats.completed == full.completed
        assert stats.shed_count == len(full.shed)
        assert stats.makespan == full.makespan
        assert stats.avg_latency == pytest.approx(full.avg_latency)
        assert stats.max_latency == pytest.approx(full.max_latency)
        assert stats.device_busy == full.device_busy
        assert stats.n_events > 0


class TestValidation:
    def test_arrivals_required(self, model, cluster, net):
        with pytest.raises(ValueError, match="arrivals"):
            simulate_scenario(
                model, PicoScheme(), cluster, topology=Topology.bus(net)
            )

    def test_scheme_needs_cluster(self, model, net):
        with pytest.raises(ValueError, match="cluster"):
            simulate_scenario(
                model, PicoScheme(), topology=Topology.bus(net),
                arrivals=[0.0],
            )
