"""Tests for FLOP accounting (paper Eq. 2–4) and redundancy maths."""

from __future__ import annotations

import pytest

from repro.cost.flops import (
    CostOptions,
    full_unit_flops,
    head_flops,
    layer_flops,
    layer_profiles,
    model_flops,
    segment_flops,
    segment_owned_flops,
    unit_flops,
)
from repro.models.graph import Model, chain_model
from repro.models.layers import ConvSpec, DenseSpec, conv3x3, maxpool2
from repro.models.resnet import basic_block
from repro.models.toy import toy_chain
from repro.partition.regions import Region
from repro.partition.strips import equal_partition, strip_regions


class TestLayerFlops:
    def test_eq2_exact(self):
        # f = k^2 * c_in * w * h * c_out
        conv = ConvSpec("c", 16, 32, kernel_size=3)
        region = Region.full(10, 12)
        assert layer_flops(conv, region) == 9 * 16 * 120 * 32

    def test_non_square_kernel(self):
        conv = ConvSpec("c", 4, 8, kernel_size=(1, 7))
        assert layer_flops(conv, Region.full(5, 5)) == 7 * 4 * 25 * 8

    def test_pool_ignored_by_default(self):
        pool = maxpool2("p", 16)
        assert layer_flops(pool, Region.full(8, 8)) == 0.0

    def test_pool_counted_when_enabled(self):
        pool = maxpool2("p", 16)
        opts = CostOptions(include_pool=True)
        assert layer_flops(pool, Region.full(8, 8), opts) == 4 * 16 * 64

    def test_empty_region_zero(self):
        conv = conv3x3("c", 4, 4)
        assert layer_flops(conv, Region.from_bounds(3, 3, 0, 8)) == 0.0


class TestUnitFlops:
    def test_block_sums_paths(self):
        block = basic_block("b", 8, 8)
        got = unit_flops(block, (8, 8), Region.full(8, 8))
        # Two 3x3 8->8 convs over the full 8x8 map.
        assert got == 2 * (9 * 8 * 64 * 8)

    def test_block_halo_inside_paths(self):
        block = basic_block("b", 8, 8)
        half = unit_flops(block, (8, 8), Region.from_bounds(0, 4, 0, 8))
        # conv2 computes 4 rows, conv1 computes 5 (one halo row).
        assert half == 9 * 8 * 8 * 8 * (4 + 5)


class TestSegmentFlops:
    def test_full_region_equals_sum_of_units(self):
        model = toy_chain(3, 1, input_hw=16)
        _, h, w = model.final_shape
        got = segment_flops(model, 0, model.n_units, Region.full(h, w))
        want = sum(full_unit_flops(model, i) for i in range(model.n_units))
        assert got == want

    def test_halo_makes_strips_cost_more_than_share(self):
        model = toy_chain(3, 0, input_hw=16)
        _, h, w = model.final_shape
        full = segment_flops(model, 0, model.n_units, Region.full(h, w))
        halves = [
            segment_flops(model, 0, model.n_units, Region.from_bounds(a, b, 0, w))
            for a, b in [(0, h // 2), (h // 2, h)]
        ]
        assert sum(halves) > full
        assert all(x > full / 2 for x in halves)

    def test_bad_segment_rejected(self):
        model = toy_chain(2, 0, input_hw=8)
        with pytest.raises(ValueError):
            segment_flops(model, 1, 1, Region.full(8, 8))


class TestOwnedFlops:
    @pytest.mark.parametrize("parts", [2, 3, 5])
    def test_owned_partitions_sum_to_full(self, parts):
        """Owned shares of a disjoint partition must sum to the full
        model FLOPs — the invariant behind the redundancy ratios."""
        model = toy_chain(4, 1, input_hw=32)
        _, h, w = model.final_shape
        full = sum(full_unit_flops(model, i) for i in range(model.n_units))
        total_owned = sum(
            segment_owned_flops(model, 0, model.n_units, region)
            for region in strip_regions(h, w, equal_partition(h, parts))
        )
        assert total_owned == pytest.approx(full, rel=1e-9)

    def test_owned_not_more_than_actual(self):
        model = toy_chain(4, 1, input_hw=32)
        _, h, w = model.final_shape
        region = Region.from_bounds(0, h // 2, 0, w)
        actual = segment_flops(model, 0, model.n_units, region)
        owned = segment_owned_flops(model, 0, model.n_units, region)
        assert owned <= actual

    def test_single_layer_segments_have_zero_redundancy(self):
        model = toy_chain(3, 0, input_hw=16)
        _, h, w = model.out_shape(0)
        region = Region.from_bounds(0, h // 2, 0, w)
        actual = segment_flops(model, 0, 1, region)
        owned = segment_owned_flops(model, 0, 1, region)
        assert actual == pytest.approx(owned)


class TestModelFlops:
    def test_head_included_by_default(self):
        model = chain_model(
            "m", (3, 8, 8), [conv3x3("c", 3, 4)],
            head=[DenseSpec("fc", 256, 10)],
        )
        assert model_flops(model) == model_flops(
            model, CostOptions(include_head=False)
        ) + 2560

    def test_head_flops(self):
        model = chain_model(
            "m", (3, 8, 8), [conv3x3("c", 3, 4)],
            head=[DenseSpec("fc1", 256, 10), DenseSpec("fc2", 10, 2)],
        )
        assert head_flops(model) == 2560 + 20


class TestLayerProfiles:
    def test_covers_block_internals(self):
        model = Model("m", (4, 8, 8), (basic_block("b", 4, 4),))
        profiles = layer_profiles(model)
        assert [p.name for p in profiles] == ["b.conv1", "b.conv2"]

    def test_output_bytes(self):
        model = chain_model("m", (3, 8, 8), [conv3x3("c", 3, 4)])
        (profile,) = layer_profiles(model)
        assert profile.output_bytes == 4 * 8 * 8 * 4
