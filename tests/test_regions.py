"""Unit and property tests for the region algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.partition.regions import (
    EMPTY_INTERVAL,
    Interval,
    Region,
    out_size,
    owned_interval,
    receptive_interval,
    receptive_region,
)


class TestInterval:
    def test_length(self):
        assert len(Interval(2, 7)) == 5

    def test_empty(self):
        assert Interval(3, 3).empty
        assert not Interval(3, 4).empty

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 2)

    def test_shift(self):
        assert Interval(1, 4).shift(3) == Interval(4, 7)

    def test_clip_inside(self):
        assert Interval(2, 8).clip(0, 10) == Interval(2, 8)

    def test_clip_partial(self):
        assert Interval(-3, 5).clip(0, 10) == Interval(0, 5)
        assert Interval(7, 15).clip(0, 10) == Interval(7, 10)

    def test_clip_disjoint_collapses(self):
        assert Interval(12, 15).clip(0, 10).empty

    def test_intersect(self):
        assert Interval(2, 8).intersect(Interval(5, 12)) == Interval(5, 8)
        assert Interval(2, 4).intersect(Interval(6, 9)).empty

    def test_union_hull(self):
        assert Interval(2, 4).union_hull(Interval(7, 9)) == Interval(2, 9)
        assert EMPTY_INTERVAL.union_hull(Interval(3, 5)) == Interval(3, 5)
        assert Interval(3, 5).union_hull(EMPTY_INTERVAL) == Interval(3, 5)

    def test_contains(self):
        assert Interval(0, 10).contains(Interval(3, 7))
        assert Interval(0, 10).contains(EMPTY_INTERVAL)
        assert not Interval(3, 7).contains(Interval(0, 10))

    def test_overlap(self):
        assert Interval(0, 5).overlap(Interval(3, 8)) == 2
        assert Interval(0, 3).overlap(Interval(5, 9)) == 0


class TestRegion:
    def test_full(self):
        r = Region.full(10, 20)
        assert r.height == 10 and r.width == 20 and r.area == 200

    def test_empty(self):
        assert Region.from_bounds(2, 2, 0, 5).empty

    def test_intersect(self):
        a = Region.from_bounds(0, 5, 0, 5)
        b = Region.from_bounds(3, 8, 2, 9)
        got = a.intersect(b)
        assert got == Region.from_bounds(3, 5, 2, 5)

    def test_union_hull(self):
        a = Region.from_bounds(0, 2, 0, 2)
        b = Region.from_bounds(4, 6, 5, 8)
        assert a.union_hull(b) == Region.from_bounds(0, 6, 0, 8)

    def test_contains(self):
        outer = Region.full(10, 10)
        assert outer.contains(Region.from_bounds(2, 5, 3, 8))

    def test_overlap_area(self):
        a = Region.from_bounds(0, 4, 0, 4)
        b = Region.from_bounds(2, 6, 2, 6)
        assert a.overlap_area(b) == 4


class TestReceptiveInterval:
    def test_identity_conv1x1(self):
        got = receptive_interval(Interval(3, 7), kernel=1, stride=1, padding=0, in_size=10)
        assert got.interval == Interval(3, 7)
        assert got.pad_lo == got.pad_hi == 0

    def test_conv3x3_same_interior(self):
        got = receptive_interval(Interval(3, 7), kernel=3, stride=1, padding=1, in_size=10)
        assert got.interval == Interval(2, 8)
        assert got.pad_lo == got.pad_hi == 0

    def test_conv3x3_same_border(self):
        got = receptive_interval(Interval(0, 3), kernel=3, stride=1, padding=1, in_size=10)
        assert got.interval == Interval(0, 4)
        assert got.pad_lo == 1 and got.pad_hi == 0

    def test_pool2x2(self):
        got = receptive_interval(Interval(1, 3), kernel=2, stride=2, padding=0, in_size=8)
        assert got.interval == Interval(2, 6)

    def test_empty_output(self):
        got = receptive_interval(Interval(2, 2), kernel=3, stride=1, padding=1, in_size=10)
        assert got.interval.empty

    def test_full_output_covers_full_input(self):
        h_out = out_size(10, 3, 1, 1)
        got = receptive_interval(Interval(0, h_out), 3, 1, 1, 10)
        assert got.interval == Interval(0, 10)
        assert got.pad_lo == 1 and got.pad_hi == 1

    @given(
        in_size=st.integers(4, 64),
        kernel=st.integers(1, 7),
        stride=st.integers(1, 4),
        padding=st.integers(0, 3),
        data=st.data(),
    )
    def test_property_matches_bruteforce(self, in_size, kernel, stride, padding, data):
        """The padded receptive field equals the brute-force union of the
        per-output-element windows."""
        if in_size + 2 * padding < kernel:
            return
        n_out = out_size(in_size, kernel, stride, padding)
        lo = data.draw(st.integers(0, n_out - 1))
        hi = data.draw(st.integers(lo + 1, n_out))
        got = receptive_interval(Interval(lo, hi), kernel, stride, padding, in_size)
        # Brute force in padded coordinates.
        padded_lo = lo * stride
        padded_hi = (hi - 1) * stride + kernel
        want_lo = max(0, padded_lo - padding)
        want_hi = min(in_size, padded_hi - padding)
        if want_hi < want_lo:  # window entirely inside virtual padding
            assert got.interval.empty
        else:
            assert got.interval == Interval(want_lo, want_hi)
        assert got.pad_lo + len(got.interval) + got.pad_hi == padded_hi - padded_lo
        assert got.pad_lo >= 0 and got.pad_hi >= 0

    @given(
        in_size=st.integers(4, 64),
        kernel=st.integers(1, 5),
        stride=st.integers(1, 3),
        padding=st.integers(0, 2),
        cut=st.integers(1, 63),
    )
    def test_property_adjacent_outputs_cover_input(
        self, in_size, kernel, stride, padding, cut
    ):
        """Two adjacent output intervals need input regions whose union
        covers the full input's receptive field — no gaps.  Holds only
        for ``stride <= kernel`` (true of every real CNN layer); larger
        strides legitimately skip input rows between windows."""
        if in_size + 2 * padding < kernel or stride > kernel or padding >= kernel:
            return
        n_out = out_size(in_size, kernel, stride, padding)
        cut = cut % n_out
        if cut == 0:
            return
        left = receptive_interval(Interval(0, cut), kernel, stride, padding, in_size)
        right = receptive_interval(Interval(cut, n_out), kernel, stride, padding, in_size)
        full = receptive_interval(Interval(0, n_out), kernel, stride, padding, in_size)
        hull = left.interval.union_hull(right.interval)
        assert hull == full.interval
        # And they must overlap or touch (no gap).
        assert left.interval.end >= right.interval.start


class TestOwnedInterval:
    def test_stride1(self):
        assert owned_interval(Interval(2, 5), 1, 10) == Interval(2, 5)

    def test_stride2(self):
        assert owned_interval(Interval(1, 3), 2, 10) == Interval(2, 6)

    def test_clip(self):
        assert owned_interval(Interval(3, 6), 2, 10) == Interval(6, 10)

    def test_empty(self):
        assert owned_interval(Interval(4, 4), 2, 10).empty

    @given(
        n_out=st.integers(2, 20),
        stride=st.integers(1, 4),
        cut=st.integers(1, 19),
    )
    def test_property_disjoint_partition_stays_disjoint(self, n_out, stride, cut):
        cut = cut % n_out
        if cut == 0:
            return
        in_size = n_out * stride + 2
        left = owned_interval(Interval(0, cut), stride, in_size)
        right = owned_interval(Interval(cut, n_out), stride, in_size)
        assert left.overlap(right) == 0
        assert left.end == right.start


def test_receptive_region_axes_independent():
    out = Region.from_bounds(0, 2, 1, 3)
    got = receptive_region(out, (3, 1), (1, 1), (1, 0), (8, 8))
    assert got.rows.interval == Interval(0, 3)
    assert got.rows.pad_lo == 1
    assert got.cols.interval == Interval(1, 3)
    assert got.cols.pad_lo == got.cols.pad_hi == 0


def test_out_size_matches_convention():
    assert out_size(224, 3, 1, 1) == 224
    assert out_size(224, 2, 2, 0) == 112
    assert out_size(7, 7, 1, 0) == 1
    with pytest.raises(ValueError):
        out_size(2, 5, 1, 0)
