"""Runtime core: PlanProgram IR, transports, and the exactness gate.

The refactor's central promise: every backend drives the same compiled
:class:`PlanProgram` through the same :func:`execute_stage` path, so
the in-process and virtual-clock backends must produce bit-identical
outputs and identical *canonical* traces (the timestamp-free event
projection).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.device import pi_cluster
from repro.cluster.metrics import utilization_table
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.runtime.core import InProcTransport, PipelineSession, SimTransport
from repro.runtime.program import compile_plan
from repro.runtime.timing import plan_timing
from repro.runtime.trace import (
    EVENT_KINDS,
    TraceEvent,
    Tracer,
    canonical_trace,
    device_busy,
    diff_traces,
    dump_jsonl,
    load_jsonl,
    trace_makespan,
)
from repro.schemes.early_fused import EarlyFusedScheme
from repro.schemes.local import LocalPlanExecutor
from repro.schemes.pico import PicoScheme


@pytest.fixture(scope="module")
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture(scope="module")
def model():
    return toy_chain(6, 1, input_hw=40, in_channels=3, base_channels=8)


@pytest.fixture(scope="module")
def plan(model, net):
    return PicoScheme().plan(model, pi_cluster(4, 800), net)


def _frames(model, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(model.input_shape).astype(np.float32)
        for _ in range(n)
    ]


class TestCompile:
    def test_program_structure(self, model, plan):
        program = compile_plan(model, plan)
        assert program.model_name == model.name
        assert program.mode == plan.mode
        assert program.n_stages == plan.n_stages
        assert program.n_units == len(model.units)
        for stage_plan, stage in zip(plan.stages, program.stages):
            assert (stage.start, stage.end) == (
                stage_plan.start, stage_plan.end,
            )
            assert stage.n_tasks >= 1
            for task in stage.tasks:
                assert task.capacity > 0
                assert task.program is not None

    def test_stages_cover_model_contiguously(self, model, plan):
        program = compile_plan(model, plan)
        cursor = 0
        for stage in program.stages:
            assert stage.start == cursor
            cursor = stage.end
        assert cursor == program.n_units

    def test_name_mismatch_rejected(self, model, plan):
        other = toy_chain(5, 0, input_hw=40)
        with pytest.raises(ValueError, match="plan is for"):
            compile_plan(other, plan)

    def test_describe_mentions_devices(self, model, plan):
        text = compile_plan(model, plan).describe()
        assert model.name in text and "stage 0" in text


class TestExactnessGate:
    """InProc and Sim must agree bit for bit — outputs and canonical trace."""

    def test_pipelined_outputs_and_traces_match(self, model, plan, net):
        engine = Engine(model, seed=0)
        program = compile_plan(model, plan)
        frames = _frames(model, 3)

        tr_a, tr_b = Tracer(), Tracer()
        with PipelineSession(program, InProcTransport(engine), tr_a) as s:
            outs_a = s.run_batch(frames)
        with PipelineSession(program, SimTransport(engine, net), tr_b) as s:
            outs_b = s.run_batch(frames)

        for a, b in zip(outs_a, outs_b):
            np.testing.assert_array_equal(a, b)
        assert diff_traces(tr_a.events, tr_b.events) == []
        # One enqueue plus send/compute/recv per task, per stage, per frame.
        expected = len(frames) * sum(
            1 + 3 * s.n_tasks for s in program.stages
        )
        assert len(tr_a.events) == expected

    def test_exclusive_plan_matches(self, model, net):
        plan = EarlyFusedScheme().plan(model, pi_cluster(3, 800), net)
        assert plan.mode == "exclusive"
        engine = Engine(model, seed=1)
        program = compile_plan(model, plan)
        frames = _frames(model, 2, seed=1)
        tr_a, tr_b = Tracer(), Tracer()
        with PipelineSession(program, InProcTransport(engine), tr_a) as s:
            outs_a = s.run_batch(frames)
        with PipelineSession(program, SimTransport(engine, net), tr_b) as s:
            outs_b = s.run_batch(frames)
        for a, b in zip(outs_a, outs_b):
            np.testing.assert_array_equal(a, b)
        assert diff_traces(tr_a.events, tr_b.events) == []

    def test_branch_plan_matches(self, net):
        from tests.test_branch_runtime import branch_plan, inception_like_model

        model = inception_like_model()
        plan = branch_plan(model, pi_cluster(4, 1000))
        engine = Engine(model, seed=11)
        program = compile_plan(model, plan)
        frames = _frames(model, 2, seed=2)
        tr_a, tr_b = Tracer(), Tracer()
        with PipelineSession(program, InProcTransport(engine), tr_a) as s:
            outs_a = s.run_batch(frames)
        with PipelineSession(program, SimTransport(engine, net), tr_b) as s:
            outs_b = s.run_batch(frames)
        for a, b in zip(outs_a, outs_b):
            np.testing.assert_array_equal(a, b)
        assert diff_traces(tr_a.events, tr_b.events) == []

    def test_session_matches_engine(self, model, plan, net):
        engine = Engine(model, seed=0)
        x = _frames(model, 1)[0]
        with PipelineSession.from_plan(
            model, plan, InProcTransport(engine)
        ) as s:
            out = s.run_frame(x)
        np.testing.assert_allclose(
            out, engine.forward_features(x), atol=1e-4, rtol=1e-4
        )

    def test_diff_traces_reports_mismatch(self):
        a = [TraceEvent("compute", 0, 0, "pi0", 0.0, 1.0)]
        b = [TraceEvent("compute", 0, 0, "pi1", 0.0, 1.0)]
        assert diff_traces(a, a) == []
        assert any("pi1" in line for line in diff_traces(a, b))
        assert any("count" in line for line in diff_traces(a, a + b))


class TestTraceSchema:
    def test_events_well_formed(self, model, plan, net):
        engine = Engine(model, seed=0)
        tracer = Tracer()
        with PipelineSession.from_plan(
            model, plan, SimTransport(engine, net), tracer
        ) as s:
            s.run_batch(_frames(model, 2))
        assert len(tracer.events) > 0
        devices = {d.name for d in pi_cluster(4, 800).devices}
        for e in tracer.events:
            assert e.kind in EVENT_KINDS
            assert e.end >= e.start >= 0.0
            assert 0 <= e.stage < plan.n_stages
            assert e.frame in (0, 1)
            if e.kind == "enqueue":
                assert e.device == "" and e.nbytes == 0
            else:
                assert e.device in devices
            if e.kind in ("send", "recv"):
                assert e.nbytes > 0

    def test_invalid_events_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            TraceEvent("teleport", 0, 0, "pi0", 0.0, 1.0)
        with pytest.raises(ValueError, match="ends before"):
            TraceEvent("compute", 0, 0, "pi0", 2.0, 1.0)
        with pytest.raises(ValueError, match="nbytes"):
            TraceEvent("send", 0, 0, "pi0", 0.0, 1.0, nbytes=-1)

    def test_jsonl_roundtrip(self, tmp_path):
        events = [
            TraceEvent("enqueue", 0, 0, "", 0.0, 0.5),
            TraceEvent("compute", 0, 0, "pi0", 0.5, 1.5),
        ]
        path = str(tmp_path / "trace.jsonl")
        dump_jsonl(events, path)
        assert load_jsonl(path) == events

    def test_device_busy_and_makespan(self):
        events = [
            TraceEvent("enqueue", 0, 0, "", 0.0, 0.0),
            TraceEvent("send", 0, 0, "pi0", 0.0, 1.0, nbytes=8),
            TraceEvent("compute", 0, 0, "pi0", 1.0, 3.0),
            TraceEvent("recv", 0, 0, "pi0", 3.0, 3.5, nbytes=8),
        ]
        assert device_busy(events) == {"pi0": 3.5}
        assert trace_makespan(events) == 3.5
        assert trace_makespan([]) == 0.0


class TestSimSemantics:
    def test_back_to_back_period_matches_timing(self, model, plan, net):
        """Steady-state virtual inter-departure time equals the analytic
        period — the FIFO recurrence the event simulator uses."""
        engine = Engine(model, seed=0)
        timing = plan_timing(model, plan, net)
        transport = SimTransport(engine, net)
        with PipelineSession.from_plan(model, plan, transport) as s:
            exits = []
            for x in _frames(model, 4):
                s.run_frame(x)
                exits.append(transport.now)
        gaps = [b - a for a, b in zip(exits, exits[1:])]
        # After pipeline fill, departures are one period apart.
        assert gaps[-1] == pytest.approx(timing.period, rel=1e-9)

    def test_out_of_order_submission_rejected(self, model, plan, net):
        engine = Engine(model, seed=0)
        with PipelineSession.from_plan(
            model, plan, SimTransport(engine, net)
        ) as s:
            s.run_frame(_frames(model, 1)[0], at=5.0)
            with pytest.raises(ValueError, match="time order"):
                s.run_frame(_frames(model, 1)[0], at=1.0)

    def test_arrivals_shift_virtual_clock(self, model, plan, net):
        engine = Engine(model, seed=0)
        transport = SimTransport(engine, net)
        with PipelineSession.from_plan(model, plan, transport) as s:
            s.run_batch(_frames(model, 2), arrivals=[0.0, 100.0])
        # Second frame arrived long after the first drained: its latency
        # is the plan latency, so completion is arrival + latency.
        timing = plan_timing(model, plan, net)
        assert transport.now == pytest.approx(100.0 + timing.latency, rel=1e-9)


class TestAdapters:
    def test_local_executor_trace(self, model, plan):
        engine = Engine(model, seed=0)
        executor = LocalPlanExecutor(engine, plan, trace=True)
        x = _frames(model, 1)[0]
        executor.forward_features(x)
        assert executor.trace is not None and len(executor.trace) > 0
        kinds = {e.kind for e in executor.trace}
        assert kinds == set(EVENT_KINDS)

    def test_utilization_table_from_trace(self, model, plan, net):
        engine = Engine(model, seed=0)
        tracer = Tracer()
        with PipelineSession.from_plan(
            model, plan, SimTransport(engine, net), tracer
        ) as s:
            s.run_batch(_frames(model, 3))
        table = utilization_table(
            model, plan, net, trace=tracer.events, scheme_name="PICO"
        )
        assert 0.0 < table.average_utilization <= 1.0
        busy = device_busy(tracer.events)
        window = trace_makespan(tracer.events)
        for row in table.devices:
            assert row.utilization == pytest.approx(
                min(1.0, busy.get(row.name, 0.0) / window)
            )

    def test_utilization_table_rejects_both_sources(self, model, plan, net):
        with pytest.raises(ValueError, match="at most one"):
            utilization_table(
                model, plan, net,
                sim=object(), trace=[],  # type: ignore[arg-type]
            )

    def test_canonical_trace_projection(self):
        e = TraceEvent("send", 2, 1, "pi3", 0.5, 0.7, nbytes=64)
        assert canonical_trace([e]) == [(2, 1, "send", "pi3", 64)]


class TestBatchedExecution:
    """Cross-frame batches: bit-exact outputs, batched virtual timing."""

    def test_run_stacked_matches_per_frame(self, model, plan, net):
        engine = Engine(model, seed=0)
        program = compile_plan(model, plan)
        frames = _frames(model, 3)
        with PipelineSession(program, InProcTransport(engine)) as s:
            want = s.run_batch(frames)
        with PipelineSession(program, InProcTransport(engine)) as s:
            got = s.run_stacked(frames)
        assert len(got) == len(frames)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_run_stacked_singleton_and_empty(self, model, plan, net):
        engine = Engine(model, seed=0)
        program = compile_plan(model, plan)
        frame = _frames(model, 1)[0]
        with PipelineSession(program, InProcTransport(engine)) as s:
            want = s.run_frame(frame)
        with PipelineSession(program, InProcTransport(engine)) as s:
            (got,) = s.run_stacked([frame])
            with pytest.raises(ValueError, match="empty"):
                s.run_stacked([])
        np.testing.assert_array_equal(got, want)

    def test_sim_singleton_batch_keeps_exact_timestamps(self, model, plan,
                                                        net):
        engine = Engine(model, seed=0)
        frames = _frames(model, 2)
        t_plain = SimTransport(engine, net)
        with PipelineSession.from_plan(model, plan, t_plain) as s:
            s.run_batch(frames)
        t_stacked = SimTransport(engine, net)
        with PipelineSession.from_plan(model, plan, t_stacked) as s:
            for x in frames:
                s.run_stacked([x])
        assert t_stacked.now == t_plain.now

    def test_sim_batched_service_charge(self, model, plan, net):
        """A B-frame batch finishes at batched_service of the per-frame
        stage costs: dearer than one frame, but cheaper than B frames'
        worth of un-pipelined latency (compute is partially amortised;
        comm still scales with B)."""
        from repro.cost.tables import BATCH_AMORTIZED_FRACTION, batched_service

        engine = Engine(model, seed=0)
        frames = _frames(model, 3)

        t_one = SimTransport(engine, net)
        with PipelineSession.from_plan(model, plan, t_one) as s:
            s.run_frame(frames[0])
        single_latency = t_one.now

        t_batch = SimTransport(engine, net)
        with PipelineSession.from_plan(model, plan, t_batch) as s:
            s.run_stacked(frames)

        assert single_latency < t_batch.now < 3 * single_latency
        # Exact charge: every stage service is batched_service(comm, comp, 3).
        assert t_batch.batch_amortized == BATCH_AMORTIZED_FRACTION
        assert batched_service(0.0, 1.0, 3) == pytest.approx(
            BATCH_AMORTIZED_FRACTION + 3 * (1 - BATCH_AMORTIZED_FRACTION)
        )

    def test_sim_batch_amortized_knob(self, model, plan, net):
        engine = Engine(model, seed=0)
        with pytest.raises(ValueError, match="batch_amortized"):
            SimTransport(engine, net, batch_amortized=1.5)
        # amortized=1 → compute fully shared: batch of B costs ~1 frame
        # of compute (comm still scales with B).
        frames = _frames(model, 4)
        t_full = SimTransport(engine, net, batch_amortized=1.0)
        with PipelineSession.from_plan(model, plan, t_full) as s:
            s.run_stacked(frames)
        t_none = SimTransport(engine, net, batch_amortized=0.0)
        with PipelineSession.from_plan(model, plan, t_none) as s:
            s.run_stacked(frames)
        assert t_full.now < t_none.now

    def test_stage_free_time_advances(self, model, plan, net):
        engine = Engine(model, seed=0)
        transport = SimTransport(engine, net)
        program = compile_plan(model, plan)
        assert transport.stage_free_time(0) == 0.0
        with PipelineSession(program, transport) as s:
            s.run_frame(_frames(model, 1)[0])
            assert transport.stage_free_time(0) > 0.0

    def test_batched_trace_scales_comm_with_b(self, model, plan, net):
        """Each batch member's traced send span covers the B×-wide wire
        interval; its compute span is the amortised share (< B×).  Events
        replicate per member, so filter to one frame before comparing."""
        engine = Engine(model, seed=0)
        tr_one, tr_batch = Tracer(), Tracer()
        frames = _frames(model, 3)
        with PipelineSession.from_plan(
            model, plan, SimTransport(engine, net), tr_one
        ) as s:
            s.run_frame(frames[0])
        with PipelineSession.from_plan(
            model, plan, SimTransport(engine, net), tr_batch
        ) as s:
            s.run_stacked(frames)

        def span(events, kind, frame=0):
            return sum(
                e.end - e.start
                for e in events
                if e.kind == kind and e.frame == frame
            )

        assert span(tr_batch.events, "send") == pytest.approx(
            3 * span(tr_one.events, "send"), rel=1e-9
        )
        comp_one = span(tr_one.events, "compute")
        assert comp_one < span(tr_batch.events, "compute") < 3 * comp_one
        # Every member carries the same canonical sequence.
        for f in (1, 2):
            assert span(tr_batch.events, "send", f) == span(
                tr_batch.events, "send", 0
            )


class TestBatchedTiming:
    """batched_service and the StageTiming/PlanTiming projections."""

    def test_batched_service_formula(self):
        from repro.cost.tables import batched_service

        # service(B) = B·comm + comp·(f + B·(1−f))
        assert batched_service(2.0, 4.0, 1) == 6.0
        assert batched_service(2.0, 4.0, 3, amortized=0.5) == pytest.approx(
            3 * 2.0 + 4.0 * (0.5 + 3 * 0.5)
        )
        # amortized=0: no sharing — B independent frames.
        assert batched_service(2.0, 4.0, 3, amortized=0.0) == pytest.approx(
            3 * 6.0
        )
        # amortized=1: compute paid once.
        assert batched_service(2.0, 4.0, 3, amortized=1.0) == pytest.approx(
            3 * 2.0 + 4.0
        )
        with pytest.raises(ValueError, match="batch"):
            batched_service(1.0, 1.0, 0)
        with pytest.raises(ValueError, match="amortized"):
            batched_service(1.0, 1.0, 2, amortized=1.5)

    def test_stage_timing_batched_service(self, model, plan, net):
        timing = plan_timing(model, plan, net)
        for st in timing.stages:
            assert st.batched_service(1) == st.service
            b4 = st.batched_service(4)
            assert b4 < 4 * st.service or st.comp == 0.0
            assert b4 >= 4 * st.comm

    def test_plan_timing_batched_projections(self, model, plan, net):
        timing = plan_timing(model, plan, net)
        assert timing.batched_period(1) == timing.period
        assert timing.batched_latency(1) == timing.latency
        for b in (2, 4, 8):
            # Per-frame period shrinks (or holds) as compute amortises…
            assert timing.batched_period(b) <= timing.period
            # …while the batch as a unit takes longer than one frame.
            assert timing.batched_latency(b) > timing.latency
        # Full amortisation is monotone in B; none is flat.
        assert timing.batched_period(8, amortized=1.0) < timing.batched_period(
            2, amortized=1.0
        )
        assert timing.batched_period(4, amortized=0.0) == pytest.approx(
            timing.period
        )
