"""Shared-memory transport tests: ring mechanics, channel codec, pipeline.

Covers the slot ring's wraparound and backpressure behaviour, the
``ShmChannel`` control/payload plane split (slot vs inline vs loaned
arrays, release piggyback), resource hygiene (unlink on close and on
interrupt-style sweeps), and end-to-end bit-exactness of
``ShmTransport`` against the in-process reference.
"""

from __future__ import annotations

import os
import socket
import threading

import numpy as np
import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.coordinator import DistributedPipeline, ShmTransport
from repro.runtime.core import InProcTransport, PipelineSession
from repro.runtime.messages import Hello, TileTask
from repro.runtime.program import compile_plan
from repro.runtime.shm import (
    MIN_SLOT_PAYLOAD,
    SHM_PREFIX,
    ShmChannel,
    ShmRing,
    SlotExhausted,
    cleanup_rings,
)
from repro.schemes.pico import PicoScheme

NET = NetworkModel.from_mbps(50.0)


@pytest.fixture
def ring():
    r = ShmRing.create(slot_bytes=1 << 16, n_slots=3)
    yield r
    r.destroy()


class TestShmRing:
    def test_geometry_and_attach(self, ring):
        assert ring.n_slots == 3
        assert ring.slot_bytes >= 1 << 16
        other = ShmRing.attach(ring.name)
        try:
            assert (other.slot_bytes, other.n_slots) == (
                ring.slot_bytes,
                ring.n_slots,
            )
        finally:
            other.close()

    def test_wraparound_keeps_data_intact(self, ring, rng):
        """Cycling through the ring many times never corrupts a tensor."""
        for i in range(ring.n_slots * 4):
            arr = rng.standard_normal((64, 32)).astype(np.float32) + i
            slot = ring.acquire(timeout=1.0)
            ring.write(slot, arr)
            out = ring.view(slot, arr.dtype.str, arr.shape, arr.nbytes)
            np.testing.assert_array_equal(out, arr)
            ring.release(slot)

    def test_exhaustion_raises(self, ring):
        slots = [ring.acquire(timeout=1.0) for _ in range(ring.n_slots)]
        with pytest.raises(SlotExhausted):
            ring.acquire(timeout=0.05)
        for slot in slots:
            ring.release(slot)

    def test_acquire_blocks_until_release(self, ring):
        """A full ring is backpressure: acquire waits for the release."""
        slots = [ring.acquire(timeout=1.0) for _ in range(ring.n_slots)]
        timer = threading.Timer(0.05, ring.release, args=(slots.pop(),))
        timer.start()
        got = ring.acquire(timeout=5.0)  # must not raise
        timer.join()
        for slot in slots + [got]:
            ring.release(slot)

    def test_double_release_rejected(self, ring):
        slot = ring.acquire(timeout=1.0)
        ring.release(slot)
        with pytest.raises(ValueError):
            ring.release(slot)

    def test_oversized_write_rejected(self, ring):
        big = np.zeros(ring.slot_bytes + 1, dtype=np.uint8)
        slot = ring.acquire(timeout=1.0)
        with pytest.raises(ValueError):
            ring.write(slot, big)
        ring.release(slot)

    def test_destroy_unlinks_segment(self):
        ring = ShmRing.create(slot_bytes=4096, n_slots=2)
        path = f"/dev/shm/{ring.name}"
        assert os.path.exists(path)
        ring.destroy()
        assert not os.path.exists(path)
        ring.destroy()  # idempotent

    def test_cleanup_rings_sweeps_creators(self):
        """The atexit / interrupt sweep unlinks every live creator ring."""
        rings = [ShmRing.create(slot_bytes=4096, n_slots=2) for _ in range(2)]
        paths = [f"/dev/shm/{r.name}" for r in rings]
        assert all(os.path.exists(p) for p in paths)
        cleanup_rings()
        assert not any(os.path.exists(p) for p in paths)


def _channel_pair(slot_bytes=1 << 20, n_slots=3, **kwargs):
    """Two ShmChannels over a socketpair sharing a crossed ring pair."""
    sa, sb = socket.socketpair()
    a_to_b = ShmRing.create(slot_bytes, n_slots)
    b_to_a = ShmRing.create(slot_bytes, n_slots)
    cha = ShmChannel(sa, send_ring=a_to_b, recv_ring=b_to_a, **kwargs)
    chb = ShmChannel(sb, send_ring=b_to_a, recv_ring=a_to_b, **kwargs)

    def teardown():
        cha.close()
        chb.close()
        a_to_b.destroy()
        b_to_a.destroy()

    return cha, chb, teardown


def _recv_threaded(channel):
    """Recv on a thread so large inline sends can't deadlock the pair."""
    box = {}

    def read():
        box["msg"] = channel.recv()

    t = threading.Thread(target=read)
    t.start()
    return t, box


class TestShmChannel:
    def test_slot_roundtrip_and_release_piggyback(self, rng):
        cha, chb, teardown = _channel_pair()
        try:
            arr = rng.standard_normal((128, 128)).astype(np.float32)
            cha.send(TileTask(7, arr))
            assert cha.occupancy() > 0  # payload rides a slot
            msg = chb.recv()
            np.testing.assert_array_equal(msg.tile, arr)
            del msg  # drop the slot view so teardown can unmap
            # The consumed slot is announced on B's next send and the
            # release applies when A decodes that frame.
            chb.send(Hello(0))
            cha.recv()
            assert cha.occupancy() == 0
        finally:
            teardown()

    def test_small_array_ships_inline(self, rng):
        cha, chb, teardown = _channel_pair()
        try:
            arr = np.arange(4, dtype=np.float32)  # < MIN_SLOT_PAYLOAD
            assert arr.nbytes < MIN_SLOT_PAYLOAD
            cha.send(TileTask(1, arr))
            assert cha.occupancy() == 0
            np.testing.assert_array_equal(chb.recv().tile, arr)
        finally:
            teardown()

    def test_oversized_array_falls_back_inline(self, rng):
        cha, chb, teardown = _channel_pair(slot_bytes=1 << 12)
        try:
            arr = rng.standard_normal((64, 64)).astype(np.float32)
            assert arr.nbytes > cha.send_ring.slot_bytes
            t, box = _recv_threaded(chb)
            cha.send(TileTask(2, arr))
            t.join(timeout=10.0)
            assert cha.occupancy() == 0
            np.testing.assert_array_equal(box["msg"].tile, arr)
        finally:
            teardown()

    def test_non_slot_types_ship_inline(self, rng):
        cha, chb, teardown = _channel_pair(slot_types=())
        try:
            arr = rng.standard_normal((64, 64)).astype(np.float32)
            t, box = _recv_threaded(chb)
            cha.send(TileTask(3, arr))
            t.join(timeout=10.0)
            assert cha.occupancy() == 0
            np.testing.assert_array_equal(box["msg"].tile, arr)
        finally:
            teardown()

    def test_loan_slot_zero_copy_send(self, rng):
        """A loaned view is produced in place: send skips the memcpy."""
        cha, chb, teardown = _channel_pair()
        try:
            view = cha.loan_slot((64, 64), np.float32)
            assert cha.occupancy() > 0  # the loan owns its slot already
            view[:] = rng.standard_normal((64, 64)).astype(np.float32)
            expect = view.copy()
            cha.send(TileTask(4, view))
            msg = chb.recv()
            np.testing.assert_array_equal(msg.tile, expect)
            del msg, view  # drop slot views so teardown can unmap
            chb.send(Hello(0))
            cha.recv()
            assert cha.occupancy() == 0  # loaned slot released normally
        finally:
            teardown()

    def test_loan_sent_twice_copies_second_time(self, rng):
        """Only the first send of a loan is zero-copy; resends fall back
        to the ordinary acquire+write path with fresh slots."""
        cha, chb, teardown = _channel_pair()
        try:
            view = cha.loan_slot((64, 64), np.float32)
            view.fill(3.0)
            cha.send(TileTask(5, view))
            cha.send(TileTask(6, view))  # same buffer, no loan left
            first, second = chb.recv(), chb.recv()
            np.testing.assert_array_equal(first.tile, second.tile)
            del first, second, view  # drop slot views before unmap
        finally:
            teardown()


class TestShmTransportPipeline:
    @pytest.fixture
    def model(self):
        return toy_chain(4, 1, input_hw=32, in_channels=3, base_channels=8)

    def _frames(self, model, n, seed=21):
        rng = np.random.default_rng(seed)
        return [
            rng.standard_normal(model.input_shape).astype(np.float32)
            for _ in range(n)
        ]

    def test_session_matches_inproc_past_ring_wrap(self, model):
        """More frames than ring slots: wraparound stays bit-exact."""
        weights = init_weights(model, seed=5)
        cluster = heterogeneous_cluster([1200, 1000, 800])
        program = compile_plan(model, PicoScheme().plan(model, cluster, NET))
        frames = self._frames(model, 6)
        with PipelineSession(program, InProcTransport(Engine(model, weights))) as s:
            refs = s.run_batch(frames)
        transport = ShmTransport(model, weights, slots_per_ring=2)
        with PipelineSession(program, transport) as s:
            outs = s.run_batch(frames)
        for out, ref in zip(outs, refs):
            np.testing.assert_array_equal(out, ref)

    def test_single_worker_stage_output_owns_its_buffer(self, model):
        """The stitch pass-through must not leak a live slot view."""
        weights = init_weights(model, seed=5)
        program = compile_plan(
            model, PicoScheme().plan(model, pi_cluster(1, 1000), NET)
        )
        frames = self._frames(model, 2)
        transport = ShmTransport(model, weights)
        with PipelineSession(program, transport) as s:
            outs = s.run_batch(frames)
        for out in outs:
            assert out.base is None  # a copy, not a view into the ring

    def test_distributed_pipeline_shm_backend(self, model):
        weights = init_weights(model, seed=5)
        plan = PicoScheme().plan(model, pi_cluster(2, 1000), NET)
        frames = self._frames(model, 3)
        engine = Engine(model, weights)
        refs = [engine.forward_features(x) for x in frames]
        with DistributedPipeline(
            model, plan, weights=weights, transport="shm"
        ) as pipe:
            outs, stats = pipe.run_batch(frames)
        for out, ref in zip(outs, refs):
            np.testing.assert_allclose(out, ref, atol=1e-4, rtol=1e-4)
        assert stats.throughput > 0

    def test_close_unlinks_all_rings(self, model):
        weights = init_weights(model, seed=5)
        plan = PicoScheme().plan(model, pi_cluster(2, 1000), NET)
        transport = ShmTransport(model, weights)
        program = compile_plan(model, plan)
        transport.open(program)
        names = [ring.name for ring in transport._rings]
        assert names and all(
            os.path.exists(f"/dev/shm/{n}") for n in names
        )
        transport.close()
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)

    def test_slots_per_ring_validation(self, model):
        weights = init_weights(model, seed=5)
        with pytest.raises(ValueError):
            ShmTransport(model, weights, slots_per_ring=1)
        with pytest.raises(ValueError):
            ShmTransport(model, weights, slot_frames=0)
