"""Pipelined serving: admission control, throughput, Theorem 2.

The serving layer's contract, from three angles:

* **Exactness** — the virtual server's completion times replay the
  discrete-event simulator exactly (same bounded queue, same FIFO
  service), and served outputs are bit-identical to plain single-frame
  execution on every backend.
* **Pipelining** — with frames in flight, steady-state throughput
  approaches ``1/period``; the ``max_in_flight=1`` baseline stays
  latency-bound.
* **Accounting** — every submitted frame ends as exactly one of
  done / shed / failed; nothing is silently lost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.queueing import (
    average_inference_latency,
    backlog_latency,
    validate_md1,
)
from repro.adaptive.switcher import build_apico_switcher
from repro.cluster.device import pi_cluster
from repro.cluster.simulator import simulate_plan
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.core import InProcTransport, SimTransport
from repro.runtime.program import compile_plan
from repro.schemes.pico import PicoScheme
from repro.serve import FrameRecord, PipelineServer, ServeResult, ServerConfig
from repro.workload.arrivals import poisson_arrivals_count, uniform_arrivals


@pytest.fixture(scope="module")
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture(scope="module")
def model():
    return toy_chain(4, 1, input_hw=32, in_channels=3, base_channels=8)


@pytest.fixture(scope="module")
def cluster():
    return pi_cluster(4, 1000.0)


@pytest.fixture(scope="module")
def plan(model, cluster, net):
    return PicoScheme().plan(model, cluster, net)


@pytest.fixture(scope="module")
def program(model, plan):
    return compile_plan(model, plan)


@pytest.fixture(scope="module")
def weights(model):
    return init_weights(model, seed=0)


def _sim_server(model, weights, net, program, config=None, compute=False,
                **kwargs):
    transport = SimTransport(Engine(model, weights), net, compute=compute)
    return PipelineServer(program, transport, config=config, **kwargs)


# ---------------------------------------------------------------------------
# ServerConfig / FrameRecord / ServeResult plumbing
# ---------------------------------------------------------------------------


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            ServerConfig(policy="drop-newest")
        with pytest.raises(ValueError):
            ServerConfig(max_in_flight=0)

    def test_shed_record_has_no_sojourn(self):
        record = FrameRecord(0, 1.0, "shed")
        assert not record.admitted
        with pytest.raises(ValueError):
            record.sojourn

    def test_result_partitions_records(self):
        records = [
            FrameRecord(0, 0.0, "done", admitted_at=0.0, completion=1.0),
            FrameRecord(1, 0.5, "shed"),
            FrameRecord(2, 0.6, "failed", admitted_at=0.6),
        ]
        result = ServeResult(records, {0: np.zeros(1)}, 1.0)
        assert result.submitted == 3
        assert [r.frame for r in result.completed] == [0]
        assert [r.frame for r in result.shed] == [1]
        assert [r.frame for r in result.failed] == [2]
        assert result.sojourns == [1.0]

    def test_serve_input_validation(self, model, weights, net, program):
        server = _sim_server(model, weights, net, program)
        with pytest.raises(ValueError, match="align"):
            server.serve(3, arrivals=[0.0])
        with pytest.raises(ValueError, match="non-decreasing"):
            server.serve(2, arrivals=[1.0, 0.5])
        server.close()

    def test_switcher_requires_virtual_clock(self, model, weights, net,
                                             cluster, program):
        switcher = build_apico_switcher(model, cluster, net)
        with pytest.raises(ValueError, match="virtual"):
            PipelineServer(
                program, InProcTransport(Engine(model, weights)),
                switcher=switcher,
            )


# ---------------------------------------------------------------------------
# Virtual path: pipelining and exact agreement with the event simulator
# ---------------------------------------------------------------------------


class TestVirtualPipelining:
    def test_saturated_throughput_tracks_inv_period(self, model, weights,
                                                    net, plan, program):
        cost = plan_cost(model, plan, net)
        cfg = ServerConfig(queue_capacity=8, policy="block")
        server = _sim_server(model, weights, net, program, cfg)
        result = server.serve(24, arrivals=[0.0] * 24)
        server.close()
        steady = result.steady_throughput(warmup=program.n_stages)
        assert steady == pytest.approx(1.0 / cost.period, rel=0.15)

    def test_pipelined_beats_frame_at_a_time(self, model, weights, net,
                                             program):
        cfg = ServerConfig(queue_capacity=8, policy="block")
        pipelined = _sim_server(model, weights, net, program, cfg)
        res_pipe = pipelined.serve(16, arrivals=[0.0] * 16)
        pipelined.close()
        baseline_cfg = ServerConfig(
            queue_capacity=8, policy="block", max_in_flight=1
        )
        baseline = _sim_server(model, weights, net, program, baseline_cfg)
        res_base = baseline.serve(16, arrivals=[0.0] * 16)
        baseline.close()
        assert res_pipe.makespan < res_base.makespan
        speedup = res_pipe.steady_throughput(
            warmup=program.n_stages
        ) / res_base.steady_throughput(warmup=1)
        assert speedup >= 1.5

    def test_frame_at_a_time_is_latency_bound(self, model, weights, net,
                                              plan, program):
        cost = plan_cost(model, plan, net)
        cfg = ServerConfig(queue_capacity=8, policy="block", max_in_flight=1)
        server = _sim_server(model, weights, net, program, cfg)
        result = server.serve(8, arrivals=[0.0] * 8)
        server.close()
        assert result.steady_throughput(warmup=1) == pytest.approx(
            1.0 / cost.latency, rel=0.05
        )

    def test_completions_match_event_simulator(self, model, weights, net,
                                               plan, program):
        arrivals = poisson_arrivals_count(
            40.0, 30, np.random.default_rng(3)
        )
        cfg = ServerConfig(queue_capacity=10_000)  # effectively unbounded
        server = _sim_server(model, weights, net, program, cfg)
        result = server.serve(len(arrivals), arrivals=arrivals)
        server.close()
        sim = simulate_plan(model, plan, net, arrivals)
        assert len(result.completed) == sim.completed
        got = [r.completion for r in result.completed]
        want = [t.completion for t in sim.tasks]
        assert np.allclose(sorted(got), sorted(want))

    def test_shed_parity_with_event_simulator(self, model, weights, net,
                                              plan, program):
        cost = plan_cost(model, plan, net)
        rate = 3.0 / cost.period  # overload: the bounded queue must shed
        arrivals = poisson_arrivals_count(
            rate, 60, np.random.default_rng(11)
        )
        cfg = ServerConfig(queue_capacity=3, policy="shed")
        server = _sim_server(model, weights, net, program, cfg)
        result = server.serve(len(arrivals), arrivals=arrivals)
        server.close()
        sim = simulate_plan(model, plan, net, arrivals, queue_capacity=3)
        assert [r.frame for r in result.shed] == list(sim.shed)
        assert len(result.shed) > 0
        got = [r.completion for r in result.completed]
        want = [t.completion for t in sim.tasks]
        assert np.allclose(sorted(got), sorted(want))
        assert len(result.completed) + len(result.shed) == result.submitted

    def test_block_policy_delays_instead_of_shedding(self, model, weights,
                                                     net, plan, program):
        cost = plan_cost(model, plan, net)
        rate = 3.0 / cost.period
        arrivals = poisson_arrivals_count(
            rate, 40, np.random.default_rng(11)
        )
        cfg = ServerConfig(queue_capacity=3, policy="block")
        server = _sim_server(model, weights, net, program, cfg)
        result = server.serve(len(arrivals), arrivals=arrivals)
        server.close()
        assert not result.shed
        assert len(result.completed) == result.submitted
        delayed = [r for r in result.completed if r.admitted_at > r.arrival]
        assert delayed, "overload under backpressure must delay admissions"

    def test_compute_false_matches_compute_true_timestamps(
        self, model, weights, net, program
    ):
        arrivals = list(uniform_arrivals(50.0, 0.5))
        timed = _sim_server(model, weights, net, program, compute=True)
        res_full = timed.serve(len(arrivals), arrivals=arrivals)
        timed.close()
        fast = _sim_server(model, weights, net, program, compute=False)
        res_fast = fast.serve(len(arrivals), arrivals=arrivals)
        fast.close()
        assert [r.completion for r in res_full.records] == [
            r.completion for r in res_fast.records
        ]

    def test_served_outputs_bit_exact(self, model, weights, net, program):
        rng = np.random.default_rng(5)
        frames = [
            rng.standard_normal(model.input_shape).astype(np.float32)
            for _ in range(3)
        ]
        engine = Engine(model, weights)
        server = _sim_server(model, weights, net, program, compute=True)
        result = server.serve(frames, arrivals=[0.0, 0.0, 0.0])
        server.close()
        for i, frame in enumerate(frames):
            assert np.array_equal(
                result.outputs[i], engine.forward_features(frame)
            )


# ---------------------------------------------------------------------------
# Theorem 2 validation against measured sojourns
# ---------------------------------------------------------------------------


class TestQueueingValidation:
    def test_backlog_latency(self):
        assert backlog_latency(0.1, 0.5, 0) == pytest.approx(0.5)
        assert backlog_latency(0.1, 0.5, 4) == pytest.approx(0.9)
        with pytest.raises(ValueError):
            backlog_latency(0.1, 0.5, -1)

    def test_validate_md1_needs_data(self):
        with pytest.raises(ValueError):
            validate_md1([], 0.1, 0.5, 1.0)

    def test_measured_sojourn_matches_theorem2(self, model, weights, net,
                                               plan, program):
        cost = plan_cost(model, plan, net)
        rho = 0.5
        rate = rho / cost.period
        arrivals = poisson_arrivals_count(
            rate, 300, np.random.default_rng(0)
        )
        cfg = ServerConfig(queue_capacity=64, policy="block")
        server = _sim_server(model, weights, net, program, cfg)
        result = server.serve(len(arrivals), arrivals=arrivals)
        server.close()
        check = validate_md1(
            result.sojourns, cost.period, cost.latency, rate
        )
        assert check["utilisation"] == pytest.approx(rho)
        assert check["rel_error"] <= 0.20
        assert check["predicted_mean"] == pytest.approx(
            average_inference_latency(cost.period, cost.latency, rate)
        )


# ---------------------------------------------------------------------------
# Adaptive switching fed by the measured queue
# ---------------------------------------------------------------------------


class TestAdaptiveServing:
    def test_switches_to_pipelined_under_load(self, model, weights, net,
                                              cluster):
        from repro.adaptive.estimator import ArrivalRateTracker
        from repro.runtime.program import compile_plan as _compile

        probe = build_apico_switcher(model, cluster, net)
        by_name = {c.name: c for c in probe.candidates}
        pico = by_name["PICO"]
        others = [c for c in probe.candidates if c.name != "PICO"]
        assert others, "APICO needs a one-stage candidate to switch from"
        # A rate high enough that PICO's short period wins, low enough
        # that the one-stage plan still drains (so the queue hits zero
        # and the server reaches a drain boundary to switch at).
        rate = 0.8 / max(c.period for c in others)
        # The default 10 s measurement window dwarfs this toy model's
        # millisecond periods; scale it to ~10 inter-arrival gaps.
        switcher = build_apico_switcher(
            model, cluster, net,
            tracker=ArrivalRateTracker(window_s=10.0 / rate),
        )
        assert switcher.active.name != "PICO", (
            "at rate 0 the one-stage plan's lower latency should win"
        )
        assert pico.estimated_latency(rate) < min(
            c.estimated_latency(rate) for c in others
        )
        arrivals = list(uniform_arrivals(rate, 60 / rate))[:60]
        program0 = _compile(model, switcher.active.plan)
        server = _sim_server(
            model, weights, net, program0, ServerConfig(queue_capacity=32),
            switcher=switcher, tracer=True,
        )
        result = server.serve(len(arrivals), arrivals=arrivals)
        server.close()
        assert len(result.completed) == len(arrivals)
        assert "PICO" in result.plan_usage
        assert any(
            e.kind == "replan" and e.device == "PICO" for e in result.trace
        )

    def test_queue_depth_overrides_stale_rate(self, model, cluster, net):
        switcher = build_apico_switcher(model, cluster, net)
        slowest = max(switcher.candidates, key=lambda c: c.period)
        fastest = min(switcher.candidates, key=lambda c: c.period)
        # At rate ~0 the steady-state estimates favour low latency, but a
        # deep measured backlog makes the short-period plan win.
        depth = 200
        assert switcher.choose(0.0, depth) == fastest
        assert slowest.backlog_latency(depth) > fastest.backlog_latency(depth)


# ---------------------------------------------------------------------------
# Threaded (wall-clock) path: frames genuinely in flight
# ---------------------------------------------------------------------------


class TestThreadedServing:
    def test_inproc_multiframe_bit_exact(self, model, weights, net, program):
        rng = np.random.default_rng(9)
        frames = [
            rng.standard_normal(model.input_shape).astype(np.float32)
            for _ in range(4)
        ]
        engine = Engine(model, weights)
        expected = [engine.forward_features(f) for f in frames]
        server = PipelineServer(
            program, InProcTransport(Engine(model, weights)),
            ServerConfig(queue_capacity=4, policy="block"),
        )
        result = server.serve(frames, arrivals=[0.0] * 4)
        server.close()
        assert len(result.completed) == 4
        assert not result.failed and not result.shed
        for i, want in enumerate(expected):
            assert np.array_equal(result.outputs[i], want)

    def test_threaded_records_account_for_every_frame(self, model, weights,
                                                      net, program):
        server = PipelineServer(
            program, InProcTransport(Engine(model, weights)),
            ServerConfig(queue_capacity=2, policy="block"),
        )
        result = server.serve(6)
        server.close()
        assert result.submitted == 6
        assert sorted(r.frame for r in result.records) == list(range(6))
        assert len(result.completed) == 6


# ---------------------------------------------------------------------------
# Event-simulator admission control (queue_capacity plumbing)
# ---------------------------------------------------------------------------


class TestSimulatorQueueCapacity:
    def test_unbounded_by_default(self, model, plan, net):
        arrivals = [0.0] * 10
        sim = simulate_plan(model, plan, net, arrivals)
        assert sim.shed == () and sim.completed == 10

    def test_bounded_queue_sheds_and_reports(self, model, plan, net):
        arrivals = [0.0] * 10
        sim = simulate_plan(model, plan, net, arrivals, queue_capacity=4)
        assert len(sim.shed) == 6
        assert sim.completed == 4
        assert sim.submitted == 10

    def test_shed_events_in_trace(self, model, plan, net):
        sim = simulate_plan(
            model, plan, net, [0.0] * 6, queue_capacity=2, trace=True
        )
        shed_events = [e for e in sim.trace if e.kind == "shed"]
        assert sorted(e.frame for e in shed_events) == list(sim.shed)

    def test_public_simulate_threads_capacity(self, model, cluster, net):
        import repro

        sim = repro.simulate(
            model, "pico", cluster, network=net,
            arrivals=[0.0] * 8, queue_capacity=3,
        )
        assert len(sim.shed) == 5 and sim.completed == 3


# ---------------------------------------------------------------------------
# Cross-frame micro-batching (max_batch / batch_timeout)
# ---------------------------------------------------------------------------


class TestBatchedServing:
    def test_batch_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServerConfig(batch_timeout=-0.1)
        with pytest.raises(ValueError, match="max_in_flight"):
            ServerConfig(max_batch=2, max_in_flight=1)
        cfg = ServerConfig(max_batch=4, batch_timeout=0.01)
        assert cfg.max_batch == 4

    def test_result_batch_stats(self):
        records = [
            FrameRecord(0, 0.0, "done", admitted_at=0.0, completion=1.0,
                        batch=2),
            FrameRecord(1, 0.0, "done", admitted_at=0.0, completion=1.0,
                        batch=2),
            FrameRecord(2, 0.1, "done", admitted_at=0.1, completion=2.0,
                        batch=1),
            FrameRecord(3, 0.2, "shed"),
        ]
        result = ServeResult(records, {}, 2.0)
        assert result.batch_sizes == [2, 2, 1]
        assert np.isclose(result.mean_batch, 5.0 / 3.0)
        assert result.percentile_batch(50.0) == 2
        assert result.percentile_batch(100.0) == 2

    def test_virtual_batched_bit_exact_and_batches_form(
        self, model, weights, net, program
    ):
        rng = np.random.default_rng(11)
        frames = [
            rng.standard_normal(model.input_shape).astype(np.float32)
            for _ in range(6)
        ]
        arrivals = [0.0] * 6
        base_cfg = ServerConfig(queue_capacity=8, policy="block")
        server = _sim_server(model, weights, net, program, base_cfg,
                             compute=True)
        baseline = server.serve(frames, arrivals=list(arrivals))
        server.close()

        cfg = ServerConfig(queue_capacity=8, policy="block", max_batch=3,
                           batch_timeout=0.0)
        server = _sim_server(model, weights, net, program, cfg, compute=True)
        batched = server.serve(frames, arrivals=list(arrivals))
        server.close()

        assert {r.frame for r in batched.completed} == {
            r.frame for r in baseline.completed
        }
        for i in range(6):
            assert np.array_equal(batched.outputs[i], baseline.outputs[i])
        assert batched.mean_batch > 1.0
        assert all(r.batch >= 1 for r in batched.completed)

    def test_batch_timeout_holds_launch_for_stragglers(
        self, model, weights, net, program
    ):
        # Two frames 1 ms apart with a generous window must share a batch.
        cfg = ServerConfig(queue_capacity=4, policy="block", max_batch=2,
                           batch_timeout=1.0)
        server = _sim_server(model, weights, net, program, cfg)
        result = server.serve(2, arrivals=[0.0, 0.001])
        server.close()
        assert len(result.completed) == 2
        assert result.batch_sizes == [2, 2]

    def test_full_batch_launches_without_waiting_out_timeout(
        self, model, weights, net, program
    ):
        # max_batch frames already queued: launch at the last admit, not
        # at first_admit + batch_timeout.
        cfg = ServerConfig(queue_capacity=4, policy="block", max_batch=2,
                           batch_timeout=100.0)
        server = _sim_server(model, weights, net, program, cfg)
        result = server.serve(2, arrivals=[0.0, 0.0])
        server.close()
        assert len(result.completed) == 2
        assert max(r.completion for r in result.completed) < 100.0

    def test_threaded_batched_bit_exact(self, model, weights, net, program):
        rng = np.random.default_rng(12)
        frames = [
            rng.standard_normal(model.input_shape).astype(np.float32)
            for _ in range(6)
        ]
        engine = Engine(model, weights)
        expected = [engine.forward_features(f) for f in frames]
        server = PipelineServer(
            program, InProcTransport(Engine(model, weights)),
            ServerConfig(queue_capacity=6, policy="block", max_batch=3,
                         batch_timeout=0.005),
        )
        result = server.serve(frames, arrivals=[0.0] * 6)
        server.close()
        assert len(result.completed) == 6
        assert not result.failed and not result.shed
        for i, want in enumerate(expected):
            assert np.array_equal(result.outputs[i], want)
        assert sorted(r.frame for r in result.records) == list(range(6))

    def test_max_batch_one_is_the_legacy_path(self, model, weights, net,
                                              program):
        # max_batch=1 must leave records exactly as the per-frame server.
        arrivals = [0.002 * i for i in range(8)]
        a = _sim_server(model, weights, net, program,
                        ServerConfig(queue_capacity=4))
        base = a.serve(8, arrivals=list(arrivals))
        a.close()
        b = _sim_server(model, weights, net, program,
                        ServerConfig(queue_capacity=4, max_batch=1))
        got = b.serve(8, arrivals=list(arrivals))
        b.close()
        assert [
            (r.frame, r.status, r.admitted_at, r.completion, r.batch)
            for r in base.records
        ] == [
            (r.frame, r.status, r.admitted_at, r.completion, r.batch)
            for r in got.records
        ]


# ---------------------------------------------------------------------------
# Transport backpressure at admission (threaded path, both policies)
# ---------------------------------------------------------------------------


class _SaturatedTransport(InProcTransport):
    """An InProc transport whose internal buffering reports saturated
    for the first ``release_after`` backpressure polls."""

    def __init__(self, engine, release_after):
        super().__init__(engine)
        self.release_after = release_after
        self.polls = 0

    def backpressure(self):
        self.polls += 1
        return 1.0 if self.polls <= self.release_after else 0.0


class TestTransportBackpressure:
    def test_block_waits_for_transport_to_drain(self, model, weights,
                                                program):
        transport = _SaturatedTransport(Engine(model, weights), 3)
        server = PipelineServer(
            program, transport,
            ServerConfig(queue_capacity=4, policy="block"),
        )
        result = server.serve(2, arrivals=[0.0, 0.0])
        server.close()
        assert transport.polls > 3, "block admission must poll backpressure"
        assert len(result.completed) == 2
        assert not result.shed and not result.failed

    def test_shed_on_saturated_transport(self, model, weights, program):
        # saturated for exactly the first frame's admission poll
        transport = _SaturatedTransport(Engine(model, weights), 1)
        server = PipelineServer(
            program, transport,
            ServerConfig(queue_capacity=4, policy="shed"),
        )
        result = server.serve(3, arrivals=[0.0, 0.0, 0.0])
        server.close()
        assert [r.frame for r in result.shed] == [0]
        assert len(result.completed) == 2


# ---------------------------------------------------------------------------
# Virtual block + batching matches the threaded block semantics
# ---------------------------------------------------------------------------


class TestVirtualBlockBatched:
    def test_unblocked_frame_rides_the_forming_batch(self, model, weights,
                                                     net, program):
        """A frame blocked at a full system admits at the freeing
        completion and still joins the batch it waited behind — the
        virtual replay of a threaded arrival entering the admission
        queue while the entrance window is open."""
        cfg = ServerConfig(queue_capacity=2, policy="block", max_batch=2,
                           batch_timeout=0.0)
        probe = _sim_server(model, weights, net, program, cfg)
        first = probe.serve(2, arrivals=[0.0, 0.0])
        probe.close()
        c = max(r.completion for r in first.completed)

        window = ServerConfig(queue_capacity=3, policy="block", max_batch=2,
                              batch_timeout=20.0 * c)
        server = _sim_server(model, weights, net, program, window)
        # frames 0+1 fill a batch at t=0 and complete at c; frame 2
        # admits mid-flight and holds the window open; frame 3 arrives
        # to a full system and must wait for the in-flight batch
        result = server.serve(4, arrivals=[0.0, 0.0, 0.5 * c, 0.6 * c])
        server.close()

        records = {r.frame: r for r in result.completed}
        assert len(records) == 4 and not result.shed and not result.failed
        assert records[2].batch == 2 and records[3].batch == 2
        assert records[2].admitted_at == pytest.approx(0.5 * c)
        # frame 3 unblocked exactly when the first batch departed ...
        assert records[3].admitted_at == pytest.approx(c)
        # ... and rode the same batch as the frame it queued behind
        assert records[3].completion == records[2].completion

    def test_blocked_batched_bit_exact_vs_unbatched(self, model, weights,
                                                    net, program):
        rng = np.random.default_rng(21)
        frames = [
            rng.standard_normal(model.input_shape).astype(np.float32)
            for _ in range(6)
        ]
        base = _sim_server(
            model, weights, net, program,
            ServerConfig(queue_capacity=2, policy="block"), compute=True,
        )
        baseline = base.serve(frames, arrivals=[0.0] * 6)
        base.close()
        batched = _sim_server(
            model, weights, net, program,
            ServerConfig(queue_capacity=2, policy="block", max_batch=3,
                         batch_timeout=0.01),
            compute=True,
        )
        got = batched.serve(frames, arrivals=[0.0] * 6)
        batched.close()
        assert len(got.completed) == 6 == len(baseline.completed)
        for i in range(6):
            assert np.array_equal(got.outputs[i], baseline.outputs[i])
