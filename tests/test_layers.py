"""Tests for layer specifications."""

from __future__ import annotations

import pytest

from repro.models.layers import (
    ConvSpec,
    DenseSpec,
    PoolSpec,
    conv1x1,
    conv3x3,
    maxpool2,
)


class TestConvSpec:
    def test_int_params_normalised_to_pairs(self):
        conv = ConvSpec("c", 3, 8, kernel_size=3, stride=2, padding=1)
        assert conv.kernel_size == (3, 3)
        assert conv.stride == (2, 2)
        assert conv.padding == (1, 1)

    def test_non_square_kernel(self):
        conv = ConvSpec("c", 8, 8, kernel_size=(1, 7), padding=(0, 3))
        assert conv.kernel_size == (1, 7)
        assert conv.out_spatial((17, 17)) == (17, 17)

    def test_out_spatial_same(self):
        assert conv3x3("c", 3, 8).out_spatial((32, 32)) == (32, 32)

    def test_out_spatial_stride2(self):
        conv = ConvSpec("c", 3, 8, kernel_size=3, stride=2, padding=1)
        assert conv.out_spatial((224, 224)) == (112, 112)

    def test_weight_count(self):
        conv = ConvSpec("c", 3, 8, kernel_size=3)
        assert conv.weight_count == 8 * 3 * 9 + 8

    def test_weight_count_bn_no_bias(self):
        conv = ConvSpec("c", 3, 8, kernel_size=3, batch_norm=True, bias=False)
        assert conv.weight_count == 8 * 3 * 9 + 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(in_channels=0, out_channels=8),
            dict(in_channels=3, out_channels=-1),
            dict(in_channels=3, out_channels=8, kernel_size=0),
            dict(in_channels=3, out_channels=8, stride=0),
            dict(in_channels=3, out_channels=8, padding=-1),
            dict(in_channels=3, out_channels=8, activation="gelu"),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        base = dict(name="c", kernel_size=3)
        base.update(kwargs)
        with pytest.raises(ValueError):
            ConvSpec(**base)

    def test_kind(self):
        assert conv1x1("c", 4, 4).kind == "conv"


class TestPoolSpec:
    def test_maxpool2_shorthand(self):
        pool = maxpool2("p", 16)
        assert pool.kernel_size == (2, 2) and pool.stride == (2, 2)
        assert pool.in_channels == pool.out_channels == 16

    def test_out_spatial(self):
        assert maxpool2("p", 8).out_spatial((14, 14)) == (7, 7)

    def test_avg_kind(self):
        pool = PoolSpec("p", 8, kernel_size=7, stride=1, kind_="avg")
        assert pool.out_spatial((7, 7)) == (1, 1)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            PoolSpec("p", 8, kind_="median")

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            PoolSpec("p", 0)


class TestDenseSpec:
    def test_weight_count(self):
        assert DenseSpec("fc", 100, 10).weight_count == 1010

    def test_invalid_features(self):
        with pytest.raises(ValueError):
            DenseSpec("fc", 0, 10)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            DenseSpec("fc", 10, 10, activation="tanh")
