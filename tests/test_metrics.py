"""Tests for utilisation / redundancy metrics (Table I machinery)."""

from __future__ import annotations

import pytest

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.cluster.metrics import utilization_table
from repro.cluster.simulator import simulate_plan
from repro.cost.comm import NetworkModel
from repro.cost.flops import model_flops
from repro.models.toy import toy_chain
from repro.schemes.early_fused import EarlyFusedScheme
from repro.schemes.layer_wise import LayerWiseScheme
from repro.schemes.pico import PicoScheme
from repro.workload.arrivals import saturation_arrivals


@pytest.fixture
def net():
    return NetworkModel.from_mbps(50.0)


@pytest.fixture
def model():
    return toy_chain(8, 2, input_hw=64, in_channels=1)


def test_total_flops_conserved(model, net):
    """Across all devices, owned FLOPs must equal one model inference;
    actual FLOPs exceed it by the redundancy."""
    cluster = heterogeneous_cluster([1200, 800, 600, 600])
    plan = PicoScheme().plan(model, cluster, net)
    table = utilization_table(model, plan, net, scheme_name="PICO")
    owned_total = sum(d.owned_flops_per_task for d in table.devices)
    actual_total = sum(d.flops_per_task for d in table.devices)
    assert owned_total == pytest.approx(model_flops(model), rel=1e-9)
    assert actual_total >= owned_total


def test_layer_wise_zero_redundancy(model, net):
    """Single-layer phases have disjoint outputs: no duplicated FLOPs
    (the paper's LW rows show the minimum redundancy)."""
    cluster = pi_cluster(4, 800)
    plan = LayerWiseScheme().plan(model, cluster, net)
    table = utilization_table(model, plan, net, scheme_name="LW")
    assert table.average_redundancy == pytest.approx(0.0, abs=1e-9)


def test_efl_more_redundant_than_pico(model, net):
    cluster = heterogeneous_cluster([1200, 800, 600, 600, 600, 600])
    efl = utilization_table(
        model, EarlyFusedScheme().plan(model, cluster, net), net, scheme_name="EFL"
    )
    pico = utilization_table(
        model, PicoScheme().plan(model, cluster, net), net, scheme_name="PICO"
    )
    assert efl.average_redundancy > pico.average_redundancy


def test_measured_utilization_used_when_sim_given(model, net):
    cluster = pi_cluster(4, 800)
    plan = PicoScheme().plan(model, cluster, net)
    sim = simulate_plan(model, plan, net, saturation_arrivals(50))
    table = utilization_table(model, plan, net, sim, scheme_name="PICO")
    for report in table.devices:
        assert report.utilization == pytest.approx(
            min(1.0, sim.utilization(report.name)), abs=1e-9
        )


def test_analytic_utilization_without_sim(model, net):
    cluster = pi_cluster(4, 800)
    plan = PicoScheme().plan(model, cluster, net)
    table = utilization_table(model, plan, net, scheme_name="PICO")
    for report in table.devices:
        assert 0.0 <= report.utilization <= 1.0


def test_redundancy_ratio_bounds(model, net):
    cluster = heterogeneous_cluster([1200, 600])
    plan = EarlyFusedScheme().plan(model, cluster, net)
    table = utilization_table(model, plan, net, scheme_name="EFL")
    for report in table.devices:
        assert 0.0 <= report.redundancy_ratio < 1.0


def test_format_contains_all_devices(model, net):
    cluster = pi_cluster(3, 800)
    plan = PicoScheme().plan(model, cluster, net)
    text = utilization_table(model, plan, net, scheme_name="PICO").format()
    for device in plan.all_devices:
        assert device.name in text


def test_reports_sorted_fastest_first(model, net):
    cluster = heterogeneous_cluster([600, 1200, 800, 800])
    plan = PicoScheme().plan(model, cluster, net)
    table = utilization_table(model, plan, net, scheme_name="PICO")
    caps = [d.capacity for d in table.devices]
    assert caps == sorted(caps, reverse=True)
