"""Tests for the steady-state (warm-up trimmed) simulation view."""

from __future__ import annotations

import pytest

from repro.cluster.device import Device
from repro.core.plan import PipelinePlan, StagePlan, plan_cost
from repro.cluster.simulator import simulate_plan
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.partition.regions import Region
from repro.workload.arrivals import saturation_arrivals

NET = NetworkModel.from_mbps(50.0)


@pytest.fixture
def model():
    return toy_chain(4, 0, input_hw=24, in_channels=3)


@pytest.fixture
def plan(model):
    d1, d2 = Device("a", 1e9), Device("b", 1e9)
    _, h1, w1 = model.out_shape(1)
    _, h2, w2 = model.final_shape
    return PipelinePlan(
        model.name,
        (
            StagePlan(0, 2, ((d1, Region.full(h1, w1)),)),
            StagePlan(2, 4, ((d2, Region.full(h2, w2)),)),
        ),
    )


def test_trim_improves_throughput_estimate(model, plan):
    """With few tasks, whole-run throughput under-counts the filled
    pipeline; the trimmed estimate approaches 1/period faster."""
    cost = plan_cost(model, plan, NET)
    sim = simulate_plan(model, plan, NET, saturation_arrivals(10))
    raw_err = abs(sim.throughput - 1 / cost.period)
    trimmed = sim.steady_state(3)
    trimmed_err = abs(trimmed.throughput - 1 / cost.period)
    assert trimmed_err <= raw_err
    assert trimmed.throughput == pytest.approx(1 / cost.period, rel=0.01)


def test_trim_drops_earliest_completions(model, plan):
    sim = simulate_plan(model, plan, NET, saturation_arrivals(8))
    trimmed = sim.steady_state(3)
    assert trimmed.completed == 5
    earliest_kept = min(t.completion for t in trimmed.tasks)
    dropped = [t for t in sim.tasks if t not in trimmed.tasks]
    assert all(t.completion <= earliest_kept for t in dropped)


def test_zero_warmup_is_identity(model, plan):
    sim = simulate_plan(model, plan, NET, saturation_arrivals(5))
    assert sim.steady_state(0) is sim


def test_overtrim_returns_self(model, plan):
    sim = simulate_plan(model, plan, NET, saturation_arrivals(3))
    assert sim.steady_state(10) is sim


def test_negative_rejected(model, plan):
    sim = simulate_plan(model, plan, NET, saturation_arrivals(3))
    with pytest.raises(ValueError):
        sim.steady_state(-1)
