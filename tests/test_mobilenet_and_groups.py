"""Tests for grouped/depthwise convolution and MobileNetV2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.flops import layer_flops, model_flops
from repro.models.graph import chain_model
from repro.models.layers import ConvSpec
from repro.models.mobilenet import inverted_residual, mobilenet_v2
from repro.models.zoo import get_model
from repro.nn import Engine, compile_segment, extract_tile, run_segment
from repro.nn.ops import conv2d, relu6
from repro.partition.regions import Region


class TestGroupedConv:
    def test_depthwise_matches_per_channel(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 1, 3, 3)).astype(np.float32)
        got = conv2d(x, w, None, (1, 1), (1, 1, 1, 1), groups=4)
        for c in range(4):
            want = conv2d(x[c : c + 1], w[c : c + 1], None, (1, 1), (1, 1, 1, 1))
            np.testing.assert_allclose(got[c : c + 1], want, atol=1e-5)

    def test_groups_one_equals_dense(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 5, 5)).astype(np.float32)
        w = rng.standard_normal((6, 4, 3, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            conv2d(x, w, None, groups=1), conv2d(x, w, None)
        )

    def test_two_groups_match_blockwise(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 5, 5)).astype(np.float32)
        w = rng.standard_normal((6, 2, 3, 3)).astype(np.float32)
        got = conv2d(x, w, None, groups=2)
        top = conv2d(x[:2], w[:3], None)
        bottom = conv2d(x[2:], w[3:], None)
        np.testing.assert_allclose(got, np.concatenate([top, bottom]), atol=1e-5)

    def test_invalid_groups_rejected(self):
        x = np.zeros((4, 5, 5), dtype=np.float32)
        w = np.zeros((6, 2, 3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            conv2d(x, w, None, groups=3)  # 4 % 3 != 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ConvSpec("c", 4, 6, kernel_size=3, groups=5)
        with pytest.raises(ValueError):
            ConvSpec("c", 4, 6, kernel_size=3, groups=0)

    def test_depthwise_flops_eq2_per_group(self):
        conv = ConvSpec("dw", 32, 32, kernel_size=3, padding=1, groups=32)
        # k^2 * (cin/groups) * area * cout
        assert layer_flops(conv, Region.full(10, 10)) == 9 * 1 * 100 * 32

    def test_weight_count_grouped(self):
        conv = ConvSpec("g", 8, 8, kernel_size=3, groups=4, bias=False)
        assert conv.weight_count == 8 * 2 * 9

    def test_relu6_clips(self):
        x = np.array([-1.0, 3.0, 100.0], dtype=np.float32)
        np.testing.assert_array_equal(relu6(x), [0.0, 3.0, 6.0])


class TestMobileNetV2:
    def test_published_flops(self):
        gmacs = model_flops(get_model("mobilenet_v2")) / 1e9
        assert 0.25 < gmacs < 0.35  # published ~0.30 GMACs

    def test_structure(self):
        model = get_model("mobilenet_v2")
        assert model.final_shape == (1280, 1, 1)
        blocks = [u for u in model.units if u.kind == "block"]
        assert len(blocks) == 17  # 1+2+3+4+3+3+1 bottlenecks

    def test_inverted_residual_shortcut_rule(self):
        with_shortcut = inverted_residual("a", 32, 32, stride=1, expand=6)
        without = inverted_residual("b", 32, 64, stride=2, expand=6)
        assert any(len(p) == 0 for p in with_shortcut.paths)
        assert all(len(p) > 0 for p in without.paths)

    def test_tiled_execution_bit_exact(self):
        model = get_model("mobilenet_v2", input_hw=32)
        engine = Engine(model, seed=3)
        rng = np.random.default_rng(4)
        x = rng.standard_normal(model.input_shape).astype(np.float32)
        outs = [x]
        for unit in model.units:
            outs.append(engine.run_unit(unit, outs[-1]))
        end = 6
        _, h, w = model.out_shape(end - 1)
        for bounds in [(0, h // 2), (h // 2, h)]:
            region = Region.from_bounds(bounds[0], bounds[1], 0, w)
            program = compile_segment(model, 0, end, region)
            tile = extract_tile(outs[0], program.input_region)
            got = run_segment(engine, program, tile)
            want = extract_tile(outs[end], region)
            np.testing.assert_allclose(got, want, atol=1e-4, rtol=1e-4)

    def test_plannable(self):
        from repro.cluster.device import pi_cluster
        from repro.core.plan import plan_cost
        from repro.cost.comm import NetworkModel
        from repro.schemes.pico import PicoScheme

        model = get_model("mobilenet_v2")
        net = NetworkModel.from_mbps(50.0)
        plan = PicoScheme().plan(model, pi_cluster(4, 600), net)
        cost = plan_cost(model, plan, net)
        assert cost.period > 0


def test_grouped_conv_chain_tiled():
    """Tiled execution through a depthwise layer inside a chain."""
    layers = [
        ConvSpec("pw", 3, 8, kernel_size=1),
        ConvSpec("dw", 8, 8, kernel_size=3, padding=1, groups=8),
        ConvSpec("proj", 8, 4, kernel_size=1, activation="linear"),
    ]
    model = chain_model("dwchain", (3, 12, 12), layers)
    engine = Engine(model, seed=0)
    rng = np.random.default_rng(5)
    x = rng.standard_normal(model.input_shape).astype(np.float32)
    full = engine.forward_features(x)
    region = Region.from_bounds(3, 9, 0, 12)
    program = compile_segment(model, 0, 3, region)
    got = run_segment(engine, program, extract_tile(x, program.input_region))
    np.testing.assert_allclose(got, extract_tile(full, region), atol=1e-5)
