"""LocalPlanExecutor: staged tile execution inside one process, and the
measured-services bridge into the event simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.device import pi_cluster
from repro.cluster.simulator import simulate_plan
from repro.core.plan import PipelinePlan, StagePlan
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.nn.executor import Engine
from repro.partition.regions import Region
from repro.schemes import LocalPlanExecutor
from repro.schemes.pico import PicoScheme


@pytest.fixture(scope="module")
def net():
    return NetworkModel.from_mbps(50.0)


def _input(model, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(model.input_shape).astype(np.float32)


class TestExactness:
    def test_pico_plan_matches_engine(self, net):
        model = get_model("resnet34", input_hw=32)
        plan = PicoScheme().plan(model, pi_cluster(4, 800), net)
        engine = Engine(model, seed=0)
        executor = LocalPlanExecutor(engine, plan)
        x = _input(model)
        np.testing.assert_array_equal(
            executor.forward_features(x), engine.forward_features(x)
        )
        np.testing.assert_array_equal(executor.run(x), engine.run(x))

    def test_toy_chain_multi_frame(self, net):
        model = toy_chain(6, 2, input_hw=64, in_channels=3)
        plan = PicoScheme().plan(model, pi_cluster(4, 800), net)
        engine = Engine(model, seed=1)
        executor = LocalPlanExecutor(engine, plan)
        for seed in range(3):
            x = _input(model, seed)
            np.testing.assert_array_equal(
                executor.forward_features(x), engine.forward_features(x)
            )

    def test_branch_parallel_stage(self):
        from tests.test_branch_runtime import branch_plan, inception_like_model

        model = inception_like_model()
        plan = branch_plan(model, pi_cluster(4, 1000))
        engine = Engine(model, seed=11)
        executor = LocalPlanExecutor(engine, plan)
        x = _input(model)
        np.testing.assert_allclose(
            executor.forward_features(x),
            engine.forward_features(x),
            rtol=1e-5,
            atol=1e-5,
        )


class TestValidation:
    def test_model_name_mismatch(self, net):
        model = toy_chain(4, 0, input_hw=32)
        other = toy_chain(5, 0, input_hw=32)
        plan = PicoScheme().plan(model, pi_cluster(2, 800), net)
        with pytest.raises(ValueError, match="plan is for"):
            LocalPlanExecutor(Engine(other, seed=0), plan)

    def test_partial_coverage_rejected(self, net):
        model = toy_chain(4, 0, input_hw=32)
        _, h, w = model.out_shape(1)
        devices = pi_cluster(2, 800).devices
        partial = PipelinePlan(
            model.name,
            (StagePlan(0, 2, ((devices[0], Region.full(h, w)),)),),
        )
        with pytest.raises(ValueError, match="covers units"):
            LocalPlanExecutor(Engine(model, seed=0), partial)


class TestMeasuredServices:
    def test_measure_feeds_simulator(self, net):
        model = toy_chain(6, 1, input_hw=32, in_channels=1)
        plan = PicoScheme().plan(model, pi_cluster(3, 800), net)
        executor = LocalPlanExecutor(Engine(model, seed=2), plan)
        services = executor.measure([_input(model)], repeats=2)
        assert len(services) == plan.n_stages
        assert all(s > 0.0 for s in services)
        arrivals = [0.05 * i for i in range(20)]
        result = simulate_plan(
            model, plan, net, arrivals, measured_services=services
        )
        assert result.throughput > 0

    def test_length_mismatch_rejected(self, net):
        model = toy_chain(4, 0, input_hw=32)
        plan = PicoScheme().plan(model, pi_cluster(2, 800), net)
        with pytest.raises(ValueError, match="measured_services"):
            simulate_plan(
                model, plan, net, [0.0, 0.1],
                measured_services=[0.01] * (plan.n_stages + 1),
            )

    def test_measure_validates_inputs(self, net):
        model = toy_chain(4, 0, input_hw=32)
        plan = PicoScheme().plan(model, pi_cluster(2, 800), net)
        executor = LocalPlanExecutor(Engine(model, seed=0), plan)
        with pytest.raises(ValueError):
            executor.measure([])
        with pytest.raises(ValueError):
            executor.measure([_input(model)], repeats=0)
