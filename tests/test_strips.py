"""Tests for strip and grid partitioners."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.partition.grid import grid_partition, grid_shape_for, weighted_grid_partition
from repro.partition.regions import Interval
from repro.partition.strips import (
    equal_partition,
    proportional_partition,
    strip_regions,
    weighted_partition,
)


def _assert_covers(intervals, length):
    pos = 0
    for iv in intervals:
        assert iv.start == pos
        pos = iv.end
    assert pos == length


class TestEqualPartition:
    def test_even(self):
        assert equal_partition(8, 4) == [
            Interval(0, 2), Interval(2, 4), Interval(4, 6), Interval(6, 8)
        ]

    def test_remainder_goes_first(self):
        parts = equal_partition(7, 3)
        assert [len(p) for p in parts] == [3, 2, 2]
        _assert_covers(parts, 7)

    def test_more_parts_than_length(self):
        parts = equal_partition(2, 5)
        assert [len(p) for p in parts] == [1, 1, 0, 0, 0]
        _assert_covers(parts, 2)

    def test_zero_length(self):
        parts = equal_partition(0, 3)
        assert all(p.empty for p in parts)

    def test_invalid(self):
        with pytest.raises(ValueError):
            equal_partition(5, 0)
        with pytest.raises(ValueError):
            equal_partition(-1, 2)

    @given(length=st.integers(0, 200), parts=st.integers(1, 20))
    def test_property_coverage_and_balance(self, length, parts):
        result = equal_partition(length, parts)
        assert len(result) == parts
        _assert_covers(result, length)
        sizes = [len(p) for p in result]
        assert max(sizes) - min(sizes) <= 1


class TestWeightedPartition:
    def test_single(self):
        assert weighted_partition(10, [3.0]) == [Interval(0, 10)]

    def test_proportionality(self):
        parts = weighted_partition(30, [2.0, 1.0])
        assert len(parts[0]) == 20 and len(parts[1]) == 10
        _assert_covers(parts, 30)

    def test_all_zero_weights_fall_back_to_equal(self):
        parts = weighted_partition(9, [0.0, 0.0, 0.0])
        assert [len(p) for p in parts] == [3, 3, 3]

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_partition(10, [1.0, -1.0])

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_partition(10, [])

    @given(
        length=st.integers(0, 128),
        weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=10),
    )
    def test_property_contiguous_coverage(self, length, weights):
        parts = weighted_partition(length, weights)
        assert len(parts) == len(weights)
        _assert_covers(parts, length)

    @given(
        scale=st.integers(1, 8),
        weights=st.lists(st.integers(1, 8), min_size=1, max_size=6),
    )
    def test_property_exact_when_divisible(self, scale, weights):
        """When the length is an exact multiple of the weight total,
        every strip is exactly proportional."""
        total = sum(weights)
        parts = weighted_partition(total * scale, [float(w) for w in weights])
        assert [len(p) for p in parts] == [w * scale for w in weights]


class TestProportionalPartition:
    def test_largest_remainder(self):
        parts = proportional_partition(10, [1.0, 1.0, 1.0])
        assert sum(len(p) for p in parts) == 10
        sizes = sorted(len(p) for p in parts)
        assert sizes == [3, 3, 4]

    @given(
        length=st.integers(0, 100),
        weights=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=8),
    )
    def test_property_coverage(self, length, weights):
        parts = proportional_partition(length, weights)
        _assert_covers(parts, length)


class TestStripRegions:
    def test_lift(self):
        regions = strip_regions(6, 9, equal_partition(6, 3))
        assert all(r.width == 9 for r in regions)
        assert sum(r.area for r in regions) == 54

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            strip_regions(4, 9, [Interval(0, 5)])


class TestGrid:
    def test_shape_for(self):
        assert grid_shape_for(4) == (2, 2)
        assert grid_shape_for(6) == (2, 3)
        assert grid_shape_for(7) == (1, 7)
        assert grid_shape_for(1) == (1, 1)

    def test_shape_invalid(self):
        with pytest.raises(ValueError):
            grid_shape_for(0)

    def test_partition_covers(self):
        regions = grid_partition(8, 12, 2, 3)
        assert len(regions) == 6
        assert sum(r.area for r in regions) == 96
        for a in regions:
            for b in regions:
                if a is not b:
                    assert a.overlap_area(b) == 0

    def test_weighted_grid(self):
        regions = weighted_grid_partition(10, 10, [3.0, 1.0], [1.0, 1.0])
        assert len(regions) == 4
        assert sum(r.area for r in regions) == 100

    @given(
        h=st.integers(1, 40),
        w=st.integers(1, 40),
        rows=st.integers(1, 5),
        cols=st.integers(1, 5),
    )
    def test_property_grid_disjoint_cover(self, h, w, rows, cols):
        regions = grid_partition(h, w, rows, cols)
        assert sum(r.area for r in regions) == h * w
