"""Tests for workload generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.arrivals import (
    poisson_arrivals,
    poisson_arrivals_count,
    saturation_arrivals,
    uniform_arrivals,
)
from repro.workload.traces import Phase, PhasedTrace, day_night_trace


class TestPoisson:
    def test_rate_recovered(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(5.0, 2000.0, rng)
        assert len(times) / 2000.0 == pytest.approx(5.0, rel=0.1)

    def test_sorted_and_bounded(self):
        rng = np.random.default_rng(1)
        times = poisson_arrivals(2.0, 50.0, rng)
        assert times == sorted(times)
        assert all(0 < t < 50.0 for t in times)

    def test_zero_rate_empty(self):
        assert poisson_arrivals(0.0, 10.0) == []

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 10.0)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0.0)

    def test_count_variant_exact_count(self):
        rng = np.random.default_rng(2)
        times = poisson_arrivals_count(3.0, 100, rng)
        assert len(times) == 100
        assert list(times) == sorted(times)

    @given(rate=st.floats(0.1, 20.0), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_interarrivals_positive(self, rate, seed):
        rng = np.random.default_rng(seed)
        times = poisson_arrivals_count(rate, 50, rng)
        gaps = np.diff([0.0] + list(times))
        assert np.all(gaps > 0)


class TestUniform:
    def test_exact_spacing(self):
        times = uniform_arrivals(2.0, 3.0)
        assert times == pytest.approx([0.5, 1.0, 1.5, 2.0, 2.5])

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_arrivals(0.0, 5.0)


class TestSaturation:
    def test_all_zero(self):
        assert saturation_arrivals(4) == [0.0] * 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            saturation_arrivals(0)


class TestTraces:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase(-1.0, 10.0)
        with pytest.raises(ValueError):
            Phase(1.0, 0.0)

    def test_horizon(self):
        trace = PhasedTrace((Phase(1.0, 10.0), Phase(2.0, 5.0)))
        assert trace.horizon_s == 15.0

    def test_rate_at(self):
        trace = PhasedTrace((Phase(1.0, 10.0), Phase(2.0, 5.0)))
        assert trace.rate_at(3.0) == 1.0
        assert trace.rate_at(12.0) == 2.0
        assert trace.rate_at(99.0) == 2.0  # clamps to last phase

    def test_sample_respects_phases(self):
        trace = PhasedTrace((Phase(0.0, 100.0), Phase(10.0, 100.0)))
        arrivals = trace.sample(np.random.default_rng(3))
        assert all(t >= 100.0 for t in arrivals)
        assert len(arrivals) == pytest.approx(1000, rel=0.2)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            PhasedTrace(())

    def test_day_night(self):
        trace = day_night_trace(0.1, 5.0, 60.0, cycles=2)
        assert len(trace.phases) == 4
        assert trace.phases[0].rate == 0.1
        assert trace.phases[1].rate == 5.0

    def test_day_night_invalid_cycles(self):
        with pytest.raises(ValueError):
            day_night_trace(0.1, 5.0, 60.0, cycles=0)
