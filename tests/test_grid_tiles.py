"""Grid-tile execution: region-restricted inference with both axes cut.

The strip tests exercise row clipping only; DeepThings-style 2-D grids
also clip columns, so the horizontal halo/padding arithmetic gets real
coverage here.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.graph import Model, chain_model
from repro.models.layers import ConvSpec, conv3x3, maxpool2
from repro.models.resnet import basic_block
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.tiles import compile_segment, extract_tile, run_segment
from repro.partition.grid import grid_partition


def assert_grid_tiles_match(model, start, end, rows, cols, seed=0):
    engine = Engine(model, seed=seed)
    rng = np.random.default_rng(seed + 77)
    x = rng.standard_normal(model.input_shape).astype(np.float32)
    outs = [x]
    for unit in model.units:
        outs.append(engine.run_unit(unit, outs[-1]))
    _, h, w = model.out_shape(end - 1)
    for region in grid_partition(h, w, rows, cols):
        if region.empty:
            continue
        program = compile_segment(model, start, end, region)
        tile = extract_tile(outs[start], program.input_region)
        got = run_segment(engine, program, tile)
        want = outs[end][
            :,
            region.rows.start : region.rows.end,
            region.cols.start : region.cols.end,
        ]
        np.testing.assert_allclose(got, want, atol=1e-4, rtol=1e-4)


class TestGridTiles:
    def test_2x2_grid_chain(self):
        model = toy_chain(4, 1, input_hw=32, in_channels=3, base_channels=8)
        assert_grid_tiles_match(model, 0, model.n_units, 2, 2)

    def test_2x4_grid_chain(self):
        model = toy_chain(3, 0, input_hw=24, in_channels=2, base_channels=8)
        assert_grid_tiles_match(model, 0, model.n_units, 2, 4)

    def test_grid_on_residual_blocks(self):
        model = Model(
            "m", (4, 16, 16),
            (basic_block("b1", 4, 8, stride=2), basic_block("b2", 8, 8)),
        )
        assert_grid_tiles_match(model, 0, 2, 2, 2)

    def test_grid_with_non_square_kernels(self):
        layers = [
            ConvSpec("h", 3, 4, kernel_size=(1, 5), padding=(0, 2)),
            ConvSpec("v", 4, 4, kernel_size=(5, 1), padding=(2, 0)),
            maxpool2("p", 4),
        ]
        model = chain_model("ns", (3, 16, 16), layers)
        assert_grid_tiles_match(model, 0, 3, 2, 2)

    def test_single_cell_tiles(self):
        model = toy_chain(2, 1, input_hw=16, in_channels=1, base_channels=4)
        _, h, w = model.final_shape
        assert_grid_tiles_match(model, 0, model.n_units, h, w)

    @given(
        rows=st.integers(1, 3),
        cols=st.integers(1, 3),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_random_grids(self, rows, cols, seed):
        model = toy_chain(3, 1, input_hw=20, in_channels=2, base_channels=4)
        assert_grid_tiles_match(model, 0, model.n_units, rows, cols, seed=seed)


def test_interior_tile_has_no_virtual_padding():
    """An interior grid tile's program should need zero virtual padding
    at the first layer (all halo comes from real data)."""
    model = toy_chain(2, 0, input_hw=32, in_channels=1, base_channels=4)
    from repro.partition.regions import Region

    region = Region.from_bounds(10, 20, 10, 20)
    program = compile_segment(model, 0, 1, region)
    step = program.units[0].steps[0]
    assert step.pads == (0, 0, 0, 0)
    assert program.input_region == Region.from_bounds(9, 21, 9, 21)
