"""Scheme interface shared by all four parallelization strategies.

A scheme turns (model, cluster, network) into a :class:`PipelinePlan`.
The paper's baselines — Layer-Wise (MoDNN), Early-Fused-Layer
(DeepThings) and Optimal-Fused-Layer (AOFL) — are *one-stage* schemes:
the whole cluster serves one task at a time, so their plans are
``exclusive`` and their period equals their latency.  PICO emits a
``pipelined`` plan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Tuple

from repro.cluster.device import Cluster, Device
from repro.core.plan import PipelinePlan
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import Model
from repro.partition.regions import Region
from repro.partition.strips import weighted_partition

__all__ = ["Scheme", "PlanningError", "weighted_assignments"]


class PlanningError(RuntimeError):
    """Raised when a scheme cannot produce a feasible plan."""


def weighted_assignments(
    model: Model,
    end_unit: int,
    devices: "Sequence[Device]",
    allow_idle: bool = False,
) -> "Tuple[Tuple[Device, Region], ...]":
    """Capacity-weighted strip assignments over the output map of unit
    ``end_unit - 1`` (the adaptive partition of MeDNN/AOFL baselines).

    With more devices than output rows the surplus devices get nothing:
    by default that is a :class:`PlanningError` (a silent zip would
    truncate the cluster); schemes that legitimately idle the surplus
    (layer-wise, early-fused) pass ``allow_idle=True`` to receive
    empty-region assignments for them instead.
    """
    _, h, w = model.out_shape(end_unit - 1)
    if len(devices) > h and not allow_idle:
        raise PlanningError(
            f"cannot split {h} output rows of unit {end_unit - 1} over "
            f"{len(devices)} devices (pass allow_idle=True to idle the "
            "surplus)"
        )
    rows = weighted_partition(h, [d.capacity for d in devices])
    return tuple(
        (device, Region.from_bounds(iv.start, iv.end, 0, w))
        for device, iv in zip(devices, rows)
    )


class Scheme(ABC):
    """Base class for parallelization schemes."""

    #: Short identifier used in experiment tables ("LW", "EFL", ...).
    name: str = "?"

    @abstractmethod
    def plan(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ) -> PipelinePlan:
        """Produce an execution plan for ``model`` on ``cluster``."""

    def compile(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ):
        """Plan and compile in one step: the scheme's plan lowered to
        the runtime-core :class:`~repro.runtime.program.PlanProgram`,
        ready for any Transport backend (in-process, TCP, simulated).
        """
        from repro.runtime.program import compile_plan

        return compile_plan(model, self.plan(model, cluster, network, options))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
