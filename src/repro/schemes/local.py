"""Multi-threaded local execution of a pipeline plan.

:class:`LocalPlanExecutor` runs a :class:`~repro.core.plan.PipelinePlan`
inside one process, standing in for the paper's device cluster: every
device's tile of a stage becomes one task on the shared thread pool
(:mod:`repro.nn.parallel`), so on a multi-core host the per-device
tiles genuinely overlap — the local analogue of the distributed
runtime's parallel workers.  On a single core (``REPRO_THREADS=1``)
the tiles run serially and the stitched result is identical.

Stage programs are compiled once at construction through the memoised
compilers in :mod:`repro.nn.tiles`; steady-state frames only extract
tiles, run GEMMs and stitch.  The stitched output of every stage is
bit-exact against :meth:`Engine.forward_features` because tiles and
full maps share the engine's layer kernels.

:meth:`measure` times each stage over sample frames; the resulting
per-stage wall-clock services feed straight into
:func:`repro.cluster.simulator.simulate_plan` via its
``measured_services`` parameter, replacing the analytic cost model
with measured numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import PipelinePlan, StagePlan
from repro.nn import parallel
from repro.nn.executor import Engine
from repro.nn.tiles import (
    SegmentProgram,
    compile_block_paths_cached,
    compile_segment_cached,
    extract_tile,
    run_segment,
)
from repro.partition.branches import concat_channel_blocks
from repro.partition.regions import Region

__all__ = ["LocalPlanExecutor"]


@dataclass(frozen=True)
class _TileTask:
    """One device's share of a stage: a compiled program plus where its
    output tile lands in the stage's full output map."""

    program: SegmentProgram
    #: Spatial placement for strip tiles (``None`` for branch tasks,
    #: whose tiles span the full map).
    region: Optional[Region]
    #: Channel copy list for branch tasks (``None`` for strip tiles).
    channel_blocks: Optional[Tuple[Tuple[int, int, int, int], ...]]


class LocalPlanExecutor:
    """Execute a pipeline plan locally with tile-level threading.

    Parameters
    ----------
    engine:
        The engine providing kernels and weights.  Its model must match
        the plan's.
    plan:
        Any plan whose stages cover the whole model — PICO pipelines,
        one-stage exclusive baselines, and branch-parallel stages all
        work.
    """

    def __init__(self, engine: Engine, plan: PipelinePlan) -> None:
        if plan.model_name != engine.model.name:
            raise ValueError(
                f"plan is for {plan.model_name!r}, engine runs "
                f"{engine.model.name!r}"
            )
        if plan.stages[-1].end != engine.model.n_units:
            raise ValueError(
                f"plan covers units [0, {plan.stages[-1].end}) but the "
                f"model has {engine.model.n_units}"
            )
        self.engine = engine
        self.plan = plan
        self._stages: "List[Tuple[StagePlan, Tuple[_TileTask, ...], Tuple[int, int, int]]]" = []
        for stage in plan.stages:
            out_shape = engine.model.out_shape(stage.end - 1)
            self._stages.append((stage, self._compile_stage(stage), out_shape))

    def _compile_stage(self, stage: StagePlan) -> "Tuple[_TileTask, ...]":
        model = self.engine.model
        tasks: "List[_TileTask]" = []
        if stage.path_groups is not None:
            for group in stage.path_groups:
                if not group:
                    continue  # device idles, like an empty strip
                program = compile_block_paths_cached(
                    model, stage.start, tuple(group)
                )
                blocks = tuple(
                    concat_channel_blocks(model, stage.start, group)
                )
                tasks.append(_TileTask(program, None, blocks))
        else:
            for _, region in stage.assignments:
                if region.empty:
                    continue
                program = compile_segment_cached(
                    model, stage.start, stage.end, region
                )
                tasks.append(_TileTask(program, region, None))
        if not tasks:
            raise ValueError(
                f"stage [{stage.start}, {stage.end}) has no non-empty work"
            )
        return tuple(tasks)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run_stage(self, stage_index: int, x: np.ndarray) -> np.ndarray:
        """Run one stage on its full input map; returns the stitched
        full output map."""
        _, tasks, out_shape = self._stages[stage_index]
        engine = self.engine

        def run_task(task: _TileTask) -> np.ndarray:
            tile = extract_tile(x, task.program.input_region)
            return run_segment(engine, task.program, tile)

        tiles = parallel.run_parallel(
            [lambda task=task: run_task(task) for task in tasks]
        )
        if len(tasks) == 1 and tasks[0].region is not None:
            region = tasks[0].region
            if (region.height, region.width) == out_shape[1:]:
                return tiles[0]  # one device produced the whole map
        out = np.empty(out_shape, dtype=np.float32)
        for task, tile in zip(tasks, tiles):
            if task.channel_blocks is not None:
                for t_lo, t_hi, o_lo, o_hi in task.channel_blocks:
                    out[o_lo:o_hi] = tile[t_lo:t_hi]
            else:
                region = task.region
                out[
                    :,
                    region.rows.start : region.rows.end,
                    region.cols.start : region.cols.end,
                ] = tile
        return out

    def forward_features(self, x: np.ndarray) -> np.ndarray:
        """Run every stage; bit-exact vs ``engine.forward_features``."""
        out = np.ascontiguousarray(x, dtype=np.float32)
        for idx in range(len(self._stages)):
            out = self.run_stage(idx, out)
        return out

    def run(self, x: np.ndarray) -> np.ndarray:
        """End-to-end inference: staged features then the dense head."""
        return self.engine.run_head(self.forward_features(x))

    # ------------------------------------------------------------------
    # Measurement.
    # ------------------------------------------------------------------
    def measure(
        self, frames: "Sequence[np.ndarray]", repeats: int = 1
    ) -> "List[float]":
        """Mean wall-clock seconds per stage over the given frames.

        Feed the result to ``simulate_plan(..., measured_services=...)``
        to drive the event simulator with measured numbers instead of
        the analytic cost model.
        """
        if not frames:
            raise ValueError("need at least one frame")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        totals = [0.0] * len(self._stages)
        runs = 0
        for _ in range(repeats):
            for frame in frames:
                cur = np.ascontiguousarray(frame, dtype=np.float32)
                for idx in range(len(self._stages)):
                    t0 = time.perf_counter()
                    cur = self.run_stage(idx, cur)
                    totals[idx] += time.perf_counter() - t0
                runs += 1
        return [t / runs for t in totals]
