"""Multi-threaded local execution of a pipeline plan.

:class:`LocalPlanExecutor` is now a thin adapter over the shared
runtime core: the plan is compiled once into a
:class:`~repro.runtime.program.PlanProgram` and driven by a
:class:`~repro.runtime.core.PipelineSession` over the
:class:`~repro.runtime.core.InProcTransport` — every device's tile of a
stage becomes one task on the shared thread pool
(:mod:`repro.nn.parallel`), so on a multi-core host the per-device
tiles genuinely overlap.  On a single core (``REPRO_THREADS=1``) the
tiles run serially and the stitched result is identical.

The stitched output of every stage is bit-exact against
:meth:`Engine.forward_features` because the core's split/compute/stitch
path shares the engine's layer kernels — and because the TCP and
simulated backends run the very same path, it is bit-exact against
those too.

:meth:`measure` times each stage over sample frames; the resulting
per-stage wall-clock services feed straight into
:func:`repro.cluster.simulator.simulate_plan` via its
``measured_services`` parameter, replacing the analytic cost model
with measured numbers.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.device import Device
from repro.core.plan import PipelinePlan, StagePlan
from repro.models.graph import Model
from repro.nn.executor import Engine
from repro.partition.regions import Region
from repro.runtime.core import InProcTransport, PipelineSession, execute_stage
from repro.runtime.program import compile_plan
from repro.runtime.trace import coerce_tracer

__all__ = ["LocalPlanExecutor", "local_fallback_plan"]


def local_fallback_plan(model: Model, device: Device) -> PipelinePlan:
    """The degraded-mode plan: the whole model on one device.

    The fault-tolerance layer's last resort — when re-planning over the
    survivors is infeasible, serving continues on the single strongest
    device as an exclusive one-stage plan (run it with
    :class:`LocalPlanExecutor` or any transport).
    """
    _, h, w = model.final_shape
    return PipelinePlan(
        model.name,
        (StagePlan(0, model.n_units, ((device, Region.full(h, w)),)),),
        mode="exclusive",
    )


class LocalPlanExecutor:
    """Execute a pipeline plan locally with tile-level threading.

    Parameters
    ----------
    engine:
        The engine providing kernels and weights.  Its model must match
        the plan's.
    plan:
        Any plan whose stages cover the whole model — PICO pipelines,
        one-stage exclusive baselines, and branch-parallel stages all
        work.
    trace:
        Collect per-frame trace events (``.trace`` after running); the
        shared ``Tracer | bool | None`` contract of
        :func:`~repro.runtime.trace.coerce_tracer`.
    """

    def __init__(
        self, engine: Engine, plan: PipelinePlan, trace=False
    ) -> None:
        if plan.model_name != engine.model.name:
            raise ValueError(
                f"plan is for {plan.model_name!r}, engine runs "
                f"{engine.model.name!r}"
            )
        self.engine = engine
        self.plan = plan
        self.program = compile_plan(engine.model, plan)
        self._tracer = coerce_tracer(trace)
        self._session = PipelineSession(
            self.program, InProcTransport(engine), self._tracer
        )

    @property
    def trace(self):
        """Collected trace events (empty unless ``trace=True``)."""
        return self._tracer.events if self._tracer is not None else ()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run_stage(self, stage_index: int, x: np.ndarray) -> np.ndarray:
        """Run one stage on its full input map; returns the stitched
        full output map."""
        return execute_stage(
            self._session.transport,
            self.program,
            stage_index,
            np.ascontiguousarray(x, dtype=np.float32),
            frame=-1,
        )

    def forward_features(
        self, x: np.ndarray, at: Optional[float] = None
    ) -> np.ndarray:
        """Run every stage; bit-exact vs ``engine.forward_features``."""
        return self._session.run_frame(x, at)

    def run(self, x: np.ndarray) -> np.ndarray:
        """End-to-end inference: staged features then the dense head."""
        return self.engine.run_head(self.forward_features(x))

    # ------------------------------------------------------------------
    # Measurement.
    # ------------------------------------------------------------------
    def measure(
        self, frames: "Sequence[np.ndarray]", repeats: int = 1
    ) -> "List[float]":
        """Mean wall-clock seconds per stage over the given frames.

        Feed the result to ``simulate_plan(..., measured_services=...)``
        to drive the event simulator with measured numbers instead of
        the analytic cost model.
        """
        if not frames:
            raise ValueError("need at least one frame")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        totals = [0.0] * self.program.n_stages
        runs = 0
        for _ in range(repeats):
            for frame in frames:
                cur = np.ascontiguousarray(frame, dtype=np.float32)
                for idx in range(self.program.n_stages):
                    t0 = time.perf_counter()
                    cur = self.run_stage(idx, cur)
                    totals[idx] += time.perf_counter() - t0
                runs += 1
        return [t / runs for t in totals]
