"""PICO: pipelined cooperation (the paper's contribution).

Two steps (§IV-A): Algorithm 1's dynamic program finds the
minimum-period stage split for the *homogenised* cluster; Algorithm 2
greedily maps real heterogeneous devices onto those stages with
capacity-weighted partitions.  An optional latency bound ``t_lim``
implements the Eq. (1) constraint; ``use_pareto=True`` swaps in the
exact Pareto-frontier planner (ablation).
"""

from __future__ import annotations

import math

from repro.cluster.device import Cluster
from repro.core.dp_planner import plan_homogeneous
from repro.core.heterogeneous import adapt_to_cluster
from repro.core.pareto import plan_pareto
from repro.core.plan import PipelinePlan
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.tables import get_cost_table
from repro.models.graph import Model
from repro.schemes.base import PlanningError, Scheme

__all__ = ["PicoScheme"]


class PicoScheme(Scheme):
    """Pipelined cooperation scheme.

    ``branch_parallel=True`` enables the intra-block partition extension
    (the paper's stated future work): single-block stages over concat
    blocks may assign whole paths to devices when that beats spatial
    strips.  The scheme then reports itself as ``PICO+B``.
    """

    name = "PICO"

    def __init__(
        self,
        t_lim: float = math.inf,
        use_pareto: bool = False,
        branch_parallel: bool = False,
    ) -> None:
        if t_lim <= 0:
            raise ValueError("t_lim must be positive")
        self.t_lim = t_lim
        self.use_pareto = use_pareto
        self.branch_parallel = branch_parallel
        if branch_parallel:
            self.name = "PICO+B"

    def plan(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ) -> PipelinePlan:
        if self.use_pareto and self.branch_parallel:
            raise ValueError(
                "branch_parallel is not implemented for the Pareto planner"
            )
        # One shared vectorized cost table per (model, homogenised
        # device, network, options): repeated plan() calls — adaptive
        # re-planning, t_lim sweeps — reuse every memoised Ts entry.
        table = get_cost_table(
            model,
            cluster.homogenized().devices[0],
            network,
            options,
            allow_branch=self.branch_parallel,
        )
        if self.branch_parallel:
            homo = plan_homogeneous(
                model, cluster, network, options, t_lim=self.t_lim,
                allow_branch=True, table=table,
            )
        else:
            planner = plan_pareto if self.use_pareto else plan_homogeneous
            homo = planner(
                model, cluster, network, options, t_lim=self.t_lim, table=table
            )
        if homo is None:
            raise PlanningError(
                f"no pipeline satisfies latency limit {self.t_lim:.4f}s "
                f"for {model.name} on {len(cluster)} devices"
            )
        return adapt_to_cluster(model, homo, cluster, options)
