"""Early-Fused-Layer parallelization (DeepThings, Zhao et al. TCAD'18).

Fuses the *early* convolution layers — where feature maps are large and
communication would dominate — into one parallel segment across all
devices, then runs the remaining layers on the single fastest device.
Fusing a deep prefix makes the per-device halo grow recursively, which
is why EFL shows the highest redundancy in the paper's Table I
(up to ~45 % on YOLOv2).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.device import Cluster
from repro.core.plan import PipelinePlan, StagePlan
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import Model
from repro.partition.regions import Region
from repro.schemes.base import PlanningError, Scheme, weighted_assignments

__all__ = ["EarlyFusedScheme", "default_fuse_count"]

#: Published / calibrated fusion depths.  DeepThings fuses the first 16
#: layers of YOLOv2 (12 conv + 4 pool, through pool5); the VGG16 depth
#: is calibrated so the redundancy ratio lands in the paper's Table I
#: band (~19 %).
_KNOWN_FUSE_COUNTS = {"yolov2": 16, "vgg16": 8}


def default_fuse_count(model: Model, shrink_factor: int = 4) -> int:
    """DeepThings' fusion depth.

    Models with a published/calibrated depth use it; otherwise the
    shape-generalised policy applies — fuse every unit whose output is
    still larger than ``input_height / shrink_factor`` (the early,
    communication-heavy part of the network).  EFL by construction runs
    "the rest layers in a single device", so at least one unit is
    always left for the serial tail."""
    known = _KNOWN_FUSE_COUNTS.get(model.name)
    if known is not None and known < model.n_units:
        return known
    threshold = max(1, model.input_shape[1] // shrink_factor)
    count = 0
    for idx in range(model.n_units):
        if model.out_shape(idx)[1] < threshold:
            break
        count = idx + 1
    return min(max(1, count), model.n_units - 1) if model.n_units > 1 else 1


class EarlyFusedScheme(Scheme):
    """One fused parallel prefix + serial remainder on the fastest device."""

    name = "EFL"

    def __init__(self, n_fused: Optional[int] = None, shrink_factor: int = 4) -> None:
        if n_fused is not None and n_fused < 1:
            raise ValueError("n_fused must be positive")
        self.n_fused = n_fused
        self.shrink_factor = shrink_factor

    def plan(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ) -> PipelinePlan:
        n_fused = self.n_fused or default_fuse_count(model, self.shrink_factor)
        if n_fused > model.n_units:
            raise PlanningError(
                f"n_fused={n_fused} exceeds the model's {model.n_units} units"
            )
        stages = [
            StagePlan(
                0,
                n_fused,
                weighted_assignments(
                    model, n_fused, cluster.devices, allow_idle=True
                ),
            )
        ]
        if n_fused < model.n_units:
            _, h, w = model.final_shape
            stages.append(
                StagePlan(
                    n_fused,
                    model.n_units,
                    ((cluster.fastest, Region.full(h, w)),),
                )
            )
        return PipelinePlan(model.name, tuple(stages), mode="exclusive")
