"""Optimal-Fused-Layer parallelization (AOFL, Zhou et al. SEC'19).

Selects fusion points over the whole network by dynamic programming:
each contiguous group of units is parallelized across the *best-sized*
device subset (the fastest ``k`` devices, ``k`` optimised per group —
adding a device pays both communication and halo redundancy, so deep
groups prefer fewer devices), with running on one device as the ``k=1``
degenerate case; the per-group choices chain to minimise total
single-task time.  Still a one-stage scheme: one task occupies the
whole cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.device import Cluster
from repro.core.plan import PipelinePlan, StagePlan
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.stage_cost import stage_time
from repro.models.graph import Model
from repro.partition.regions import Region
from repro.partition.strips import weighted_partition
from repro.schemes.base import Scheme

__all__ = ["OptimalFusedScheme"]


@dataclass(frozen=True)
class _GroupChoice:
    cost: float
    n_devices: int  # 1 == serial on the fastest device

    @property
    def parallel(self) -> bool:
        return self.n_devices > 1


class OptimalFusedScheme(Scheme):
    """DP-optimised fusion-point + group-width selection (one-stage
    scheme)."""

    name = "OFL"

    def plan(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ) -> PipelinePlan:
        n = model.n_units
        ranked = cluster.sorted_by_capacity()
        choice: "dict[Tuple[int, int], _GroupChoice]" = {}

        def assignments_for(end: int, k: int):
            devices = ranked[:k]
            _, h, w = model.out_shape(end - 1)
            rows = weighted_partition(h, [d.capacity for d in devices])
            return tuple(
                (device, Region.from_bounds(iv.start, iv.end, 0, w))
                for device, iv in zip(devices, rows)
            )

        def group_cost(start: int, end: int) -> _GroupChoice:
            key = (start, end)
            cached = choice.get(key)
            if cached is not None:
                return cached
            with_head = end == n
            result: Optional[_GroupChoice] = None
            for k in range(1, len(ranked) + 1):
                cost = stage_time(
                    model,
                    start,
                    end,
                    assignments_for(end, k),
                    network,
                    options,
                    with_head=with_head,
                ).total
                if result is None or cost < result.cost:
                    result = _GroupChoice(cost, k)
            assert result is not None
            choice[key] = result
            return result

        best: "List[float]" = [0.0] + [float("inf")] * n
        back: "List[Optional[int]]" = [None] * (n + 1)
        for j in range(1, n + 1):
            for i in range(j):
                cost = best[i] + group_cost(i, j).cost
                if cost < best[j]:
                    best[j] = cost
                    back[j] = i
        cuts = []
        j = n
        while j > 0:
            i = back[j]
            assert i is not None
            cuts.append((i, j))
            j = i
        cuts.reverse()

        stages = []
        for start, end in cuts:
            k = group_cost(start, end).n_devices
            stages.append(StagePlan(start, end, assignments_for(end, k)))
        return PipelinePlan(model.name, tuple(stages), mode="exclusive")
