"""Interleaved Operator Partitioning (IOP, arXiv:2409.07693).

Every spatial scheme in the registry splits feature maps by *rows* and
pays the kernel-halo redundancy between consecutive convs (Eq. 4).  IOP
partitions each conv along its **output channels** instead: device
``k`` computes channel slice ``[lo_k, hi_k)`` of the full map, so the
per-device GEMMs cover disjoint rows of the packed weight matrix and no
FLOP is computed twice.  The price is the exchange step between
consecutive units — every device needs the unit's *full* input map
(each output channel reads all input channels), so the coordinator's
scatter broadcasts the map and its gather de-interleaves the channel
slices back into the global layout.

Like layer-wise, the plan is *exclusive* (one interleave/de-interleave
exchange per unit); each stage is channel-parallel via
``StagePlan.channel_groups`` and compiles to channel-slice programs
that run on every transport.  Units that cannot split by channel —
block units (their internal layers have mismatched channel counts) and
grouped convs (a slice would cross group boundaries) — fall back to
the capacity-weighted spatial partition for that one stage.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cluster.device import Cluster
from repro.core.plan import PipelinePlan, StagePlan
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import LayerUnit, Model
from repro.models.layers import ConvSpec
from repro.partition.regions import Region
from repro.partition.strips import weighted_partition
from repro.schemes.base import Scheme, weighted_assignments

__all__ = ["InterleavedScheme", "channel_partition"]


def channel_partition(
    c_out: int, capacities: "Tuple[float, ...]"
) -> "Tuple[Tuple[int, int], ...]":
    """Capacity-weighted split of ``[0, c_out)`` into per-device
    half-open channel intervals (Eq. 2 is linear in ``c_out``, so the
    FLOP-proportional split is the channel-count-proportional one).

    The intervals tile ``[0, c_out)`` exactly and are pairwise disjoint
    for arbitrary device counts and weights; surplus devices receive
    empty intervals.  The property tests assert this algebra.
    """
    return tuple(
        (iv.start, iv.end)
        for iv in weighted_partition(c_out, list(capacities))
    )


class InterleavedScheme(Scheme):
    """Channel-split stages with interleave/de-interleave exchanges."""

    name = "IOP"

    @staticmethod
    def _channel_groups(
        model: Model, unit_index: int, cluster: Cluster
    ) -> "Optional[Tuple[Tuple[int, int], ...]]":
        """The unit's channel partition, or ``None`` when the unit must
        fall back to a spatial stage."""
        unit = model.units[unit_index]
        if not isinstance(unit, LayerUnit):
            return None
        layer = unit.layer
        if isinstance(layer, ConvSpec) and layer.groups != 1:
            return None
        c_out = model.out_shape(unit_index)[0]
        return channel_partition(
            c_out, tuple(d.capacity for d in cluster.devices)
        )

    def plan(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ) -> PipelinePlan:
        stages = []
        for idx in range(model.n_units):
            groups = self._channel_groups(model, idx, cluster)
            if groups is None:
                stages.append(
                    StagePlan(
                        idx,
                        idx + 1,
                        weighted_assignments(
                            model, idx + 1, cluster.devices, allow_idle=True
                        ),
                    )
                )
                continue
            _, oh, ow = model.out_shape(idx)
            full = Region.full(oh, ow)
            stages.append(
                StagePlan(
                    idx,
                    idx + 1,
                    tuple((device, full) for device in cluster.devices),
                    channel_groups=groups,
                )
            )
        return PipelinePlan(model.name, tuple(stages), mode="exclusive")
