"""Layer-Wise parallelization (MoDNN, Mao et al. DATE'17).

Every unit is parallelized across the whole cluster with a gather +
scatter between consecutive units.  Redundancy is minimal (one kernel
halo per layer) but the per-layer synchronisation makes communication
dominate on wireless networks — the paper drops LW from the latency
plots because of its "poor performance" and our capacity benchmarks
reproduce that.
"""

from __future__ import annotations

from repro.cluster.device import Cluster
from repro.core.plan import PipelinePlan, StagePlan
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import Model
from repro.schemes.base import Scheme, weighted_assignments

__all__ = ["LayerWiseScheme"]


class LayerWiseScheme(Scheme):
    """One exclusive phase per plan unit, all devices in each."""

    name = "LW"

    def plan(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ) -> PipelinePlan:
        stages = tuple(
            StagePlan(
                idx,
                idx + 1,
                weighted_assignments(
                    model, idx + 1, cluster.devices, allow_idle=True
                ),
            )
            for idx in range(model.n_units)
        )
        return PipelinePlan(model.name, stages, mode="exclusive")
