"""The four parallelization schemes compared in the paper's evaluation."""

from repro.schemes.base import PlanningError, Scheme, weighted_assignments
from repro.schemes.early_fused import EarlyFusedScheme, default_fuse_count
from repro.schemes.layer_wise import LayerWiseScheme
from repro.schemes.local import LocalPlanExecutor
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme

__all__ = [
    "EarlyFusedScheme",
    "LayerWiseScheme",
    "LocalPlanExecutor",
    "OptimalFusedScheme",
    "PicoScheme",
    "PlanningError",
    "Scheme",
    "default_fuse_count",
    "weighted_assignments",
]

#: The paper's comparison set, in its Table I order.
ALL_SCHEMES = (
    LayerWiseScheme,
    EarlyFusedScheme,
    OptimalFusedScheme,
    PicoScheme,
)
