"""The four parallelization schemes compared in the paper's evaluation."""

from repro.schemes.base import PlanningError, Scheme, weighted_assignments
from repro.schemes.early_fused import EarlyFusedScheme, default_fuse_count
from repro.schemes.interleaved import InterleavedScheme
from repro.schemes.layer_wise import LayerWiseScheme
from repro.schemes.local import LocalPlanExecutor, local_fallback_plan
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme

__all__ = [
    "EarlyFusedScheme",
    "InterleavedScheme",
    "LayerWiseScheme",
    "LocalPlanExecutor",
    "OptimalFusedScheme",
    "PicoScheme",
    "PlanningError",
    "Scheme",
    "available_schemes",
    "default_fuse_count",
    "get_scheme",
    "local_fallback_plan",
    "weighted_assignments",
]

#: The paper's comparison set, in its Table I order, plus the
#: successor-literature IOP scheme (arXiv:2409.07693).
ALL_SCHEMES = (
    LayerWiseScheme,
    EarlyFusedScheme,
    OptimalFusedScheme,
    PicoScheme,
    InterleavedScheme,
)

#: The blessed short names (the paper's Table I abbreviations).
_REGISTRY = {
    "pico": PicoScheme,
    "lw": LayerWiseScheme,
    "efl": EarlyFusedScheme,
    "ofl": OptimalFusedScheme,
    "iop": InterleavedScheme,
}


def available_schemes() -> "tuple":
    """The registered scheme names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_scheme(name: str, **kwargs) -> Scheme:
    """Instantiate a scheme by its short name (case-insensitive).

    The registry behind the unified API (:func:`repro.simulate` and the
    CLI): ``"pico"`` (pipelined cooperation), ``"lw"`` (layer-wise /
    MoDNN), ``"efl"`` (early-fused / DeepThings), ``"ofl"``
    (optimal-fused / AOFL) and ``"iop"`` (interleaved operator
    partitioning, channel splits).  ``kwargs`` pass straight to the
    scheme's constructor (e.g. ``get_scheme("efl", n_fused=4)``).
    """
    cls = _REGISTRY.get(name.strip().lower())
    if cls is None:
        raise PlanningError(
            f"unknown scheme {name!r}; available: "
            + ", ".join(available_schemes())
        )
    return cls(**kwargs)
