"""Edge device and cluster descriptions.

A device is characterised by its floating-point computing capacity
``vartheta`` (FLOP/s, paper §III-A) and the regression coefficient
``alpha`` of Eq. (5) that maps a FLOP count to wall-clock time.  The
paper's testbed is Raspberry-Pi 4Bs pinned to one core with the CPU
frequency scaled between 600 MHz and 1.5 GHz; :func:`raspberry_pi`
reproduces that knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

__all__ = ["Device", "Cluster", "raspberry_pi", "pi_cluster", "heterogeneous_cluster"]

#: Effective single-core FLOP/s per Hz for a Cortex-A72 running NNPACK
#: convolutions.  Only sets the absolute time unit; every paper result we
#: reproduce is a ratio, so the exact value is immaterial.
FLOPS_PER_CYCLE = 2.0


@dataclass(frozen=True)
class Device:
    """One edge device.

    ``capacity`` is FLOP/s; ``alpha`` the Eq. (5) calibration
    coefficient (1.0 = the cost model's FLOP counts are exact).
    """

    name: str
    capacity: float
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.alpha <= 0:
            raise ValueError(f"{self.name}: alpha must be positive")

    def compute_time(self, flops: float) -> float:
        """Eq. (5): wall-clock seconds for ``flops`` floating operations."""
        return self.alpha * flops / self.capacity


@dataclass(frozen=True)
class Cluster:
    """An ordered collection of devices."""

    devices: Tuple[Device, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        if not self.devices:
            raise ValueError("cluster needs at least one device")
        names = [d.name for d in self.devices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names: {names}")

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices)

    @property
    def total_capacity(self) -> float:
        return sum(d.capacity for d in self.devices)

    @property
    def average_capacity(self) -> float:
        return self.total_capacity / len(self.devices)

    @property
    def fastest(self) -> Device:
        return max(self.devices, key=lambda d: d.capacity)

    def homogenized(self) -> "Cluster":
        """Eq. (12): same size, every device gets the average capacity."""
        avg = self.average_capacity
        avg_alpha = sum(d.alpha for d in self.devices) / len(self.devices)
        return Cluster(
            tuple(
                Device(f"avg{i}", avg, avg_alpha)
                for i in range(len(self.devices))
            )
        )

    def sorted_by_capacity(self, descending: bool = True) -> Tuple[Device, ...]:
        return tuple(
            sorted(self.devices, key=lambda d: d.capacity, reverse=descending)
        )


def raspberry_pi(name: str, freq_mhz: float = 1500.0, alpha: float = 1.0) -> Device:
    """A Raspberry-Pi 4B pinned to one core at ``freq_mhz``."""
    if freq_mhz <= 0:
        raise ValueError("frequency must be positive")
    return Device(name, capacity=freq_mhz * 1e6 * FLOPS_PER_CYCLE, alpha=alpha)


def pi_cluster(n: int, freq_mhz: float = 1500.0) -> Cluster:
    """A homogeneous cluster of ``n`` Raspberry-Pis (the paper's testbed)."""
    return Cluster(tuple(raspberry_pi(f"pi{i}", freq_mhz) for i in range(n)))


def heterogeneous_cluster(freqs_mhz: "Sequence[float]") -> Cluster:
    """A heterogeneous Pi cluster from a list of CPU frequencies, e.g. the
    paper's Table I mix ``[1200, 1200, 800, 800, 600, 600, 600, 600]``."""
    return Cluster(
        tuple(
            raspberry_pi(f"pi{i}@{int(f)}MHz", f) for i, f in enumerate(freqs_mhz)
        )
    )
