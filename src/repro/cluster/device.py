"""Edge device and cluster descriptions.

A device is characterised by its floating-point computing capacity
``vartheta`` (FLOP/s, paper §III-A) and the regression coefficient
``alpha`` of Eq. (5) that maps a FLOP count to wall-clock time.  The
paper's testbed is Raspberry-Pi 4Bs pinned to one core with the CPU
frequency scaled between 600 MHz and 1.5 GHz; :func:`raspberry_pi`
reproduces that knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

__all__ = [
    "Device",
    "Cluster",
    "DeviceLease",
    "DevicePool",
    "raspberry_pi",
    "pi_cluster",
    "heterogeneous_cluster",
]

#: Effective single-core FLOP/s per Hz for a Cortex-A72 running NNPACK
#: convolutions.  Only sets the absolute time unit; every paper result we
#: reproduce is a ratio, so the exact value is immaterial.
FLOPS_PER_CYCLE = 2.0


@dataclass(frozen=True)
class Device:
    """One edge device.

    ``capacity`` is FLOP/s; ``alpha`` the Eq. (5) calibration
    coefficient (1.0 = the cost model's FLOP counts are exact).
    """

    name: str
    capacity: float
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.alpha <= 0:
            raise ValueError(f"{self.name}: alpha must be positive")

    def compute_time(self, flops: float) -> float:
        """Eq. (5): wall-clock seconds for ``flops`` floating operations."""
        return self.alpha * flops / self.capacity


@dataclass(frozen=True)
class Cluster:
    """An ordered collection of devices."""

    devices: Tuple[Device, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        if not self.devices:
            raise ValueError("cluster needs at least one device")
        names = [d.name for d in self.devices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names: {names}")

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices)

    @property
    def total_capacity(self) -> float:
        return sum(d.capacity for d in self.devices)

    @property
    def average_capacity(self) -> float:
        return self.total_capacity / len(self.devices)

    @property
    def fastest(self) -> Device:
        return max(self.devices, key=lambda d: d.capacity)

    def homogenized(self) -> "Cluster":
        """Eq. (12): same size, every device gets the average capacity."""
        avg = self.average_capacity
        avg_alpha = sum(d.alpha for d in self.devices) / len(self.devices)
        return Cluster(
            tuple(
                Device(f"avg{i}", avg, avg_alpha)
                for i in range(len(self.devices))
            )
        )

    def sorted_by_capacity(self, descending: bool = True) -> Tuple[Device, ...]:
        return tuple(
            sorted(self.devices, key=lambda d: d.capacity, reverse=descending)
        )

    def subset(self, names: "Sequence[str]") -> "Cluster":
        """The sub-cluster holding exactly ``names`` (cluster order)."""
        wanted = set(names)
        unknown = wanted - {d.name for d in self.devices}
        if unknown:
            raise KeyError(f"unknown devices: {sorted(unknown)}")
        return Cluster(tuple(d for d in self.devices if d.name in wanted))


@dataclass(frozen=True)
class DeviceLease:
    """One tenant's grant on one device.

    ``share`` is the capacity fraction the scheduler granted — ``1.0``
    for an exclusive device, ``1/k`` when ``k`` tenant pipelines share
    it (the contention model: a shared single-core device time-slices
    fairly, so each holder sees proportionally scaled capacity).
    """

    device: str
    tenant: str
    share: float

    def __post_init__(self) -> None:
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"lease share must be in (0, 1], got {self.share}")


class DevicePool:
    """Occupancy-tracked view of a :class:`Cluster` shared by tenants.

    The fleet scheduler places every tenant pipeline through this book:
    :meth:`lease` records which tenant holds which devices, and
    :meth:`effective` answers what capacity a holder actually sees —
    the device's nominal capacity divided by its occupancy, the
    scaled-effective-capacity contention model the placement re-costing
    uses.  Dead devices (:meth:`mark_dead`) leave every tenant's lease
    set and stop being offered, which is what turns one death into a
    fleet-wide re-placement of every affected tenant.
    """

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._by_name: "Dict[str, Device]" = {d.name: d for d in cluster}
        self._holders: "Dict[str, List[str]]" = {d.name: [] for d in cluster}
        self._dead: "Set[str]" = set()

    # -- liveness ------------------------------------------------------
    def mark_dead(self, name: str) -> "Tuple[str, ...]":
        """Retire a device; returns the tenants whose leases it voids."""
        if name not in self._by_name:
            raise KeyError(f"unknown device {name!r}")
        affected = tuple(self._holders[name])
        self._dead.add(name)
        self._holders[name] = []
        return affected

    @property
    def dead(self) -> "frozenset":
        return frozenset(self._dead)

    def alive(self) -> "Tuple[Device, ...]":
        return tuple(d for d in self.cluster if d.name not in self._dead)

    # -- leases --------------------------------------------------------
    def occupancy(self, name: str) -> int:
        """How many tenants currently hold ``name``."""
        return len(self._holders[name])

    def holders(self, name: str) -> "Tuple[str, ...]":
        return tuple(self._holders[name])

    def devices_of(self, tenant: str) -> "Tuple[str, ...]":
        return tuple(
            name
            for name, holders in sorted(self._holders.items())
            if tenant in holders
        )

    def lease(self, tenant: str, names: "Sequence[str]") -> "Tuple[DeviceLease, ...]":
        """Grant ``tenant`` every device in ``names`` (idempotent)."""
        leases = []
        for name in names:
            if name not in self._by_name:
                raise KeyError(f"unknown device {name!r}")
            if name in self._dead:
                raise ValueError(f"device {name!r} is dead")
            if tenant not in self._holders[name]:
                self._holders[name].append(tenant)
            leases.append(
                DeviceLease(name, tenant, 1.0 / len(self._holders[name]))
            )
        return tuple(leases)

    def release(self, tenant: str) -> None:
        """Void every lease ``tenant`` holds."""
        for holders in self._holders.values():
            if tenant in holders:
                holders.remove(tenant)

    # -- contention-scaled views ---------------------------------------
    def effective(self, name: str, extra_holders: int = 0) -> Device:
        """``name`` as its holders see it: capacity / occupancy.

        ``extra_holders`` previews the capacity *after* that many more
        tenants join — the scheduler scores candidate placements with
        ``extra_holders=1`` before committing a lease.
        """
        device = self._by_name[name]
        k = max(1, len(self._holders[name]) + extra_holders)
        if k == 1:
            return device
        return Device(device.name, device.capacity / k, device.alpha)

    def effective_cluster(
        self, names: "Sequence[str]", extra_holders: int = 0
    ) -> Cluster:
        """A contention-scaled :class:`Cluster` over ``names``."""
        return Cluster(
            tuple(self.effective(n, extra_holders) for n in names)
        )

    def candidates(self) -> "Tuple[Device, ...]":
        """Live devices, least-occupied first (capacity breaks ties)."""
        return tuple(
            sorted(
                self.alive(),
                key=lambda d: (self.occupancy(d.name), -d.capacity, d.name),
            )
        )


def raspberry_pi(name: str, freq_mhz: float = 1500.0, alpha: float = 1.0) -> Device:
    """A Raspberry-Pi 4B pinned to one core at ``freq_mhz``."""
    if freq_mhz <= 0:
        raise ValueError("frequency must be positive")
    return Device(name, capacity=freq_mhz * 1e6 * FLOPS_PER_CYCLE, alpha=alpha)


def pi_cluster(n: int, freq_mhz: float = 1500.0) -> Cluster:
    """A homogeneous cluster of ``n`` Raspberry-Pis (the paper's testbed)."""
    return Cluster(tuple(raspberry_pi(f"pi{i}", freq_mhz) for i in range(n)))


def heterogeneous_cluster(freqs_mhz: "Sequence[float]") -> Cluster:
    """A heterogeneous Pi cluster from a list of CPU frequencies, e.g. the
    paper's Table I mix ``[1200, 1200, 800, 800, 600, 600, 600, 600]``."""
    return Cluster(
        tuple(
            raspberry_pi(f"pi{i}@{int(f)}MHz", f) for i, f in enumerate(freqs_mhz)
        )
    )
