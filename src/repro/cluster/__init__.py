"""Cluster substrate: devices, network, discrete-event simulator, metrics."""

from repro.cluster.device import (
    Cluster,
    Device,
    heterogeneous_cluster,
    pi_cluster,
    raspberry_pi,
)
from repro.cluster.metrics import DeviceReport, UtilizationTable, utilization_table
from repro.cluster.simulator import (
    SimResult,
    TaskRecord,
    simulate_adaptive,
    simulate_plan,
)

__all__ = [
    "Cluster",
    "Device",
    "DeviceReport",
    "SimResult",
    "TaskRecord",
    "UtilizationTable",
    "heterogeneous_cluster",
    "pi_cluster",
    "raspberry_pi",
    "simulate_adaptive",
    "simulate_plan",
    "utilization_table",
]
