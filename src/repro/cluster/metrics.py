"""Per-device utilisation and redundancy metrics (paper Table I, Fig. 13).

Utilisation is CPU busy time over the measurement window (from the
simulator).  Redundancy is static per plan: for each device, the
fraction of its per-task FLOPs that fall outside its *owned*
(stride-projected, halo-free) share — redundant work it duplicates with
a neighbouring device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.simulator import SimResult
from repro.core.plan import PipelinePlan, plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import Model
from repro.runtime.trace import TraceEvent, device_busy, trace_makespan

__all__ = ["DeviceReport", "UtilizationTable", "utilization_table"]


@dataclass(frozen=True)
class DeviceReport:
    """Table I row fragment for one device."""

    name: str
    capacity: float
    utilization: float
    flops_per_task: float
    owned_flops_per_task: float

    @property
    def redundancy_ratio(self) -> float:
        if self.flops_per_task <= 0:
            return 0.0
        return max(0.0, self.flops_per_task - self.owned_flops_per_task) / (
            self.flops_per_task
        )


@dataclass(frozen=True)
class UtilizationTable:
    """All device rows plus cluster averages."""

    scheme: str
    model: str
    devices: Tuple[DeviceReport, ...]

    @property
    def average_utilization(self) -> float:
        active = [d for d in self.devices if d.flops_per_task > 0]
        pool = active or list(self.devices)
        return sum(d.utilization for d in pool) / len(pool)

    @property
    def average_redundancy(self) -> float:
        total = sum(d.flops_per_task for d in self.devices)
        if total <= 0:
            return 0.0
        redundant = sum(
            d.flops_per_task - d.owned_flops_per_task for d in self.devices
        )
        return max(0.0, redundant) / total

    def format(self) -> str:
        lines = [
            f"{self.model} / {self.scheme}: "
            f"avg util {self.average_utilization:6.2%}, "
            f"avg redu {self.average_redundancy:6.2%}"
        ]
        for d in self.devices:
            lines.append(
                f"  {d.name:<16s} util {d.utilization:7.2%}  "
                f"redu {d.redundancy_ratio:7.2%}"
            )
        return "\n".join(lines)


def utilization_table(
    model: Model,
    plan: PipelinePlan,
    network: NetworkModel,
    sim: Optional[SimResult] = None,
    options: CostOptions = DEFAULT_OPTIONS,
    scheme_name: str = "?",
    trace: "Optional[Sequence[TraceEvent]]" = None,
) -> UtilizationTable:
    """Build the Table I metrics for one plan.

    ``sim`` provides measured busy times from the event simulator;
    ``trace`` computes them from runtime-core trace events instead
    (any backend — live or virtual-clock — emits the same schema).
    Without either, utilisation falls back to the analytic
    steady-state estimate (busy share per period).
    """
    if sim is not None and trace is not None:
        raise ValueError("pass at most one of sim= and trace=")
    trace_window = trace_makespan(trace) if trace is not None else 0.0
    trace_busy = device_busy(trace) if trace is not None else {}
    cost = plan_cost(model, plan, network, options)
    flops: "Dict[str, float]" = {}
    owned: "Dict[str, float]" = {}
    capacity: "Dict[str, float]" = {}
    busy_per_task: "Dict[str, float]" = {}
    for sc in cost.stage_costs:
        for dc in sc.devices:
            name = dc.device.name
            capacity[name] = dc.device.capacity
            flops[name] = flops.get(name, 0.0) + dc.flops
            owned[name] = owned.get(name, 0.0) + dc.owned_flops
            # Busy = compute + own transfers (single-core CPU usage).
            busy_per_task[name] = (
                busy_per_task.get(name, 0.0) + dc.t_comp + dc.t_comm
            )

    reports: "List[DeviceReport]" = []
    for name in capacity:
        if sim is not None:
            util = sim.utilization(name)
        elif trace is not None:
            util = (
                trace_busy.get(name, 0.0) / trace_window
                if trace_window > 0
                else 0.0
            )
        else:
            # Steady state: each device works busy_per_task seconds out
            # of every pipeline period.
            util = busy_per_task[name] / cost.period if cost.period > 0 else 0.0
        reports.append(
            DeviceReport(
                name,
                capacity[name],
                min(1.0, util),
                flops.get(name, 0.0),
                owned.get(name, 0.0),
            )
        )
    reports.sort(key=lambda r: (-r.capacity, r.name))
    return UtilizationTable(scheme_name, model.name, tuple(reports))
