"""Discrete-event simulation of a plan executing on the cluster.

Substitutes the paper's physical 8×Raspberry-Pi testbed: stages are
deterministic-service FIFO servers, tasks flow stage to stage, and
per-device busy time accrues from each stage's compute share.  The
per-plan service times, transfer/compute splits and busy shares come
from the shared runtime core's timing tables
(:func:`repro.runtime.timing.plan_timing`) — the same tables the
frame-level :class:`~repro.runtime.core.SimTransport` stamps its trace
events with, so an event-loop simulation and a frame-level simulated
run of the same plan agree by construction.  *Exclusive* plans (the
one-stage baseline schemes) collapse into a single server whose service
time is the full phase sequence.  The adaptive entry point replays an
:class:`~repro.adaptive.switcher.AdaptiveSwitcher`, swapping the active
plan at service boundaries: tasks already inside the pipeline finish
under the plan that started them (model segments must be re-shipped
before a switch in a real deployment), while the unstarted backlog
migrates to the new plan.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.plan import PipelinePlan

if TYPE_CHECKING:  # avoid a circular import; only needed for typing
    from repro.adaptive.switcher import AdaptiveSwitcher
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import Model
from repro.runtime.timing import PlanTiming, plan_timing
from repro.runtime.trace import TraceEvent, Tracer, coerce_tracer

__all__ = ["TaskRecord", "SimResult", "simulate_plan", "simulate_adaptive"]


@dataclass(frozen=True)
class TaskRecord:
    """One task's journey through the cluster."""

    task_id: int
    arrival: float
    started: float
    completion: float
    plan_name: str

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def waiting(self) -> float:
        return self.started - self.arrival


@dataclass
class SimResult:
    """Aggregate simulation output."""

    tasks: List[TaskRecord]
    makespan: float
    device_busy: Dict[str, float]
    plan_usage: Dict[str, int] = field(default_factory=dict)
    #: Collected trace events (empty unless the run passed ``trace=``).
    trace: Tuple[TraceEvent, ...] = ()
    #: Task ids refused admission (only when ``queue_capacity`` was set).
    shed: Tuple[int, ...] = ()

    @property
    def completed(self) -> int:
        return len(self.tasks)

    @property
    def submitted(self) -> int:
        return len(self.tasks) + len(self.shed)

    @property
    def avg_latency(self) -> float:
        if not self.tasks:
            return 0.0
        return sum(t.latency for t in self.tasks) / len(self.tasks)

    @property
    def max_latency(self) -> float:
        return max((t.latency for t in self.tasks), default=0.0)

    def percentile_latency(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] (nearest-rank)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.tasks:
            return 0.0
        ordered = sorted(t.latency for t in self.tasks)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def throughput(self) -> float:
        """Completed tasks per second of makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan

    def utilization(self, device_name: str) -> float:
        """Busy fraction of a device over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.device_busy.get(device_name, 0.0) / self.makespan

    def steady_state(self, warmup_tasks: int) -> "SimResult":
        """A view with the first ``warmup_tasks`` completions dropped.

        Pipeline fill-up biases short runs: the first tasks see an empty
        pipeline (low latency) while throughput over the whole makespan
        under-counts the filled regime.  The trimmed view measures the
        post-warm-up window; device-busy totals are scaled by the kept
        task fraction (exact for deterministic service times).
        """
        if warmup_tasks < 0:
            raise ValueError("warmup_tasks must be non-negative")
        if warmup_tasks == 0 or warmup_tasks >= len(self.tasks):
            return self
        by_completion = sorted(self.tasks, key=lambda t: t.completion)
        kept = by_completion[warmup_tasks:]
        window_start = by_completion[warmup_tasks - 1].completion
        fraction = len(kept) / len(self.tasks)
        return SimResult(
            tasks=sorted(kept, key=lambda t: t.task_id),
            makespan=self.makespan - window_start,
            device_busy={k: v * fraction for k, v in self.device_busy.items()},
            plan_usage=dict(self.plan_usage),
            trace=self.trace,
            shed=self.shed,
        )


@dataclass
class _InFlight:
    task_id: int
    arrival: float
    started: float
    timing: PlanTiming
    entry: float = 0.0  # when the task joined its current stage queue


def _run_event_loop(
    arrivals: "Sequence[float]",
    initial_timing: PlanTiming,
    pick_timing,  # (now, in_system) -> desired PlanTiming
    shared_medium: bool = False,
    tracer: Optional[Tracer] = None,
    queue_capacity: Optional[int] = None,
) -> SimResult:
    """Shared event loop for plain and adaptive simulations.

    Plan switches happen at service boundaries: when no stage is
    mid-service and every waiting task is still unstarted (in the first
    stage's queue), the backlog migrates to the newly desired plan.
    Tasks already inside the pipeline always finish under the plan that
    started them.

    ``queue_capacity`` bounds the number of tasks in the system
    (queued *or* in service, the M/D/1/K convention): an arrival that
    finds ``queue_capacity`` tasks in flight is shed — recorded in
    ``SimResult.shed`` and emitted as a ``shed`` trace event — instead
    of joining the first stage's queue.

    With ``shared_medium=True`` the WLAN becomes an explicit resource:
    a stage's communication phase must hold the single network token
    before its compute phase runs, so transfers of concurrent stages
    serialise — the event-level counterpart of the analytic
    ``CostOptions(shared_medium=True)`` bound.  (The model folds
    scatter+gather into one leading phase; the stage total is
    unchanged, only the contention window shifts.)
    """
    counter = itertools.count()
    heap: "List[Tuple[float, int, str, object]]" = []
    for task_id, t in enumerate(sorted(arrivals)):
        heapq.heappush(heap, (float(t), next(counter), "arrival", task_id))

    current = initial_timing
    desired = initial_timing
    queues: "List[Deque[_InFlight]]" = [deque() for _ in range(current.n_stages)]
    busy: "List[bool]" = [False] * current.n_stages
    device_busy: "Dict[str, float]" = {}
    plan_usage: "Dict[str, int]" = {}
    records: "List[TaskRecord]" = []
    shed: "List[int]" = []
    in_system = 0
    makespan = 0.0

    def maybe_swap() -> None:
        nonlocal current, queues, busy
        if desired is current:
            return
        if any(busy) or any(len(q) for q in queues[1:]):
            return  # tasks mid-pipeline must finish first
        if net_busy or net_queue:
            return  # transfers in flight
        backlog = queues[0]
        current = desired
        queues = [deque() for _ in range(current.n_stages)]
        busy = [False] * current.n_stages
        for task in backlog:
            task.timing = current
            queues[0].append(task)

    net_busy = False
    net_queue: "Deque[Tuple[int, _InFlight]]" = deque()

    def try_net(now: float) -> None:
        nonlocal net_busy
        if net_busy or not net_queue:
            return
        stage_idx, task = net_queue.popleft()
        net_busy = True
        heapq.heappush(
            heap,
            (
                now + task.timing.stages[stage_idx].comm,
                next(counter),
                "net_done",
                (stage_idx, task),
            ),
        )

    def try_start(stage_idx: int, now: float) -> None:
        nonlocal makespan
        timing = current
        if busy[stage_idx] or not queues[stage_idx]:
            return
        task = queues[stage_idx].popleft()
        assert task.timing is timing, "task queued under a stale timing"
        busy[stage_idx] = True
        if stage_idx == 0 and task.started < 0:
            task.started = now
        if tracer is not None:
            tracer.emit(
                TraceEvent(
                    "enqueue", task.task_id, stage_idx, "", task.entry, now
                )
            )
        for name, t_comp in timing.stages[stage_idx].busy_shares:
            device_busy[name] = device_busy.get(name, 0.0) + t_comp
            if tracer is not None:
                tracer.emit(
                    TraceEvent(
                        "compute", task.task_id, stage_idx, name,
                        now, now + t_comp,
                    )
                )
        if shared_medium:
            net_queue.append((stage_idx, task))
            try_net(now)
            return
        service = timing.stages[stage_idx].service
        heapq.heappush(
            heap, (now + service, next(counter), "done", (stage_idx, task))
        )

    while heap:
        now, _, kind, payload = heapq.heappop(heap)
        if kind == "arrival":
            task_id = payload
            desired = pick_timing(now, in_system)
            maybe_swap()
            if queue_capacity is not None and in_system >= queue_capacity:
                shed.append(task_id)
                if tracer is not None:
                    tracer.emit(TraceEvent("shed", task_id, 0, "", now, now))
                continue
            in_system += 1
            makespan = max(makespan, now)
            task = _InFlight(task_id, now, -1.0, current, entry=now)
            queues[0].append(task)
            try_start(0, now)
        elif kind == "net_done":
            stage_idx, task = payload  # type: ignore[misc]
            makespan = max(makespan, now)
            net_busy = False
            heapq.heappush(
                heap,
                (
                    now + task.timing.stages[stage_idx].comp,
                    next(counter),
                    "done",
                    (stage_idx, task),
                ),
            )
            try_net(now)
        else:
            stage_idx, task = payload  # type: ignore[misc]
            makespan = max(makespan, now)
            busy[stage_idx] = False
            if stage_idx == task.timing.n_stages - 1:
                in_system -= 1
                plan_usage[task.timing.name] = (
                    plan_usage.get(task.timing.name, 0) + 1
                )
                records.append(
                    TaskRecord(
                        task.task_id, task.arrival, task.started, now,
                        task.timing.name,
                    )
                )
            else:
                task.entry = now
                queues[stage_idx + 1].append(task)
                try_start(stage_idx + 1, now)
            maybe_swap()
            # A swap may have replaced the queues with the new plan's
            # (possibly shorter) stage list; only restart valid stages.
            if stage_idx < len(queues):
                try_start(stage_idx, now)
            try_start(0, now)

    records.sort(key=lambda r: r.task_id)
    trace = tracer.events if tracer is not None else ()
    return SimResult(
        records, makespan, device_busy, plan_usage, trace, tuple(shed)
    )


def simulate_plan(
    model: Model,
    plan: PipelinePlan,
    network: NetworkModel,
    arrivals: "Sequence[float]",
    options: CostOptions = DEFAULT_OPTIONS,
    plan_name: Optional[str] = None,
    shared_medium: bool = False,
    measured_services: "Optional[Sequence[float]]" = None,
    faults=None,
    cluster=None,
    scheme=None,
    trace=None,
    queue_capacity: Optional[int] = None,
) -> SimResult:
    """Replay ``arrivals`` through a fixed plan.

    ``shared_medium=True`` serialises all stages' transfers over one
    WLAN token (event-level contention).  ``measured_services`` replaces
    the analytic per-stage service times with measured wall-clock ones
    (one entry per stage, seconds) — the bridge from
    :meth:`repro.schemes.local.LocalPlanExecutor.measure` to the event
    simulator.

    ``faults`` — a :class:`~repro.runtime.faults.FaultSchedule` — models
    cluster churn: each ``crash(device, at_frame)`` kills its device
    once ``at_frame`` arrivals have entered the system, and the plan is
    rebuilt over the survivors with ``scheme`` over ``cluster`` (both
    then required), emitting ``device_dead`` and ``replan`` /
    ``degraded`` events into ``trace``; the re-planned pipeline takes
    over at the next service boundary (drain-before-switch), exactly
    like an adaptive plan switch.  Frame-level faults (delay, drop,
    flaky link) have no event-level counterpart here — use the
    frame-accurate :class:`~repro.runtime.core.SimTransport` for those.

    ``trace`` is the shared ``Tracer | bool | None`` contract; events
    land in ``SimResult.trace``.

    ``queue_capacity`` enables admission control: arrivals that find
    that many tasks already in the system are shed (see
    ``SimResult.shed``) rather than queued — the event-level mirror of
    :class:`~repro.serve.PipelineServer`'s bounded queue.
    """
    tracer = coerce_tracer(trace)
    timing = plan_timing(
        model, plan, network, options,
        name=plan_name or plan.mode,
        measured_services=measured_services,
    )
    crashes = tuple(faults.crashes) if faults is not None else ()
    if not crashes:
        return _run_event_loop(
            arrivals, timing, lambda now, depth: timing,
            shared_medium=shared_medium, tracer=tracer,
            queue_capacity=queue_capacity,
        )
    if cluster is None or scheme is None:
        raise ValueError(
            "simulating crash churn needs cluster= and scheme= to "
            "re-plan over the survivors"
        )
    crash_at: "Dict[str, int]" = {}
    for c in crashes:
        prev = crash_at.get(c.device)
        crash_at[c.device] = c.at_frame if prev is None else min(prev, c.at_frame)
    state = {"count": 0, "dead": set(), "timing": timing}

    def pick(now: float, depth: int) -> PlanTiming:
        from repro.cluster.device import Cluster
        from repro.runtime.faults import StageFailure
        from repro.schemes.base import PlanningError
        from repro.schemes.local import local_fallback_plan

        index = state["count"]
        state["count"] += 1
        dead: "set" = state["dead"]
        newly = sorted(
            d for d, at in crash_at.items() if index >= at and d not in dead
        )
        if not newly:
            return state["timing"]
        for device in newly:
            dead.add(device)
            if tracer is not None:
                tracer.emit(
                    TraceEvent("device_dead", index, 0, device, now, now)
                )
        survivors = tuple(d for d in cluster if d.name not in dead)
        if not survivors:
            raise StageFailure("every device in the cluster is dead")
        try:
            fresh = scheme.plan(model, Cluster(survivors), network, options)
            kind = "replan"
        except PlanningError:
            best = max(survivors, key=lambda d: d.capacity)
            fresh = local_fallback_plan(model, best)
            kind = "degraded"
        state["timing"] = plan_timing(
            model, fresh, network, options, name=f"{timing.name}+{kind}"
        )
        if tracer is not None:
            tracer.emit(
                TraceEvent(kind, index, 0, ",".join(sorted(dead)), now, now)
            )
        return state["timing"]

    return _run_event_loop(
        arrivals, timing, pick, shared_medium=shared_medium, tracer=tracer,
        queue_capacity=queue_capacity,
    )


def simulate_adaptive(
    model: Model,
    switcher: "AdaptiveSwitcher",
    network: NetworkModel,
    arrivals: "Sequence[float]",
    options: CostOptions = DEFAULT_OPTIONS,
    shared_medium: bool = False,
    trace=None,
    queue_capacity: Optional[int] = None,
) -> SimResult:
    """Replay ``arrivals`` with APICO switching (drain-before-switch).

    The switcher sees the live queue depth alongside each arrival, so
    its scoring reacts to measured backlog as well as the smoothed
    arrival rate; ``queue_capacity`` additionally sheds arrivals that
    find a full system (see :func:`simulate_plan`).
    """
    tracer = coerce_tracer(trace)
    timings = switcher.plan_timings(model, network, options)
    initial = timings[switcher.active.name]

    def pick(now: float, depth: int) -> PlanTiming:
        active = switcher.on_arrival(now, queue_depth=depth)
        return timings[active.name]

    return _run_event_loop(
        arrivals, initial, pick, shared_medium=shared_medium, tracer=tracer,
        queue_capacity=queue_capacity,
    )
