"""Discrete-event simulation of a plan executing on the cluster.

Substitutes the paper's physical 8×Raspberry-Pi testbed: stages are
deterministic-service FIFO servers (service time = the Eq. 9 stage
cost), tasks flow stage to stage, and per-device busy time accrues from
each stage's compute share.  *Exclusive* plans (the one-stage baseline
schemes) collapse into a single server whose service time is the full
phase sequence.  The adaptive entry point replays an
:class:`~repro.adaptive.switcher.AdaptiveSwitcher`, swapping the active
plan at service boundaries: tasks already inside the pipeline finish
under the plan that started them (model segments must be re-shipped
before a switch in a real deployment), while the unstarted backlog
migrates to the new plan.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.plan import PipelinePlan, plan_cost

if TYPE_CHECKING:  # avoid a circular import; only needed for typing
    from repro.adaptive.switcher import AdaptiveSwitcher
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import Model

__all__ = ["TaskRecord", "SimResult", "simulate_plan", "simulate_adaptive"]


@dataclass(frozen=True)
class TaskRecord:
    """One task's journey through the cluster."""

    task_id: int
    arrival: float
    started: float
    completion: float
    plan_name: str

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def waiting(self) -> float:
        return self.started - self.arrival


@dataclass
class SimResult:
    """Aggregate simulation output."""

    tasks: List[TaskRecord]
    makespan: float
    device_busy: Dict[str, float]
    plan_usage: Dict[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return len(self.tasks)

    @property
    def avg_latency(self) -> float:
        if not self.tasks:
            return 0.0
        return sum(t.latency for t in self.tasks) / len(self.tasks)

    @property
    def max_latency(self) -> float:
        return max((t.latency for t in self.tasks), default=0.0)

    def percentile_latency(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] (nearest-rank)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.tasks:
            return 0.0
        ordered = sorted(t.latency for t in self.tasks)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def throughput(self) -> float:
        """Completed tasks per second of makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan

    def utilization(self, device_name: str) -> float:
        """Busy fraction of a device over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.device_busy.get(device_name, 0.0) / self.makespan

    def steady_state(self, warmup_tasks: int) -> "SimResult":
        """A view with the first ``warmup_tasks`` completions dropped.

        Pipeline fill-up biases short runs: the first tasks see an empty
        pipeline (low latency) while throughput over the whole makespan
        under-counts the filled regime.  The trimmed view measures the
        post-warm-up window; device-busy totals are scaled by the kept
        task fraction (exact for deterministic service times).
        """
        if warmup_tasks < 0:
            raise ValueError("warmup_tasks must be non-negative")
        if warmup_tasks == 0 or warmup_tasks >= len(self.tasks):
            return self
        by_completion = sorted(self.tasks, key=lambda t: t.completion)
        kept = by_completion[warmup_tasks:]
        window_start = by_completion[warmup_tasks - 1].completion
        fraction = len(kept) / len(self.tasks)
        return SimResult(
            tasks=sorted(kept, key=lambda t: t.task_id),
            makespan=self.makespan - window_start,
            device_busy={k: v * fraction for k, v in self.device_busy.items()},
            plan_usage=dict(self.plan_usage),
        )


class _PlanRuntime:
    """Pre-computed service times and busy shares for one plan."""

    def __init__(
        self,
        name: str,
        plan: PipelinePlan,
        model: Model,
        network: NetworkModel,
        options: CostOptions,
        measured_services: "Optional[Sequence[float]]" = None,
    ) -> None:
        self.name = name
        self.plan = plan
        cost = plan_cost(model, plan, network, options)
        self.period = cost.period
        self.latency = cost.latency
        # A device is "busy" for its compute time plus its own transfer
        # time: on the paper's single-core Pis, socket I/O and tile
        # split/stitch consume the CPU just like convolutions, and the
        # paper's Table I reports measured CPU usage.
        if plan.mode == "pipelined":
            self.services = [sc.total for sc in cost.stage_costs]
            self.comm = [sc.t_comm for sc in cost.stage_costs]
            self.comp = [sc.t_comp + sc.t_head for sc in cost.stage_costs]
            self.busy_shares: "List[List[Tuple[str, float]]]" = [
                [(dc.device.name, dc.t_comp + dc.t_comm) for dc in sc.devices]
                for sc in cost.stage_costs
            ]
            # The head runs serially on one stage device; bill it there.
            for sc, shares in zip(cost.stage_costs, self.busy_shares):
                if sc.t_head > 0 and shares:
                    fastest = max(
                        range(len(sc.devices)),
                        key=lambda i: sc.devices[i].device.capacity,
                    )
                    name_, t = shares[fastest]
                    shares[fastest] = (name_, t + sc.t_head)
        else:
            self.services = [cost.latency]
            merged: "Dict[str, float]" = {}
            for sc in cost.stage_costs:
                for dc in sc.devices:
                    merged[dc.device.name] = (
                        merged.get(dc.device.name, 0.0) + dc.t_comp + dc.t_comm
                    )
                if sc.t_head > 0:
                    fastest = max(sc.devices, key=lambda dc: dc.device.capacity)
                    merged[fastest.device.name] = (
                        merged.get(fastest.device.name, 0.0) + sc.t_head
                    )
            self.busy_shares = [sorted(merged.items())]
            total_comm = sum(sc.t_comm for sc in cost.stage_costs)
            self.comm = [total_comm]
            self.comp = [cost.latency - total_comm]
        if measured_services is not None:
            # Replace the analytic per-stage service times with measured
            # wall-clock ones (e.g. LocalPlanExecutor.measure); the comm
            # component keeps its analytic estimate and compute absorbs
            # the rest, so shared-medium contention still works.
            if len(measured_services) != len(self.services):
                raise ValueError(
                    f"measured_services has {len(measured_services)} entries "
                    f"for a {len(self.services)}-stage plan"
                )
            self.services = [float(s) for s in measured_services]
            self.comm = [min(c, s) for c, s in zip(self.comm, self.services)]
            self.comp = [
                max(0.0, s - c) for s, c in zip(self.services, self.comm)
            ]
        self.n_stages = len(self.services)


@dataclass
class _InFlight:
    task_id: int
    arrival: float
    started: float
    runtime: _PlanRuntime


def _run_event_loop(
    arrivals: "Sequence[float]",
    initial_runtime: _PlanRuntime,
    pick_runtime,  # (now) -> desired _PlanRuntime
    shared_medium: bool = False,
) -> SimResult:
    """Shared event loop for plain and adaptive simulations.

    Plan switches happen at service boundaries: when no stage is
    mid-service and every waiting task is still unstarted (in the first
    stage's queue), the backlog migrates to the newly desired plan.
    Tasks already inside the pipeline always finish under the plan that
    started them.

    With ``shared_medium=True`` the WLAN becomes an explicit resource:
    a stage's communication phase must hold the single network token
    before its compute phase runs, so transfers of concurrent stages
    serialise — the event-level counterpart of the analytic
    ``CostOptions(shared_medium=True)`` bound.  (The model folds
    scatter+gather into one leading phase; the stage total is
    unchanged, only the contention window shifts.)
    """
    counter = itertools.count()
    heap: "List[Tuple[float, int, str, object]]" = []
    for task_id, t in enumerate(sorted(arrivals)):
        heapq.heappush(heap, (float(t), next(counter), "arrival", task_id))

    current = initial_runtime
    desired = initial_runtime
    queues: "List[Deque[_InFlight]]" = [deque() for _ in range(current.n_stages)]
    busy: "List[bool]" = [False] * current.n_stages
    device_busy: "Dict[str, float]" = {}
    plan_usage: "Dict[str, int]" = {}
    records: "List[TaskRecord]" = []
    makespan = 0.0

    def maybe_swap() -> None:
        nonlocal current, queues, busy
        if desired is current:
            return
        if any(busy) or any(len(q) for q in queues[1:]):
            return  # tasks mid-pipeline must finish first
        if net_busy or net_queue:
            return  # transfers in flight
        backlog = queues[0]
        current = desired
        queues = [deque() for _ in range(current.n_stages)]
        busy = [False] * current.n_stages
        for task in backlog:
            task.runtime = current
            queues[0].append(task)

    net_busy = False
    net_queue: "Deque[Tuple[int, _InFlight]]" = deque()

    def try_net(now: float) -> None:
        nonlocal net_busy
        if net_busy or not net_queue:
            return
        stage_idx, task = net_queue.popleft()
        net_busy = True
        heapq.heappush(
            heap,
            (
                now + task.runtime.comm[stage_idx],
                next(counter),
                "net_done",
                (stage_idx, task),
            ),
        )

    def try_start(stage_idx: int, now: float) -> None:
        nonlocal makespan
        runtime = current
        if busy[stage_idx] or not queues[stage_idx]:
            return
        task = queues[stage_idx].popleft()
        assert task.runtime is runtime, "task queued under a stale runtime"
        busy[stage_idx] = True
        if stage_idx == 0 and task.started < 0:
            task.started = now
        for name, t_comp in runtime.busy_shares[stage_idx]:
            device_busy[name] = device_busy.get(name, 0.0) + t_comp
        if shared_medium:
            net_queue.append((stage_idx, task))
            try_net(now)
            return
        service = runtime.services[stage_idx]
        heapq.heappush(
            heap, (now + service, next(counter), "done", (stage_idx, task))
        )

    while heap:
        now, _, kind, payload = heapq.heappop(heap)
        makespan = max(makespan, now)
        if kind == "arrival":
            task_id = payload
            desired = pick_runtime(now)
            maybe_swap()
            task = _InFlight(task_id, now, -1.0, current)
            queues[0].append(task)
            try_start(0, now)
        elif kind == "net_done":
            stage_idx, task = payload  # type: ignore[misc]
            net_busy = False
            heapq.heappush(
                heap,
                (
                    now + task.runtime.comp[stage_idx],
                    next(counter),
                    "done",
                    (stage_idx, task),
                ),
            )
            try_net(now)
        else:
            stage_idx, task = payload  # type: ignore[misc]
            busy[stage_idx] = False
            if stage_idx == task.runtime.n_stages - 1:
                plan_usage[task.runtime.name] = (
                    plan_usage.get(task.runtime.name, 0) + 1
                )
                records.append(
                    TaskRecord(
                        task.task_id, task.arrival, task.started, now,
                        task.runtime.name,
                    )
                )
            else:
                queues[stage_idx + 1].append(task)
                try_start(stage_idx + 1, now)
            maybe_swap()
            # A swap may have replaced the queues with the new plan's
            # (possibly shorter) stage list; only restart valid stages.
            if stage_idx < len(queues):
                try_start(stage_idx, now)
            try_start(0, now)

    records.sort(key=lambda r: r.task_id)
    return SimResult(records, makespan, device_busy, plan_usage)


def simulate_plan(
    model: Model,
    plan: PipelinePlan,
    network: NetworkModel,
    arrivals: "Sequence[float]",
    options: CostOptions = DEFAULT_OPTIONS,
    plan_name: Optional[str] = None,
    shared_medium: bool = False,
    measured_services: "Optional[Sequence[float]]" = None,
) -> SimResult:
    """Replay ``arrivals`` through a fixed plan.

    ``shared_medium=True`` serialises all stages' transfers over one
    WLAN token (event-level contention).  ``measured_services`` replaces
    the analytic per-stage service times with measured wall-clock ones
    (one entry per stage, seconds) — the bridge from
    :meth:`repro.schemes.local.LocalPlanExecutor.measure` to the event
    simulator."""
    runtime = _PlanRuntime(
        plan_name or plan.mode, plan, model, network, options,
        measured_services=measured_services,
    )
    return _run_event_loop(
        arrivals, runtime, lambda now: runtime, shared_medium=shared_medium
    )


def simulate_adaptive(
    model: Model,
    switcher: "AdaptiveSwitcher",
    network: NetworkModel,
    arrivals: "Sequence[float]",
    options: CostOptions = DEFAULT_OPTIONS,
    shared_medium: bool = False,
) -> SimResult:
    """Replay ``arrivals`` with APICO switching (drain-before-switch)."""
    runtimes = {
        c.name: _PlanRuntime(c.name, c.plan, model, network, options)
        for c in switcher.candidates
    }
    initial = runtimes[switcher.active.name]

    def pick(now: float) -> _PlanRuntime:
        active = switcher.on_arrival(now)
        return runtimes[active.name]

    return _run_event_loop(arrivals, initial, pick, shared_medium=shared_medium)
