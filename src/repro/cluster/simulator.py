"""Discrete-event simulation of a plan executing on the cluster.

Substitutes the paper's physical 8×Raspberry-Pi testbed: stages are
deterministic-service FIFO servers, tasks flow stage to stage, and
per-device busy time accrues from each stage's compute share.  The
per-plan service times, transfer/compute splits and busy shares come
from the shared runtime core's timing tables
(:func:`repro.runtime.timing.plan_timing`) — the same tables the
frame-level :class:`~repro.runtime.core.SimTransport` stamps its trace
events with, so an event-loop simulation and a frame-level simulated
run of the same plan agree by construction.  *Exclusive* plans (the
one-stage baseline schemes) collapse into a single server whose service
time is the full phase sequence.  The adaptive entry point replays an
:class:`~repro.adaptive.switcher.AdaptiveSwitcher`, swapping the active
plan at service boundaries: tasks already inside the pipeline finish
under the plan that started them (model segments must be re-shipped
before a switch in a real deployment), while the unstarted backlog
migrates to the new plan.

Since 2.0 the event loop itself lives in :mod:`repro.sim.engine`
(where it also handles multi-hop topologies, lazy million-request
workloads and churn scenarios — see
:func:`repro.sim.simulate_scenario`); the functions here are the
legacy single-WLAN adapters, bit-compatible with the pre-2.0 loop:
the plain mode folds communication into stage service, and
``shared_medium=True`` rides every stage's transfer over one token
link.  :class:`SimResult` / :class:`TaskRecord` moved to
:mod:`repro.sim.result` and are re-exported here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.core.plan import PipelinePlan

if TYPE_CHECKING:  # avoid a circular import; only needed for typing
    from repro.adaptive.switcher import AdaptiveSwitcher
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import Model
from repro.runtime.timing import PlanTiming, plan_timing
from repro.runtime.trace import TraceEvent, Tracer, coerce_tracer
from repro.sim.engine import run_scenario, token_bus_transmissions
from repro.sim.result import SimResult, TaskRecord
from repro.sim.topology import NetworkLink

__all__ = ["TaskRecord", "SimResult", "simulate_plan", "simulate_adaptive"]

#: The legacy shared-medium WLAN: one token link every transfer rides.
#: Durations come from the timing tables, so the bandwidth is nominal.
_TOKEN_LINK = NetworkLink("wlan", "*", "*", 1.0)


def _run_event_loop(
    arrivals: "Sequence[float]",
    initial_timing: PlanTiming,
    pick_timing,  # (now, in_system) -> desired PlanTiming
    shared_medium: bool = False,
    tracer: Optional[Tracer] = None,
    queue_capacity: Optional[int] = None,
) -> SimResult:
    """The legacy single-WLAN event loop (adapter over the engine).

    See :func:`repro.sim.engine.run_scenario` for the mechanics; this
    sorts the materialised arrival list and maps ``shared_medium`` to
    the engine's folded / single-token communication modes.
    """
    transmissions_for = (
        token_bus_transmissions(_TOKEN_LINK) if shared_medium else None
    )
    return run_scenario(
        iter(sorted(float(t) for t in arrivals)),
        initial_timing,
        pick_timing,
        transmissions_for=transmissions_for,
        tracer=tracer,
        queue_capacity=queue_capacity,
    )


def simulate_plan(
    model: Model,
    plan: PipelinePlan,
    network: NetworkModel,
    arrivals: "Sequence[float]",
    options: CostOptions = DEFAULT_OPTIONS,
    plan_name: Optional[str] = None,
    shared_medium: bool = False,
    measured_services: "Optional[Sequence[float]]" = None,
    faults=None,
    cluster=None,
    scheme=None,
    trace=None,
    queue_capacity: Optional[int] = None,
) -> SimResult:
    """Replay ``arrivals`` through a fixed plan.

    ``shared_medium=True`` serialises all stages' transfers over one
    WLAN token (event-level contention).  ``measured_services`` replaces
    the analytic per-stage service times with measured wall-clock ones
    (one entry per stage, seconds) — the bridge from
    :meth:`repro.schemes.local.LocalPlanExecutor.measure` to the event
    simulator.

    ``faults`` — a :class:`~repro.runtime.faults.FaultSchedule` — models
    cluster churn: each ``crash(device, at_frame)`` kills its device
    once ``at_frame`` arrivals have entered the system, and the plan is
    rebuilt over the survivors with ``scheme`` over ``cluster`` (both
    then required), emitting ``device_dead`` and ``replan`` /
    ``degraded`` events into ``trace``; the re-planned pipeline takes
    over at the next service boundary (drain-before-switch), exactly
    like an adaptive plan switch.  Frame-level faults (delay, drop,
    flaky link) have no event-level counterpart here — use the
    frame-accurate :class:`~repro.runtime.core.SimTransport` for those.
    For *time-triggered* churn, correlated bursts and devices joining
    mid-run, see :func:`repro.sim.simulate_scenario`.

    ``trace`` is the shared ``Tracer | bool | None`` contract; events
    land in ``SimResult.trace``.

    ``queue_capacity`` enables admission control: arrivals that find
    that many tasks already in the system are shed (see
    ``SimResult.shed``) rather than queued — the event-level mirror of
    :class:`~repro.serve.PipelineServer`'s bounded queue.
    """
    tracer = coerce_tracer(trace)
    timing = plan_timing(
        model, plan, network, options,
        name=plan_name or plan.mode,
        measured_services=measured_services,
    )
    crashes = tuple(faults.crashes) if faults is not None else ()
    if not crashes:
        return _run_event_loop(
            arrivals, timing, lambda now, depth: timing,
            shared_medium=shared_medium, tracer=tracer,
            queue_capacity=queue_capacity,
        )
    if cluster is None or scheme is None:
        raise ValueError(
            "simulating crash churn needs cluster= and scheme= to "
            "re-plan over the survivors"
        )
    crash_at: "Dict[str, int]" = {}
    for c in crashes:
        prev = crash_at.get(c.device)
        crash_at[c.device] = c.at_frame if prev is None else min(prev, c.at_frame)
    state = {"count": 0, "dead": set(), "timing": timing}

    def pick(now: float, depth: int) -> PlanTiming:
        from repro.cluster.device import Cluster
        from repro.runtime.faults import StageFailure
        from repro.schemes.base import PlanningError
        from repro.schemes.local import local_fallback_plan

        index = state["count"]
        state["count"] += 1
        dead: "set" = state["dead"]
        newly = sorted(
            d for d, at in crash_at.items() if index >= at and d not in dead
        )
        if not newly:
            return state["timing"]
        for device in newly:
            dead.add(device)
            if tracer is not None:
                tracer.emit(
                    TraceEvent("device_dead", index, 0, device, now, now)
                )
        survivors = tuple(d for d in cluster if d.name not in dead)
        if not survivors:
            raise StageFailure("every device in the cluster is dead")
        try:
            fresh = scheme.plan(model, Cluster(survivors), network, options)
            kind = "replan"
        except PlanningError:
            best = max(survivors, key=lambda d: d.capacity)
            fresh = local_fallback_plan(model, best)
            kind = "degraded"
        state["timing"] = plan_timing(
            model, fresh, network, options, name=f"{timing.name}+{kind}"
        )
        if tracer is not None:
            tracer.emit(
                TraceEvent(kind, index, 0, ",".join(sorted(dead)), now, now)
            )
        return state["timing"]

    return _run_event_loop(
        arrivals, timing, pick, shared_medium=shared_medium, tracer=tracer,
        queue_capacity=queue_capacity,
    )


def simulate_adaptive(
    model: Model,
    switcher: "AdaptiveSwitcher",
    network: NetworkModel,
    arrivals: "Sequence[float]",
    options: CostOptions = DEFAULT_OPTIONS,
    shared_medium: bool = False,
    trace=None,
    queue_capacity: Optional[int] = None,
) -> SimResult:
    """Replay ``arrivals`` with APICO switching (drain-before-switch).

    The switcher sees the live queue depth alongside each arrival, so
    its scoring reacts to measured backlog as well as the smoothed
    arrival rate; ``queue_capacity`` additionally sheds arrivals that
    find a full system (see :func:`simulate_plan`).
    """
    tracer = coerce_tracer(trace)
    timings = switcher.plan_timings(model, network, options)
    initial = timings[switcher.active.name]

    def pick(now: float, depth: int) -> PlanTiming:
        active = switcher.on_arrival(now, queue_depth=depth)
        return timings[active.name]

    return _run_event_loop(
        arrivals, initial, pick, shared_medium=shared_medium, tracer=tracer,
        queue_capacity=queue_capacity,
    )
