"""Synthetic workload traces with time-varying rates.

The paper motivates APICO with diurnal smart-home load ("idle when
occupants go to work, busy when they return").  A :class:`PhasedTrace`
concatenates Poisson segments with different rates, producing exactly
the light→heavy→light patterns the adaptive switcher must track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.workload.arrivals import poisson_arrivals

__all__ = ["Phase", "PhasedTrace", "day_night_trace"]


@dataclass(frozen=True)
class Phase:
    """A constant-rate segment of a trace."""

    rate: float  # tasks / second
    duration_s: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class PhasedTrace:
    """A sequence of Poisson phases played back to back."""

    phases: Tuple[Phase, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.phases:
            raise ValueError("trace needs at least one phase")

    @property
    def horizon_s(self) -> float:
        return sum(p.duration_s for p in self.phases)

    def sample(self, rng: Optional[np.random.Generator] = None) -> "List[float]":
        """Arrival times over the whole trace (fixed seed unless ``rng``
        is supplied — see :func:`~repro.workload.arrivals.poisson_arrivals`)."""
        rng = rng or np.random.default_rng(0)
        arrivals: "List[float]" = []
        offset = 0.0
        for phase in self.phases:
            if phase.rate > 0:
                arrivals.extend(
                    offset + t
                    for t in poisson_arrivals(phase.rate, phase.duration_s, rng)
                )
            offset += phase.duration_s
        return arrivals

    def rate_at(self, t: float) -> float:
        """The nominal rate active at time ``t``."""
        offset = 0.0
        for phase in self.phases:
            if t < offset + phase.duration_s:
                return phase.rate
            offset += phase.duration_s
        return self.phases[-1].rate


def day_night_trace(
    light_rate: float, heavy_rate: float, phase_duration_s: float, cycles: int = 1
) -> PhasedTrace:
    """Alternating light/heavy phases (the smart-home motivation)."""
    if cycles < 1:
        raise ValueError("cycles must be positive")
    phases: "List[Phase]" = []
    for _ in range(cycles):
        phases.append(Phase(light_rate, phase_duration_s))
        phases.append(Phase(heavy_rate, phase_duration_s))
    return PhasedTrace(tuple(phases))
