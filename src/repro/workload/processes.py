"""Lazy arrival processes and the ``get_arrivals`` registry.

The pre-2.0 workload helpers (:mod:`repro.workload.arrivals`,
:mod:`repro.workload.traces`) return materialised lists — fine for
hundreds of tasks, hopeless for the planet-scale scenarios the 2.0
simulator targets.  An :class:`ArrivalProcess` instead *streams* its
submit times through :meth:`ArrivalProcess.times`: a nondecreasing
iterator the event engine consumes one arrival at a time, so a
million-request diurnal trace occupies constant memory.

Every process follows one RNG convention, inherited from
:func:`~repro.workload.arrivals.poisson_arrivals`: ``times(rng=None)``
draws from a fixed seed-0 generator, so two runs of the same scenario
see the same workload unless an explicit ``numpy`` generator (or
:func:`repro.sim.simulate_scenario`'s ``seed=``) says otherwise.
Time-varying processes (diurnal, flash crowd) sample by Lewis
thinning, which preserves that determinism.

:func:`get_arrivals` / :func:`available_arrivals` mirror
:func:`repro.schemes.get_scheme`: the registry behind the CLI's
``--arrivals`` flag and any config-driven experiment.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.workload.traces import PhasedTrace, day_night_trace

__all__ = [
    "ArrivalProcess",
    "CompositeProcess",
    "DiurnalProcess",
    "FlashCrowdProcess",
    "PhasedProcess",
    "PoissonProcess",
    "SaturationProcess",
    "TraceReplayProcess",
    "UniformProcess",
    "available_arrivals",
    "day_night_process",
    "get_arrivals",
]


def _default_rng(rng) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(0)


class ArrivalProcess:
    """A lazy, reproducible stream of task submit times.

    Subclasses implement :meth:`times` (a nondecreasing iterator of
    seconds) and :meth:`rate_at` (the nominal instantaneous rate, for
    rate-envelope tests and capacity planning).  Iterating the process
    itself uses the default fixed seed.
    """

    #: End of the process's support (``inf`` for count-bounded ones).
    horizon_s: float = math.inf

    def times(self, rng: Optional[np.random.Generator] = None) -> Iterator[float]:
        raise NotImplementedError

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def sample(self, rng: Optional[np.random.Generator] = None) -> "List[float]":
        """Materialise the whole stream (all processes are finite)."""
        return list(self.times(rng))

    def __iter__(self) -> Iterator[float]:
        return self.times()


def _thinned(
    rate_at: "Callable[[float], float]",
    rate_max: float,
    horizon_s: float,
    rng: np.random.Generator,
) -> Iterator[float]:
    """Lewis thinning: sample an inhomogeneous Poisson process from a
    homogeneous ``rate_max`` envelope, keeping each candidate with
    probability ``rate_at(t) / rate_max``."""
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_max))
        if t >= horizon_s:
            return
        if float(rng.uniform(0.0, rate_max)) < rate_at(t):
            yield t


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate``/s.

    Bounded by ``horizon_s`` (seconds) or ``n_tasks`` (count) — the
    count bound is what lets benchmarks ask for exactly a million
    requests.  The draw sequence matches
    :func:`~repro.workload.arrivals.poisson_arrivals` gap for gap, so
    seeded runs reproduce the legacy lists.
    """

    def __init__(
        self,
        rate: float,
        horizon_s: Optional[float] = None,
        n_tasks: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if horizon_s is None and n_tasks is None:
            raise ValueError("bound the process with horizon_s= or n_tasks=")
        if horizon_s is not None and horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if n_tasks is not None and n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        self.rate = float(rate)
        self.horizon_s = math.inf if horizon_s is None else float(horizon_s)
        self.n_tasks = n_tasks

    def times(self, rng=None) -> Iterator[float]:
        rng = _default_rng(rng)

        def generate() -> Iterator[float]:
            t, emitted = 0.0, 0
            while self.n_tasks is None or emitted < self.n_tasks:
                t += float(rng.exponential(1.0 / self.rate))
                if t >= self.horizon_s:
                    return
                emitted += 1
                yield t

        return generate()

    def rate_at(self, t: float) -> float:
        return self.rate if 0 <= t < self.horizon_s else 0.0


class UniformProcess(ArrivalProcess):
    """Deterministic, evenly spaced arrivals (exact-test workhorse)."""

    def __init__(self, rate: float, horizon_s: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        self.rate = float(rate)
        self.horizon_s = float(horizon_s)

    def times(self, rng=None) -> Iterator[float]:
        def generate() -> Iterator[float]:
            gap = 1.0 / self.rate
            t = gap
            while t < self.horizon_s:
                yield t
                t += gap

        return generate()

    def rate_at(self, t: float) -> float:
        return self.rate if 0 <= t < self.horizon_s else 0.0


class SaturationProcess(ArrivalProcess):
    """All tasks submitted at t=0 — maximum-throughput measurement."""

    horizon_s = 0.0

    def __init__(self, n_tasks: int) -> None:
        if n_tasks <= 0:
            raise ValueError("n_tasks must be positive")
        self.n_tasks = n_tasks

    def times(self, rng=None) -> Iterator[float]:
        return iter([0.0] * self.n_tasks)

    def rate_at(self, t: float) -> float:
        return math.inf if t == 0 else 0.0


class PhasedProcess(ArrivalProcess):
    """Lazy playback of a :class:`~repro.workload.traces.PhasedTrace`.

    Draw-for-draw identical to ``PhasedTrace.sample`` under the same
    generator, just streamed instead of materialised.
    """

    def __init__(self, trace: PhasedTrace) -> None:
        self.trace = trace
        self.horizon_s = trace.horizon_s

    def times(self, rng=None) -> Iterator[float]:
        rng = _default_rng(rng)

        def generate() -> Iterator[float]:
            offset = 0.0
            for phase in self.trace.phases:
                if phase.rate > 0:
                    t = 0.0
                    while True:
                        t += float(rng.exponential(1.0 / phase.rate))
                        if t >= phase.duration_s:
                            break
                        yield offset + t
                offset += phase.duration_s

        return generate()

    def rate_at(self, t: float) -> float:
        return self.trace.rate_at(t)


def day_night_process(
    light_rate: float,
    heavy_rate: float,
    phase_duration_s: float,
    cycles: int = 1,
) -> PhasedProcess:
    """The smart-home motivation: alternating light/heavy phases."""
    return PhasedProcess(
        day_night_trace(light_rate, heavy_rate, phase_duration_s, cycles)
    )


class DiurnalProcess(ArrivalProcess):
    """Sinusoidal day/night load: rate swings ``base_rate`` →
    ``peak_rate`` once per ``period_s``, starting at the trough."""

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        period_s: float,
        horizon_s: float,
        phase_s: float = 0.0,
    ) -> None:
        if base_rate < 0:
            raise ValueError("base rate must be non-negative")
        if peak_rate < base_rate or peak_rate <= 0:
            raise ValueError("peak rate must be positive and >= base rate")
        if period_s <= 0:
            raise ValueError("period must be positive")
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        self.base_rate = float(base_rate)
        self.peak_rate = float(peak_rate)
        self.period_s = float(period_s)
        self.horizon_s = float(horizon_s)
        self.phase_s = float(phase_s)

    def rate_at(self, t: float) -> float:
        if not 0 <= t < self.horizon_s:
            return 0.0
        swing = (self.peak_rate - self.base_rate) / 2.0
        angle = 2.0 * math.pi * (t - self.phase_s) / self.period_s
        return self.base_rate + swing * (1.0 - math.cos(angle))

    def times(self, rng=None) -> Iterator[float]:
        return _thinned(
            self.rate_at, self.peak_rate, self.horizon_s, _default_rng(rng)
        )


class FlashCrowdProcess(ArrivalProcess):
    """A flash crowd: baseline load, a linear ramp to ``peak_rate`` at
    ``t_start``, a hold, and a linear decay back to baseline.

    The stress pattern ROADMAP item 4 wants the fleet scheduler judged
    on — the viral-clip / breaking-news shape no stationary Poisson
    run can produce.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        t_start: float,
        ramp_s: float,
        hold_s: float,
        decay_s: float,
        horizon_s: Optional[float] = None,
    ) -> None:
        if base_rate < 0:
            raise ValueError("base rate must be non-negative")
        if peak_rate <= base_rate:
            raise ValueError("peak rate must exceed the base rate")
        if t_start < 0:
            raise ValueError("t_start must be non-negative")
        if min(ramp_s, hold_s, decay_s) < 0:
            raise ValueError("ramp/hold/decay durations must be non-negative")
        self.base_rate = float(base_rate)
        self.peak_rate = float(peak_rate)
        self.t_start = float(t_start)
        self.ramp_s = float(ramp_s)
        self.hold_s = float(hold_s)
        self.decay_s = float(decay_s)
        end = t_start + ramp_s + hold_s + decay_s
        self.horizon_s = float(horizon_s) if horizon_s is not None else end
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")

    def rate_at(self, t: float) -> float:
        if not 0 <= t < self.horizon_s:
            return 0.0
        u = t - self.t_start
        if u < 0:
            return self.base_rate
        if u < self.ramp_s:
            return self.base_rate + (
                (self.peak_rate - self.base_rate) * u / self.ramp_s
            )
        u -= self.ramp_s
        if u < self.hold_s:
            return self.peak_rate
        u -= self.hold_s
        if u < self.decay_s:
            return self.peak_rate - (
                (self.peak_rate - self.base_rate) * u / self.decay_s
            )
        return self.base_rate

    def times(self, rng=None) -> Iterator[float]:
        return _thinned(
            self.rate_at, self.peak_rate, self.horizon_s, _default_rng(rng)
        )


class TraceReplayProcess(ArrivalProcess):
    """Replay recorded submit times from a file or an in-memory
    sequence.

    A file source is read lazily, one line at a time (one float per
    line; blank lines and ``#`` comments skipped), so multi-gigabyte
    production traces replay in constant memory.  ``time_scale``
    compresses or stretches the recording; ``time_offset`` shifts it.
    The stream must be nondecreasing after scaling — a clear error
    names the offending entry otherwise.
    """

    def __init__(
        self,
        source: "Union[str, Sequence[float], Iterable[float]]",
        time_scale: float = 1.0,
        time_offset: float = 0.0,
        n_tasks: Optional[int] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if n_tasks is not None and n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        self.source = source
        self.time_scale = float(time_scale)
        self.time_offset = float(time_offset)
        self.n_tasks = n_tasks
        self.horizon_s = math.inf

    def _raw(self) -> Iterator[float]:
        if isinstance(self.source, str):
            with open(self.source) as handle:
                for line in handle:
                    text = line.strip()
                    if not text or text.startswith("#"):
                        continue
                    yield float(text)
        else:
            for value in self.source:
                yield float(value)

    def times(self, rng=None) -> Iterator[float]:
        def generate() -> Iterator[float]:
            last = None
            for i, raw in enumerate(self._raw()):
                if self.n_tasks is not None and i >= self.n_tasks:
                    return
                t = raw * self.time_scale + self.time_offset
                if last is not None and t < last:
                    raise ValueError(
                        f"trace entry {i} goes backwards in time "
                        f"({t} after {last})"
                    )
                last = t
                yield t

        return generate()

    def rate_at(self, t: float) -> float:
        """Recorded traces carry no rate model; 0 by convention."""
        return 0.0


class CompositeProcess(ArrivalProcess):
    """Superposition of independent processes (tenant mixes, a flash
    crowd on top of a diurnal baseline, …): the streams are lazily
    merge-sorted, each child drawing from its own generator split off
    the master seed."""

    def __init__(self, processes: "Sequence[ArrivalProcess]") -> None:
        if not processes:
            raise ValueError("composite needs at least one process")
        self.processes = tuple(processes)
        self.horizon_s = max(p.horizon_s for p in self.processes)

    def times(self, rng=None) -> Iterator[float]:
        rng = _default_rng(rng)
        children = [
            np.random.default_rng(int(seed))
            for seed in rng.integers(0, 2**63 - 1, size=len(self.processes))
        ]
        return heapq.merge(
            *(p.times(child) for p, child in zip(self.processes, children))
        )

    def rate_at(self, t: float) -> float:
        return sum(p.rate_at(t) for p in self.processes)


#: The blessed workload names, mirroring ``repro.schemes._REGISTRY``.
_REGISTRY = {
    "poisson": PoissonProcess,
    "uniform": UniformProcess,
    "saturation": SaturationProcess,
    "day-night": day_night_process,
    "diurnal": DiurnalProcess,
    "flash-crowd": FlashCrowdProcess,
    "trace-replay": TraceReplayProcess,
    "composite": CompositeProcess,
}


def available_arrivals() -> "tuple":
    """The registered arrival-process names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_arrivals(name: str, **kwargs) -> ArrivalProcess:
    """Instantiate an arrival process by name (case-insensitive;
    ``_`` and `` `` normalise to ``-``).

    The workload counterpart of :func:`repro.schemes.get_scheme`:
    ``get_arrivals("flash-crowd", base_rate=2, peak_rate=20,
    t_start=30, ramp_s=5, hold_s=20, decay_s=10)``.  ``kwargs`` pass
    straight to the process constructor.
    """
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ValueError(
            f"unknown arrival process {name!r}; available: "
            + ", ".join(available_arrivals())
        )
    return factory(**kwargs)
