"""Workload generation: Poisson arrivals, saturation, phased traces."""

from repro.workload.arrivals import (
    poisson_arrivals,
    poisson_arrivals_count,
    saturation_arrivals,
    uniform_arrivals,
)
from repro.workload.traces import Phase, PhasedTrace, day_night_trace

__all__ = [
    "Phase",
    "PhasedTrace",
    "day_night_trace",
    "poisson_arrivals",
    "poisson_arrivals_count",
    "saturation_arrivals",
    "uniform_arrivals",
]
