"""Workload generation: arrival processes, traces and the registry.

Two layers: the original list-returning helpers
(:func:`poisson_arrivals` & friends, kept for quick experiments) and
the 2.0 lazy :class:`ArrivalProcess` hierarchy
(:mod:`repro.workload.processes`) that streams arbitrarily long
workloads into the scenario simulator.  :func:`get_arrivals` /
:func:`available_arrivals` name every process, mirroring
:func:`repro.schemes.get_scheme`.
"""

from repro.workload.arrivals import (
    poisson_arrivals,
    poisson_arrivals_count,
    saturation_arrivals,
    uniform_arrivals,
)
from repro.workload.processes import (
    ArrivalProcess,
    CompositeProcess,
    DiurnalProcess,
    FlashCrowdProcess,
    PhasedProcess,
    PoissonProcess,
    SaturationProcess,
    TraceReplayProcess,
    UniformProcess,
    available_arrivals,
    day_night_process,
    get_arrivals,
)
from repro.workload.traces import Phase, PhasedTrace, day_night_trace

__all__ = [
    "ArrivalProcess",
    "CompositeProcess",
    "DiurnalProcess",
    "FlashCrowdProcess",
    "Phase",
    "PhasedProcess",
    "PhasedTrace",
    "PoissonProcess",
    "SaturationProcess",
    "TraceReplayProcess",
    "UniformProcess",
    "available_arrivals",
    "day_night_process",
    "day_night_trace",
    "get_arrivals",
    "poisson_arrivals",
    "poisson_arrivals_count",
    "saturation_arrivals",
    "uniform_arrivals",
]
