"""Task arrival generators.

The paper's evaluation feeds the cluster Poisson arrivals whose rate is
a fraction (40–150 %) of the *cluster capacity* — defined as the
Early-Fused-Layer scheme's throughput — plus a saturation mode for
measuring maximum throughput.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = [
    "poisson_arrivals",
    "poisson_arrivals_count",
    "uniform_arrivals",
    "saturation_arrivals",
]


def poisson_arrivals(
    rate: float, horizon_s: float, rng: Optional[np.random.Generator] = None
) -> "List[float]":
    """Poisson-process arrival times in ``[0, horizon_s)`` at ``rate``/s.

    Without an explicit ``rng`` the trace is drawn from a fixed seed —
    every generator in this package is deterministic by default so two
    runs of the same experiment see the same workload.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    if rate == 0:
        return []
    rng = rng or np.random.default_rng(0)
    times: "List[float]" = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= horizon_s:
            return times
        times.append(t)


def poisson_arrivals_count(
    rate: float, n_tasks: int, rng: Optional[np.random.Generator] = None
) -> "List[float]":
    """Exactly ``n_tasks`` Poisson arrivals at ``rate``/s (fixed seed
    unless ``rng`` is supplied — see :func:`poisson_arrivals`)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if n_tasks < 0:
        raise ValueError("n_tasks must be non-negative")
    rng = rng or np.random.default_rng(0)
    gaps = rng.exponential(1.0 / rate, size=n_tasks)
    return list(np.cumsum(gaps))


def uniform_arrivals(rate: float, horizon_s: float) -> "List[float]":
    """Deterministic, evenly spaced arrivals (useful for exact tests)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    gap = 1.0 / rate
    times = []
    t = gap
    while t < horizon_s:
        times.append(t)
        t += gap
    return times


def saturation_arrivals(n_tasks: int) -> "List[float]":
    """All tasks queued at t=0 — measures a plan's maximum throughput."""
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    return [0.0] * n_tasks
