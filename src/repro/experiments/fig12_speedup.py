"""Fig. 12: PICO speedup on graph-structured CNNs.

The paper adapts PICO to ResNet34 and InceptionV3 by treating blocks as
special layers and reports ~5× (ResNet34) and ~4× (InceptionV3) speedup
with 8 devices, larger at low CPU frequency.  ResNet beats Inception
because inception blocks bundle more layers, so the best cut points
more often fall *inside* a block where block-granular planning cannot
reach — an effect this reproduction inherits by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.device import raspberry_pi
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.stage_cost import single_device_time
from repro.experiments.common import PAPER_FREQS_MHZ, paper_cluster, paper_network
from repro.models.zoo import get_model
from repro.schemes.pico import PicoScheme

__all__ = ["SpeedupPoint", "Fig12Result", "run"]


@dataclass(frozen=True)
class SpeedupPoint:
    model: str
    freq_mhz: float
    n_devices: int
    single_device_s: float
    pico_period_s: float

    @property
    def speedup(self) -> float:
        """Throughput gain over one device of the same frequency."""
        return self.single_device_s / self.pico_period_s


@dataclass(frozen=True)
class Fig12Result:
    points: Tuple[SpeedupPoint, ...]

    def speedup_at(self, model: str, freq_mhz: float, n_devices: int) -> float:
        for p in self.points:
            if (
                p.model == model
                and p.freq_mhz == freq_mhz
                and p.n_devices == n_devices
            ):
                return p.speedup
        raise KeyError((model, freq_mhz, n_devices))

    def format(self) -> str:
        lines = ["Fig. 12 — graph-CNN speedup (PICO vs 1 device)"]
        for p in sorted(
            self.points, key=lambda p: (p.model, p.freq_mhz, p.n_devices)
        ):
            lines.append(
                f"  {p.model:<13s} {p.freq_mhz:5.0f} MHz  d={p.n_devices}  "
                f"speedup {p.speedup:5.2f}x"
            )
        return "\n".join(lines)


def run(
    model_names: "Sequence[str]" = ("resnet34", "inception_v3"),
    freqs_mhz: "Sequence[float]" = PAPER_FREQS_MHZ,
    device_counts: "Sequence[int]" = (2, 4, 8),
    network: Optional[NetworkModel] = None,
    options: CostOptions = DEFAULT_OPTIONS,
) -> Fig12Result:
    network = network or paper_network()
    points: "List[SpeedupPoint]" = []
    for model_name in model_names:
        model = get_model(model_name)
        for freq in freqs_mhz:
            baseline = single_device_time(
                model, raspberry_pi("solo", freq), options
            )
            for n_devices in device_counts:
                cluster = paper_cluster(n_devices, freq)
                plan = PicoScheme().plan(model, cluster, network, options)
                cost = plan_cost(model, plan, network, options)
                points.append(
                    SpeedupPoint(model.name, freq, n_devices, baseline, cost.period)
                )
    return Fig12Result(tuple(points))
