"""Fig. 2: per-layer communication and computation shares.

The paper profiles VGG16 and YOLOv2 layer by layer and observes that
conv layers provide > 99 % of the computation while the communication
share (output feature-map size) varies widely across layers — the
asymmetry the whole partitioning problem rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cost.flops import CostOptions, layer_profiles
from repro.models.zoo import get_model

__all__ = ["LayerShare", "Fig2Result", "run"]


@dataclass(frozen=True)
class LayerShare:
    name: str
    kind: str
    computation_share: float  # fraction of total FLOPs
    communication_share: float  # fraction of total inter-layer bytes


@dataclass(frozen=True)
class Fig2Result:
    model: str
    layers: Tuple[LayerShare, ...]

    @property
    def conv_computation_share(self) -> float:
        """The paper's headline: 99.19 % (VGG16) / 99.59 % (YOLOv2)."""
        return sum(
            l.computation_share for l in self.layers if l.kind == "conv"
        )

    def format(self) -> str:
        lines = [f"Fig. 2 — {self.model} (conv share "
                 f"{self.conv_computation_share:.2%})"]
        for l in self.layers:
            lines.append(
                f"  {l.name:<12s} {l.kind:<5s} comp {l.computation_share:7.2%}"
                f"  comm {l.communication_share:7.2%}"
            )
        return "\n".join(lines)


def run(model_name: str = "vgg16") -> Fig2Result:
    """Per-layer shares for one model.  Pool layers are counted here
    (``include_pool=True``) so their tiny share is visible, exactly as
    the paper's bar chart shows near-zero pool bars."""
    model = get_model(model_name)
    profiles = layer_profiles(model, CostOptions(include_pool=True))
    total_flops = sum(p.flops for p in profiles)
    total_bytes = sum(p.output_bytes for p in profiles)
    layers: "List[LayerShare]" = [
        LayerShare(
            p.name,
            p.kind,
            p.flops / total_flops if total_flops else 0.0,
            p.output_bytes / total_bytes if total_bytes else 0.0,
        )
        for p in profiles
    ]
    return Fig2Result(model.name, tuple(layers))
