"""Fig. 4: fused-layer computation overhead vs devices and fused depth.

Reproduces the paper's motivation plot on VGG16: per-device FLOPs
(Fig. 4a) shrink as devices are added, but the *total* FLOPs across all
devices (Fig. 4b) grow with both the device count and the number of
fused layers, because each device's input halo expands recursively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cost.flops import CostOptions, DEFAULT_OPTIONS, segment_flops
from repro.models.graph import Model
from repro.models.zoo import get_model
from repro.partition.strips import equal_partition, strip_regions

__all__ = ["FusedPoint", "Fig4Result", "run"]


@dataclass(frozen=True)
class FusedPoint:
    n_devices: int
    n_fused_units: int
    per_device_gflops: float  # max over devices (Fig. 4a)
    total_gflops: float  # sum over devices (Fig. 4b)
    single_device_gflops: float  # no-parallelism reference


@dataclass(frozen=True)
class Fig4Result:
    model: str
    points: Tuple[FusedPoint, ...]

    def format(self) -> str:
        lines = [f"Fig. 4 — fused-layer overhead, {self.model}"]
        for p in self.points:
            overhead = p.total_gflops / p.single_device_gflops - 1.0
            lines.append(
                f"  devices={p.n_devices}  fused={p.n_fused_units:2d}  "
                f"per-device {p.per_device_gflops:6.2f} GF  "
                f"total {p.total_gflops:6.2f} GF  (+{overhead:6.1%} redundant)"
            )
        return "\n".join(lines)


def _fused_flops(
    model: Model, n_fused: int, n_devices: int, options: CostOptions
) -> Tuple[float, float]:
    """(max per-device, total) FLOPs for the fused prefix of ``n_fused``
    units split into ``n_devices`` equal strips."""
    _, h, w = model.out_shape(n_fused - 1)
    per_device = []
    for region in strip_regions(h, w, equal_partition(h, n_devices)):
        if region.empty:
            continue
        per_device.append(segment_flops(model, 0, n_fused, region, options))
    return max(per_device), sum(per_device)


def run(
    model_name: str = "vgg16",
    device_counts: "Sequence[int]" = (1, 2, 4, 8),
    fused_counts: "Sequence[int]" = (4, 7, 10, 13),
    options: CostOptions = DEFAULT_OPTIONS,
) -> Fig4Result:
    model = get_model(model_name)
    points: "List[FusedPoint]" = []
    for n_fused in fused_counts:
        if n_fused > model.n_units:
            continue
        single, _ = _fused_flops(model, n_fused, 1, options)
        for n_devices in device_counts:
            per_dev, total = _fused_flops(model, n_fused, n_devices, options)
            points.append(
                FusedPoint(
                    n_devices, n_fused, per_dev / 1e9, total / 1e9, single / 1e9
                )
            )
    return Fig4Result(model.name, tuple(points))
