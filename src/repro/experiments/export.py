"""Export experiment results as rows / CSV for external plotting.

Each experiment result dataclass flattens into a list of dict rows with
scalar values; ``write_csv`` serialises any such row list.  Keeps the
plotting toolchain (matplotlib, gnuplot, spreadsheets) out of the
library's dependencies.
"""

from __future__ import annotations

import csv
from typing import Any, Dict, List, Sequence

__all__ = ["rows_for", "write_csv"]


def _fig2_rows(result) -> "List[Dict[str, Any]]":
    return [
        {
            "model": result.model,
            "layer": l.name,
            "kind": l.kind,
            "computation_share": l.computation_share,
            "communication_share": l.communication_share,
        }
        for l in result.layers
    ]


def _fig4_rows(result) -> "List[Dict[str, Any]]":
    return [
        {
            "model": result.model,
            "n_devices": p.n_devices,
            "n_fused_units": p.n_fused_units,
            "per_device_gflops": p.per_device_gflops,
            "total_gflops": p.total_gflops,
            "single_device_gflops": p.single_device_gflops,
        }
        for p in result.points
    ]


def _capacity_rows(result) -> "List[Dict[str, Any]]":
    return [
        {
            "model": result.model,
            "scheme": p.scheme,
            "freq_mhz": p.freq_mhz,
            "n_devices": p.n_devices,
            "period_s": p.period_s,
            "latency_s": p.latency_s,
            "throughput_per_min": p.throughput_per_min,
        }
        for p in result.points
    ]


def _latency_rows(result) -> "List[Dict[str, Any]]":
    return [
        {
            "model": result.model,
            "scheme": p.scheme,
            "workload_fraction": p.workload_fraction,
            "arrival_rate": p.arrival_rate,
            "avg_latency_s": p.avg_latency_s,
            "p95_latency_s": p.p95_latency_s,
            "completed": p.completed,
        }
        for p in result.points
    ]


def _speedup_rows(result) -> "List[Dict[str, Any]]":
    return [
        {
            "model": p.model,
            "freq_mhz": p.freq_mhz,
            "n_devices": p.n_devices,
            "speedup": p.speedup,
        }
        for p in result.points
    ]


def _table1_rows(result) -> "List[Dict[str, Any]]":
    rows = []
    for table in result.tables:
        for d in table.devices:
            rows.append(
                {
                    "model": table.model,
                    "scheme": table.scheme,
                    "device": d.name,
                    "utilization": d.utilization,
                    "redundancy": d.redundancy_ratio,
                }
            )
    return rows


def _table2_rows(result) -> "List[Dict[str, Any]]":
    return [
        {
            "n_layers": r.n_layers,
            "n_devices": r.n_devices,
            "pico_seconds": r.pico_seconds,
            "pico_reference_seconds": r.pico_reference_seconds,
            "bfs_seconds": r.bfs_seconds,
            "bfs_completed": r.bfs_completed,
            "period_gap": r.period_gap,
        }
        for r in result.rows
    ]


_EXPORTERS = {
    "Fig2Result": _fig2_rows,
    "Fig4Result": _fig4_rows,
    "CapacityResult": _capacity_rows,
    "LatencyResult": _latency_rows,
    "Fig12Result": _speedup_rows,
    "Table1Result": _table1_rows,
    "Table2Result": _table2_rows,
}


def rows_for(result) -> "List[Dict[str, Any]]":
    """Flatten an experiment result into scalar dict rows."""
    exporter = _EXPORTERS.get(type(result).__name__)
    if exporter is None:
        raise TypeError(
            f"no exporter for {type(result).__name__}; supported: "
            f"{sorted(_EXPORTERS)}"
        )
    return exporter(result)


def write_csv(rows: "Sequence[Dict[str, Any]]", path: str) -> None:
    """Write dict rows to a CSV file (header from the first row)."""
    if not rows:
        raise ValueError("no rows to write")
    fieldnames = list(rows[0].keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
