"""Experiment harnesses — one module per paper figure/table.

==============  =====================================================
Module          Reproduces
==============  =====================================================
fig02           per-layer comm/comp shares (VGG16, YOLOv2)
fig04           fused-layer FLOPs vs devices / fused depth
fig08/fig09     cluster capacity sweeps (run(model_name=...))
fig10/fig11     avg latency vs Poisson workload (run(model_name=...))
fig12           graph-CNN speedup (ResNet34, InceptionV3)
fig13           PICO vs BFS utilisation/redundancy
table1          heterogeneous utilisation & redundancy
table2          planner wall-clock PICO vs BFS
==============  =====================================================
"""

from repro.experiments import (
    fig02_layer_profile,
    fig04_fused_redundancy,
    fig08_capacity,
    fig10_latency,
    fig12_speedup,
    fig13_pico_vs_bfs,
    full_report,
    runtime_validation,
    table1_utilization,
    table2_optimization_cost,
)
from repro.experiments.common import (
    baseline_schemes,
    fig13_cluster,
    format_table,
    paper_cluster,
    paper_network,
    table1_cluster,
)

__all__ = [
    "baseline_schemes",
    "fig02_layer_profile",
    "fig04_fused_redundancy",
    "fig08_capacity",
    "fig10_latency",
    "fig12_speedup",
    "fig13_cluster",
    "fig13_pico_vs_bfs",
    "format_table",
    "full_report",
    "runtime_validation",
    "paper_cluster",
    "paper_network",
    "table1_cluster",
    "table1_utilization",
    "table2_optimization_cost",
]
