"""Shared experiment configuration and formatting helpers.

Defaults mirror the paper's testbed: 8 Raspberry-Pi 4Bs pinned to one
core, a 50 Mbps WiFi access point, CPU frequencies scaled to 600 MHz /
800 MHz / 1 GHz for the capacity sweeps, and the Table I heterogeneous
mix (2×1.2 GHz, 2×800 MHz, 4×600 MHz).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cluster.device import Cluster, heterogeneous_cluster, pi_cluster
from repro.cost.comm import NetworkModel
from repro.schemes.base import Scheme
from repro.schemes.early_fused import EarlyFusedScheme
from repro.schemes.layer_wise import LayerWiseScheme
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme

__all__ = [
    "PAPER_FREQS_MHZ",
    "TABLE1_FREQS_MHZ",
    "paper_network",
    "paper_cluster",
    "table1_cluster",
    "fig13_cluster",
    "baseline_schemes",
    "format_table",
]

#: CPU frequencies the paper sweeps in Figs. 8/9/12.
PAPER_FREQS_MHZ: Tuple[float, ...] = (600.0, 800.0, 1000.0)

#: The Table I heterogeneous mix.
TABLE1_FREQS_MHZ: Tuple[float, ...] = (1200, 1200, 800, 800, 600, 600, 600, 600)

#: Fig. 13 deploys the toy model on 6 heterogeneous devices.
FIG13_FREQS_MHZ: Tuple[float, ...] = (1200, 1200, 800, 800, 600, 600)


def paper_network(mbps: float = 50.0) -> NetworkModel:
    """The paper's 50 Mbps WiFi access point (override for sweeps)."""
    return NetworkModel.from_mbps(mbps)


def paper_cluster(n_devices: int = 8, freq_mhz: float = 600.0) -> Cluster:
    """A homogeneous slice of the paper's 8-Pi testbed."""
    return pi_cluster(n_devices, freq_mhz)


def table1_cluster() -> Cluster:
    return heterogeneous_cluster(TABLE1_FREQS_MHZ)


def fig13_cluster() -> Cluster:
    return heterogeneous_cluster(FIG13_FREQS_MHZ)


def baseline_schemes(include_lw: bool = True) -> "List[Scheme]":
    """The paper's comparison set in Table I order."""
    schemes: "List[Scheme]" = []
    if include_lw:
        schemes.append(LayerWiseScheme())
    schemes.extend([EarlyFusedScheme(), OptimalFusedScheme(), PicoScheme()])
    return schemes


def format_table(headers: "Sequence[str]", rows: "Sequence[Sequence[object]]") -> str:
    """Plain-text table with right-aligned columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
