"""Figs. 8 & 9: cluster capacity (inference period and throughput).

For each CPU frequency the paper plots the inference period of every
scheme as the device count grows, then the accomplished tasks/minute
with 8 devices.  The expected shape: PICO lowest period everywhere;
layer-wise stops improving (or degrades) with more devices because its
per-layer communication swamps the added compute, most visibly on
YOLOv2 at high frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.simulator import simulate_plan
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.experiments.common import (
    PAPER_FREQS_MHZ,
    baseline_schemes,
    paper_cluster,
    paper_network,
)
from repro.models.zoo import get_model
from repro.workload.arrivals import saturation_arrivals

__all__ = ["CapacityPoint", "CapacityResult", "run"]


@dataclass(frozen=True)
class CapacityPoint:
    scheme: str
    freq_mhz: float
    n_devices: int
    period_s: float
    latency_s: float
    throughput_per_min: float  # measured by saturation simulation


@dataclass(frozen=True)
class CapacityResult:
    model: str
    points: Tuple[CapacityPoint, ...]

    def periods(self, scheme: str, freq_mhz: float) -> "List[Tuple[int, float]]":
        return [
            (p.n_devices, p.period_s)
            for p in self.points
            if p.scheme == scheme and p.freq_mhz == freq_mhz
        ]

    def throughput_at(self, scheme: str, freq_mhz: float, n_devices: int) -> float:
        for p in self.points:
            if (
                p.scheme == scheme
                and p.freq_mhz == freq_mhz
                and p.n_devices == n_devices
            ):
                return p.throughput_per_min
        raise KeyError((scheme, freq_mhz, n_devices))

    def format(self) -> str:
        lines = [f"Figs. 8/9 — cluster capacity, {self.model}"]
        by_freq: "Dict[float, List[CapacityPoint]]" = {}
        for p in self.points:
            by_freq.setdefault(p.freq_mhz, []).append(p)
        for freq, pts in sorted(by_freq.items()):
            lines.append(f"  {freq:.0f} MHz:")
            for p in sorted(pts, key=lambda p: (p.scheme, p.n_devices)):
                lines.append(
                    f"    {p.scheme:5s} d={p.n_devices}  period {p.period_s:8.3f}s"
                    f"  thpt {p.throughput_per_min:6.1f}/min"
                )
        return "\n".join(lines)


def run(
    model_name: str = "vgg16",
    freqs_mhz: "Sequence[float]" = PAPER_FREQS_MHZ,
    device_counts: "Sequence[int]" = (1, 2, 4, 6, 8),
    network: Optional[NetworkModel] = None,
    options: CostOptions = DEFAULT_OPTIONS,
    sim_tasks: int = 30,
    include_lw: bool = True,
) -> CapacityResult:
    model = get_model(model_name)
    network = network or paper_network()
    points: "List[CapacityPoint]" = []
    for freq in freqs_mhz:
        for n_devices in device_counts:
            cluster = paper_cluster(n_devices, freq)
            for scheme in baseline_schemes(include_lw=include_lw):
                plan = scheme.plan(model, cluster, network, options)
                cost = plan_cost(model, plan, network, options)
                sim = simulate_plan(
                    model,
                    plan,
                    network,
                    saturation_arrivals(sim_tasks),
                    options,
                    plan_name=scheme.name,
                )
                points.append(
                    CapacityPoint(
                        scheme.name,
                        freq,
                        n_devices,
                        cost.period,
                        cost.latency,
                        sim.throughput * 60.0,
                    )
                )
    return CapacityResult(model.name, tuple(points))
