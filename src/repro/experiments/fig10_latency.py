"""Figs. 10 & 11: average inference latency under Poisson workloads.

The paper defines cluster capacity as the Early-Fused-Layer scheme's
throughput and sweeps the Poisson arrival rate from 40 % to 150 % of
it, with 8 devices.  Expected shape: EFL's latency explodes first (its
long period dominates the M/D/1 waiting time), OFL follows, PICO stays
nearly flat, and APICO tracks the best of {OFL, PICO} — one-stage at
light load, pipelined at heavy load.  LW is excluded, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adaptive.switcher import build_apico_switcher
from repro.cluster.device import Cluster
from repro.cluster.simulator import simulate_adaptive, simulate_plan
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.experiments.common import paper_cluster, paper_network
from repro.models.zoo import get_model
from repro.schemes.early_fused import EarlyFusedScheme
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme
from repro.workload.arrivals import poisson_arrivals

__all__ = ["LatencyPoint", "LatencyResult", "run"]


@dataclass(frozen=True)
class LatencyPoint:
    scheme: str
    workload_fraction: float  # of EFL capacity
    arrival_rate: float  # tasks / s
    avg_latency_s: float
    p95_latency_s: float
    completed: int
    plan_usage: Tuple[Tuple[str, int], ...] = ()  # APICO only


@dataclass(frozen=True)
class LatencyResult:
    model: str
    efl_capacity_per_s: float
    points: Tuple[LatencyPoint, ...]

    def series(self, scheme: str) -> "List[Tuple[float, float]]":
        return [
            (p.workload_fraction, p.avg_latency_s)
            for p in self.points
            if p.scheme == scheme
        ]

    def format(self) -> str:
        lines = [
            f"Figs. 10/11 — avg latency, {self.model} "
            f"(EFL capacity {self.efl_capacity_per_s * 60:.1f}/min)"
        ]
        by_load: "Dict[float, List[LatencyPoint]]" = {}
        for p in self.points:
            by_load.setdefault(p.workload_fraction, []).append(p)
        for load, pts in sorted(by_load.items()):
            row = "  ".join(
                f"{p.scheme}={p.avg_latency_s:7.2f}s" for p in sorted(
                    pts, key=lambda p: p.scheme
                )
            )
            lines.append(f"  load {load:4.0%}: {row}")
        return "\n".join(lines)


def run(
    model_name: str = "vgg16",
    workload_fractions: "Sequence[float]" = (0.4, 0.6, 0.8, 1.0, 1.2, 1.5),
    cluster: Optional[Cluster] = None,
    network: Optional[NetworkModel] = None,
    options: CostOptions = DEFAULT_OPTIONS,
    horizon_s: float = 600.0,
    freq_mhz: float = 600.0,
    seed: int = 0,
    repeats: int = 1,
) -> LatencyResult:
    model = get_model(model_name)
    network = network or paper_network()
    cluster = cluster or paper_cluster(8, freq_mhz)

    schemes = {
        "EFL": EarlyFusedScheme(),
        "OFL": OptimalFusedScheme(),
        "PICO": PicoScheme(),
    }
    plans = {
        name: scheme.plan(model, cluster, network, options)
        for name, scheme in schemes.items()
    }
    efl_capacity = plan_cost(model, plans["EFL"], network, options).throughput

    if repeats < 1:
        raise ValueError("repeats must be positive")
    points: "List[LatencyPoint]" = []
    for fraction in workload_fractions:
        rate = fraction * efl_capacity
        # The paper runs each setting three times; we average over
        # `repeats` independent Poisson traces.
        traces = [
            poisson_arrivals(
                rate,
                horizon_s,
                np.random.default_rng(seed + rep * 7919 + int(fraction * 1000)),
            )
            for rep in range(repeats)
        ]
        traces = [t for t in traces if t]
        if not traces:
            continue
        for name, plan in plans.items():
            sims = [
                simulate_plan(model, plan, network, arrivals, options, name)
                for arrivals in traces
            ]
            points.append(
                LatencyPoint(
                    name,
                    fraction,
                    rate,
                    sum(s.avg_latency for s in sims) / len(sims),
                    sum(s.percentile_latency(95) for s in sims) / len(sims),
                    sum(s.completed for s in sims),
                )
            )
        usage: "dict" = {}
        apico_sims = []
        for arrivals in traces:
            switcher = build_apico_switcher(model, cluster, network, options)
            sim = simulate_adaptive(model, switcher, network, arrivals, options)
            apico_sims.append(sim)
            for key, count in sim.plan_usage.items():
                usage[key] = usage.get(key, 0) + count
        points.append(
            LatencyPoint(
                "APICO",
                fraction,
                rate,
                sum(s.avg_latency for s in apico_sims) / len(apico_sims),
                sum(s.percentile_latency(95) for s in apico_sims) / len(apico_sims),
                sum(s.completed for s in apico_sims),
                tuple(sorted(usage.items())),
            )
        )
    return LatencyResult(model.name, efl_capacity, tuple(points))
