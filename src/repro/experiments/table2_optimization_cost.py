"""Table II: planner wall-clock — PICO heuristic vs exhaustive BFS.

The paper times both planners over toy chains with growing
(layers, devices): the heuristic stays under a second everywhere while
BFS blows up past (10, 6) and exceeds an hour by (12, 6).  We reproduce
the grid with a configurable BFS budget so the benchmark terminates;
entries that hit the budget are reported as lower bounds, exactly like
the paper's "> 1h" cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.device import heterogeneous_cluster
from repro.core.bfs import bfs_optimal
from repro.core.dp_planner import plan_homogeneous, plan_homogeneous_reference
from repro.core.heterogeneous import adapt_to_cluster
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.tables import SegmentCostTable, get_segment_table
from repro.experiments.common import paper_network
from repro.models.toy import toy_chain

__all__ = ["CostRow", "Table2Result", "run"]

#: The paper's (layers, devices) grid.
PAPER_GRID: Tuple[Tuple[int, int], ...] = (
    (4, 4), (8, 4), (12, 4), (16, 4), (8, 6), (10, 6), (12, 6), (8, 8),
)


@dataclass(frozen=True)
class CostRow:
    n_layers: int
    n_devices: int
    pico_seconds: float
    bfs_seconds: float
    bfs_completed: bool  # False == the paper's "> budget" cells
    period_gap: float  # (pico_period - bfs_period) / bfs_period
    pico_reference_seconds: float = 0.0  # scalar-cost-model baseline planner

    def format(self) -> str:
        bfs = (
            f"{self.bfs_seconds:8.2f}s"
            if self.bfs_completed
            else f"> {self.bfs_seconds:6.2f}s (budget)"
        )
        return (
            f"({self.n_layers:2d}, {self.n_devices}): "
            f"PICO {self.pico_seconds:6.3f}s "
            f"(ref {self.pico_reference_seconds:6.3f}s)   BFS {bfs}   "
            f"period gap {self.period_gap:+.1%}"
        )


@dataclass(frozen=True)
class Table2Result:
    rows: Tuple[CostRow, ...]

    def format(self) -> str:
        return "\n".join(
            ["Table II — planner cost"] + ["  " + r.format() for r in self.rows]
        )


def run(
    grid: "Sequence[Tuple[int, int]]" = PAPER_GRID,
    network: Optional[NetworkModel] = None,
    options: CostOptions = DEFAULT_OPTIONS,
    bfs_budget_s: float = 60.0,
) -> Table2Result:
    network = network or paper_network()
    rows: "List[CostRow]" = []
    for n_layers, n_devices in grid:
        model = toy_chain(n_conv=n_layers, n_pool=2, input_hw=64)
        # All-distinct capacities: a heterogeneous cluster denies BFS
        # any symmetry reduction, reproducing the paper's blow-up.
        cluster = heterogeneous_cluster(
            [600.0 + 75.0 * i for i in range(n_devices)]
        )

        # One shared segment table per cell serves both the PICO DP
        # (through a SegmentCostTable view) and the BFS baseline.
        segments = get_segment_table(model, options)
        homo_device = cluster.homogenized().devices[0]
        table = SegmentCostTable(
            model, homo_device, network, options, segments=segments
        )

        started = time.perf_counter()
        homo = plan_homogeneous(
            model, cluster, network, options, table=table
        )
        assert homo is not None
        plan = adapt_to_cluster(model, homo, cluster, options)
        pico_seconds = time.perf_counter() - started
        pico_period = plan_cost(model, plan, network, options).period

        started = time.perf_counter()
        ref = plan_homogeneous_reference(model, cluster, network, options)
        assert ref is not None
        adapt_to_cluster(model, ref, cluster, options)
        pico_reference_seconds = time.perf_counter() - started

        bfs = bfs_optimal(
            model, cluster, network, options, deadline_s=bfs_budget_s,
            table=segments,
        )
        gap = 0.0
        if bfs.plan is not None and bfs.period > 0:
            gap = (pico_period - bfs.period) / bfs.period
        rows.append(
            CostRow(
                n_layers,
                n_devices,
                pico_seconds,
                bfs.elapsed_s,
                bfs.optimal,
                gap,
                pico_reference_seconds,
            )
        )
    return Table2Result(tuple(rows))
