"""Table I: utilisation and redundancy on the heterogeneous cluster.

The paper saturates its heterogeneous 8-Pi cluster (2×1.2 GHz,
2×800 MHz, 4×600 MHz) with VGG16 and YOLOv2 under each scheme and
reports per-device CPU utilisation and redundant-computation ratios.
Expected shape: LW minimal redundancy but worst utilisation; EFL busy
but hugely redundant; OFL in between; PICO high utilisation with low
redundancy thanks to the capacity-weighted partitions of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.device import Cluster
from repro.cluster.metrics import UtilizationTable, utilization_table
from repro.cluster.simulator import simulate_plan
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.experiments.common import baseline_schemes, paper_network, table1_cluster
from repro.models.zoo import get_model
from repro.workload.arrivals import saturation_arrivals

__all__ = ["Table1Result", "run"]


@dataclass(frozen=True)
class Table1Result:
    tables: Tuple[UtilizationTable, ...]  # one per (model, scheme)

    def get(self, model: str, scheme: str) -> UtilizationTable:
        for table in self.tables:
            if table.model == model and table.scheme == scheme:
                return table
        raise KeyError((model, scheme))

    def format(self) -> str:
        lines = ["Table I — utilisation and redundancy"]
        for table in self.tables:
            lines.append(table.format())
        return "\n".join(lines)


def run(
    model_names: "Sequence[str]" = ("vgg16", "yolov2"),
    cluster: Optional[Cluster] = None,
    network: Optional[NetworkModel] = None,
    options: CostOptions = DEFAULT_OPTIONS,
    sim_tasks: int = 40,
    include_lw: bool = True,
) -> Table1Result:
    network = network or paper_network()
    cluster = cluster or table1_cluster()
    tables: "List[UtilizationTable]" = []
    for model_name in model_names:
        model = get_model(model_name)
        for scheme in baseline_schemes(include_lw=include_lw):
            plan = scheme.plan(model, cluster, network, options)
            sim = simulate_plan(
                model,
                plan,
                network,
                saturation_arrivals(sim_tasks),
                options,
                plan_name=scheme.name,
            )
            tables.append(
                utilization_table(model, plan, network, sim, options, scheme.name)
            )
    return Table1Result(tuple(tables))
