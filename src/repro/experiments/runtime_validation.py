"""Cost-model validation against the real multiprocess runtime.

The paper fits ``alpha_k`` by regression against measured layer timings
(Eq. 5).  This harness closes the same loop on the local host: calibrate
the numpy engine's FLOP/s with :func:`repro.cost.profiler.calibrate_host`,
predict a pipeline's period from the analytic model, then execute the
plan for real with :class:`~repro.runtime.DistributedPipeline` and
compare.  Agreement is necessarily loose — worker processes share the
host's cores and the loopback transport is not a 50 Mbps WLAN — but the
prediction must land within a small constant factor, and the
distributed outputs must match local inference exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.device import Cluster, Device
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions
from repro.cost.profiler import calibrate_host
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.coordinator import DistributedPipeline
from repro.runtime.core import PipelineSession, SimTransport
from repro.schemes.pico import PicoScheme

__all__ = ["ValidationResult", "run"]


@dataclass(frozen=True)
class ValidationResult:
    host_gflops: float
    predicted_period_s: float
    measured_period_s: float
    max_output_error: float
    #: Max |live - simulated| over all frames: the two backends run the
    #: same compiled PlanProgram through the same stage kernels, so this
    #: must be exactly zero.
    sim_output_error: float = 0.0
    #: Steady-state period of the SimTransport's virtual clock.
    sim_period_s: float = 0.0

    @property
    def ratio(self) -> float:
        """measured / predicted period."""
        if self.predicted_period_s <= 0:
            return float("inf")
        return self.measured_period_s / self.predicted_period_s

    @property
    def sim_exact(self) -> bool:
        """Whether the simulated backend reproduced live outputs bit-exactly."""
        return self.sim_output_error == 0.0

    def format(self) -> str:
        return (
            f"host {self.host_gflops:.2f} GFLOP/s | period predicted "
            f"{self.predicted_period_s * 1000:.1f} ms, measured "
            f"{self.measured_period_s * 1000:.1f} ms (x{self.ratio:.2f}) | "
            f"max output error {self.max_output_error:.2e} | "
            f"sim {'exact' if self.sim_exact else 'MISMATCH'} "
            f"(period {self.sim_period_s * 1000:.1f} ms)"
        )


def run(n_workers: int = 2, n_tasks: int = 12, seed: int = 0) -> ValidationResult:
    calibration = calibrate_host()
    # Workers share the host: each gets an equal slice of its capacity
    # (pessimistic when cores are idle, optimistic under contention).
    per_worker = calibration.flops_per_second / n_workers
    cluster = Cluster(
        tuple(Device(f"proc{i}", per_worker) for i in range(n_workers))
    )
    # Loopback moves GB/s; make communication analytically negligible
    # to isolate the compute prediction.
    network = NetworkModel.from_mbps(20000.0)
    model = toy_chain(8, 2, input_hw=64, in_channels=3, base_channels=32)
    weights = init_weights(model, seed=seed)

    plan = PicoScheme().plan(model, cluster, network)
    predicted = plan_cost(model, plan, network, CostOptions()).period

    rng = np.random.default_rng(seed)
    frames = [
        rng.standard_normal(model.input_shape).astype(np.float32)
        for _ in range(n_tasks)
    ]
    engine = Engine(model, weights)
    references = [engine.forward_features(x) for x in frames]
    with DistributedPipeline(model, plan, weights=weights) as pipe:
        outputs, stats = pipe.run_batch(frames)
    max_err = max(
        float(np.abs(out - ref).max()) for out, ref in zip(outputs, references)
    )
    measured_period = stats.makespan / max(1, len(frames) - 1)

    # Sim-vs-live exactness: replay the same frames through the
    # virtual-clock backend.  Same PlanProgram, same kernels — the
    # outputs must match the live pipeline bit for bit.
    sim_session = PipelineSession.from_plan(
        model, plan, SimTransport(engine, network)
    )
    sim_outputs = sim_session.run_batch(frames)
    sim_err = max(
        float(np.abs(out - sim).max())
        for out, sim in zip(outputs, sim_outputs)
    )
    sim_period = sim_session.transport.now / max(1, len(frames) - 1)
    return ValidationResult(
        calibration.flops_per_second / 1e9,
        predicted,
        measured_period,
        max_err,
        sim_output_error=sim_err,
        sim_period_s=sim_period,
    )
