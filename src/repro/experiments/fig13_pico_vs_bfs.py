"""Fig. 13: PICO vs the exhaustive BFS optimum.

The paper deploys an 8-conv + 2-pool toy model (64×64 MNIST-style
input) on 6 heterogeneous devices and compares per-device resource
utilisation and redundant computation.  Expected shape: BFS reaches
~95 % utilisation, PICO stays above ~80 % on most devices — close to
optimal at a vanishing fraction of the planning cost (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cluster.device import Cluster
from repro.cluster.metrics import UtilizationTable, utilization_table
from repro.cluster.simulator import simulate_plan
from repro.core.bfs import bfs_optimal
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.experiments.common import fig13_cluster, paper_network
from repro.models.toy import fig13_model
from repro.schemes.pico import PicoScheme
from repro.workload.arrivals import saturation_arrivals

__all__ = ["Fig13Result", "run"]


@dataclass(frozen=True)
class Fig13Result:
    pico: UtilizationTable
    bfs: UtilizationTable
    pico_period_s: float
    bfs_period_s: float
    bfs_optimal_proven: bool

    def format(self) -> str:
        return "\n".join(
            [
                "Fig. 13 — PICO vs BFS on the toy model",
                self.pico.format(),
                self.bfs.format(),
                f"periods: PICO {self.pico_period_s:.4f}s, "
                f"BFS {self.bfs_period_s:.4f}s "
                f"(optimal proven: {self.bfs_optimal_proven})",
            ]
        )


def run(
    cluster: Optional[Cluster] = None,
    network: Optional[NetworkModel] = None,
    options: CostOptions = DEFAULT_OPTIONS,
    sim_tasks: int = 60,
    bfs_deadline_s: Optional[float] = 120.0,
) -> Fig13Result:
    model = fig13_model()
    network = network or paper_network()
    cluster = cluster or fig13_cluster()

    pico_plan = PicoScheme().plan(model, cluster, network, options)
    pico_sim = simulate_plan(
        model, pico_plan, network, saturation_arrivals(sim_tasks), options, "PICO"
    )
    pico_table = utilization_table(
        model, pico_plan, network, pico_sim, options, "PICO"
    )

    bfs = bfs_optimal(model, cluster, network, options, deadline_s=bfs_deadline_s)
    if bfs.plan is None:
        raise RuntimeError("BFS found no plan")
    bfs_sim = simulate_plan(
        model, bfs.plan, network, saturation_arrivals(sim_tasks), options, "BFS"
    )
    bfs_table = utilization_table(model, bfs.plan, network, bfs_sim, options, "BFS")

    from repro.core.plan import plan_cost

    return Fig13Result(
        pico_table,
        bfs_table,
        plan_cost(model, pico_plan, network, options).period,
        bfs.period,
        bfs.optimal,
    )
