"""Adaptive scheme switching: queueing estimates, workload tracking, APICO."""

from repro.adaptive.estimator import ArrivalRateTracker, EwmaEstimator
from repro.adaptive.queueing import (
    average_inference_latency,
    md1_waiting_time,
    stable,
    theorem2_literal,
)
from repro.adaptive.switcher import (
    AdaptiveSwitcher,
    CandidatePlan,
    build_apico_switcher,
)

__all__ = [
    "AdaptiveSwitcher",
    "ArrivalRateTracker",
    "CandidatePlan",
    "EwmaEstimator",
    "average_inference_latency",
    "build_apico_switcher",
    "md1_waiting_time",
    "stable",
    "theorem2_literal",
]
