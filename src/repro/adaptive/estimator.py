"""Workload estimation (paper Eq. 15).

The cluster cannot observe the true arrival rate directly; it smooths
periodic measurements with an exponentially weighted moving average

    λ_t = β · λ̂ + (1 − β) · λ_{t−1}

where ``λ̂`` is the rate measured over the last window and ``β`` weights
the present against the past.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

__all__ = ["EwmaEstimator", "ArrivalRateTracker"]


class EwmaEstimator:
    """Eq. (15) exponential smoothing of measured workloads."""

    def __init__(self, beta: float = 0.4, initial: float = 0.0) -> None:
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        self.beta = beta
        self._value = float(initial)

    @property
    def value(self) -> float:
        return self._value

    def update(self, measured: float) -> float:
        """Fold one measurement λ̂ into the estimate and return it."""
        if measured < 0:
            raise ValueError("measured workload must be non-negative")
        self._value = self.beta * measured + (1.0 - self.beta) * self._value
        return self._value

    def reset(self, value: float = 0.0) -> None:
        self._value = float(value)


class ArrivalRateTracker:
    """Sliding-window arrival counter feeding an EWMA estimator.

    ``observe(t)`` records a task arrival at time ``t`` and returns the
    smoothed rate estimate; arrivals older than ``window_s`` drop out of
    the instantaneous measurement.
    """

    def __init__(
        self,
        window_s: float = 10.0,
        beta: float = 0.4,
        initial_rate: Optional[float] = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self.ewma = EwmaEstimator(beta, initial=initial_rate or 0.0)
        self._arrivals: "Deque[float]" = deque()
        self._last_time = -float("inf")

    @property
    def rate(self) -> float:
        return self.ewma.value

    def observe(self, now: float) -> float:
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._last_time = now
        self._arrivals.append(now)
        cutoff = now - self.window_s
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        measured = len(self._arrivals) / self.window_s
        return self.ewma.update(measured)
