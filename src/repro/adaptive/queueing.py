"""M/D/1 latency estimation (paper Theorem 2).

A parallel scheme with period ``p`` serves Poisson arrivals of rate
``λ`` like an M/D/1 queue: deterministic service ``p``, utilisation
``ρ = λp``.  The Pollaczek–Khinchine waiting time is

    W_q = λ p² / (2 (1 − λp))

and a task's average inference latency is ``W_q + t`` with ``t`` the
execution (pipeline) latency.  The paper's Theorem 2 prints
``p(2 − pλ) / (2(1 − pλ)) + t``, which equals ``W_q + p + t`` — it
counts the bottleneck-stage service twice when ``t`` is the full
pipeline latency.  We default to the queueing-correct form and keep the
paper's literal formula available; the two differ by exactly one
period, so they agree everywhere except a narrow crossover window.
"""

from __future__ import annotations

import math

from typing import Dict, Sequence

__all__ = [
    "md1_waiting_time",
    "average_inference_latency",
    "batched_inference_latency",
    "backlog_latency",
    "theorem2_literal",
    "validate_md1",
    "stable",
]


def stable(period: float, arrival_rate: float) -> bool:
    """Whether the queue is stable (utilisation < 1)."""
    return period * arrival_rate < 1.0


def md1_waiting_time(period: float, arrival_rate: float) -> float:
    """Mean M/D/1 queueing delay before service starts."""
    if period < 0 or arrival_rate < 0:
        raise ValueError("period and arrival rate must be non-negative")
    if arrival_rate == 0 or period == 0:
        return 0.0
    rho = period * arrival_rate
    if rho >= 1.0:
        return math.inf
    return arrival_rate * period * period / (2.0 * (1.0 - rho))


def average_inference_latency(
    period: float, latency: float, arrival_rate: float
) -> float:
    """Expected task latency: M/D/1 wait + pipeline execution latency."""
    if latency < period:
        raise ValueError(f"latency {latency} cannot be below period {period}")
    wait = md1_waiting_time(period, arrival_rate)
    return wait + latency


def batched_inference_latency(
    period: float, latency: float, arrival_rate: float, batch: int
) -> float:
    """Theorem 2 extended with cross-frame micro-batching.

    ``period`` and ``latency`` are the *batched* per-frame period and
    batched pipeline latency (:meth:`PlanTiming.batched_period` /
    :meth:`~repro.runtime.timing.PlanTiming.batched_latency`).  Three
    terms:

    * **forming delay** — a frame waits on average ``(b − 1) / (2λ)``
      for the rest of its batch to arrive (half the window the entrance
      holds open), which is why large batches lose at light load;
    * **M/D/1 wait** — batches arrive at rate ``λ/b`` and hold the
      bottleneck stage ``b·p_b`` each, so ``ρ = λ·p_b`` and the
      Pollaczek–Khinchine wait is ``λ·b·p_b² / (2(1 − ρ))``;
    * the batched pipeline **execution latency**.

    ``batch == 1`` is exactly :func:`average_inference_latency`.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if batch == 1:
        return average_inference_latency(period, latency, arrival_rate)
    if latency < period:
        raise ValueError(f"latency {latency} cannot be below period {period}")
    if period < 0 or arrival_rate < 0:
        raise ValueError("period and arrival rate must be non-negative")
    if arrival_rate == 0:
        return math.inf  # a batch never finishes forming
    rho = period * arrival_rate
    if rho >= 1.0:
        return math.inf
    forming = (batch - 1) / (2.0 * arrival_rate)
    wait = arrival_rate * batch * period * period / (2.0 * (1.0 - rho))
    return forming + wait + latency


def backlog_latency(period: float, latency: float, queue_depth: int) -> float:
    """Latency estimate from a *measured* backlog, not an arrival rate.

    A frame arriving behind ``queue_depth`` in-flight frames waits for
    the pipeline to emit that many completions — one per period in
    steady state — and then runs for the pipeline latency.  This is the
    transient counterpart of Theorem 2's steady-state estimate: the
    rate estimator lags sudden load, the queue depth does not.
    """
    if period < 0 or latency < 0:
        raise ValueError("period and latency must be non-negative")
    if queue_depth < 0:
        raise ValueError("queue depth must be non-negative")
    return queue_depth * period + latency


def validate_md1(
    sojourns: "Sequence[float]",
    period: float,
    latency: float,
    arrival_rate: float,
) -> "Dict[str, float]":
    """Compare measured sojourn times against the Theorem 2 estimate.

    ``sojourns`` are arrival-to-completion latencies measured from a
    served Poisson workload (e.g. :class:`~repro.serve.PipelineServer`
    records).  Returns the measured mean, the M/D/1 prediction
    ``W_q + t``, their relative error and the utilisation ``ρ = λp`` —
    the numbers behind the paper's Theorem 2 validation.
    """
    if not sojourns:
        raise ValueError("need at least one measured sojourn")
    measured = sum(sojourns) / len(sojourns)
    predicted = average_inference_latency(period, latency, arrival_rate)
    if predicted in (0.0, math.inf):
        rel_error = math.inf
    else:
        rel_error = abs(measured - predicted) / predicted
    return {
        "n": float(len(sojourns)),
        "utilisation": period * arrival_rate,
        "measured_mean": measured,
        "predicted_mean": predicted,
        "rel_error": rel_error,
    }


def theorem2_literal(period: float, latency: float, arrival_rate: float) -> float:
    """The paper's Theorem 2 exactly as printed:
    ``p(2 − pλ) / (2(1 − pλ)) + t``."""
    if period < 0 or arrival_rate < 0:
        raise ValueError("period and arrival rate must be non-negative")
    rho = period * arrival_rate
    if rho >= 1.0:
        return math.inf
    return period * (2.0 - rho) / (2.0 * (1.0 - rho)) + latency
