"""M/D/1 latency estimation (paper Theorem 2).

A parallel scheme with period ``p`` serves Poisson arrivals of rate
``λ`` like an M/D/1 queue: deterministic service ``p``, utilisation
``ρ = λp``.  The Pollaczek–Khinchine waiting time is

    W_q = λ p² / (2 (1 − λp))

and a task's average inference latency is ``W_q + t`` with ``t`` the
execution (pipeline) latency.  The paper's Theorem 2 prints
``p(2 − pλ) / (2(1 − pλ)) + t``, which equals ``W_q + p + t`` — it
counts the bottleneck-stage service twice when ``t`` is the full
pipeline latency.  We default to the queueing-correct form and keep the
paper's literal formula available; the two differ by exactly one
period, so they agree everywhere except a narrow crossover window.
"""

from __future__ import annotations

import math

__all__ = [
    "md1_waiting_time",
    "average_inference_latency",
    "theorem2_literal",
    "stable",
]


def stable(period: float, arrival_rate: float) -> bool:
    """Whether the queue is stable (utilisation < 1)."""
    return period * arrival_rate < 1.0


def md1_waiting_time(period: float, arrival_rate: float) -> float:
    """Mean M/D/1 queueing delay before service starts."""
    if period < 0 or arrival_rate < 0:
        raise ValueError("period and arrival rate must be non-negative")
    if arrival_rate == 0 or period == 0:
        return 0.0
    rho = period * arrival_rate
    if rho >= 1.0:
        return math.inf
    return arrival_rate * period * period / (2.0 * (1.0 - rho))


def average_inference_latency(
    period: float, latency: float, arrival_rate: float
) -> float:
    """Expected task latency: M/D/1 wait + pipeline execution latency."""
    if latency < period:
        raise ValueError(f"latency {latency} cannot be below period {period}")
    wait = md1_waiting_time(period, arrival_rate)
    return wait + latency


def theorem2_literal(period: float, latency: float, arrival_rate: float) -> float:
    """The paper's Theorem 2 exactly as printed:
    ``p(2 − pλ) / (2(1 − pλ)) + t``."""
    if period < 0 or arrival_rate < 0:
        raise ValueError("period and arrival rate must be non-negative")
    rho = period * arrival_rate
    if rho >= 1.0:
        return math.inf
    return period * (2.0 - rho) / (2.0 * (1.0 - rho)) + latency
