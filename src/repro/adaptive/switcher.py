"""APICO: adaptive parallel-scheme switching (paper §IV-C).

Under heavy load the pipelined plan's short period slashes queueing
delay; under light load a one-stage plan finishes each lone task faster
because every device works on it.  The switcher scores each candidate
plan with the Theorem 2 estimate at the current (EWMA-smoothed) arrival
rate and activates the argmin.  An optional hysteresis margin prevents
flapping around crossover points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.adaptive.estimator import ArrivalRateTracker
from repro.adaptive.queueing import (
    average_inference_latency,
    backlog_latency,
    batched_inference_latency,
)
from repro.cluster.device import Cluster
from repro.core.plan import PipelinePlan, plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.tables import get_segment_table
from repro.models.graph import Model
from repro.schemes.base import Scheme
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme

__all__ = ["CandidatePlan", "AdaptiveSwitcher", "build_apico_switcher"]


@dataclass(frozen=True)
class CandidatePlan:
    """A pre-planned scheme with its analytic period and latency.

    ``comm_fraction`` is the communication share of the plan's service
    time (bottleneck transfers / latency) — the part of a stage that
    scales linearly with a cross-frame batch while compute is partially
    amortised.  Defaults to 0 (all-compute), the conservative choice
    when the planner did not supply a split.
    """

    name: str
    plan: PipelinePlan
    period: float
    latency: float
    comm_fraction: float = 0.0

    def estimated_latency(self, arrival_rate: float, batch: int = 1) -> float:
        if batch == 1:
            return average_inference_latency(
                self.period, self.latency, arrival_rate
            )
        return batched_inference_latency(
            self.batched_period(batch),
            self.batched_latency(batch),
            arrival_rate,
            batch,
        )

    def batched_period(self, batch: int) -> float:
        """Per-frame period with cross-frame batches of ``batch``."""
        from repro.cost.tables import batched_service

        if batch == 1:
            return self.period
        comm = self.period * self.comm_fraction
        return batched_service(comm, self.period - comm, batch) / batch

    def batched_latency(self, batch: int) -> float:
        """Pipeline traversal time of one ``batch``-frame batch."""
        from repro.cost.tables import batched_service

        if batch == 1:
            return self.latency
        comm = self.latency * self.comm_fraction
        return batched_service(comm, self.latency - comm, batch)

    def backlog_latency(self, queue_depth: int, batch: int = 1) -> float:
        """Latency seen behind ``queue_depth`` frames already in flight."""
        return backlog_latency(
            self.batched_period(batch), self.batched_latency(batch), queue_depth
        )


class AdaptiveSwitcher:
    """Chooses the candidate with the lowest Theorem 2 latency estimate."""

    def __init__(
        self,
        candidates: "Sequence[CandidatePlan]",
        tracker: Optional[ArrivalRateTracker] = None,
        hysteresis: float = 0.0,
        schemes: "Optional[Tuple[Scheme, ...]]" = None,
        batch_candidates: "Sequence[int]" = (1,),
    ) -> None:
        if not candidates:
            raise ValueError("need at least one candidate plan")
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if not batch_candidates or any(
            int(b) != b or b < 1 for b in batch_candidates
        ):
            raise ValueError("batch_candidates must be integers >= 1")
        self.candidates = tuple(candidates)
        self.tracker = tracker or ArrivalRateTracker()
        self.hysteresis = hysteresis
        #: The planners that produced the candidates — kept so the
        #: switcher can rebuild its candidate set after cluster churn.
        self.schemes = tuple(schemes) if schemes is not None else None
        #: Cross-frame batch sizes the switcher may recommend; ``(1,)``
        #: keeps batching off and reproduces the PR-5 switcher exactly.
        self.batch_candidates = tuple(sorted(set(int(b) for b in batch_candidates)))
        #: Fleet grant: when set, only candidates whose plans stay
        #: within this device set are eligible (None = unrestricted).
        self._granted: "Optional[frozenset]" = None
        self._active = self.choose(self.tracker.rate)
        self._active_batch = self.choose_batch(self.tracker.rate)

    @property
    def active(self) -> CandidatePlan:
        return self._active

    @property
    def granted(self) -> "Optional[frozenset]":
        return self._granted

    def grant(self, devices: "Optional[Sequence[str]]") -> CandidatePlan:
        """Restrict switching to plans within ``devices`` (fleet mode).

        A fleet scheduler leases each tenant a device subset; from then
        on the tenant's switcher may only activate a candidate whose
        plan touches granted devices — switching onto hardware the
        scheduler gave another tenant exclusively is not allowed.
        ``None`` lifts the restriction.  If the currently active plan
        falls outside the new grant, the best eligible candidate is
        activated immediately.  Raises :class:`ValueError` when no
        candidate fits the grant.
        """
        self._granted = None if devices is None else frozenset(devices)
        if self._granted is not None and not self._eligible():
            names = sorted(self._granted)
            self._granted = None
            raise ValueError(
                f"no candidate plan fits the granted devices {names}"
            )
        if not self._allowed(self._active):
            self._active = self.choose(self.tracker.rate)
            self._active_batch = self.choose_batch(self.tracker.rate)
        return self._active

    def _allowed(self, candidate: CandidatePlan) -> bool:
        if self._granted is None:
            return True
        return all(
            d.name in self._granted for d in candidate.plan.all_devices
        )

    def _eligible(self) -> "Tuple[CandidatePlan, ...]":
        return tuple(c for c in self.candidates if self._allowed(c))

    @property
    def active_batch(self) -> int:
        """The cross-frame batch size currently recommended for the
        active plan (1 unless ``batch_candidates`` offers more)."""
        return self._active_batch

    def choose_batch(
        self, arrival_rate: float, queue_depth: int = 0
    ) -> int:
        """The best batch size for the *active* plan (no state change).

        Scores every ``batch_candidates`` entry with the batched
        Theorem 2 estimate (forming delay + batch M/D/1 wait + batched
        execution): heavy load amortises per-frame work across the
        batch, light load pays the forming delay.  Ties break towards
        the smaller batch — including the zero-rate cold start, where
        every ``b > 1`` estimate is infinite.
        """
        return min(
            self.batch_candidates,
            key=lambda b: (
                self._score(self._active, arrival_rate, queue_depth, b),
                b,
            ),
        )

    def choose(self, arrival_rate: float, queue_depth: int = 0) -> CandidatePlan:
        """The best candidate at ``arrival_rate`` (no state change).

        When a measured ``queue_depth`` is supplied (e.g. from a serving
        queue) each candidate is scored by the *worse* of the Theorem 2
        steady-state estimate and the drain-time estimate for that
        backlog — a sudden burst shows up in the queue long before the
        EWMA rate catches up.  Ties — including the overload case where
        every estimate is infinite — break towards the shorter period,
        i.e. the plan with the most throughput headroom.  Under a fleet
        :meth:`grant` only candidates within the granted devices
        compete."""
        return min(
            self._eligible(),
            key=lambda c: (self._score(c, arrival_rate, queue_depth), c.period),
        )

    @staticmethod
    def _score(
        candidate: CandidatePlan,
        arrival_rate: float,
        queue_depth: int,
        batch: int = 1,
    ) -> float:
        estimate = candidate.estimated_latency(arrival_rate, batch)
        if queue_depth > 0:
            estimate = max(
                estimate, candidate.backlog_latency(queue_depth, batch)
            )
        return estimate

    def plan_timings(
        self,
        model: Model,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ) -> "dict":
        """Per-candidate runtime timing tables from the shared core.

        The event simulator replays a switcher with these; building
        them here keeps every candidate's service model in the same
        tables the frame-level backends stamp their traces with.
        """
        from repro.runtime.timing import plan_timing

        return {
            c.name: plan_timing(model, c.plan, network, options, name=c.name)
            for c in self.candidates
        }

    def replan(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ) -> "AdaptiveSwitcher":
        """A fresh switcher with every candidate re-planned on ``cluster``.

        The churn response (paper §IV-C: re-run the planner when the
        cluster changes): each stored scheme plans the model over the
        *current* device set, keeping the arrival-rate tracker so the
        new switcher starts from the observed load, not from cold.
        Raises :class:`~repro.schemes.base.PlanningError` when no
        candidate fits the surviving cluster.
        """
        if self.schemes is None:
            raise ValueError(
                "this switcher was built without schemes; re-plan needs "
                "the planners that produced its candidates"
            )
        from repro.schemes.base import PlanningError

        candidates = []
        errors = []
        for scheme in self.schemes:
            try:
                plan = scheme.plan(model, cluster, network, options)
            except PlanningError as exc:
                errors.append(f"{scheme.name}: {exc}")
                continue
            cost = plan_cost(model, plan, network, options)
            candidates.append(
                CandidatePlan(
                    scheme.name, plan, cost.period, cost.latency,
                    comm_fraction=_comm_fraction(cost),
                )
            )
        if not candidates:
            raise PlanningError(
                "no candidate scheme fits the surviving cluster "
                f"({'; '.join(errors)})"
            )
        return AdaptiveSwitcher(
            candidates, self.tracker, self.hysteresis,
            schemes=self.schemes, batch_candidates=self.batch_candidates,
        )

    def on_arrival(
        self, now: float, queue_depth: Optional[int] = None
    ) -> CandidatePlan:
        """Record an arrival; switch the active plan if another candidate
        beats the current one by more than the hysteresis margin.

        ``queue_depth`` — the number of frames already admitted and not
        yet completed, when the caller serves a real queue — folds the
        measured backlog into every candidate's score (see
        :meth:`choose`).  Overload is special-cased: when the active
        plan is saturated (infinite estimate), any plan with more
        throughput headroom is adopted immediately — hysteresis must
        never pin the cluster to a plan that cannot keep up."""
        rate = self.tracker.observe(now)
        depth = queue_depth or 0
        best = self.choose(rate, depth)
        if best.name != self._active.name:
            current_est = self._score(self._active, rate, depth)
            best_est = self._score(best, rate, depth)
            if current_est == float("inf"):
                if best_est < current_est or best.period < self._active.period:
                    self._active = best
            elif best_est <= current_est * (1.0 - self.hysteresis):
                self._active = best
        self._active_batch = self.choose_batch(rate, depth)
        return self._active


def _comm_fraction(cost) -> float:
    """Communication share of a plan's latency — the part of a batched
    service that scales linearly with B (see :class:`CandidatePlan`)."""
    if cost.latency <= 0:
        return 0.0
    total_comm = sum(sc.t_comm for sc in cost.stage_costs)
    return min(1.0, max(0.0, total_comm / cost.latency))


def build_apico_switcher(
    model: Model,
    cluster: Cluster,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    schemes: "Optional[Tuple[Scheme, ...]]" = None,
    tracker: Optional[ArrivalRateTracker] = None,
    hysteresis: float = 0.0,
    batch_candidates: "Sequence[int]" = (1,),
) -> AdaptiveSwitcher:
    """Plan the default APICO candidate set: PICO (pipelined) plus the
    paper's chosen one-stage scheme, AOFL/OFL (§IV-C: "we choose [8] as
    the one-stage scheme").  ``batch_candidates`` additionally lets the
    switcher score cross-frame batch sizes for the active plan.

    ``network`` may also be a :class:`~repro.sim.topology.Topology`;
    the candidates are costed against its flat summary
    (:func:`~repro.cost.comm.coerce_network`).  ``schemes`` entries may
    be :class:`Scheme` instances or registry names (``"iop"``, ...)."""
    from repro.cost.comm import coerce_network

    network = coerce_network(network)
    if schemes is None:
        schemes = (PicoScheme(), OptimalFusedScheme())
    else:
        from repro.schemes import get_scheme

        schemes = tuple(
            get_scheme(s) if isinstance(s, str) else s for s in schemes
        )
    # Prewarm the shared segment table: every candidate scheme (and any
    # later online re-plan for the same model) draws its stage costs
    # from this single vectorized table instead of rebuilding FLOP
    # prefix maps per scheme.
    get_segment_table(model, options)
    candidates = []
    for scheme in schemes:
        plan = scheme.plan(model, cluster, network, options)
        cost = plan_cost(model, plan, network, options)
        candidates.append(
            CandidatePlan(
                scheme.name, plan, cost.period, cost.latency,
                comm_fraction=_comm_fraction(cost),
            )
        )
    return AdaptiveSwitcher(
        candidates, tracker, hysteresis,
        schemes=schemes, batch_candidates=batch_candidates,
    )
