"""Plan reporting: cost summaries and ASCII pipeline timelines.

``render_plan`` prints the per-stage cost breakdown (Eq. 9 terms);
``render_timeline`` draws the pipelined execution of the first few
tasks as a Gantt chart — the textual form of the paper's Fig. 1 — which
makes the period/latency trade-off visible at a glance::

    stage 0 |000111222333444555666777888999
    stage 1 |...000111222333444555666777888
    stage 2 |......000111222333444555666777
"""

from __future__ import annotations

from typing import List

from repro.core.plan import PipelinePlan, plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import Model

__all__ = ["render_plan", "render_timeline", "stage_schedule"]


def render_plan(
    model: Model,
    plan: PipelinePlan,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
) -> str:
    """Per-stage cost table plus the plan's period/latency summary."""
    cost = plan_cost(model, plan, network, options)
    lines = [plan.describe(), ""]
    lines.append(
        f"{'stage':>5s} {'units':>9s} {'devices':>7s} {'T_comp':>8s} "
        f"{'T_comm':>8s} {'T_head':>8s} {'total':>8s}"
    )
    for idx, sc in enumerate(cost.stage_costs):
        lines.append(
            f"{idx:>5d} {f'[{sc.start},{sc.end})':>9s} "
            f"{len(sc.devices):>7d} {sc.t_comp:>7.3f}s {sc.t_comm:>7.3f}s "
            f"{sc.t_head:>7.3f}s {sc.total:>7.3f}s"
        )
    lines.append("")
    lines.append(
        f"period {cost.period:.3f}s ({60 * cost.throughput:.1f} tasks/min), "
        f"latency {cost.latency:.3f}s, mode {plan.mode}"
    )
    return "\n".join(lines)


def stage_schedule(
    services: "List[float]", n_tasks: int, mode: str = "pipelined"
) -> "List[List[tuple]]":
    """Steady-state schedule: per stage, a list of (task, start, end).

    For pipelined plans task ``k`` enters stage ``s`` once both the task
    has left stage ``s-1`` and stage ``s`` finished task ``k-1``; for
    exclusive plans the phases of one task run back to back and tasks
    queue behind each other.
    """
    if n_tasks < 1:
        raise ValueError("need at least one task")
    n_stages = len(services)
    schedule: "List[List[tuple]]" = [[] for _ in range(n_stages)]
    if mode == "exclusive":
        clock = 0.0
        for task in range(n_tasks):
            for stage, service in enumerate(services):
                schedule[stage].append((task, clock, clock + service))
                clock += service
        return schedule
    finish = [[0.0] * n_stages for _ in range(n_tasks)]
    for task in range(n_tasks):
        for stage, service in enumerate(services):
            ready = finish[task][stage - 1] if stage else 0.0
            free = finish[task - 1][stage] if task else 0.0
            start = max(ready, free)
            end = start + service
            finish[task][stage] = end
            schedule[stage].append((task, start, end))
    return schedule


def render_timeline(
    model: Model,
    plan: PipelinePlan,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    n_tasks: int = 6,
    width: int = 72,
) -> str:
    """ASCII Gantt chart of the first ``n_tasks`` flowing through the plan."""
    cost = plan_cost(model, plan, network, options)
    services = [sc.total for sc in cost.stage_costs]
    if plan.mode == "exclusive":
        # One server: collapse phases into a single service per task.
        services = [cost.latency]
    schedule = stage_schedule(services, n_tasks, "pipelined")
    horizon = max(end for row in schedule for (_, _, end) in row)
    scale = (width - 1) / horizon if horizon > 0 else 1.0
    lines = []
    for stage_idx, row in enumerate(schedule):
        chars = ["."] * width
        for task, start, end in row:
            a = int(start * scale)
            b = max(a + 1, int(end * scale))
            for pos in range(a, min(b, width)):
                chars[pos] = str(task % 10)
        lines.append(f"stage {stage_idx} |" + "".join(chars))
    lines.append(
        f"{' ' * 8}|{'-' * (width - 1)}> t=0 .. {horizon:.2f}s "
        f"(period {cost.period:.2f}s)"
    )
    return "\n".join(lines)
