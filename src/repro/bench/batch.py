"""Cross-frame batching gate: batched throughput vs the per-frame loop.

Measures what the ``max_batch`` serving knob actually buys on the
wall-clock (threaded) backend, where the batched fast path builds one
stacked im2col panel and issues one sgemm per layer for every frame in
flight instead of B separate panel/pack/dispatch rounds:

* **capacity** — saturated closed-loop throughput per core for
  B ∈ {1, 2, 4, 8}; the headline gate is that some B > 1 beats the
  B=1 baseline (the unchanged PR-5 per-frame server path).
* **rho09** — open-loop arrivals at ρ ≈ 0.9 of the measured B=1
  capacity with a bounded shed-policy queue: goodput, shed counts,
  sojourns and realised batch sizes per B.

Protocol: the B sweep is *interleaved* inside each repeat (so drift
hits every B equally) and the reported number per B is the median
across repeats — both recorded in the JSON.  Results land in
``BENCH_batch.json``; non-zero exit when a gate fails::

    make bench-batch
    python -m repro.bench.batch --quick
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.device import heterogeneous_cluster
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.core import InProcTransport
from repro.runtime.program import compile_plan
from repro.schemes import get_scheme
from repro.serve import PipelineServer, ServerConfig
from repro.workload.arrivals import poisson_arrivals_count

__all__ = ["run", "main"]

BATCHES = (1, 2, 4, 8)
RHO = 0.9


def _build(seed: int):
    model = toy_chain(6, 2, input_hw=32, in_channels=3, base_channels=8)
    weights = init_weights(model, seed=seed)
    network = NetworkModel.from_mbps(50.0)
    cluster = heterogeneous_cluster([1200.0, 1000.0, 800.0, 600.0])
    plan = get_scheme("pico").plan(model, cluster, network)
    program = compile_plan(model, plan)
    return model, weights, program


def _serve_once(model, weights, program, config, n_frames, arrivals=None):
    """One threaded serve run; returns (throughput, ServeResult)."""
    transport = InProcTransport(Engine(model, weights))
    server = PipelineServer(program, transport, config)
    start = time.perf_counter()
    try:
        result = server.serve(
            n_frames, arrivals=arrivals if arrivals is not None else None
        )
    finally:
        server.close()
    elapsed = time.perf_counter() - start
    return (len(result.completed) / elapsed if elapsed > 0 else 0.0), result


def _config(batch: int, capacity: int, policy: str) -> ServerConfig:
    return ServerConfig(
        queue_capacity=capacity,
        policy=policy,
        max_batch=batch,
        # A short window lets saturated queues fill real batches without
        # stalling a drained pipeline; irrelevant at B=1.
        batch_timeout=0.001 if batch > 1 else 0.0,
    )


def run(
    quick: bool = False,
    out_path: Optional[str] = "BENCH_batch.json",
    seed: int = 0,
) -> Dict:
    model, weights, program = _build(seed)
    cores = os.cpu_count() or 1
    n_frames = 32 if quick else 64
    repeats = 2 if quick else 5
    capacity = 32

    # -- capacity: saturated closed loop, interleaved B sweep ----------
    samples: "Dict[int, List[float]]" = {b: [] for b in BATCHES}
    mean_batches: "Dict[int, List[float]]" = {b: [] for b in BATCHES}
    for _ in range(repeats):
        for b in BATCHES:  # interleave so drift hits every B equally
            thr, res = _serve_once(
                model, weights, program,
                _config(b, capacity, "block"), n_frames,
            )
            samples[b].append(thr)
            mean_batches[b].append(res.mean_batch)
    capacity_rows = []
    for b in BATCHES:
        med = statistics.median(samples[b])
        capacity_rows.append(
            {
                "max_batch": b,
                "throughput_per_s": med,
                "throughput_per_core": med / cores,
                "mean_batch": statistics.median(mean_batches[b]),
                "samples_per_s": samples[b],
            }
        )
        print(
            f"saturated B={b}: {med:.1f}/s "
            f"({med / cores:.1f}/s/core, "
            f"mean batch {capacity_rows[-1]['mean_batch']:.1f})"
        )
    base = capacity_rows[0]["throughput_per_s"]
    best = max(capacity_rows[1:], key=lambda r: r["throughput_per_s"])
    speedup = best["throughput_per_s"] / base if base > 0 else 0.0
    print(
        f"best: B={best['max_batch']} at {speedup:.2f}x the per-frame loop"
    )

    # -- rho ~= 0.9 of the measured B=1 capacity, bounded shed queue ---
    rate = RHO * base
    n_open = 48 if quick else 120
    arrivals = poisson_arrivals_count(
        rate, n_open, np.random.default_rng(seed)
    )
    rho_rows = []
    for _ in range(repeats):
        for b in BATCHES:
            thr, res = _serve_once(
                model, weights, program,
                _config(b, 16, "shed"), len(arrivals), list(arrivals),
            )
            rho_rows.append(
                {
                    "max_batch": b,
                    "goodput_per_s": thr,
                    "goodput_per_core": thr / cores,
                    "completed": len(res.completed),
                    "shed": len(res.shed),
                    "mean_sojourn_s": res.mean_sojourn,
                    "mean_batch": res.mean_batch,
                }
            )
    rho_summary = []
    for b in BATCHES:
        rows = [r for r in rho_rows if r["max_batch"] == b]
        med = statistics.median(r["goodput_per_s"] for r in rows)
        rho_summary.append(
            {
                "max_batch": b,
                "goodput_per_s": med,
                "goodput_per_core": med / cores,
                "completed": statistics.median(r["completed"] for r in rows),
                "shed": statistics.median(r["shed"] for r in rows),
                "mean_sojourn_s": statistics.median(
                    r["mean_sojourn_s"] for r in rows
                ),
                "mean_batch": statistics.median(
                    r["mean_batch"] for r in rows
                ),
            }
        )
        print(
            f"rho={RHO} B={b}: goodput {med:.1f}/s "
            f"({med / cores:.1f}/s/core), "
            f"shed {rho_summary[-1]['shed']:.0f}/{len(arrivals)}"
        )
    rho_base = rho_summary[0]["goodput_per_s"]
    rho_best = max(rho_summary[1:], key=lambda r: r["goodput_per_s"])
    rho_speedup = rho_best["goodput_per_s"] / rho_base if rho_base else 0.0

    gates = {
        "saturated_some_batch_beats_per_frame": speedup > 1.0,
        "rho09_some_batch_matches_per_frame": rho_speedup >= 0.95,
        "batches_actually_form": any(
            r["mean_batch"] > 1.0 for r in capacity_rows[1:]
        ),
    }
    result = {
        "bench": "batch",
        "quick": quick,
        "config": {
            "model": "toy_chain(6,2)", "input_hw": 32,
            "base_channels": 8, "scheme": "pico",
            "devices": [1200.0, 1000.0, 800.0, 600.0], "mbps": 50.0,
            "n_stages": program.n_stages, "cores": cores,
            "batch_gemm": Engine(model, weights).batch_gemm,
        },
        "protocol": {
            "interleaved": True,
            "repeats": repeats,
            "statistic": "median",
            "saturated_frames": n_frames,
            "open_loop_frames": n_open,
            "rho": RHO,
            "rho_rate_per_s": rate,
        },
        "saturated": capacity_rows,
        "saturated_speedup_best": {
            "max_batch": best["max_batch"], "speedup": speedup,
        },
        "rho09": rho_summary,
        "rho09_speedup_best": {
            "max_batch": rho_best["max_batch"], "speedup": rho_speedup,
        },
        "gates": gates,
        "pass": all(gates.values()),
    }
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"results written to {out_path}")
    print("PASS" if result["pass"] else f"FAIL: {gates}")
    return result


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="cross-frame batched serving throughput gate"
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    parser.add_argument("--out", type=str, default="BENCH_batch.json",
                        help="output JSON path ('' = don't write)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run(args.quick, args.out or None, args.seed)
    return 0 if result["pass"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
