"""Benchmark harnesses (JSON-emitting, no pytest dependency)."""

__all__ = ["run_suite"]


def run_suite(*args, **kwargs):
    """Lazy proxy for :func:`repro.bench.engine.run_suite`.

    Deferred so ``python -m repro.bench.engine`` does not import the
    submodule twice (runpy warns when a package ``__init__`` pre-imports
    the module being executed).
    """
    from repro.bench.engine import run_suite as _run_suite

    return _run_suite(*args, **kwargs)
