"""Planner benchmark: reference scalar DP vs vectorized cost tables.

Times Algorithm 1 end-to-end (DP + ``Ts`` evaluation) in three
configurations over the paper's evaluation models and the Table II
toy-chain grid:

* ``reference`` — :func:`repro.core.dp_planner.plan_homogeneous_reference`,
  the seed implementation whose every ``Ts`` miss re-walks the segment
  through the scalar cost model;
* ``cold`` — the vectorized planner with a freshly built
  :class:`~repro.cost.tables.SegmentTable` (table construction is part
  of the measured time: the first-plan cost for a new model);
* ``warm`` — the vectorized planner against a shared, already-populated
  table: the online re-planning cost, what the adaptive switcher pays
  when the workload shifts.

Protocol matches :mod:`repro.bench.engine`: the three configurations are
run *interleaved* (ref, cold, warm, ref, cold, warm, ...) and summarised
by the median, which cancels the slow drift of shared-host machines.

Run it via ``make bench-json`` or directly::

    python -m repro.bench.planner --out BENCH_planner.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.device import Cluster, heterogeneous_cluster, pi_cluster
from repro.core.dp_planner import (
    plan_homogeneous,
    plan_homogeneous_reference,
)
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.tables import SegmentCostTable, SegmentTable
from repro.models.graph import Model
from repro.models.toy import toy_chain
from repro.models.zoo import get_model

__all__ = ["run_suite", "main"]

#: (model name, input_hw) zoo cases — the paper's evaluation models at
#: benchmark-friendly resolutions, planned on an 8-Pi cluster.
DEFAULT_MODELS: "Tuple[Tuple[str, int], ...]" = (
    ("vgg16", 64),
    ("resnet34", 64),
    ("inception_v3", 96),
)

#: (layers, devices) toy-chain cases — the Table II grid cells that the
#: heuristic planner must clear "in under a second".
DEFAULT_GRID: "Tuple[Tuple[int, int], ...]" = (
    (4, 4), (8, 4), (12, 4), (16, 4), (8, 6), (8, 8),
)


def _interleaved_medians(fns: "Sequence", repeats: int) -> "List[float]":
    """Median seconds per thunk, alternating calls each round."""
    samples: "List[List[float]]" = [[] for _ in fns]
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            samples[i].append(time.perf_counter() - t0)
    return [float(np.median(s)) for s in samples]


def _bench_case(
    label: str,
    model: Model,
    cluster: Cluster,
    network: NetworkModel,
    options: CostOptions,
    repeats: int,
) -> "Dict[str, object]":
    device = cluster.homogenized().devices[0]
    # The warm table is built (and fully populated by the first round)
    # outside the clock; cold runs rebuild everything inside it.
    warm_table = SegmentCostTable(
        model, device, network, options, segments=SegmentTable(model, options)
    )

    plans = {}

    def run_reference() -> None:
        plans["reference"] = plan_homogeneous_reference(
            model, cluster, network, options
        )

    def run_cold() -> None:
        table = SegmentCostTable(
            model, device, network, options,
            segments=SegmentTable(model, options),
        )
        plans["cold"] = plan_homogeneous(
            model, cluster, network, options, table=table
        )

    def run_warm() -> None:
        plans["warm"] = plan_homogeneous(
            model, cluster, network, options, table=warm_table
        )

    ref_s, cold_s, warm_s = _interleaved_medians(
        [run_reference, run_cold, run_warm], repeats
    )
    reference = plans["reference"]
    assert reference is not None
    for key in ("cold", "warm"):
        plan = plans[key]
        assert plan is not None
        assert (plan.stages, plan.period, plan.latency) == (
            reference.stages,
            reference.period,
            reference.latency,
        ), f"{label}: {key} plan diverged from the reference DP"
    return {
        "case": label,
        "n_units": model.n_units,
        "n_devices": len(cluster),
        "reference_s": ref_s,
        "vectorized_cold_s": cold_s,
        "vectorized_warm_s": warm_s,
        "speedup_cold": ref_s / cold_s,
        "speedup_warm": ref_s / warm_s,
        "period": reference.period,
        "n_stages": reference.n_stages,
    }


def run_suite(
    models: "Sequence[Tuple[str, int]]" = DEFAULT_MODELS,
    grid: "Sequence[Tuple[int, int]]" = DEFAULT_GRID,
    repeats: int = 5,
    n_devices: int = 8,
) -> "Dict[str, object]":
    """Benchmark every case; returns the JSON-ready report dict."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    network = NetworkModel.from_mbps(50.0)
    options = DEFAULT_OPTIONS
    results: "List[Dict[str, object]]" = []
    for name, hw in models:
        model = get_model(name, input_hw=hw)
        cluster = pi_cluster(n_devices, 600.0)
        results.append(
            _bench_case(
                f"{name}@{hw}x{n_devices}dev",
                model, cluster, network, options, repeats,
            )
        )
    for n_layers, n_dev in grid:
        model = toy_chain(n_conv=n_layers, n_pool=2, input_hw=64)
        # Same all-distinct-capacity cluster as the Table II experiment.
        cluster = heterogeneous_cluster(
            [600.0 + 75.0 * i for i in range(n_dev)]
        )
        results.append(
            _bench_case(
                f"toy{n_layers}x{n_dev}dev",
                model, cluster, network, options, repeats,
            )
        )
    return {
        "benchmark": "planner_cost_tables",
        "repeats": repeats,
        "protocol": "interleaved median over (reference, cold, warm) rounds",
        "baseline_note": (
            "reference = scalar per-query cost model (seed); cold = "
            "vectorized planner including table construction; warm = "
            "vectorized planner reusing a populated shared table (the "
            "online re-planning path)"
        ),
        "meta": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "results": results,
    }


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_planner.json", help="output JSON path"
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small case subset (CI smoke run)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.quick:
        report = run_suite(
            models=(("vgg16", 64),),
            grid=((8, 4),),
            repeats=args.repeats,
        )
    else:
        report = run_suite(repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for entry in report["results"]:
        print(
            f"{entry['case']:>22} ref {entry['reference_s'] * 1e3:8.2f} ms  "
            f"cold {entry['vectorized_cold_s'] * 1e3:7.2f} ms "
            f"({entry['speedup_cold']:5.1f}x)  "
            f"warm {entry['vectorized_warm_s'] * 1e3:7.2f} ms "
            f"({entry['speedup_warm']:5.1f}x)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
