"""Scenario-simulator gate: million-request throughput, bit-exactness
and a flash-crowd churn scenario.

Three sections land in ``BENCH_sim.json``:

* **throughput** — one million Poisson requests streamed lazily
  through :func:`repro.sim.simulate_scenario` in the constant-memory
  stats mode; the headline figure is simulator **events per second**
  (heap pops of the discrete-event engine).
* **bit_exact** — the degenerate one-link topology must reproduce the
  pre-2.0 single-WLAN simulator bit for bit (full ``SimResult``
  equality), in both the folded and the contended communication mode.
* **flash_crowd** — an eight-device fleet rides a viral-clip arrival
  spike (:class:`~repro.workload.FlashCrowdProcess`) while a
  correlated churn burst drops two devices mid-crowd and returns them
  later; the gate demands the scheduler visibly reacts — ``replan``
  events present in the trace — with every request accounted for.

Exit status is non-zero when any gate fails::

    make bench-sim
    python -m repro.bench.sim --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.cluster.device import heterogeneous_cluster, pi_cluster
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.runtime.trace import RECOVERY_KINDS, Tracer
from repro.schemes.pico import PicoScheme
from repro.sim import Topology, correlated_churn, simulate_scenario
from repro.workload import get_arrivals
from repro.workload.arrivals import poisson_arrivals

__all__ = ["run", "main"]

#: Conservative CI floor — the engine does several hundred thousand
#: events/s on a laptop; shared runners get an order of magnitude slack.
EVENTS_PER_S_GATE = 50_000.0


def _bench_model():
    return toy_chain(6, 1, input_hw=32, in_channels=3)


def _throughput(n_tasks: int, seed: int) -> Dict:
    model = _bench_model()
    cluster = pi_cluster(4, 800)
    network = NetworkModel.from_mbps(50.0)
    plan = PicoScheme().plan(model, cluster, network)
    period = plan_cost(model, plan, network).period
    rate = 0.95 / period  # steady utilisation, no unbounded backlog
    arrivals = get_arrivals("poisson", rate=rate, n_tasks=n_tasks)

    start = time.perf_counter()
    stats = simulate_scenario(
        model, plan, topology=Topology.bus(network), network=network,
        arrivals=arrivals, seed=seed, keep_records=False,
    )
    elapsed = time.perf_counter() - start
    events_per_s = stats.n_events / elapsed if elapsed > 0 else 0.0
    print(
        f"throughput: {n_tasks} requests -> {stats.n_events} events in "
        f"{elapsed:.2f}s ({events_per_s:,.0f} events/s, "
        f"{n_tasks / elapsed:,.0f} requests/s)"
    )
    return {
        "n_requests": int(n_tasks),
        "completed": int(stats.completed),
        "n_events": int(stats.n_events),
        "elapsed_s": float(elapsed),
        "events_per_s": float(events_per_s),
        "requests_per_s": float(n_tasks / elapsed) if elapsed > 0 else 0.0,
        "sim_makespan_s": float(stats.makespan),
        "avg_latency_s": float(stats.avg_latency),
    }


def _bit_exact(seed: int) -> Dict:
    from repro.cluster.simulator import simulate_plan

    model = _bench_model()
    cluster = pi_cluster(4, 800)
    network = NetworkModel.from_mbps(50.0)
    plan = PicoScheme().plan(model, cluster, network)
    arrivals = poisson_arrivals(2.0, 60.0, np.random.default_rng(seed))
    verdicts = {}
    for contended in (False, True):
        old = simulate_plan(
            model, plan, network, arrivals, shared_medium=contended,
            trace=True, queue_capacity=8,
        )
        new = simulate_scenario(
            model, plan,
            topology=Topology.bus(network, contended=contended),
            network=network, arrivals=arrivals, trace=True,
            queue_capacity=8,
        )
        key = "contended" if contended else "folded"
        verdicts[key] = bool(new == old)
        print(f"bit_exact[{key}]: {len(arrivals)} arrivals -> {verdicts[key]}")
    return verdicts


def _flash_crowd(seed: int) -> Dict:
    model = _bench_model()
    cluster = heterogeneous_cluster(
        [1200.0, 1200.0, 1000.0, 1000.0, 800.0, 800.0, 600.0, 600.0]
    )
    names = [d.name for d in cluster]
    topology = Topology.star(names, mbps=50.0, latency_s=0.0005)
    network = topology.as_network_model()
    plan = PicoScheme().plan(model, cluster, network)
    period = plan_cost(model, plan, network).period

    base = 0.5 / period
    peak = 3.0 / period  # well past capacity at the spike
    horizon = 120.0 * period
    crowd = get_arrivals(
        "flash-crowd", base_rate=base, peak_rate=peak,
        t_start=40.0 * period, ramp_s=10.0 * period,
        hold_s=30.0 * period, decay_s=10.0 * period, horizon_s=horizon,
    )
    # A WiFi segment browns out mid-crowd and comes back after the hold.
    churn = correlated_churn(
        names[-2:], at=55.0 * period, stagger_s=period, rejoin_after=25.0 * period
    )
    tracer = Tracer()
    stats = simulate_scenario(
        model, PicoScheme(), cluster,
        topology=topology, arrivals=crowd, churn=churn, trace=tracer,
        queue_capacity=16, seed=seed, keep_records=False,
    )
    recovery = [e for e in tracer.events if e.kind in RECOVERY_KINDS]
    kinds = [e.kind for e in recovery]
    replans = kinds.count("replan") + kinds.count("degraded")
    print(
        f"flash_crowd: {stats.submitted} requests "
        f"({stats.completed} done, {stats.shed_count} shed), "
        f"{len(recovery)} recovery events "
        f"({replans} replans) over {stats.makespan:.1f}s simulated"
    )
    for event in recovery:
        print(f"  t={event.start:8.2f}s {event.kind:>12s} {event.device}")
    return {
        "base_rate_per_s": float(base),
        "peak_rate_per_s": float(peak),
        "submitted": int(stats.submitted),
        "completed": int(stats.completed),
        "shed": int(stats.shed_count),
        "sim_makespan_s": float(stats.makespan),
        "recovery_events": kinds,
        "replan_events": int(replans),
        "device_dead_events": int(kinds.count("device_dead")),
        "device_join_events": int(kinds.count("device_join")),
    }


def run(
    quick: bool = False,
    out_path: Optional[str] = "BENCH_sim.json",
    seed: int = 0,
    n_tasks: Optional[int] = None,
) -> Dict:
    if n_tasks is None:
        n_tasks = 50_000 if quick else 1_000_000
    throughput = _throughput(n_tasks, seed)
    bit_exact = _bit_exact(seed)
    flash = _flash_crowd(seed)

    gates = {
        "all_requests_accounted": bool(
            throughput["completed"] == throughput["n_requests"]
        ),
        f"events_per_s_ge_{int(EVENTS_PER_S_GATE)}": bool(
            throughput["events_per_s"] >= EVENTS_PER_S_GATE
        ),
        "one_link_bit_exact_folded": bit_exact["folded"],
        "one_link_bit_exact_contended": bit_exact["contended"],
        "flash_crowd_replans_in_trace": bool(flash["replan_events"] >= 2),
        "flash_crowd_churn_traced": bool(
            flash["device_dead_events"] == 2
            and flash["device_join_events"] == 2
        ),
        "flash_crowd_accounted": bool(
            flash["completed"] + flash["shed"] == flash["submitted"]
        ),
    }
    result = {
        "bench": "sim",
        "quick": quick,
        "config": {"n_requests": int(n_tasks), "seed": int(seed)},
        "throughput": throughput,
        "bit_exact": bit_exact,
        "flash_crowd": flash,
        "gates": gates,
        "pass": all(gates.values()),
    }
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"results written to {out_path}")
    print("PASS" if result["pass"] else f"FAIL: {gates}")
    return result


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="scenario simulator throughput and correctness gate"
    )
    parser.add_argument("--quick", action="store_true",
                        help="50k requests instead of a million (CI smoke)")
    parser.add_argument("--out", type=str, default="BENCH_sim.json",
                        help="output JSON path ('' = don't write)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tasks", type=int, default=0,
                        help="override the request count (0 = mode default)")
    args = parser.parse_args(argv)
    result = run(args.quick, args.out or None, args.seed, args.tasks or None)
    return 0 if result["pass"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
