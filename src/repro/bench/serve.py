"""Serving gate: pipelined throughput and the Theorem 2 queue model.

Drives :class:`~repro.serve.PipelineServer` over the virtual-clock
backend with a ≥3-stage VGG16 plan and checks the paper's two serving
claims:

* **Pipelining** — steady-state throughput with frames in flight is at
  least 1.5× the frame-at-a-time baseline (``max_in_flight=1``) and
  within 15% of the analytic bound ``1/period``.
* **Theorem 2** — under Poisson arrivals at utilisation ρ ≤ 0.7 the
  measured mean sojourn time matches the M/D/1 estimate
  ``W_q + latency`` within 20%.

An overloaded run (ρ > 1 with a bounded queue) is also recorded to
show load shedding keeping the system stable.  Results land in
``BENCH_serve.json``; the exit status is non-zero when any gate fails,
so CI can run this as a check::

    make bench-serve
    python -m repro.bench.serve --quick
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.adaptive.queueing import validate_md1
from repro.cluster.device import pi_cluster
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.models.zoo import get_model
from repro.nn.executor import Engine
from repro.runtime.core import SimTransport
from repro.schemes.pico import PicoScheme
from repro.serve import PipelineServer, ServerConfig
from repro.workload.arrivals import poisson_arrivals_count

__all__ = ["run", "main"]

SPEEDUP_GATE = 1.5
PERIOD_GAP_GATE = 0.15
MD1_GATE = 0.20


def _serve(model, plan, network, config, arrivals, seed=0):
    transport = SimTransport(Engine(model, seed=seed), network, compute=False)
    server = PipelineServer.from_plan(model, plan, transport, config=config)
    try:
        return server.serve(len(arrivals), arrivals=arrivals)
    finally:
        server.close()


def run(
    quick: bool = False,
    out_path: Optional[str] = "BENCH_serve.json",
    seed: int = 0,
) -> Dict:
    model = get_model("vgg16", input_hw=64)
    cluster = pi_cluster(8, 600.0)
    network = NetworkModel.from_mbps(50.0)
    plan = PicoScheme().plan(model, cluster, network)
    cost = plan_cost(model, plan, network)
    period, latency = cost.period, cost.latency
    n_stages = plan.n_stages
    print(
        f"vgg16@64 on 8x600MHz: {n_stages} stages, "
        f"period {period:.4f}s, latency {latency:.4f}s "
        f"(latency/period {latency / period:.2f})"
    )

    # -- pipelined vs frame-at-a-time throughput (saturated, closed loop)
    n_sat = 16 if quick else 48
    saturated = [0.0] * n_sat
    block = ServerConfig(queue_capacity=2 * n_stages, policy="block")
    res_pipe = _serve(model, plan, network, block, saturated, seed)
    pipelined = res_pipe.steady_throughput(warmup=n_stages)
    baseline_cfg = ServerConfig(
        queue_capacity=2 * n_stages, policy="block", max_in_flight=1
    )
    res_base = _serve(model, plan, network, baseline_cfg, saturated, seed)
    baseline = res_base.steady_throughput(warmup=1)
    inv_period = 1.0 / period
    speedup = pipelined / baseline if baseline > 0 else float("inf")
    period_gap = abs(pipelined - inv_period) / inv_period
    print(
        f"throughput: pipelined {pipelined:.3f}/s, "
        f"frame-at-a-time {baseline:.3f}/s "
        f"(speedup {speedup:.2f}x, 1/period {inv_period:.3f}/s, "
        f"gap {period_gap:.1%})"
    )

    # -- Theorem 2: measured sojourn vs M/D/1 estimate at rising load
    n_poisson = 120 if quick else 400
    md1_runs: "List[Dict]" = []
    open_cfg = ServerConfig(queue_capacity=16 * n_stages, policy="block")
    for i, rho in enumerate((0.3, 0.5, 0.7)):
        rate = rho / period
        arrivals = poisson_arrivals_count(
            rate, n_poisson, np.random.default_rng(seed + i)
        )
        res = _serve(model, plan, network, open_cfg, arrivals, seed)
        check = validate_md1(res.sojourns, period, latency, rate)
        md1_runs.append({"rho": rho, "rate": rate, **check})
        print(
            f"rho={rho:.1f}: measured {check['measured_mean']:.4f}s, "
            f"Theorem 2 {check['predicted_mean']:.4f}s "
            f"({check['rel_error']:.1%} off, n={int(check['n'])})"
        )

    # -- overload: bounded queue sheds, survivors' latency stays bounded
    rho_over = 1.5
    rate_over = rho_over / period
    n_over = 60 if quick else 200
    arrivals = poisson_arrivals_count(
        rate_over, n_over, np.random.default_rng(seed + 99)
    )
    shed_cfg = ServerConfig(queue_capacity=2 * n_stages, policy="shed")
    res_over = _serve(model, plan, network, shed_cfg, arrivals, seed)
    shed_fraction = len(res_over.shed) / res_over.submitted
    print(
        f"overload rho={rho_over}: {len(res_over.shed)}/{res_over.submitted} "
        f"shed ({shed_fraction:.0%}), survivors p95 sojourn "
        f"{res_over.percentile_sojourn(95):.4f}s"
    )

    gates = {
        "speedup_ge_1.5x": speedup >= SPEEDUP_GATE,
        "within_15pct_of_inv_period": period_gap <= PERIOD_GAP_GATE,
        "md1_within_20pct": all(
            r["rel_error"] <= MD1_GATE for r in md1_runs
        ),
        "overload_sheds": len(res_over.shed) > 0,
    }
    result = {
        "bench": "serve",
        "quick": quick,
        "config": {
            "model": "vgg16", "input_hw": 64,
            "devices": 8, "freq_mhz": 600.0, "mbps": 50.0,
            "scheme": "pico", "n_stages": n_stages,
            "period_s": period, "latency_s": latency,
        },
        "throughput": {
            "pipelined_per_s": pipelined,
            "frame_at_a_time_per_s": baseline,
            "speedup": speedup,
            "inv_period_per_s": inv_period,
            "gap_to_inv_period": period_gap,
            "saturated_frames": n_sat,
        },
        "md1": md1_runs,
        "overload": {
            "rho": rho_over,
            "offered": res_over.submitted,
            "completed": len(res_over.completed),
            "shed": len(res_over.shed),
            "shed_fraction": shed_fraction,
            "p95_sojourn_s": res_over.percentile_sojourn(95),
        },
        "gates": gates,
        "pass": all(gates.values()),
    }
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"results written to {out_path}")
    print("PASS" if result["pass"] else f"FAIL: {gates}")
    return result


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="pipelined serving throughput + Theorem 2 gate"
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    parser.add_argument("--out", type=str, default="BENCH_serve.json",
                        help="output JSON path ('' = don't write)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run(args.quick, args.out or None, args.seed)
    return 0 if result["pass"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
