"""Trace-smoke gate: InProc, Sim and Shm backends must agree exactly.

Runs VGG16 frames through the same compiled :class:`PlanProgram` on
three transports — the threaded in-process backend (wall clock), the
virtual-clock simulated backend, and the shared-memory multiprocess
backend (real worker processes, zero-copy tensor plane) — and checks
the exactness gate the runtime core promises:

* bit-identical outputs (both backends call the same stage kernels on
  the same split/stitch tiles), and
* identical *canonical* traces — the timestamp-free projection
  ``(frame, stage, kind, device, nbytes)`` of every emitted event.

Exit status is non-zero on any mismatch, so CI can run this as a gate::

    make trace-smoke
    python -m repro.bench.trace_smoke --hw 64 --frames 2
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.device import pi_cluster
from repro.cost.comm import NetworkModel
from repro.models.zoo import get_model
from repro.nn.executor import Engine
from repro.runtime.coordinator import ShmTransport
from repro.runtime.core import InProcTransport, PipelineSession, SimTransport
from repro.runtime.program import compile_plan
from repro.runtime.trace import Tracer, canonical_trace, diff_traces
from repro.schemes.pico import PicoScheme

__all__ = ["run", "main"]


def run(
    model_name: str = "vgg16",
    input_hw: int = 64,
    n_frames: int = 2,
    n_devices: int = 4,
    freq_mhz: float = 600.0,
    mbps: float = 50.0,
    seed: int = 0,
) -> int:
    """Run the gate; returns the number of mismatches (0 = pass)."""
    model = get_model(model_name, input_hw=input_hw)
    cluster = pi_cluster(n_devices, freq_mhz)
    network = NetworkModel.from_mbps(mbps)
    plan = PicoScheme().plan(model, cluster, network)
    program = compile_plan(model, plan)
    engine = Engine(model, seed=seed)
    rng = np.random.default_rng(seed)
    frames = [
        rng.standard_normal(model.input_shape).astype(np.float32)
        for _ in range(n_frames)
    ]

    print(
        f"{model.name} @ {input_hw}px on {n_devices}x{freq_mhz:.0f}MHz: "
        f"{program.n_stages} stages, {n_frames} frames"
    )

    tracer_live = Tracer()
    t0 = time.perf_counter()
    with PipelineSession(program, InProcTransport(engine), tracer_live) as s:
        live = s.run_batch(frames)
    wall = time.perf_counter() - t0

    tracer_sim = Tracer()
    sim_transport = SimTransport(engine, network)
    with PipelineSession(program, sim_transport, tracer_sim) as s:
        simulated = s.run_batch(frames)
    virtual = sim_transport.now

    tracer_shm = Tracer()
    t0 = time.perf_counter()
    with PipelineSession(
        program, ShmTransport(model, engine.weights), tracer_shm
    ) as s:
        shared = s.run_batch(frames)
    shm_wall = time.perf_counter() - t0

    failures = 0
    for other_name, outputs, tracer in (
        ("sim", simulated, tracer_sim),
        ("shm", shared, tracer_shm),
    ):
        for i, (a, b) in enumerate(zip(live, outputs)):
            if not np.array_equal(a, b):
                print(
                    f"FAIL: frame {i} outputs differ (inproc vs {other_name})"
                )
                failures += 1
        mismatch = diff_traces(tracer_live.events, tracer.events)
        if mismatch:
            print(
                f"FAIL: canonical traces differ, inproc vs {other_name} "
                f"({len(mismatch)} lines shown)"
            )
            for line in mismatch:
                print(f"  {line}")
            failures += 1

    n_events = len(canonical_trace(tracer_live.events))
    print(
        f"inproc wall {wall * 1000:.1f} ms, sim virtual {virtual * 1000:.1f} ms, "
        f"shm wall {shm_wall * 1000:.1f} ms, "
        f"{n_events} trace events per backend"
    )
    if failures == 0:
        print("PASS: identical outputs and identical canonical traces")
    return failures


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="InProc-vs-Sim trace exactness gate"
    )
    parser.add_argument("--model", type=str, default="vgg16")
    parser.add_argument("--hw", type=int, default=64,
                        help="input resolution (reduced for CI speed)")
    parser.add_argument("--frames", type=int, default=2)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--freq", type=float, default=600.0)
    parser.add_argument("--mbps", type=float, default=50.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    failures = run(
        args.model, args.hw, args.frames, args.devices, args.freq,
        args.mbps, args.seed,
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
