"""Engine fast-path benchmark: reference kernels vs packed-GEMM path.

Runs the paper's evaluation models through both engine configurations —
``Engine(fast=False)`` (the seed's tensordot/einsum kernels with a
separate BN pass) and ``Engine(fast=True)`` (packed-GEMM convs, folded
BN, virtual-pad im2col, arena-backed outputs, in-place epilogues) — and
writes a JSON report with per-unit-kind op times plus feature-extractor
and end-to-end latencies.

Protocol: end-to-end runs are *interleaved* (before, after, before,
after, ...) and summarised by the median, which cancels the slow drift
of shared-host machines; per-op numbers are best-of-``repeats`` on warm
caches.  A note on ceilings: the reference conv already lowers to the
same BLAS sgemm via ``np.tensordot``, so on a single core the fast path
can only remove the non-GEMM overhead (window copies, padding, BN pass,
epilogue copies, allocation churn) — the measured speedup is bounded by
the GEMM's share of the runtime, not by 10×-style kernel rewrites.

Run it via ``make bench-json`` or directly::

    python -m repro.bench.engine --out BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.graph import BlockUnit, LayerUnit, Model
from repro.models.layers import ConvSpec, PoolSpec
from repro.models.zoo import get_model
from repro.nn import parallel
from repro.nn.executor import Engine
from repro.nn.weights import init_weights

__all__ = ["run_suite", "main"]

#: (model name, input_hw) — sized so the suite finishes in seconds while
#: keeping the conv shapes representative.
DEFAULT_MODELS: "Tuple[Tuple[str, int], ...]" = (
    ("vgg16", 64),
    ("resnet34", 64),
    ("inception_v3", 96),
)


def _unit_kind(unit) -> str:
    if isinstance(unit, BlockUnit):
        return "block"
    assert isinstance(unit, LayerUnit)
    if isinstance(unit.layer, ConvSpec):
        return "conv"
    assert isinstance(unit.layer, PoolSpec)
    return f"{unit.layer.kind_}pool"


def _time_units(engine: Engine, x: np.ndarray, repeats: int) -> "Dict[str, float]":
    """Best-of-``repeats`` seconds per unit, summed by unit kind."""
    inputs = []
    out = x
    for unit in engine.model.units:
        inputs.append(out)
        out = engine.run_unit(unit, out)
    by_kind: "Dict[str, float]" = {}
    for unit, inp in zip(engine.model.units, inputs):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            engine.run_unit(unit, inp)
            best = min(best, time.perf_counter() - t0)
        kind = _unit_kind(unit)
        by_kind[kind] = by_kind.get(kind, 0.0) + best
    return by_kind


def _interleaved_medians(
    fns: "Sequence", x: np.ndarray, repeats: int
) -> "List[float]":
    """Median seconds per function, alternating calls each round."""
    samples: "List[List[float]]" = [[] for _ in fns]
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn(x)
            samples[i].append(time.perf_counter() - t0)
    return [float(np.median(s)) for s in samples]


def _bench_model(name: str, hw: int, repeats: int, seed: int) -> "Dict[str, object]":
    model: Model = get_model(name, input_hw=hw)
    weights = init_weights(model, seed)
    x = (
        np.random.default_rng(seed)
        .normal(size=model.input_shape)
        .astype(np.float32)
    )
    before = Engine(model, weights, fast=False)
    after = Engine(model, weights, fast=True)
    after.run(x)  # warm the packed-weight cache outside the clock
    before.run(x)
    ops_before = _time_units(before, x, repeats)
    ops_after = _time_units(after, x, repeats)
    e2e_before, e2e_after = _interleaved_medians(
        [before.run, after.run], x, repeats
    )
    feat_before, feat_after = _interleaved_medians(
        [before.forward_features, after.forward_features], x, repeats
    )
    return {
        "model": name,
        "input_hw": hw,
        "ops_before_s": ops_before,
        "ops_after_s": ops_after,
        "features_before_s": feat_before,
        "features_after_s": feat_after,
        "end_to_end_before_s": e2e_before,
        "end_to_end_after_s": e2e_after,
        "speedup": e2e_before / e2e_after,
        "features_speedup": feat_before / feat_after,
    }


def run_suite(
    models: "Sequence[Tuple[str, int]]" = DEFAULT_MODELS,
    repeats: int = 9,
    seed: int = 0,
) -> "Dict[str, object]":
    """Benchmark every model; returns the JSON-ready report dict."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    results = [_bench_model(name, hw, repeats, seed) for name, hw in models]
    return {
        "benchmark": "engine_fast_path",
        "repeats": repeats,
        "protocol": "end-to-end/features: interleaved median; per-op: best-of",
        "baseline_note": (
            "the reference conv lowers to the same BLAS sgemm via "
            "np.tensordot, so single-core speedup is bounded by the "
            "non-GEMM share of the runtime (Amdahl); multi-core hosts "
            "additionally overlap block paths and tiles via REPRO_THREADS"
        ),
        "meta": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "threads": parallel.configured_threads(),
        },
        "results": results,
    }


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="output JSON path"
    )
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run_suite(repeats=args.repeats, seed=args.seed)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for entry in report["results"]:
        print(
            f"{entry['model']:>14} hw={entry['input_hw']:<4} "
            f"e2e {entry['end_to_end_before_s'] * 1e3:7.1f} -> "
            f"{entry['end_to_end_after_s'] * 1e3:7.1f} ms "
            f"({entry['speedup']:.2f}x)  features "
            f"({entry['features_speedup']:.2f}x)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
