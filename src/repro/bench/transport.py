"""Transport micro-benchmark: tensor frames/s per payload plane.

Measures what the shared-memory slot rings buy over framed TCP for
same-host tensor traffic, with the in-process reference-passing queue
as the ceiling.  One forked echo child per run plays the worker; the
parent streams ``TileTask`` frames at a fixed window and the child
answers — a tiny ack in ``oneway`` mode (isolates the forward payload
plane), the full tensor back in ``echo`` mode (both directions).

``oneway`` models *fresh-frame production*: every transport fills the
payload anew each frame before delivering it, the way a camera stage
or compute kernel produces output.  The shm producer fills a slot view
borrowed via :meth:`~repro.runtime.shm.ShmChannel.loan_slot` — the
tensor is produced directly in shared memory, so the send is a
header-only control frame with **zero** payload copies.  The tcp and
inproc producers fill process-local memory, which the transport must
then move (or, for inproc, hand over by reference).  ``echo`` round
trips an already-materialised array — the honest per-hop cost when the
producer cannot write in place:

* **tcp** — the framed socket codec end to end: no-recopy sends, but
  every byte still crosses the kernel twice per hop.
* **shm** — :class:`~repro.runtime.shm.ShmChannel`: payloads ride
  preallocated shared-memory slots (at most one memcpy, none when
  loaned), header-only control frames on the socket, and a zero-copy
  ``np.ndarray`` view on the far side.
* **inproc** — two threads handing array references over a
  ``queue.Queue``; no serialisation at all (upper bound).

Protocol: transports are *interleaved* inside each repeat (drift hits
every transport equally) and the reported number is the median
frames/s across repeats.  The ``oneway`` window stays below the shm
ring's slot count — a sender blocked on slot acquire cannot drain its
own socket, which is exactly the backpressure the serving layer sheds
on, not something to measure through.

The headline gate: shm must beat tcp by ``--min-ratio`` (default 3×)
frames/s on multi-megabyte oneway frames.  Results land in
``BENCH_transport.json``; non-zero exit when the gate fails::

    make bench-transport
    python -m repro.bench.transport --quick
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import queue
import socket
import statistics
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.messages import Hello, ShmAttach, Shutdown, TileResult, TileTask
from repro.runtime.shm import ShmChannel, ShmRing
from repro.runtime.transport import Channel

__all__ = ["run", "main"]

#: (label, float32 tensor shape) — ~1, ~4 and ~16 MB frames.
SIZES: "Tuple[Tuple[str, Tuple[int, int, int]], ...]" = (
    ("1MB", (16, 128, 128)),
    ("4MB", (64, 128, 128)),
    ("16MB", (64, 256, 256)),
)

#: Outstanding oneway frames; must stay < the shm ring's slot count.
ONEWAY_WINDOW = 3
SLOTS_PER_RING = 4


def _echo_child(host: str, port: int, mode: str) -> None:
    """The worker side: ack or echo every frame until Shutdown."""
    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    channel = Channel(sock)
    rings: "List[ShmRing]" = []
    try:
        channel.send(Hello(0))
        first = channel.recv()
        if isinstance(first, ShmAttach):
            send_ring = ShmRing.attach(first.send_name)
            recv_ring = ShmRing.attach(first.recv_name)
            rings = [send_ring, recv_ring]
            channel = ShmChannel(sock, send_ring, recv_ring)
            first = channel.recv()
        while True:
            if isinstance(first, Shutdown):
                return
            assert isinstance(first, TileTask)
            if mode == "echo":
                channel.send(TileResult(first.task_id, 0, first.tile, 0.0))
            else:
                channel.send(Hello(first.task_id))  # tiny ack
            first = channel.recv()
    finally:
        channel.close()
        for ring in rings:
            ring.close()


def _timed_stream(
    channel: Channel,
    arr: np.ndarray,
    n_frames: int,
    window: int,
    produce: bool,
    loan_shape: "Optional[Tuple[int, ...]]" = None,
) -> float:
    """Stream ``n_frames`` tasks at ``window`` outstanding; seconds.

    With ``produce`` each frame is filled fresh before delivery; when
    ``loan_shape`` is set the fill happens in a loaned shm slot (the
    zero-copy production path), otherwise in process-local memory.
    """
    outstanding = 0
    t0 = time.perf_counter()
    for i in range(n_frames):
        if produce:
            frame = channel.loan_slot(loan_shape) if loan_shape else arr
            frame.fill(float(i & 7))
        else:
            frame = arr
        channel.send(TileTask(i, frame))
        outstanding += 1
        if outstanding >= window:
            channel.recv()
            outstanding -= 1
    while outstanding:
        channel.recv()
        outstanding -= 1
    return time.perf_counter() - t0


def _run_socket_transport(
    transport: str, shape: "Tuple[int, ...]", mode: str, n_frames: int
) -> float:
    """One child round over tcp or shm; returns measured seconds."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    host, port = listener.getsockname()
    listener.listen(1)
    listener.settimeout(30.0)
    child = mp.get_context("fork").Process(
        target=_echo_child, args=(host, port, mode), daemon=True
    )
    child.start()
    conn, _ = listener.accept()
    listener.close()
    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    channel = Channel(conn)
    rings: "List[ShmRing]" = []
    try:
        hello = channel.recv()
        assert isinstance(hello, Hello)
        arr = np.ones(shape, dtype=np.float32)
        if transport == "shm":
            to_child = ShmRing.create(arr.nbytes, SLOTS_PER_RING)
            from_child = ShmRing.create(arr.nbytes, SLOTS_PER_RING)
            rings = [to_child, from_child]
            channel.send(
                ShmAttach(
                    send_name=from_child.name,
                    recv_name=to_child.name,
                    slot_bytes=to_child.slot_bytes,
                    n_slots=to_child.n_slots,
                )
            )
            channel = ShmChannel(conn, send_ring=to_child, recv_ring=from_child)
        window = ONEWAY_WINDOW if mode == "oneway" else 1
        produce = mode == "oneway"
        loan_shape = shape if produce and transport == "shm" else None
        # Warm every ring slot: first-touch page faults on fresh shm
        # segments must not land inside the measured window.
        _timed_stream(
            channel, arr, SLOTS_PER_RING + 2, window, produce, loan_shape
        )
        elapsed = _timed_stream(
            channel, arr, n_frames, window, produce, loan_shape
        )
        channel.send(Shutdown())
        return elapsed
    finally:
        channel.close()
        child.join(timeout=10.0)
        if child.is_alive():
            child.terminate()
        for ring in rings:
            ring.destroy()


def _run_inproc(
    shape: "Tuple[int, ...]", mode: str, n_frames: int
) -> float:
    """Reference-passing ceiling: two threads, queue hand-off."""
    tasks: "queue.Queue" = queue.Queue()
    replies: "queue.Queue" = queue.Queue()

    def child() -> None:
        while True:
            item = tasks.get()
            if item is None:
                return
            replies.put(item if mode == "echo" else item.task_id)

    t = threading.Thread(target=child, daemon=True)
    t.start()
    arr = np.ones(shape, dtype=np.float32)
    window = ONEWAY_WINDOW if mode == "oneway" else 1

    def stream(n: int) -> float:
        outstanding = 0
        t0 = time.perf_counter()
        for i in range(n):
            if mode == "oneway":
                arr.fill(float(i & 7))  # fresh-frame production
            tasks.put(TileTask(i, arr))
            outstanding += 1
            if outstanding >= window:
                replies.get()
                outstanding -= 1
        while outstanding:
            replies.get()
            outstanding -= 1
        return time.perf_counter() - t0

    stream(2)  # warmup
    elapsed = stream(n_frames)
    tasks.put(None)
    t.join(timeout=10.0)
    return elapsed


def run(
    n_frames: int = 40,
    repeats: int = 5,
    min_ratio: float = 3.0,
    sizes: "Optional[Sequence[str]]" = None,
    modes: "Sequence[str]" = ("oneway", "echo"),
) -> dict:
    """Run the interleaved sweep; returns the result document."""
    chosen = [
        (label, shape)
        for label, shape in SIZES
        if sizes is None or label in sizes
    ]
    transports = ("tcp", "shm", "inproc")
    samples: "Dict[Tuple[str, str, str], List[float]]" = {}
    for _rep in range(repeats):
        for label, shape in chosen:
            for mode in modes:
                for transport in transports:  # interleaved within repeat
                    if transport == "inproc":
                        elapsed = _run_inproc(shape, mode, n_frames)
                    else:
                        elapsed = _run_socket_transport(
                            transport, shape, mode, n_frames
                        )
                    samples.setdefault((transport, label, mode), []).append(
                        n_frames / elapsed
                    )

    results = []
    for (transport, label, mode), fps_samples in sorted(samples.items()):
        shape = dict(chosen)[label]
        nbytes = int(np.prod(shape)) * 4
        fps = statistics.median(fps_samples)
        results.append(
            {
                "transport": transport,
                "size": label,
                "frame_bytes": nbytes,
                "mode": mode,
                "frames_per_s": round(fps, 2),
                "mb_per_s": round(fps * nbytes / 1e6, 1),
                "samples": [round(s, 2) for s in fps_samples],
            }
        )

    def fps_of(transport: str, label: str, mode: str) -> float:
        for row in results:
            if (row["transport"], row["size"], row["mode"]) == (
                transport, label, mode,
            ):
                return row["frames_per_s"]
        return 0.0

    # Gate on the multi-megabyte oneway sizes (every chosen size >= 4MB).
    gated = [label for label, shape in chosen if int(np.prod(shape)) * 4 >= 4e6]
    ratios = {
        label: round(fps_of("shm", label, "oneway")
                     / max(fps_of("tcp", label, "oneway"), 1e-9), 2)
        for label in gated
        if "oneway" in modes
    }
    passed = all(r >= min_ratio for r in ratios.values()) and bool(ratios)
    return {
        "bench": "transport",
        "config": {
            "n_frames": n_frames,
            "repeats": repeats,
            "oneway_window": ONEWAY_WINDOW,
            "slots_per_ring": SLOTS_PER_RING,
            "sizes": {label: list(shape) for label, shape in chosen},
            "modes": list(modes),
        },
        "protocol": (
            "transports interleaved within each repeat; median frames/s "
            "across repeats; oneway = fresh-frame production at window-3 "
            "with tiny acks (each frame is filled before delivery — shm "
            "fills a loaned slot view in shared memory, tcp/inproc fill "
            "process-local memory the transport must then move); "
            "echo = window-1 round trips of an already-materialised array"
        ),
        "results": results,
        "gate": {
            "metric": "shm/tcp oneway frames_per_s",
            "min_ratio": min_ratio,
            "ratios": ratios,
            "pass": passed,
        },
    }


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-transport tensor streaming benchmark"
    )
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON document here")
    parser.add_argument("--frames", type=int, default=40)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="shm-over-tcp gate (default 3.0, quick 1.3)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer frames/repeats/sizes and a "
                        "relaxed gate (shared-runner timing)")
    args = parser.parse_args(argv)

    if args.quick:
        doc = run(
            n_frames=min(args.frames, 10),
            repeats=min(args.repeats, 2),
            min_ratio=args.min_ratio if args.min_ratio is not None else 1.3,
            sizes=("4MB",),
            modes=("oneway",),
        )
    else:
        doc = run(
            n_frames=args.frames,
            repeats=args.repeats,
            min_ratio=args.min_ratio if args.min_ratio is not None else 3.0,
        )

    for row in doc["results"]:
        print(
            f"{row['transport']:>7} {row['size']:>5} {row['mode']:>7}: "
            f"{row['frames_per_s']:>8.2f} frames/s "
            f"({row['mb_per_s']:>9.1f} MB/s)"
        )
    gate = doc["gate"]
    print(
        f"gate: shm/tcp oneway ratios {gate['ratios']} "
        f"(min {gate['min_ratio']}) -> {'PASS' if gate['pass'] else 'FAIL'}"
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write(os.linesep)
        print(f"written to {args.out}")
    return 0 if gate["pass"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
