"""Optimality-gap harness: greedy (Algorithm 1+2) vs exact planner.

For every (model, cluster mix) cell the harness runs the PICO pipeline
planner (the DP over the homogenised cluster, greedily adapted) and the
branch-and-bound exact heterogeneous search
(:func:`repro.core.exact.plan_exact`), and reports the greedy
optimality gap ``greedy_period / exact_period − 1``.

Two analytic gates are asserted on every run (they are the
``tests/test_exact_planner.py`` regressions, re-checked on the
committed numbers):

* on **homogeneous** mixes the exact period equals the Algorithm 1 DP
  period — the canonical realization makes the two search spaces
  coincide, so any difference is a planner bug;
* on every mix the exact period is ``<=`` the greedy period — the
  greedy plan seeds the search as its incumbent.

All quantities are analytic cost-model evaluations (no wall-clock
noise), so the committed ``BENCH_exact.json`` is reproducible
bit-for-bit; ``--check`` re-runs the committed cases and fails if any
period or gap drifts.  Run via ``make bench-exact`` or directly::

    python -m repro.bench.exact --out BENCH_exact.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.device import heterogeneous_cluster
from repro.core.dp_planner import plan_homogeneous
from repro.core.exact import plan_exact, realize_exact
from repro.core.plan import plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import DEFAULT_OPTIONS
from repro.models.graph import Model
from repro.models.toy import toy_chain
from repro.models.zoo import get_model
from repro.schemes.pico import PicoScheme

__all__ = ["run_suite", "main"]

#: Cluster mixes (MHz).  Heterogeneous mixes use pairwise-distinct
#: capacities so Algorithm 2's strongest-first stage realization is the
#: canonical one and "exact <= greedy" is an identity on plans, not an
#: approximation.
DEFAULT_MIXES: "Tuple[Tuple[str, Tuple[float, ...]], ...]" = (
    ("hom4", (1000.0, 1000.0, 1000.0, 1000.0)),
    ("het3", (1500.0, 900.0, 600.0)),
    ("het4", (1200.0, 1000.0, 800.0, 600.0)),
    ("het5", (1500.0, 1200.0, 900.0, 700.0, 500.0)),
)

#: The CI smoke subset: a tiny model on 2–3 devices.
QUICK_MIXES: "Tuple[Tuple[str, Tuple[float, ...]], ...]" = (
    ("hom2", (1000.0, 1000.0)),
    ("het3", (1500.0, 900.0, 600.0)),
)


def _zoo(quick: bool) -> "Tuple[Tuple[str, Model], ...]":
    toy = toy_chain(4, 1, input_hw=24, in_channels=3, base_channels=8)
    if quick:
        return (("toy", toy),)
    return (
        ("toy", toy),
        ("vggish", toy_chain(6, 2, input_hw=32, in_channels=3, base_channels=8)),
        ("vgg16@64", get_model("vgg16", input_hw=64)),
        ("resnet34@64", get_model("resnet34", input_hw=64)),
    )


def _bench_cell(
    model_name: str,
    model: Model,
    mix_name: str,
    freqs: "Tuple[float, ...]",
    network: NetworkModel,
) -> "Dict[str, object]":
    options = DEFAULT_OPTIONS
    cluster = heterogeneous_cluster(freqs)
    homogeneous = len(set(freqs)) == 1

    greedy = plan_cost(
        model, PicoScheme().plan(model, cluster, network, options), network
    )
    t0 = time.perf_counter()
    exact = plan_exact(model, cluster, network, options)
    search_s = time.perf_counter() - t0
    realized = plan_cost(model, realize_exact(model, exact), network)

    # Gates (mirrored by tests/test_exact_planner.py).
    assert realized.period == exact.period, (
        f"{model_name}/{mix_name}: realized plan diverged from search"
    )
    assert exact.period <= exact.incumbent_period, (
        f"{model_name}/{mix_name}: exact worse than its own incumbent"
    )
    if homogeneous:
        homo = plan_homogeneous(model, cluster, network, options)
        assert homo is not None and exact.period == homo.period, (
            f"{model_name}/{mix_name}: exact != DP on a homogeneous cluster"
        )

    gap = exact.gap
    return {
        "case": f"{model_name}/{mix_name}",
        "model": model_name,
        "mix": mix_name,
        "freqs_mhz": list(freqs),
        "homogeneous": homogeneous,
        "n_units": model.n_units,
        "n_devices": len(cluster),
        "greedy_period_s": greedy.period,
        "exact_period_s": exact.period,
        "exact_latency_s": exact.latency,
        "gap_pct": gap * 100.0,
        "improved": exact.improved,
        "n_stages_greedy": len(greedy.stage_costs),
        "n_stages_exact": exact.n_stages,
        "nodes": exact.nodes,
        "pruned": exact.pruned,
        "search_s": search_s,
    }


def run_suite(quick: bool = False) -> "Dict[str, object]":
    """Run every (model, mix) cell; returns the JSON-ready report."""
    network = NetworkModel.from_mbps(50.0)
    mixes = QUICK_MIXES if quick else DEFAULT_MIXES
    results = [
        _bench_cell(model_name, model, mix_name, freqs, network)
        for model_name, model in _zoo(quick)
        for mix_name, freqs in mixes
    ]
    return {
        "benchmark": "exact_planner_gap",
        "quick": quick,
        "network_mbps": 50.0,
        "baseline_note": (
            "greedy = Algorithm 1 DP on the homogenised cluster + "
            "Algorithm 2 strongest-first adaptation; exact = "
            "branch-and-bound over heterogeneous stage/device-subset "
            "space with the greedy plan as incumbent; gap_pct = "
            "greedy/exact - 1 (analytic periods, deterministic)"
        ),
        "meta": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "results": results,
    }


def check_report(path: str, quick: bool = False) -> "List[str]":
    """Re-run the committed report's cells and list any drifts."""
    with open(path) as fh:
        committed = json.load(fh)
    fresh = {r["case"]: r for r in run_suite(quick=quick)["results"]}
    errors = []
    for entry in committed["results"]:
        case = entry["case"]
        now = fresh.get(case)
        if now is None:
            if not quick:
                errors.append(f"{case}: missing from fresh run")
            continue
        for key in ("greedy_period_s", "exact_period_s", "gap_pct"):
            if not math.isclose(entry[key], now[key], rel_tol=1e-9, abs_tol=1e-12):
                errors.append(
                    f"{case}: {key} committed {entry[key]!r} != fresh {now[key]!r}"
                )
        if entry["homogeneous"] and entry["gap_pct"] != 0.0:
            errors.append(f"{case}: committed homogeneous gap is nonzero")
    return errors


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_exact.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny model on 2-3 devices (CI smoke run)",
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="re-run the cells of a committed report and fail on drift "
        "(with --quick only the quick subset of cases is compared)",
    )
    args = parser.parse_args(argv)
    if args.check:
        errors = check_report(args.check, quick=args.quick)
        if errors:
            for err in errors:
                print(f"DRIFT: {err}", file=sys.stderr)
            return 1
        print(f"{args.check}: committed gaps reproduce")
        return 0
    report = run_suite(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for entry in report["results"]:
        print(
            f"{entry['case']:>18} greedy {entry['greedy_period_s'] * 1e3:8.3f} ms  "
            f"exact {entry['exact_period_s'] * 1e3:8.3f} ms  "
            f"gap {entry['gap_pct']:6.2f}%  "
            f"nodes {entry['nodes']:6d}  {entry['search_s'] * 1e3:7.1f} ms"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
