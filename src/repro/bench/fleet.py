"""Fleet gate: shared-pool scheduling vs static equal partitioning.

Co-schedules two tenants — a heavy VGG16 stream and a light ResNet34
stream, both offered at utilisation ρ ≈ 0.8 of their granted pipelines
— on one shared 8-device heterogeneous pool through the
:class:`~repro.fleet.FleetScheduler`, and serves the same workload on
the static baseline the fleet layer replaces: the cluster split into
two equal halves (identical frequency mix), one isolated
:class:`~repro.serve.PipelineServer` per tenant.

The scheduler's SLO-aware footprint search gives the heavy tenant the
six fastest devices and parks the light tenant on the two slowest,
where its SLO still holds; the halved partition under-provisions the
heavy tenant (ρ > 1 on four devices), so the fleet wins on aggregate
goodput — in-SLO completions per second — while every tenant keeps its
own SLO attainment.  Results land in ``BENCH_fleet.json``; the exit
status is non-zero when any gate fails::

    make bench-fleet
    python -m repro.bench.fleet --quick
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

import numpy as np

from repro.cluster.device import heterogeneous_cluster
from repro.cost.comm import NetworkModel
from repro.fleet import FleetScheduler, FleetServer, ModelRegistry, TenantClass
from repro.models.zoo import get_model
from repro.nn.executor import Engine
from repro.runtime.core import SimTransport
from repro.schemes.pico import PicoScheme
from repro.serve import PipelineServer
from repro.workload.arrivals import poisson_arrivals_count

__all__ = ["run", "main"]

FREQS_MHZ = (1200.0, 1200.0, 1000.0, 1000.0, 800.0, 800.0, 600.0, 600.0)
ATTAINMENT_GATE = 0.8


def _serve_partition(model, cluster, network, tenant, arrivals):
    """One tenant alone on its static half of the cluster."""
    plan = PicoScheme().plan(model, cluster, network)
    transport = SimTransport(Engine(model, seed=0), network, compute=False)
    server = PipelineServer.from_plan(
        model, plan, transport, config=tenant.server_config()
    )
    try:
        return server.serve(len(arrivals), arrivals=list(arrivals))
    finally:
        server.close()


def run(
    quick: bool = False,
    out_path: Optional[str] = "BENCH_fleet.json",
    seed: int = 0,
) -> Dict:
    network = NetworkModel.from_mbps(50.0)
    cluster = heterogeneous_cluster(list(FREQS_MHZ))
    names = [d.name for d in cluster.devices]
    heavy_model = get_model("vgg16", input_hw=64)
    light_model = get_model("resnet34", input_hw=64)

    # rate 5.0/s puts the heavy tenant at rho ~ 0.79 on the six fastest
    # devices (period ~ 0.158s) but rho ~ 1.26 on an equal half; the
    # light tenant fits the two slowest devices at rho ~ 0.69.
    heavy = TenantClass(
        "heavy", "vgg16", rate=5.0, slo=1.5, priority=1, queue_capacity=8
    )
    light = TenantClass(
        "light", "resnet34", rate=5.0, slo=0.6, priority=0, queue_capacity=8
    )
    n_frames = 60 if quick else 150
    rng = np.random.default_rng(seed)
    arrivals = {
        t.name: poisson_arrivals_count(t.rate, n_frames, rng)
        for t in (heavy, light)
    }

    # -- fleet: shared pool, contention-aware placement ----------------
    registry = ModelRegistry()
    registry.register("vgg16", heavy_model)
    registry.register("resnet34", light_model)
    scheduler = FleetScheduler(registry, cluster, network)
    parent = SimTransport(
        registry.get("vgg16").engine, network, compute=False
    )
    with FleetServer(registry, scheduler, parent) as fleet:
        placements = fleet.admit([heavy, light])
        for tenant in (heavy, light):
            pl = placements[tenant.name]
            rho = tenant.rate * pl.period
            print(
                f"{tenant.name}: {len(pl.devices)} device(s) "
                f"{','.join(pl.devices)} — period {pl.period:.4f}s "
                f"(rho {rho:.2f}), Theorem-2 estimate {pl.estimate:.3f}s "
                f"vs SLO {tenant.slo:g}s "
                f"({'meets' if pl.meets_slo else 'MISSES'})"
            )
        fleet_result = fleet.serve(
            {name: (n_frames, arr) for name, arr in arrivals.items()}
        )
    fleet_attainment = fleet_result.attainment()
    print(
        f"fleet: {fleet_result.in_slo}/{fleet_result.completed} in SLO "
        f"over {fleet_result.makespan:.2f}s — aggregate goodput "
        f"{fleet_result.aggregate_goodput:.2f}/s, attainment "
        f"{fleet_attainment}"
    )

    # -- baseline: static equal partition (same frequency mix each) ----
    half_heavy = cluster.subset([names[i] for i in (0, 2, 4, 6)])
    half_light = cluster.subset([names[i] for i in (1, 3, 5, 7)])
    base = {
        "heavy": _serve_partition(
            heavy_model, half_heavy, network, heavy, arrivals["heavy"]
        ),
        "light": _serve_partition(
            light_model, half_light, network, light, arrivals["light"]
        ),
    }
    base_in_slo = {
        name: sum(
            1 for r in res.completed
            if r.sojourn <= (heavy if name == "heavy" else light).slo
        )
        for name, res in base.items()
    }
    base_makespan = max(res.makespan for res in base.values())
    base_goodput = (
        sum(base_in_slo.values()) / base_makespan if base_makespan > 0 else 0.0
    )
    base_attainment = {
        name: base_in_slo[name] / res.submitted if res.submitted else 1.0
        for name, res in base.items()
    }
    print(
        f"partition: {sum(base_in_slo.values())} in SLO over "
        f"{base_makespan:.2f}s — aggregate goodput {base_goodput:.2f}/s, "
        f"attainment {base_attainment}"
    )

    gates = {
        "placements_meet_slo": all(
            bool(pl.meets_slo) for pl in placements.values()
        ),
        "fleet_goodput_ge_partition": bool(
            fleet_result.aggregate_goodput >= base_goodput
        ),
        "per_tenant_attainment_ge_0.8": all(
            float(a) >= ATTAINMENT_GATE for a in fleet_attainment.values()
        ),
    }
    result = {
        "bench": "fleet",
        "quick": quick,
        "config": {
            "freqs_mhz": list(FREQS_MHZ), "mbps": 50.0,
            "frames_per_tenant": n_frames,
            "tenants": {
                t.name: {
                    "model": t.model, "rate": t.rate, "slo": t.slo,
                    "priority": t.priority,
                }
                for t in (heavy, light)
            },
        },
        "fleet": {
            "placements": {
                t.name: {
                    "devices": list(placements[t.name].devices),
                    "period_s": float(placements[t.name].period),
                    "estimate_s": float(placements[t.name].estimate),
                    "rho": float(t.rate * placements[t.name].period),
                    "meets_slo": bool(placements[t.name].meets_slo),
                }
                for t in (heavy, light)
            },
            "aggregate_goodput_per_s": float(fleet_result.aggregate_goodput),
            "in_slo": int(fleet_result.in_slo),
            "completed": int(fleet_result.completed),
            "makespan_s": float(fleet_result.makespan),
            "attainment": {
                k: float(v) for k, v in fleet_attainment.items()
            },
        },
        "partition": {
            "aggregate_goodput_per_s": float(base_goodput),
            "in_slo": int(sum(base_in_slo.values())),
            "completed": int(sum(len(r.completed) for r in base.values())),
            "shed": int(sum(len(r.shed) for r in base.values())),
            "makespan_s": float(base_makespan),
            "attainment": {
                k: float(v) for k, v in base_attainment.items()
            },
        },
        "gates": gates,
        "pass": all(gates.values()),
    }
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"results written to {out_path}")
    print("PASS" if result["pass"] else f"FAIL: {gates}")
    return result


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="fleet scheduling vs static partition gate"
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    parser.add_argument("--out", type=str, default="BENCH_fleet.json",
                        help="output JSON path ('' = don't write)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run(args.quick, args.out or None, args.seed)
    return 0 if result["pass"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
