"""Fault-smoke gate: crash-one-device recovery must be bit-exact.

Runs a toy pipeline twice on each fault-aware backend (in-process
threads and the virtual-clock simulator): once fault-free, once with a
:class:`~repro.runtime.faults.FaultSchedule` that kills one stage-0
device mid-run.  The gate checks the recovery guarantee of the default
``"migrate"`` repartition policy:

* every frame completes and its output is **bit-identical** to the
  fault-free run (migrated tasks keep their compiled tile geometry, so
  GEMM reduction order — and therefore every float — is unchanged);
* the trace contains the expected recovery events, in order:
  ``device_dead`` for the victim, then ``frame_replayed`` for the
  replayed stage.

Exit status is non-zero on any violation, so CI runs this as a gate::

    make fault-smoke
    python -m repro.bench.fault_smoke --frames 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.device import pi_cluster
from repro.cost.comm import NetworkModel
from repro.models.toy import toy_chain
from repro.nn.executor import Engine
from repro.nn.weights import init_weights
from repro.runtime.core import InProcTransport, PipelineSession, SimTransport
from repro.runtime.faults import FaultSchedule, RuntimeConfig
from repro.runtime.program import compile_plan
from repro.runtime.trace import Tracer
from repro.schemes.pico import PicoScheme

__all__ = ["run", "main"]


def run(
    n_frames: int = 4,
    crash_frame: int = 1,
    n_devices: int = 4,
    freq_mhz: float = 800.0,
    mbps: float = 50.0,
    seed: int = 0,
) -> int:
    """Run the gate; returns the number of failures (0 = pass)."""
    model = toy_chain(6, 1, input_hw=40, in_channels=3, base_channels=8)
    cluster = pi_cluster(n_devices, freq_mhz)
    network = NetworkModel.from_mbps(mbps)
    plan = PicoScheme().plan(model, cluster, network)
    program = compile_plan(model, plan)
    weights = init_weights(model, seed)
    rng = np.random.default_rng(seed)
    frames = [
        rng.standard_normal(model.input_shape).astype(np.float32)
        for _ in range(n_frames)
    ]

    victim = program.stages[0].tasks[0].device_name
    faults = FaultSchedule().crash(victim, at_frame=crash_frame)
    config = RuntimeConfig()
    print(
        f"{model.name} on {n_devices}x{freq_mhz:.0f}MHz, "
        f"{program.n_stages} stages, {n_frames} frames; "
        f"crashing {victim!r} at frame {crash_frame}"
    )

    with PipelineSession(
        program, InProcTransport(Engine(model, weights))
    ) as session:
        baseline = session.run_batch(frames)

    failures = 0
    backends = (
        ("inproc", lambda: InProcTransport(Engine(model, weights), faults=faults)),
        ("sim", lambda: SimTransport(Engine(model, weights), network, faults=faults)),
    )
    for name, make_transport in backends:
        tracer = Tracer()
        with PipelineSession(
            program, make_transport(), tracer, config
        ) as session:
            outputs = session.run_batch(frames)
        if len(outputs) != n_frames:
            print(f"FAIL [{name}]: {len(outputs)}/{n_frames} frames completed")
            failures += 1
        for i, (a, b) in enumerate(zip(baseline, outputs)):
            if not np.array_equal(a, b):
                print(
                    f"FAIL [{name}]: frame {i} differs from the fault-free "
                    f"run (max |diff| {float(np.abs(a - b).max()):.3g})"
                )
                failures += 1
        recovery = [
            e.kind
            for e in tracer.events
            if e.kind in ("device_dead", "frame_replayed", "replan", "degraded")
        ]
        if "device_dead" not in recovery or "frame_replayed" not in recovery:
            print(f"FAIL [{name}]: missing recovery events (got {recovery})")
            failures += 1
        elif recovery.index("device_dead") > recovery.index("frame_replayed"):
            print(f"FAIL [{name}]: recovery events out of order ({recovery})")
            failures += 1
        else:
            print(f"[{name}] recovered: {recovery}, outputs bit-identical")

    if failures == 0:
        print("PASS: crash-one-device recovery is bit-exact on both backends")
    return failures


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="crash-one-device recovery exactness gate"
    )
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--crash-frame", type=int, default=1)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--freq", type=float, default=800.0)
    parser.add_argument("--mbps", type=float, default=50.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    failures = run(
        args.frames, args.crash_frame, args.devices, args.freq,
        args.mbps, args.seed,
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
