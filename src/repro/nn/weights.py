"""Weight initialisation and containers.

Weights are plain dicts ``{layer_name: {param_name: ndarray}}`` so they
pickle cheaply for shipment to runtime workers.  He-normal init keeps
activations in a numerically friendly range through deep stacks, which
matters for the bit-exactness assertions in the tile tests.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.models.graph import Model
from repro.models.layers import ConvSpec, DenseSpec, PoolSpec

__all__ = ["Weights", "init_weights", "conv_params", "dense_params"]

Weights = Dict[str, Dict[str, np.ndarray]]


def conv_params(layer: ConvSpec, rng: np.random.Generator) -> "Dict[str, np.ndarray]":
    """He-normal conv weights plus optional bias / BN statistics."""
    kh, kw = layer.kernel_size
    in_per_group = layer.in_channels // layer.groups
    fan_in = in_per_group * kh * kw
    std = float(np.sqrt(2.0 / fan_in))
    params = {
        "weight": rng.normal(
            0.0, std, size=(layer.out_channels, in_per_group, kh, kw)
        ).astype(np.float32)
    }
    if layer.bias:
        params["bias"] = rng.normal(0.0, 0.05, size=layer.out_channels).astype(
            np.float32
        )
    if layer.batch_norm:
        params["gamma"] = rng.uniform(0.8, 1.2, size=layer.out_channels).astype(
            np.float32
        )
        params["beta"] = rng.normal(0.0, 0.05, size=layer.out_channels).astype(
            np.float32
        )
        params["mean"] = rng.normal(0.0, 0.05, size=layer.out_channels).astype(
            np.float32
        )
        params["var"] = rng.uniform(0.8, 1.2, size=layer.out_channels).astype(
            np.float32
        )
    return params


def dense_params(layer: DenseSpec, rng: np.random.Generator) -> "Dict[str, np.ndarray]":
    std = float(np.sqrt(2.0 / layer.in_features))
    return {
        "weight": rng.normal(
            0.0, std, size=(layer.out_features, layer.in_features)
        ).astype(np.float32),
        "bias": rng.normal(0.0, 0.05, size=layer.out_features).astype(np.float32),
    }


def init_weights(model: Model, seed: int = 0) -> Weights:
    """Seeded random weights for every conv and dense layer of a model."""
    rng = np.random.default_rng(seed)
    weights: Weights = {}
    for info in model.iter_layers():
        layer = info.layer
        if isinstance(layer, ConvSpec):
            if layer.name in weights:
                raise ValueError(f"duplicate layer name {layer.name!r}")
            weights[layer.name] = conv_params(layer, rng)
        elif isinstance(layer, PoolSpec):
            continue  # pooling has no parameters
    for dense in model.head:
        if dense.name in weights:
            raise ValueError(f"duplicate layer name {dense.name!r}")
        weights[dense.name] = dense_params(dense, rng)
    return weights
