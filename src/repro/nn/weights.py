"""Weight initialisation and containers.

Weights are plain dicts ``{layer_name: {param_name: ndarray}}`` so they
pickle cheaply for shipment to runtime workers.  He-normal init keeps
activations in a numerically friendly range through deep stacks, which
matters for the bit-exactness assertions in the tile tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.models.graph import Model
from repro.models.layers import ConvSpec, DenseSpec, PoolSpec

__all__ = [
    "Weights",
    "init_weights",
    "conv_params",
    "dense_params",
    "fold_batch_norm",
]

Weights = Dict[str, Dict[str, np.ndarray]]


def fold_batch_norm(
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
) -> "Tuple[np.ndarray, np.ndarray]":
    """Fold inference-mode BN into the preceding conv's weight and bias.

    ``BN(conv(x, W) + b) == conv(x, W·s) + (b − mean)·s + beta`` with
    ``s = gamma / sqrt(var + eps)``.  The fold is computed in float64 and
    cast back to float32 once, so the folded kernel agrees with the
    unfused conv→BN pipeline to normal float32 rounding (a few ULPs per
    layer — the engine's BN-folding tolerance test pins this down).
    """
    scale = gamma.astype(np.float64) / np.sqrt(var.astype(np.float64) + eps)
    folded_w = weight.astype(np.float64) * scale[:, None, None, None]
    b0 = bias.astype(np.float64) if bias is not None else 0.0
    folded_b = (b0 - mean.astype(np.float64)) * scale + beta.astype(np.float64)
    return folded_w.astype(np.float32), folded_b.astype(np.float32)


def conv_params(layer: ConvSpec, rng: np.random.Generator) -> "Dict[str, np.ndarray]":
    """He-normal conv weights plus optional bias / BN statistics."""
    kh, kw = layer.kernel_size
    in_per_group = layer.in_channels // layer.groups
    fan_in = in_per_group * kh * kw
    std = float(np.sqrt(2.0 / fan_in))
    params = {
        "weight": rng.normal(
            0.0, std, size=(layer.out_channels, in_per_group, kh, kw)
        ).astype(np.float32)
    }
    if layer.bias:
        params["bias"] = rng.normal(0.0, 0.05, size=layer.out_channels).astype(
            np.float32
        )
    if layer.batch_norm:
        params["gamma"] = rng.uniform(0.8, 1.2, size=layer.out_channels).astype(
            np.float32
        )
        params["beta"] = rng.normal(0.0, 0.05, size=layer.out_channels).astype(
            np.float32
        )
        params["mean"] = rng.normal(0.0, 0.05, size=layer.out_channels).astype(
            np.float32
        )
        params["var"] = rng.uniform(0.8, 1.2, size=layer.out_channels).astype(
            np.float32
        )
    return params


def dense_params(layer: DenseSpec, rng: np.random.Generator) -> "Dict[str, np.ndarray]":
    std = float(np.sqrt(2.0 / layer.in_features))
    return {
        "weight": rng.normal(
            0.0, std, size=(layer.out_features, layer.in_features)
        ).astype(np.float32),
        "bias": rng.normal(0.0, 0.05, size=layer.out_features).astype(np.float32),
    }


def init_weights(model: Model, seed: int = 0) -> Weights:
    """Seeded random weights for every conv and dense layer of a model."""
    rng = np.random.default_rng(seed)
    weights: Weights = {}
    for info in model.iter_layers():
        layer = info.layer
        if isinstance(layer, ConvSpec):
            if layer.name in weights:
                raise ValueError(f"duplicate layer name {layer.name!r}")
            weights[layer.name] = conv_params(layer, rng)
        elif isinstance(layer, PoolSpec):
            continue  # pooling has no parameters
    for dense in model.head:
        if dense.name in weights:
            raise ValueError(f"duplicate layer name {dense.name!r}")
        weights[dense.name] = dense_params(dense, rng)
    return weights
