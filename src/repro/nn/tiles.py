"""Region-restricted (tiled) segment execution.

A :class:`SegmentProgram` compiles "produce output region R of units
[start, end)" into per-layer steps whose virtual padding and crop
offsets are fixed ahead of time — the runtime equivalent of the paper's
C++ split/stitch that "directly operates the frame tensor data in
memory".  Executing a program on the extracted input tile produces
*bit-exact* the same values as slicing R out of a full-map inference;
the property-based tests assert this across random architectures.

Steady-state pipeline frames re-execute the *same* programs every task:
:func:`compile_segment_cached` / :func:`compile_block_paths_cached`
memoise compilation by ``(model, segment, region)`` so the region
algebra runs once per configuration instead of once per frame or
worker setup.  Specs and regions are immutable/hashable, so the cache
key is the structural identity of the request.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.models.graph import BlockUnit, LayerUnit, Model
from repro.models.layers import SpatialLayer
from repro.nn import parallel
from repro.nn.executor import Engine
from repro.partition.fused import chain_backprop
from repro.partition.regions import PaddedRegion, Region, receptive_region

__all__ = [
    "LayerStep",
    "PathProgram",
    "UnitProgram",
    "SegmentProgram",
    "compile_segment",
    "compile_segment_cached",
    "compile_block_paths",
    "compile_block_paths_cached",
    "compile_channel_slice",
    "compile_channel_slice_cached",
    "program_cache_info",
    "clear_program_cache",
    "extract_tile",
    "run_segment",
]

_Pad4 = Tuple[int, int, int, int]


def _pads_of(padded: PaddedRegion) -> _Pad4:
    return (
        padded.rows.pad_lo,
        padded.rows.pad_hi,
        padded.cols.pad_lo,
        padded.cols.pad_hi,
    )


@dataclass(frozen=True)
class LayerStep:
    """Execute one layer on the current tile with fixed virtual pads.

    ``channels`` restricts the step to the output-channel slice
    ``[lo, hi)`` (channel-parallel / IOP stages); ``None`` produces
    every output channel.
    """

    layer: SpatialLayer
    pads: _Pad4
    out_region: Region
    channels: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class PathProgram:
    """One block path: crop offsets into the block's union input tile
    (``(row_off, row_len, col_off, col_len)``), then layer steps.
    An empty ``steps`` tuple is the identity shortcut."""

    crop: Tuple[int, int, int, int]
    steps: Tuple[LayerStep, ...]


@dataclass(frozen=True)
class UnitProgram:
    """Program for one plan unit.

    Chain units have a single step in ``steps`` and no paths; block
    units carry one :class:`PathProgram` per path plus merge info.
    """

    unit_name: str
    input_region: Region
    out_region: Region
    steps: Tuple[LayerStep, ...] = ()
    paths: Tuple[PathProgram, ...] = ()
    merge: Optional[str] = None
    post_activation: str = "linear"


@dataclass(frozen=True)
class SegmentProgram:
    """Compiled tile program for units ``[start, end)`` of a model."""

    model_name: str
    start: int
    end: int
    input_region: Region
    out_region: Region
    units: Tuple[UnitProgram, ...]


def _crop_box(inner: Region, outer: Region) -> Tuple[int, int, int, int]:
    if not outer.contains(inner):
        raise AssertionError(f"path region {inner} escapes union {outer}")
    return (
        inner.rows.start - outer.rows.start,
        inner.height,
        inner.cols.start - outer.cols.start,
        inner.width,
    )


def compile_segment(
    model: Model, start: int, end: int, out_region: Region
) -> SegmentProgram:
    """Compile the tile program producing ``out_region`` of unit
    ``end - 1``'s output from a tile of unit ``start``'s input."""
    if not 0 <= start < end <= model.n_units:
        raise ValueError(f"bad segment [{start}, {end}) for {model.n_units} units")
    if out_region.empty:
        raise ValueError("cannot compile a program for an empty output region")
    unit_programs: "List[UnitProgram]" = []
    region = out_region
    for idx in range(end - 1, start - 1, -1):
        unit = model.units[idx]
        _, h, w = model.in_shape(idx)
        if isinstance(unit, LayerUnit):
            padded = receptive_region(
                region,
                unit.layer.kernel_size,
                unit.layer.stride,
                unit.layer.padding,
                (h, w),
            )
            unit_programs.append(
                UnitProgram(
                    unit.name,
                    padded.region,
                    region,
                    steps=(LayerStep(unit.layer, _pads_of(padded), region),),
                )
            )
            region = padded.region
        else:
            assert isinstance(unit, BlockUnit)
            path_inputs: "List[Optional[PaddedRegion]]" = []
            path_tiles = []
            union: Optional[Region] = None
            for path in unit.paths:
                if path:
                    tiles = chain_backprop(path, (h, w), region)
                    need = tiles.input.region
                    path_inputs.append(tiles.input)
                    path_tiles.append(tiles)
                else:
                    need = region
                    path_inputs.append(None)
                    path_tiles.append(None)
                union = need if union is None else union.union_hull(need)
            assert union is not None
            path_programs = []
            for path_in, tiles in zip(path_inputs, path_tiles):
                if tiles is None:  # identity shortcut
                    path_programs.append(
                        PathProgram(crop=_crop_box(region, union), steps=())
                    )
                    continue
                steps = tuple(
                    LayerStep(t.layer, _pads_of(t.input), t.output)
                    for t in tiles.tiles
                )
                path_programs.append(
                    PathProgram(
                        crop=_crop_box(path_in.region, union), steps=steps
                    )
                )
            unit_programs.append(
                UnitProgram(
                    unit.name,
                    union,
                    region,
                    paths=tuple(path_programs),
                    merge=unit.merge,
                    post_activation=unit.post_activation,
                )
            )
            region = union
    unit_programs.reverse()
    return SegmentProgram(
        model.name, start, end, region, out_region, tuple(unit_programs)
    )


def compile_block_paths(
    model: Model, unit_index: int, path_indices: "Tuple[int, ...]"
) -> SegmentProgram:
    """Compile a *branch-parallel* program: execute only the selected
    paths of a concat block over its full output map.

    The produced tile spans the full spatial map but only the selected
    paths' channels, in ascending path order — the coordinator stitches
    them into the global concat layout.
    """
    unit = model.units[unit_index]
    if not isinstance(unit, BlockUnit) or unit.merge != "concat":
        raise ValueError(f"unit {unit.name} is not a concat block")
    if not path_indices:
        raise ValueError("need at least one path")
    indices = tuple(sorted(set(path_indices)))
    if indices[-1] >= len(unit.paths) or indices[0] < 0:
        raise ValueError(f"path indices {indices} out of range")
    _, h, w = model.in_shape(unit_index)
    _, oh, ow = model.out_shape(unit_index)
    out_region = Region.full(oh, ow)
    union: Optional[Region] = None
    tiles_per_path = []
    for idx in indices:
        path = unit.paths[idx]
        if path:
            tiles = chain_backprop(path, (h, w), out_region)
            need = tiles.input.region
        else:
            tiles = None
            need = out_region
        tiles_per_path.append(tiles)
        union = need if union is None else union.union_hull(need)
    assert union is not None
    path_programs = []
    for tiles in tiles_per_path:
        if tiles is None:
            path_programs.append(PathProgram(_crop_box(out_region, union), ()))
            continue
        steps = tuple(
            LayerStep(t.layer, _pads_of(t.input), t.output) for t in tiles.tiles
        )
        path_programs.append(
            PathProgram(_crop_box(tiles.input.region, union), steps)
        )
    unit_program = UnitProgram(
        unit.name,
        union,
        out_region,
        paths=tuple(path_programs),
        merge="concat",
        post_activation=unit.post_activation,
    )
    return SegmentProgram(
        model.name, unit_index, unit_index + 1, union, out_region, (unit_program,)
    )


def compile_channel_slice(
    model: Model, unit_index: int, lo: int, hi: int
) -> SegmentProgram:
    """Compile a *channel-parallel* (IOP) program: produce output
    channels ``[lo, hi)`` of one layer unit over its full spatial map.

    The program consumes the unit's full input map (the interleave
    exchange broadcasts every input channel) and emits a
    ``(hi - lo, H, W)`` tile — the coordinator's channel-block stitch
    de-interleaves the slices back into the global channel layout.
    """
    unit = model.units[unit_index]
    if not isinstance(unit, LayerUnit):
        raise ValueError(
            f"channel-parallel programs need a layer unit, got {unit.name!r}"
        )
    c_out, oh, ow = model.out_shape(unit_index)
    if not 0 <= lo < hi <= c_out:
        raise ValueError(
            f"bad channel slice [{lo}, {hi}) for {c_out} output channels"
        )
    _, h, w = model.in_shape(unit_index)
    out_region = Region.full(oh, ow)
    padded = receptive_region(
        out_region,
        unit.layer.kernel_size,
        unit.layer.stride,
        unit.layer.padding,
        (h, w),
    )
    step = LayerStep(unit.layer, _pads_of(padded), out_region, channels=(lo, hi))
    unit_program = UnitProgram(unit.name, padded.region, out_region, steps=(step,))
    return SegmentProgram(
        model.name,
        unit_index,
        unit_index + 1,
        padded.region,
        out_region,
        (unit_program,),
    )


@lru_cache(maxsize=512)
def _compile_segment_cached(
    model: Model, start: int, end: int, out_region: Region
) -> SegmentProgram:
    return compile_segment(model, start, end, out_region)


def compile_segment_cached(
    model: Model, start: int, end: int, out_region: Region
) -> SegmentProgram:
    """Memoised :func:`compile_segment`.

    Keyed by ``(model, start, end, out_region)`` (structural equality —
    model specs are immutable).  Steady-state pipeline execution hits
    this cache on every frame, worker reconfiguration and local plan
    run; only genuinely new (model, segment, region) combinations pay
    for region-algebra compilation.
    """
    return _compile_segment_cached(model, start, end, out_region)


@lru_cache(maxsize=256)
def _compile_block_paths_cached(
    model: Model, unit_index: int, path_indices: "Tuple[int, ...]"
) -> SegmentProgram:
    return compile_block_paths(model, unit_index, path_indices)


def compile_block_paths_cached(
    model: Model, unit_index: int, path_indices: "Tuple[int, ...]"
) -> SegmentProgram:
    """Memoised :func:`compile_block_paths` (branch-parallel programs)."""
    return _compile_block_paths_cached(model, unit_index, tuple(path_indices))


@lru_cache(maxsize=512)
def _compile_channel_slice_cached(
    model: Model, unit_index: int, lo: int, hi: int
) -> SegmentProgram:
    return compile_channel_slice(model, unit_index, lo, hi)


def compile_channel_slice_cached(
    model: Model, unit_index: int, lo: int, hi: int
) -> SegmentProgram:
    """Memoised :func:`compile_channel_slice` (channel-parallel programs)."""
    return _compile_channel_slice_cached(model, unit_index, lo, hi)


def program_cache_info() -> "Dict[str, object]":
    """Hit/miss statistics for the program caches."""
    return {
        "segment": _compile_segment_cached.cache_info(),
        "block_paths": _compile_block_paths_cached.cache_info(),
        "channel_slice": _compile_channel_slice_cached.cache_info(),
    }


def clear_program_cache() -> None:
    """Drop all memoised programs (frees the model references too)."""
    _compile_segment_cached.cache_clear()
    _compile_block_paths_cached.cache_clear()
    _compile_channel_slice_cached.cache_clear()


def extract_tile(feature_map: np.ndarray, region: Region) -> np.ndarray:
    """Slice a region out of a ``(C, H, W)`` feature map (copy).

    Batched ``(C, B, H, W)`` maps slice the same trailing spatial axes,
    so a stage's tile carries every in-flight frame's strip at once.
    Full-map regions of an already-contiguous float32 map are returned
    as-is (no copy): the common case when a one-device stage or a local
    executor feeds a whole feature map through ``run_segment``.
    """
    view = feature_map[
        ..., region.rows.start : region.rows.end, region.cols.start : region.cols.end
    ]
    from repro.nn import ops  # local import to avoid cycle at module load

    return ops.ensure_f32c(view)


def _run_steps(engine: Engine, steps: Tuple[LayerStep, ...], tile: np.ndarray) -> np.ndarray:
    if not steps:
        return tile
    # run_chain keeps intermediate tiles in per-thread arenas and always
    # returns a fresh final array, so the result is safe to stitch or
    # merge from any thread.
    tile = engine.run_chain(tuple((s.layer, s.pads) for s in steps), tile)
    last = steps[-1]
    if tile.shape[-2:] != (last.out_region.height, last.out_region.width):
        raise AssertionError(
            f"{last.layer.name}: produced {tile.shape[-2:]}, expected "
            f"{(last.out_region.height, last.out_region.width)}"
        )
    return tile


def run_segment(engine: Engine, program: SegmentProgram, tile: np.ndarray) -> np.ndarray:
    """Execute a compiled program on the extracted input tile.

    ``tile`` must be ``extract_tile(input_map, program.input_region)``
    — a single ``(C, H, W)`` tile, or a ``(C, B, H, W)`` stack of ``B``
    frames' tiles, which runs the same program once with batched
    kernels underneath (per-frame slices of the result match the
    per-tile runs).  Returns the ``out_region`` tile of the segment's
    output map.
    """
    if tile.ndim not in (3, 4):
        raise ValueError(
            f"tile must be (C, H, W) or (C, B, H, W), got shape {tile.shape}"
        )
    expected = (program.input_region.height, program.input_region.width)
    if tile.shape[-2:] != expected:
        raise ValueError(f"tile spatial {tile.shape[-2:]} != program input {expected}")
    from repro.nn import ops  # local import to avoid cycle at module load

    current = tile
    pending: "List[Tuple[SpatialLayer, _Pad4]]" = []
    pending_region: Optional[Region] = None

    def flush(x: np.ndarray) -> np.ndarray:
        # Consecutive chain units run as one arena-backed chain (fresh
        # final output); merging them amortises allocation across the
        # whole segment, not just within a unit.
        nonlocal pending, pending_region
        if not pending:
            return x
        x = engine.run_chain(tuple(pending), x)
        if x.shape[-2:] != (pending_region.height, pending_region.width):
            raise AssertionError(
                f"chain produced {x.shape[-2:]}, expected "
                f"{(pending_region.height, pending_region.width)}"
            )
        pending, pending_region = [], None
        return x

    for unit_prog in program.units:
        if unit_prog.merge is None:
            if any(s.channels is not None for s in unit_prog.steps):
                # Channel-sliced steps bypass the chain batcher: the
                # engine must see the slice bounds to pick the packed
                # weight rows, and a slice's output channel count no
                # longer matches the model layout downstream layers
                # expect — IOP programs are single-unit by construction.
                current = flush(current)
                for s in unit_prog.steps:
                    current = engine.run_layer(
                        s.layer, current, s.pads, channels=s.channels
                    )
                if current.shape[-2:] != (
                    unit_prog.out_region.height,
                    unit_prog.out_region.width,
                ):
                    raise AssertionError(
                        f"{unit_prog.unit_name}: produced "
                        f"{current.shape[-2:]}, expected "
                        f"{(unit_prog.out_region.height, unit_prog.out_region.width)}"
                    )
                continue
            pending.extend((s.layer, s.pads) for s in unit_prog.steps)
            pending_region = unit_prog.out_region
            continue
        current = flush(current)

        def run_path(path: PathProgram, block_in: np.ndarray = current) -> np.ndarray:
            r_off, r_len, c_off, c_len = path.crop
            sub = block_in[..., r_off : r_off + r_len, c_off : c_off + c_len]
            return _run_steps(engine, path.steps, np.ascontiguousarray(sub))

        # Block paths are independent given the union input tile: fan
        # them out on the shared pool (serial fallback inside).
        outputs = parallel.run_parallel(
            [lambda path=path: run_path(path) for path in unit_prog.paths]
        )
        if unit_prog.merge == "add":
            # Same association order as the serial reference; the first
            # sum allocates, the rest accumulate in place (every path
            # output is a fresh array — identity paths return a copy).
            if len(outputs) == 1:
                merged = outputs[0]
            else:
                merged = outputs[0] + outputs[1]
                for out in outputs[2:]:
                    merged += out
        else:
            merged = np.concatenate(outputs, axis=0)
        merged = ops.ensure_f32c(merged)
        if merged is current:  # lone identity path may alias the block input
            current = ops.apply_activation(merged, unit_prog.post_activation)
        else:
            current = ops.apply_activation_(merged, unit_prog.post_activation)
    return flush(current)
