"""Full-model numpy inference engine.

:class:`Engine` binds a model spec to weights and executes whole
feature maps; :mod:`repro.nn.tiles` reuses its layer dispatch for
region-restricted (tiled) execution — the two paths are asserted
bit-exact by the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.models.graph import BlockUnit, LayerUnit, Model, PlanUnit
from repro.models.layers import ConvSpec, PoolSpec, SpatialLayer
from repro.nn import ops
from repro.nn.weights import Weights, init_weights

__all__ = ["Engine"]

_Pad4 = Tuple[int, int, int, int]


class Engine:
    """Executes a :class:`~repro.models.graph.Model` with numpy.

    Parameters
    ----------
    model:
        The architecture spec.
    weights:
        Optional pre-built weights; seeded random weights otherwise.
    """

    def __init__(
        self, model: Model, weights: Optional[Weights] = None, seed: int = 0
    ) -> None:
        self.model = model
        self.weights = weights if weights is not None else init_weights(model, seed)

    # ------------------------------------------------------------------
    # Layer-level dispatch (shared with tiled execution).
    # ------------------------------------------------------------------
    def run_layer(self, layer: SpatialLayer, x: np.ndarray, pads: _Pad4) -> np.ndarray:
        """Execute one spatial layer with *explicit* padding."""
        if isinstance(layer, ConvSpec):
            params = self.weights[layer.name]
            out = ops.conv2d(
                x, params["weight"], params.get("bias"), layer.stride, pads,
                groups=layer.groups,
            )
            if layer.batch_norm:
                out = ops.batch_norm(
                    out,
                    params["gamma"],
                    params["beta"],
                    params["mean"],
                    params["var"],
                )
            return ops.apply_activation(out, layer.activation)
        assert isinstance(layer, PoolSpec)
        if layer.kind_ == "max":
            return ops.maxpool2d(x, layer.kernel_size, layer.stride, pads)
        return ops.avgpool2d(x, layer.kernel_size, layer.stride, pads)

    @staticmethod
    def spec_pads(layer: SpatialLayer) -> _Pad4:
        """The symmetric padding a layer uses on the full map."""
        pv, ph = layer.padding
        return (pv, pv, ph, ph)

    # ------------------------------------------------------------------
    # Full-map execution.
    # ------------------------------------------------------------------
    def run_unit(self, unit: PlanUnit, x: np.ndarray) -> np.ndarray:
        """Execute one plan unit on a full feature map."""
        if isinstance(unit, LayerUnit):
            return self.run_layer(unit.layer, x, self.spec_pads(unit.layer))
        assert isinstance(unit, BlockUnit)
        outputs = []
        for path in unit.paths:
            out = x
            for layer in path:
                out = self.run_layer(layer, out, self.spec_pads(layer))
            outputs.append(out)
        if unit.merge == "add":
            merged = outputs[0]
            for out in outputs[1:]:
                merged = merged + out
        else:
            merged = np.concatenate(outputs, axis=0)
        return ops.apply_activation(
            np.ascontiguousarray(merged, dtype=np.float32), unit.post_activation
        )

    def forward_features(self, x: np.ndarray) -> np.ndarray:
        """Run every plan unit; returns the final feature map."""
        self._check_input(x)
        out = x.astype(np.float32, copy=False)
        for unit in self.model.units:
            out = self.run_unit(unit, out)
        return out

    def run_head(self, features: np.ndarray) -> np.ndarray:
        """Flatten + dense head (identity if the model has no head)."""
        out = features.reshape(-1)
        for dense in self.model.head:
            params = self.weights[dense.name]
            out = ops.linear(out, params["weight"], params["bias"])
            if dense.activation == "relu":
                out = ops.relu(out)
            elif dense.activation == "softmax":
                out = ops.softmax(out)
        return out

    def run(self, x: np.ndarray) -> np.ndarray:
        """End-to-end inference: features then head."""
        return self.run_head(self.forward_features(x))

    def _check_input(self, x: np.ndarray) -> None:
        if x.shape != self.model.input_shape:
            raise ValueError(
                f"input shape {x.shape} != model input {self.model.input_shape}"
            )
