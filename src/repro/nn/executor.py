"""Full-model numpy inference engine.

:class:`Engine` binds a model spec to weights and executes whole
feature maps; :mod:`repro.nn.tiles` reuses its layer dispatch for
region-restricted (tiled) execution — the two paths are asserted
bit-exact by the test suite.

The engine owns a *fast execution path* (default on, ``REPRO_FAST=0``
or ``Engine(..., fast=False)`` selects the reference kernels):

* convolutions lower to a single BLAS sgemm against **packed weights**
  — per-layer pre-flattened ``(Cout, Cin·kh·kw)`` matrices built lazily
  on first use and cached on the engine, so steady-state frames do no
  per-call reshape or copy;
* **batch norm is folded** into the packed conv weight and bias once
  (:func:`repro.nn.weights.fold_batch_norm`), eliminating the separate
  per-frame BN pass.  Folding happens identically for full-map and
  tiled execution (both go through :meth:`Engine.run_layer`), so the
  tile-vs-full bit-exactness contract is preserved;
* bias adds and activations run **in place** on fresh conv outputs;
* im2col patch matrices live in per-thread scratch arenas instead of
  being reallocated every frame;
* multi-path :class:`~repro.models.graph.BlockUnit`\\ s (inception
  branches) execute **concurrently** on the shared thread pool
  (:mod:`repro.nn.parallel`) — BLAS releases the GIL — with a serial
  fallback when ``REPRO_THREADS`` resolves to one.

The fast and reference paths are bit-exact for ``groups == 1``
convolutions and pooling; grouped convolutions and folded BN agree to
float32 rounding (covered by dedicated tolerance tests).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.models.graph import BlockUnit, LayerUnit, Model, PlanUnit
from repro.models.layers import ConvSpec, PoolSpec, SpatialLayer
from repro.nn import ops, parallel
from repro.nn.weights import Weights, fold_batch_norm, init_weights

__all__ = ["Engine"]

_Pad4 = Tuple[int, int, int, int]


def _env_flag(name: str, default: bool) -> bool:
    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "no", "off", "")


@dataclass(frozen=True)
class _PackedConv:
    """Per-layer GEMM-ready parameters (weights packed, BN folded)."""

    packed: np.ndarray
    bias: Optional[np.ndarray]
    folded: bool  # batch norm already folded into packed/bias


class _ThreadScratch(threading.local):
    """Per-thread scratch state (block paths run concurrently).

    ``pad`` holds im2col patch matrices.  ``outs``/``flip`` are the
    ping-pong output arenas for chain execution: every produced feature
    map is consumed only by the next layer, so two alternating buffers
    suffice and steady-state frames allocate nothing.  ``chain`` gates
    the mode — it is only set by :meth:`Engine.forward_features` on
    block-free models, where the consumed-by-next invariant holds.
    """

    def __init__(self) -> None:
        self.pad = ops.ScratchPad()
        self.outs = (ops.ScratchPad(), ops.ScratchPad())
        self.flip = 0
        self.chain = False


class Engine:
    """Executes a :class:`~repro.models.graph.Model` with numpy.

    Parameters
    ----------
    model:
        The architecture spec.
    weights:
        Optional pre-built weights; seeded random weights otherwise.
        Weight dicts may be partial (a worker only ships its segment's
        layers) — packing is lazy per layer.
    fast:
        Use the packed-GEMM fast path.  Defaults to the ``REPRO_FAST``
        environment flag, which defaults to on.
    fold_bn:
        Fold batch norm into conv weights at pack time.  Defaults to
        ``fast``; only meaningful on the fast path.
    batch_gemm:
        How batched ``(C, B, H, W)`` maps hit BLAS — ``"exact"``
        (per-frame column-block sgemms over the stacked im2col panel,
        bit-identical to the per-frame loop) or ``"tall"`` (one tall
        sgemm, float-close).  Defaults to the ``REPRO_BATCH_GEMM``
        environment variable, which defaults to ``"exact"``.
    """

    def __init__(
        self,
        model: Model,
        weights: Optional[Weights] = None,
        seed: int = 0,
        *,
        fast: Optional[bool] = None,
        fold_bn: Optional[bool] = None,
        batch_gemm: Optional[str] = None,
    ) -> None:
        self.model = model
        self.weights = weights if weights is not None else init_weights(model, seed)
        self.fast = _env_flag("REPRO_FAST", True) if fast is None else fast
        self.fold_bn = self.fast if fold_bn is None else fold_bn
        if batch_gemm is None:
            batch_gemm = os.environ.get("REPRO_BATCH_GEMM", "exact").strip() or "exact"
        if batch_gemm not in ("exact", "tall"):
            raise ValueError(f"unknown batch_gemm mode {batch_gemm!r}")
        self.batch_gemm = batch_gemm
        self._packed: "Dict[str, _PackedConv]" = {}
        self._packed_slices: "Dict[Tuple[str, int, int], _PackedConv]" = {}
        self._scratch = _ThreadScratch()
        self._is_chain = all(
            isinstance(unit, LayerUnit) for unit in model.units
        )

    # ------------------------------------------------------------------
    # Packed-weight cache.
    # ------------------------------------------------------------------
    def _packed_conv(self, layer: ConvSpec) -> _PackedConv:
        """The layer's GEMM-ready parameters, built once and cached."""
        cached = self._packed.get(layer.name)
        if cached is not None:
            return cached
        params = self.weights[layer.name]
        weight = params["weight"]
        bias = params.get("bias")
        folded = False
        if layer.batch_norm and self.fold_bn:
            weight, bias = fold_batch_norm(
                weight,
                bias,
                params["gamma"],
                params["beta"],
                params["mean"],
                params["var"],
            )
            folded = True
        packed = _PackedConv(
            ops.pack_conv_weight(weight, layer.groups), bias, folded
        )
        # Benign race under concurrent first use: both threads build the
        # same deterministic value; last assignment wins.
        self._packed[layer.name] = packed
        return packed

    def _packed_conv_slice(self, layer: ConvSpec, lo: int, hi: int) -> _PackedConv:
        """Rows ``[lo, hi)`` of the packed conv matrix (IOP channel
        slices).  The slice is a view of the full packed matrix, so the
        per-layer weight memory is shared with full-map execution."""
        key = (layer.name, lo, hi)
        cached = self._packed_slices.get(key)
        if cached is not None:
            return cached
        full = self._packed_conv(layer)
        sliced = _PackedConv(
            full.packed[lo:hi],
            full.bias[lo:hi] if full.bias is not None else None,
            full.folded,
        )
        self._packed_slices[key] = sliced
        return sliced

    def refresh_weights(self) -> None:
        """Drop cached packed weights (call after mutating ``weights``)."""
        self._packed.clear()
        self._packed_slices.clear()

    # ------------------------------------------------------------------
    # Layer-level dispatch (shared with tiled execution).
    # ------------------------------------------------------------------
    def run_layer(
        self,
        layer: SpatialLayer,
        x: np.ndarray,
        pads: _Pad4,
        channels: "Optional[Tuple[int, int]]" = None,
    ) -> np.ndarray:
        """Execute one spatial layer with *explicit* padding.

        ``x`` may be a single ``(C, H, W)`` map or a ``(C, B, H, W)``
        cross-frame batch — every kernel underneath indexes the trailing
        spatial axes, so both ranks share one dispatch.

        ``channels`` restricts the layer to the output-channel slice
        ``[lo, hi)`` (IOP channel-parallel stages): a conv runs the GEMM
        against only its slice's packed weight rows, a pool sees only
        its slice's input channels.  ``x`` always carries the layer's
        full input channels.
        """
        if isinstance(layer, ConvSpec):
            if channels is not None and layer.groups != 1:
                raise ValueError(
                    f"{layer.name}: channel-sliced conv needs groups == 1"
                )
            if self.fast:
                return self._run_conv_fast(layer, x, pads, channels)
            params = self.weights[layer.name]
            weight = params["weight"]
            bias = params.get("bias")
            if channels is not None:
                lo, hi = channels
                weight = weight[lo:hi]
                bias = bias[lo:hi] if bias is not None else None
            out = ops.conv2d_reference(
                x, weight, bias, layer.stride, pads,
                groups=layer.groups,
            )
            if layer.batch_norm:
                gamma, beta = params["gamma"], params["beta"]
                mean, var = params["mean"], params["var"]
                if channels is not None:
                    lo, hi = channels
                    gamma, beta = gamma[lo:hi], beta[lo:hi]
                    mean, var = mean[lo:hi], var[lo:hi]
                out = ops.batch_norm(out, gamma, beta, mean, var)
            return ops.apply_activation(out, layer.activation)
        assert isinstance(layer, PoolSpec)
        if channels is not None:
            # Pool channel c reads input channel c alone, so the slice
            # is a plain first-axis view of the (batched) input map.
            lo, hi = channels
            x = x[lo:hi]
        if layer.kind_ == "max":
            if self.fast:
                return ops.maxpool2d(
                    x, layer.kernel_size, layer.stride, pads,
                    out_scratch=self._take_chain_arena(),
                )
            return ops.maxpool2d_reference(x, layer.kernel_size, layer.stride, pads)
        return ops.avgpool2d(x, layer.kernel_size, layer.stride, pads)

    def _take_chain_arena(self) -> "Optional[ops.ScratchPad]":
        """The next ping-pong output arena, or ``None`` outside chain mode."""
        ts = self._scratch
        if not ts.chain:
            return None
        arena = ts.outs[ts.flip]
        ts.flip ^= 1
        return arena

    def _run_conv_fast(
        self,
        layer: ConvSpec,
        x: np.ndarray,
        pads: _Pad4,
        channels: "Optional[Tuple[int, int]]" = None,
    ) -> np.ndarray:
        if channels is None:
            packed = self._packed_conv(layer)
        else:
            packed = self._packed_conv_slice(layer, channels[0], channels[1])
        fused_activation = layer.activation
        if layer.batch_norm and not packed.folded:
            fused_activation = "linear"
        out = ops.conv2d_packed(
            x,
            packed.packed,
            packed.bias,
            layer.kernel_size,
            layer.stride,
            pads,
            groups=layer.groups,
            activation=fused_activation,
            scratch=self._scratch.pad,
            out_scratch=self._take_chain_arena(),
            batch_gemm=self.batch_gemm,
        )
        if layer.batch_norm and not packed.folded:
            params = self.weights[layer.name]
            gamma, beta = params["gamma"], params["beta"]
            mean, var = params["mean"], params["var"]
            if channels is not None:
                lo, hi = channels
                gamma, beta = gamma[lo:hi], beta[lo:hi]
                mean, var = mean[lo:hi], var[lo:hi]
            out = ops.batch_norm(out, gamma, beta, mean, var)
            return ops.apply_activation_(out, layer.activation)
        return out

    @staticmethod
    def spec_pads(layer: SpatialLayer) -> _Pad4:
        """The symmetric padding a layer uses on the full map."""
        pv, ph = layer.padding
        return (pv, pv, ph, ph)

    def run_chain(
        self,
        steps: "Tuple[Tuple[SpatialLayer, _Pad4], ...]",
        x: np.ndarray,
    ) -> np.ndarray:
        """Run consecutive layers where each output feeds only the next.

        On the fast path the intermediate outputs live in the per-thread
        ping-pong arenas (zero steady-state allocation); the **final**
        output is always freshly allocated, so callers may hold it
        across frames, merge it with other paths, or stitch it from
        another thread.  Values are identical to running the layers
        one by one.
        """
        if not steps:
            return x
        ts = self._scratch
        if self.fast and len(steps) > 1 and not ts.chain:
            ts.chain = True
            try:
                for layer, pads in steps[:-1]:
                    x = self.run_layer(layer, x, pads)
            finally:
                ts.chain = False
        else:
            for layer, pads in steps[:-1]:
                x = self.run_layer(layer, x, pads)
        layer, pads = steps[-1]
        return self.run_layer(layer, x, pads)

    # ------------------------------------------------------------------
    # Full-map execution.
    # ------------------------------------------------------------------
    def _run_path(self, path, x: np.ndarray) -> np.ndarray:
        return self.run_chain(
            tuple((layer, self.spec_pads(layer)) for layer in path), x
        )

    def run_unit(self, unit: PlanUnit, x: np.ndarray) -> np.ndarray:
        """Execute one plan unit on a full feature map."""
        if isinstance(unit, LayerUnit):
            return self.run_layer(unit.layer, x, self.spec_pads(unit.layer))
        assert isinstance(unit, BlockUnit)
        # Inception/residual branches are independent given the block
        # input: fan them out on the shared pool (serial fallback inside).
        outputs = parallel.run_parallel(
            [lambda path=path: self._run_path(path, x) for path in unit.paths]
        )
        if unit.merge == "add":
            # First sum allocates (an identity path may alias the block
            # input x); the rest accumulate in place.  Same association
            # order as the serial reference: ((p0 + p1) + p2) ...
            if len(outputs) == 1:
                merged = outputs[0]
            else:
                merged = outputs[0] + outputs[1]
                for out in outputs[2:]:
                    merged += out
        else:
            merged = np.concatenate(outputs, axis=0)
        merged = ops.ensure_f32c(merged)
        if merged is x:  # single identity path cannot happen, but be safe
            return ops.apply_activation(merged, unit.post_activation)
        return ops.apply_activation_(merged, unit.post_activation)

    def forward_features(self, x: np.ndarray) -> np.ndarray:
        """Run every plan unit; returns the final feature map."""
        self._check_input(x)
        out = x.astype(np.float32, copy=False)
        ts = self._scratch
        if self.fast and self._is_chain and not ts.chain:
            # Chain models (every output consumed only by the next
            # layer) run with ping-pong output arenas: zero steady-state
            # allocation.  Detach the final map so it survives the next
            # frame's arena reuse.
            ts.chain = True
            try:
                for unit in self.model.units:
                    out = self.run_unit(unit, out)
            finally:
                ts.chain = False
            return out.copy() if out is not x else out
        for unit in self.model.units:
            out = self.run_unit(unit, out)
        return out

    def run_head(self, features: np.ndarray) -> np.ndarray:
        """Flatten + dense head (identity if the model has no head)."""
        out = features.reshape(-1)
        for dense in self.model.head:
            params = self.weights[dense.name]
            out = ops.linear(out, params["weight"], params["bias"])
            if dense.activation == "relu":
                out = ops.apply_activation_(out, "relu")
            elif dense.activation == "softmax":
                out = ops.softmax(out)
        return out

    def run(self, x: np.ndarray) -> np.ndarray:
        """End-to-end inference: features then head."""
        return self.run_head(self.forward_features(x))

    def _check_input(self, x: np.ndarray) -> None:
        if x.shape != self.model.input_shape:
            raise ValueError(
                f"input shape {x.shape} != model input {self.model.input_shape}"
            )
