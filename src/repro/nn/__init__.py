"""Numpy CNN inference engine: full-map and region-restricted execution."""

from repro.nn.executor import Engine
from repro.nn.tiles import (
    SegmentProgram,
    compile_segment,
    extract_tile,
    run_segment,
)
from repro.nn.weights import Weights, init_weights

__all__ = [
    "Engine",
    "SegmentProgram",
    "Weights",
    "compile_segment",
    "extract_tile",
    "init_weights",
    "run_segment",
]
