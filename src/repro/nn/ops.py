"""Numpy tensor operations for CNN inference.

Feature maps are ``(C, H, W)`` float32 arrays (single image — edge
inference is latency-bound, batch size 1).  Convolution uses a
sliding-window view + tensordot (the im2col/matmul structure LibTorch
and NNPACK use on the paper's Pis).  Every op takes *explicit* padding
so region-restricted execution can substitute the per-tile virtual
padding computed by the region algebra.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "pad2d",
    "conv2d",
    "maxpool2d",
    "avgpool2d",
    "relu",
    "leaky_relu",
    "relu6",
    "apply_activation",
    "batch_norm",
    "linear",
    "softmax",
]

_Size2 = Tuple[int, int]
_Pad4 = Tuple[int, int, int, int]  # top, bottom, left, right

#: Darknet's leaky-ReLU slope (YOLOv2 uses 0.1, not PyTorch's 0.01).
LEAKY_SLOPE = 0.1


def pad2d(x: np.ndarray, pads: _Pad4) -> np.ndarray:
    """Zero-pad the spatial axes by (top, bottom, left, right)."""
    top, bottom, left, right = pads
    if top == bottom == left == right == 0:
        return x
    if min(pads) < 0:
        raise ValueError(f"negative padding {pads}")
    return np.pad(x, ((0, 0), (top, bottom), (left, right)))


def _windows(x: np.ndarray, kernel: _Size2, stride: _Size2) -> np.ndarray:
    """Sliding windows of ``x``: shape (C, H_out, W_out, kh, kw)."""
    kh, kw = kernel
    if x.shape[1] < kh or x.shape[2] < kw:
        raise ValueError(
            f"input spatial {x.shape[1:]} smaller than kernel {kernel}"
        )
    view = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(1, 2))
    return view[:, :: stride[0], :: stride[1]]


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: _Size2 = (1, 1),
    pads: _Pad4 = (0, 0, 0, 0),
    groups: int = 1,
) -> np.ndarray:
    """2-D convolution (cross-correlation).

    ``weight`` is ``(Cout, Cin/groups, kh, kw)``; ``groups == Cin``
    gives a depthwise convolution (MobileNet-style).
    """
    if groups < 1 or x.shape[0] % groups or weight.shape[0] % groups:
        raise ValueError(f"invalid groups={groups} for shapes {x.shape}, {weight.shape}")
    if x.shape[0] // groups != weight.shape[1]:
        raise ValueError(
            f"channel mismatch: input {x.shape[0]} / groups {groups} != "
            f"weight in-channels {weight.shape[1]}"
        )
    xp = pad2d(x, pads)
    win = _windows(xp, weight.shape[2:], stride)
    if groups == 1:
        out = np.tensordot(weight, win, axes=([1, 2, 3], [0, 3, 4]))
    else:
        c_per_g = x.shape[0] // groups
        o_per_g = weight.shape[0] // groups
        win_g = win.reshape(groups, c_per_g, *win.shape[1:])
        w_g = weight.reshape(groups, o_per_g, c_per_g, *weight.shape[2:])
        out = np.einsum("gihwkl,goikl->gohw", win_g, w_g)
        out = out.reshape(weight.shape[0], *out.shape[2:])
    if bias is not None:
        out = out + bias[:, None, None]
    return np.ascontiguousarray(out, dtype=np.float32)


def maxpool2d(
    x: np.ndarray, kernel: _Size2, stride: _Size2, pads: _Pad4 = (0, 0, 0, 0)
) -> np.ndarray:
    """Max pooling; padded cells use -inf so they never win."""
    top, bottom, left, right = pads
    if any(pads):
        xp = np.full(
            (x.shape[0], x.shape[1] + top + bottom, x.shape[2] + left + right),
            -np.inf,
            dtype=x.dtype,
        )
        xp[:, top : top + x.shape[1], left : left + x.shape[2]] = x
    else:
        xp = x
    win = _windows(xp, kernel, stride)
    return np.ascontiguousarray(win.max(axis=(3, 4)), dtype=np.float32)


def avgpool2d(
    x: np.ndarray, kernel: _Size2, stride: _Size2, pads: _Pad4 = (0, 0, 0, 0)
) -> np.ndarray:
    """Average pooling with ``count_include_pad`` semantics (divisor is
    always kh·kw), which keeps tiled execution bit-exact at borders."""
    xp = pad2d(x, pads)
    win = _windows(xp, kernel, stride)
    out = win.sum(axis=(3, 4)) / float(kernel[0] * kernel[1])
    return np.ascontiguousarray(out, dtype=np.float32)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, slope: float = LEAKY_SLOPE) -> np.ndarray:
    return np.where(x > 0, x, slope * x).astype(x.dtype)


def relu6(x: np.ndarray) -> np.ndarray:
    """MobileNet's clipped ReLU."""
    return np.clip(x, 0.0, 6.0)


def apply_activation(x: np.ndarray, activation: str) -> np.ndarray:
    """Dispatch by activation name ("linear" is identity)."""
    if activation == "relu":
        return relu(x)
    if activation == "leaky_relu":
        return leaky_relu(x)
    if activation == "relu6":
        return relu6(x)
    if activation == "linear":
        return x
    raise ValueError(f"unknown activation {activation!r}")


def batch_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch normalisation (per-channel affine)."""
    scale = gamma / np.sqrt(var + eps)
    shift = beta - mean * scale
    return (x * scale[:, None, None] + shift[:, None, None]).astype(np.float32)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Fully-connected layer: weight is (out_features, in_features)."""
    return (weight @ x + bias).astype(np.float32)


def softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max()
    exp = np.exp(shifted)
    return (exp / exp.sum()).astype(np.float32)
