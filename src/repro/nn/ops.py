"""Numpy tensor operations for CNN inference.

Feature maps are ``(C, H, W)`` float32 arrays, or ``(C, B, H, W)`` when
``B`` frames in flight execute as one cross-frame batch (channel-major
with batch second, so the batched GEMM output lands in the same layout
with zero transposes).  Every spatial op indexes the trailing two axes,
so the same kernels serve both ranks; per-frame slices of a batched
result are bit-identical to the corresponding single-frame calls (the
tall GEMM computes each column independently, and the pooling
reductions are per-plane).  Every op takes *explicit* padding so
region-restricted execution can substitute the per-tile virtual padding
computed by the region algebra.

Two convolution paths coexist:

``conv2d`` / ``conv2d_packed``
    The fast path: explicit im2col into a reusable scratch arena, then a
    single BLAS sgemm against a pre-flattened ``(Cout, Cin·kh·kw)``
    weight matrix (``pack_conv_weight``), with bias add and activation
    applied *in place* on the freshly allocated GEMM output.  For
    ``groups == 1`` this is bit-exact with the reference path: both
    reduce to the identical ``sgemm`` call on identically laid-out
    operands.  Grouped convolutions use one batched ``matmul`` whose
    per-group accumulation order can differ from the reference einsum by
    a few ULPs.

``conv2d_reference``
    The original sliding-window + tensordot/einsum implementation, kept
    as the independent oracle for the bit-exactness property tests and
    as the "before" side of the engine benchmarks.

Pooling follows the same pattern: ``maxpool2d`` accumulates kernel taps
with vectorised ``np.maximum`` over strided slices (bit-exact with the
windowed reference — max has no accumulation order), while ``avgpool2d``
keeps the windowed sum so its float accumulation order — and therefore
the tile-vs-full bit-exactness contract — is unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "pad2d",
    "im2col",
    "pack_conv_weight",
    "conv2d",
    "conv2d_packed",
    "conv2d_reference",
    "maxpool2d",
    "maxpool2d_reference",
    "avgpool2d",
    "relu",
    "leaky_relu",
    "relu6",
    "apply_activation",
    "apply_activation_",
    "batch_norm",
    "linear",
    "softmax",
    "ensure_f32c",
    "ScratchPad",
]

_Size2 = Tuple[int, int]
_Pad4 = Tuple[int, int, int, int]  # top, bottom, left, right

#: Darknet's leaky-ReLU slope (YOLOv2 uses 0.1, not PyTorch's 0.01).
LEAKY_SLOPE = 0.1


def ensure_f32c(x: np.ndarray) -> np.ndarray:
    """``x`` itself when already C-contiguous float32; a copy otherwise.

    ``np.ascontiguousarray`` also short-circuits, but routing every hot
    call through this helper makes the no-copy contract explicit and
    skips its argument normalisation overhead.
    """
    if x.dtype == np.float32 and x.flags.c_contiguous:
        return x
    return np.ascontiguousarray(x, dtype=np.float32)


class ScratchPad:
    """A reusable flat float32 arena for im2col patch matrices.

    The im2col buffer of a conv layer is ``kh·kw`` times its input map —
    freshly ``malloc``-ing (and page-faulting) it every frame dominates
    the non-GEMM cost of the fast path.  A pad grows geometrically to the
    largest request seen and hands out reshaped views of one persistent
    allocation.  Not thread-safe: use one pad per thread.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf: Optional[np.ndarray] = None

    def take(self, shape: "Tuple[int, ...]") -> np.ndarray:
        """An uninitialised float32 view of ``shape`` into the arena."""
        n = 1
        for dim in shape:
            n *= int(dim)
        if self._buf is None or self._buf.size < n:
            self._buf = np.empty(max(n, 4096), dtype=np.float32)
        return self._buf[:n].reshape(shape)


def _check_map(x: np.ndarray, op: str) -> None:
    """Feature maps are (C, H, W) or batched (C, B, H, W) — nothing else.

    The spatial kernels index the trailing two axes, so a wrong-rank
    array would silently pool/convolve over the wrong dimensions; fail
    loudly instead.
    """
    if x.ndim not in (3, 4):
        raise ValueError(
            f"{op} expects a (C, H, W) or (C, B, H, W) feature map, "
            f"got shape {x.shape}"
        )


def pad2d(x: np.ndarray, pads: _Pad4) -> np.ndarray:
    """Zero-pad the trailing spatial axes by (top, bottom, left, right)."""
    top, bottom, left, right = pads
    if top == bottom == left == right == 0:
        return x
    if min(pads) < 0:
        raise ValueError(f"negative padding {pads}")
    width = [(0, 0)] * (x.ndim - 2) + [(top, bottom), (left, right)]
    return np.pad(x, width)


def _windows(x: np.ndarray, kernel: _Size2, stride: _Size2) -> np.ndarray:
    """Sliding windows over the trailing spatial axes:
    shape (..., H_out, W_out, kh, kw)."""
    kh, kw = kernel
    if x.shape[-2] < kh or x.shape[-1] < kw:
        raise ValueError(
            f"input spatial {x.shape[-2:]} smaller than kernel {kernel}"
        )
    view = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(-2, -1))
    return view[..., :: stride[0], :: stride[1], :, :]


def _out_hw(xp: np.ndarray, kernel: _Size2, stride: _Size2) -> _Size2:
    """Output spatial size of a kernel sweep over a padded map."""
    kh, kw = kernel
    if xp.shape[-2] < kh or xp.shape[-1] < kw:
        raise ValueError(
            f"input spatial {xp.shape[-2:]} smaller than kernel {kernel}"
        )
    return (
        (xp.shape[-2] - kh) // stride[0] + 1,
        (xp.shape[-1] - kw) // stride[1] + 1,
    )


def _tap(xp: np.ndarray, i: int, j: int, stride: _Size2, out_hw: _Size2) -> np.ndarray:
    """The (i, j) kernel-tap slice of a padded map: shape (..., Ho, Wo)."""
    ho, wo = out_hw
    sv, sh = stride
    return xp[..., i : i + (ho - 1) * sv + 1 : sv, j : j + (wo - 1) * sh + 1 : sh]


def im2col(
    x: np.ndarray,
    kernel: _Size2,
    stride: _Size2,
    pads: _Pad4,
    scratch: Optional[ScratchPad] = None,
) -> "Tuple[np.ndarray, _Size2]":
    """Patch matrix for GEMM convolution.

    Returns ``(cols, (Ho, Wo))`` where ``cols`` has shape
    ``(C·kh·kw, Ho·Wo)`` with rows ordered ``(channel, kh, kw)`` — the
    exact operand layout ``np.tensordot`` builds internally, which is
    what makes the GEMM path bit-exact with the reference.  A batched
    ``(C, B, H, W)`` input builds one **stacked panel** of shape
    ``(C·kh·kw, B·Ho·Wo)`` with columns ordered ``(frame, ho, wo)``:
    frame ``b``'s block is column-for-column the panel the single-frame
    call would build, so the tall GEMM result splits back into
    bit-identical per-frame outputs.  The buffer is filled tap-by-tap
    with strided slice copies (one vectorised copy per kernel position,
    spanning every frame at once) instead of copying a transposed
    window view, and lives in ``scratch`` when provided.
    """
    kh, kw = kernel
    top, bottom, left, right = pads
    if min(pads) < 0:
        raise ValueError(f"negative padding {pads}")
    _check_map(x, "im2col")
    c, h, w = x.shape[0], x.shape[-2], x.shape[-1]
    hp, wp = h + top + bottom, w + left + right
    if hp < kh or wp < kw:
        raise ValueError(f"padded spatial {(hp, wp)} smaller than kernel {kernel}")
    sv, sh = stride
    ho, wo = (hp - kh) // sv + 1, (wp - kw) // sh + 1
    batch = x.shape[1:-2]  # () for single-frame, (B,) for batched
    shape = (c, kh, kw, *batch, ho, wo)
    buf = scratch.take(shape) if scratch is not None else np.empty(shape, np.float32)
    for i in range(kh):
        for j in range(kw):
            # Padding is virtual: the tap's out-of-range strips are
            # zero-filled and the in-range block copies straight from x,
            # so the padded map is never materialised.
            dst = buf[:, i, j]
            r0 = max(0, -((i - top) // sv))
            r1 = min(ho, (top + h - 1 - i) // sv + 1) if top + h > i else 0
            c0 = max(0, -((j - left) // sh))
            c1 = min(wo, (left + w - 1 - j) // sh + 1) if left + w > j else 0
            r1, c1 = max(r0, r1), max(c0, c1)
            if r0 > 0:
                dst[..., :r0, :] = 0.0
            if r1 < ho:
                dst[..., r1:, :] = 0.0
            if c0 > 0:
                dst[..., r0:r1, :c0] = 0.0
            if c1 < wo:
                dst[..., r0:r1, c1:] = 0.0
            if r1 > r0 and c1 > c0:
                si, sj = i - top + r0 * sv, j - left + c0 * sh
                np.copyto(
                    dst[..., r0:r1, c0:c1],
                    x[
                        ...,
                        si : si + (r1 - r0 - 1) * sv + 1 : sv,
                        sj : sj + (c1 - c0 - 1) * sh + 1 : sh,
                    ],
                )
    n = ho * wo
    for dim in batch:
        n *= dim
    return buf.reshape(c * kh * kw, n), (ho, wo)


def _check_conv(x: np.ndarray, cout: int, cin_w: int, groups: int) -> None:
    if groups < 1 or x.shape[0] % groups or cout % groups:
        raise ValueError(
            f"invalid groups={groups} for shapes {x.shape}, "
            f"({cout}, {cin_w}, ...)"
        )
    if x.shape[0] // groups != cin_w:
        raise ValueError(
            f"channel mismatch: input {x.shape[0]} / groups {groups} != "
            f"weight in-channels {cin_w}"
        )


def pack_conv_weight(weight: np.ndarray, groups: int = 1) -> np.ndarray:
    """Pre-flatten a ``(Cout, Cin/g, kh, kw)`` weight for GEMM.

    ``groups == 1`` gives ``(Cout, Cin·kh·kw)``; grouped convolutions get
    the batched-matmul layout ``(g, Cout/g, (Cin/g)·kh·kw)``.  The result
    is C-contiguous float32 so the per-frame GEMM needs no reshape/copy.
    """
    cout = weight.shape[0]
    if groups == 1:
        return ensure_f32c(weight.reshape(cout, -1))
    if cout % groups:
        raise ValueError(f"groups={groups} does not divide out-channels {cout}")
    return ensure_f32c(weight.reshape(groups, cout // groups, -1))


def conv2d_packed(
    x: np.ndarray,
    packed: np.ndarray,
    bias: Optional[np.ndarray],
    kernel: _Size2,
    stride: _Size2 = (1, 1),
    pads: _Pad4 = (0, 0, 0, 0),
    groups: int = 1,
    activation: str = "linear",
    scratch: Optional[ScratchPad] = None,
    out_scratch: Optional[ScratchPad] = None,
    batch_gemm: str = "exact",
) -> np.ndarray:
    """GEMM convolution against a :func:`pack_conv_weight` matrix.

    Lowers to a single BLAS sgemm (one batched matmul for grouped
    convolutions); bias add and activation run in place on the GEMM
    output in cache-sized row blocks, so the op allocates exactly one
    array beyond the scratch arenas — or none when ``out_scratch``
    provides the output buffer (chain execution ping-pongs two arenas;
    the returned array aliases ``out_scratch``'s storage).

    A batched ``(C, B, H, W)`` input builds one **stacked** im2col
    panel — ``B·Ho·Wo`` columns instead of ``Ho·Wo`` — so the tap-fill
    pack, the bias/activation epilogue and the per-layer dispatch are
    all paid once per batch, and returns ``(Cout, B, Ho, Wo)``.
    ``batch_gemm`` picks how the panel hits BLAS:

    ``"exact"`` (default)
        One sgemm per frame over the panel's contiguous-row column
        blocks.  Each call has exactly the single-frame ``(M, K, N)``
        geometry, so every frame's slice is **bit-identical** to the
        per-frame loop — the batched differential guarantee.

    ``"tall"``
        One tall sgemm over all ``B·Ho·Wo`` columns.  Highest BLAS
        efficiency, but OpenBLAS picks kernels by shape (the
        small-matrix path re-associates the K accumulation when the
        per-frame column count is not vector-aligned), so frames are
        only float-close (ULP-scale) to the per-frame loop.
    """
    kh, kw = kernel
    if batch_gemm not in ("exact", "tall"):
        raise ValueError(f"unknown batch_gemm mode {batch_gemm!r}")
    if groups == 1:
        cout, k = packed.shape
        cin_w = k // (kh * kw)
    else:
        cout = packed.shape[0] * packed.shape[1]
        cin_w = packed.shape[2] // (kh * kw)
    _check_conv(x, cout, cin_w, groups)
    cols, (ho, wo) = im2col(x, kernel, stride, pads, scratch)
    n = cols.shape[1]
    split = x.ndim == 4 and x.shape[1] > 1 and batch_gemm == "exact"
    if groups == 1:
        if out_scratch is not None:
            out = out_scratch.take((cout, n))
        else:
            out = np.empty((cout, n), np.float32)
        if split:
            _gemm_per_frame_(packed, cols, x.shape[1], out)
        else:
            np.dot(packed, cols, out=out)
    else:
        k_g = packed.shape[2]
        cols3 = cols.reshape(groups, k_g, n)
        if out_scratch is not None:
            out3 = out_scratch.take((groups, cout // groups, n))
        else:
            out3 = np.empty((groups, cout // groups, n), np.float32)
        if split:
            _gemm_per_frame_(packed, cols3, x.shape[1], out3)
        else:
            np.matmul(packed, cols3, out=out3)
        out = out3.reshape(cout, n)
    _conv_epilogue_(out, bias, activation)
    return out.reshape(cout, *x.shape[1:-2], ho, wo)


def _gemm_per_frame_(
    packed: np.ndarray, cols: np.ndarray, b: int, out: np.ndarray
) -> None:
    """The ``batch_gemm="exact"`` inner loop: one GEMM per frame over
    the stacked panel's column blocks, written into ``out``.

    Column block ``i`` of the panel is the very matrix the single-frame
    call would build (same values, same ``(M, K, N)``), so BLAS runs the
    identical kernel with the identical accumulation order — only the
    leading dimension differs, which the pack step normalises away.
    """
    nf = cols.shape[-1] // b
    for i in range(b):
        lo = i * nf
        block = np.matmul(packed, cols[..., lo : lo + nf])
        out[..., lo : lo + nf] = block


def _conv_epilogue_(out: np.ndarray, bias: Optional[np.ndarray], activation: str) -> None:
    """In-place bias + activation over ``(Cout, N)`` in row blocks.

    Blocks are sized to ~128 KiB so the activation pass reads the rows
    the bias add just touched from cache instead of re-streaming the
    whole output from memory.  Identical values to the two full passes —
    both visit each element once, in the same order.
    """
    if bias is None and activation == "linear":
        return
    cout, n = out.shape
    rows = max(1, 32768 // max(1, n))
    for i in range(0, cout, rows):
        block = out[i : i + rows]
        if bias is not None:
            block += bias[i : i + rows, None]
        apply_activation_(block, activation)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: _Size2 = (1, 1),
    pads: _Pad4 = (0, 0, 0, 0),
    groups: int = 1,
    batch_gemm: str = "exact",
) -> np.ndarray:
    """2-D convolution (cross-correlation) via im2col + GEMM.

    ``weight`` is ``(Cout, Cin/groups, kh, kw)``; ``groups == Cin``
    gives a depthwise convolution (MobileNet-style).  Packs the weight
    on every call — steady-state callers (the engine) pre-pack once and
    use :func:`conv2d_packed`.
    """
    _check_conv(x, weight.shape[0], weight.shape[1], groups)
    packed = pack_conv_weight(weight, groups)
    return conv2d_packed(
        x, packed, bias, weight.shape[2:], stride, pads, groups,
        batch_gemm=batch_gemm,
    )


def conv2d_reference(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: _Size2 = (1, 1),
    pads: _Pad4 = (0, 0, 0, 0),
    groups: int = 1,
) -> np.ndarray:
    """The original sliding-window conv (tensordot / grouped einsum).

    Kept verbatim as the oracle for the GEMM bit-exactness tests and as
    the "before" kernel in the engine benchmarks.  Batched inputs run
    the frame loop a batched fast path must match — the literal
    per-frame oracle.
    """
    _check_map(x, "conv2d_reference")
    if x.ndim == 4:
        return np.stack(
            [
                conv2d_reference(
                    np.ascontiguousarray(x[:, b]), weight, bias, stride,
                    pads, groups,
                )
                for b in range(x.shape[1])
            ],
            axis=1,
        )
    _check_conv(x, weight.shape[0], weight.shape[1], groups)
    xp = pad2d(x, pads)
    win = _windows(xp, weight.shape[2:], stride)
    if groups == 1:
        out = np.tensordot(weight, win, axes=([1, 2, 3], [0, 3, 4]))
    else:
        c_per_g = x.shape[0] // groups
        o_per_g = weight.shape[0] // groups
        win_g = win.reshape(groups, c_per_g, *win.shape[1:])
        w_g = weight.reshape(groups, o_per_g, c_per_g, *weight.shape[2:])
        out = np.einsum("gihwkl,goikl->gohw", win_g, w_g)
        out = out.reshape(weight.shape[0], *out.shape[2:])
    if bias is not None:
        out = out + bias[:, None, None]
    return ensure_f32c(out)


def maxpool2d(
    x: np.ndarray,
    kernel: _Size2,
    stride: _Size2,
    pads: _Pad4 = (0, 0, 0, 0),
    out_scratch: Optional[ScratchPad] = None,
) -> np.ndarray:
    """Max pooling; padded cells use -inf so they never win.

    Accumulates the ``kh·kw`` kernel taps with vectorised ``np.maximum``
    over strided slices — bit-exact with the windowed reference (max is
    order-free) and much faster than reducing a 5-D strided view.  With
    ``out_scratch`` the result lives in (and aliases) the arena.

    The tap path is fully general: non-square inputs, non-square
    kernels, asymmetric padding and batched ``(C, B, H, W)`` maps all
    stay on this fast route (the guard rejects anything else instead of
    silently pooling the wrong axes), so tiled and batched execution
    never fall back to the windowed reference.
    """
    _check_map(x, "maxpool2d")
    top, bottom, left, right = pads
    if any(pads):
        if min(pads) < 0:
            raise ValueError(f"negative padding {pads}")
        xp = np.full(
            (*x.shape[:-2], x.shape[-2] + top + bottom, x.shape[-1] + left + right),
            -np.inf,
            dtype=x.dtype,
        )
        xp[..., top : top + x.shape[-2], left : left + x.shape[-1]] = x
    else:
        xp = x
    kh, kw = kernel
    out_hw = _out_hw(xp, kernel, stride)
    shape = (*x.shape[:-2], *out_hw)
    out = out_scratch.take(shape) if out_scratch is not None else np.empty(shape, np.float32)
    np.copyto(out, _tap(xp, 0, 0, stride, out_hw))
    for i in range(kh):
        for j in range(kw):
            if i == 0 and j == 0:
                continue
            np.maximum(out, _tap(xp, i, j, stride, out_hw), out=out)
    return out


def maxpool2d_reference(
    x: np.ndarray, kernel: _Size2, stride: _Size2, pads: _Pad4 = (0, 0, 0, 0)
) -> np.ndarray:
    """The original windowed max pooling (oracle / benchmark baseline)."""
    _check_map(x, "maxpool2d_reference")
    top, bottom, left, right = pads
    if any(pads):
        xp = np.full(
            (*x.shape[:-2], x.shape[-2] + top + bottom, x.shape[-1] + left + right),
            -np.inf,
            dtype=x.dtype,
        )
        xp[..., top : top + x.shape[-2], left : left + x.shape[-1]] = x
    else:
        xp = x
    win = _windows(xp, kernel, stride)
    return np.ascontiguousarray(win.max(axis=(-2, -1)), dtype=np.float32)


def avgpool2d(
    x: np.ndarray, kernel: _Size2, stride: _Size2, pads: _Pad4 = (0, 0, 0, 0)
) -> np.ndarray:
    """Average pooling with ``count_include_pad`` semantics (divisor is
    always kh·kw), which keeps tiled execution bit-exact at borders.

    Stays on the windowed sum: tap-accumulation would change the float
    summation order and break bitwise reproducibility against existing
    traces.  Average pools are rare (one per classification model), so
    the fast path gains nothing by touching this.  The batch axis only
    widens the window view — each plane's kh·kw reduction keeps the
    single-frame accumulation order, so batched slices stay bit-exact.
    """
    _check_map(x, "avgpool2d")
    xp = pad2d(x, pads)
    win = _windows(xp, kernel, stride)
    out = win.sum(axis=(-2, -1)) / float(kernel[0] * kernel[1])
    return ensure_f32c(out)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, slope: float = LEAKY_SLOPE) -> np.ndarray:
    return np.where(x > 0, x, slope * x).astype(x.dtype)


def relu6(x: np.ndarray) -> np.ndarray:
    """MobileNet's clipped ReLU."""
    return np.clip(x, 0.0, 6.0)


def apply_activation(x: np.ndarray, activation: str) -> np.ndarray:
    """Dispatch by activation name ("linear" is identity)."""
    if activation == "relu":
        return relu(x)
    if activation == "leaky_relu":
        return leaky_relu(x)
    if activation == "relu6":
        return relu6(x)
    if activation == "linear":
        return x
    raise ValueError(f"unknown activation {activation!r}")


def apply_activation_(x: np.ndarray, activation: str) -> np.ndarray:
    """In-place activation for caller-owned arrays (fresh conv outputs).

    Bitwise identical to :func:`apply_activation` for every supported
    activation; leaky ReLU needs one temporary for the scaled branch but
    still writes through ``x``.
    """
    if activation == "relu":
        np.maximum(x, 0.0, out=x)
        return x
    if activation == "leaky_relu":
        np.copyto(x, x * np.asarray(LEAKY_SLOPE, dtype=x.dtype), where=x < 0)
        return x
    if activation == "relu6":
        np.clip(x, 0.0, 6.0, out=x)
        return x
    if activation == "linear":
        return x
    raise ValueError(f"unknown activation {activation!r}")


def batch_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch normalisation (per-channel affine).

    Broadcasts over whatever trails the channel axis, so single-frame
    ``(C, H, W)`` and batched ``(C, B, H, W)`` maps share the path.
    """
    scale = gamma / np.sqrt(var + eps)
    shift = beta - mean * scale
    bshape = scale.shape + (1,) * (x.ndim - 1)
    return (x * scale.reshape(bshape) + shift.reshape(bshape)).astype(np.float32)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Fully-connected layer: weight is (out_features, in_features).

    The matvec output is fresh, so the bias adds in place — one
    allocation instead of three for the big VGG16 head layers.
    """
    out = weight @ x
    if out.dtype != np.float32:
        out = out.astype(np.float32)
    out += bias
    return out


def softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max()
    exp = np.exp(shifted)
    return (exp / exp.sum()).astype(np.float32)
