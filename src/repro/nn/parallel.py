"""Shared thread pool for intra-node parallel execution.

Numpy's BLAS kernels release the GIL, so independent convolutions —
inception branches of a :class:`~repro.models.graph.BlockUnit`, or the
per-device tiles of a plan executed locally — genuinely overlap on a
multi-core host when dispatched from threads.  This module owns one
process-wide :class:`~concurrent.futures.ThreadPoolExecutor` shared by
the engine, the tile runtime and the local plan executor.

The worker count comes from the ``REPRO_THREADS`` environment variable
(default: the cores this process may use).  ``REPRO_THREADS=1`` — or a
single-core host, like the paper's Raspberry Pi 3s — disables the pool
entirely and every caller falls back to plain serial loops, so the
serial path stays the behavioural reference.  Nested :func:`run_parallel`
calls from inside a pool worker also run serially, which both avoids
pool-starvation deadlocks and keeps the work units coarse.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = [
    "configured_threads",
    "set_threads",
    "get_pool",
    "run_parallel",
    "shutdown_pool",
]

_T = TypeVar("_T")

_lock = threading.Lock()
_pool: Optional[ThreadPoolExecutor] = None
_threads: Optional[int] = None


class _Flags(threading.local):
    inside_pool = False


_flags = _Flags()


def _default_threads() -> int:
    env = os.environ.get("REPRO_THREADS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"REPRO_THREADS={env!r} is not an integer") from exc
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


def configured_threads() -> int:
    """The worker count currently in effect."""
    global _threads
    with _lock:
        if _threads is None:
            _threads = _default_threads()
        return _threads


def set_threads(n: Optional[int]) -> None:
    """Override the worker count (``None`` re-reads the environment).

    Tears down any existing pool; the next :func:`run_parallel` call
    builds a fresh one.  Intended for tests and benchmarks.
    """
    global _pool, _threads
    if n is not None and n < 1:
        raise ValueError("thread count must be >= 1")
    with _lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
            _pool = None
        _threads = n


def shutdown_pool() -> None:
    """Stop the shared pool (it is rebuilt lazily on next use)."""
    global _pool
    with _lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
            _pool = None


def get_pool() -> Optional[ThreadPoolExecutor]:
    """The shared executor, or ``None`` when running serially."""
    global _pool
    n = configured_threads()
    if n <= 1:
        return None
    with _lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=n, thread_name_prefix="repro-nn"
            )
        return _pool


def run_parallel(thunks: "Sequence[Callable[[], _T]]") -> "List[_T]":
    """Run thunks concurrently on the shared pool, preserving order.

    Falls back to a plain serial loop when the pool is disabled, when
    there is a single thunk, or when called from inside a pool worker
    (nested fan-out).  Exceptions propagate to the caller either way.
    """
    if len(thunks) <= 1 or _flags.inside_pool:
        return [thunk() for thunk in thunks]
    pool = get_pool()
    if pool is None:
        return [thunk() for thunk in thunks]

    def call(thunk: "Callable[[], _T]") -> _T:
        _flags.inside_pool = True
        try:
            return thunk()
        finally:
            _flags.inside_pool = False

    futures = [pool.submit(call, thunk) for thunk in thunks]
    return [future.result() for future in futures]
