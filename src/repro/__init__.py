"""PICO — pipelined cooperative CNN inference on heterogeneous IoT edge
clusters.

A full reproduction of "Towards Efficient Inference: Adaptively
Cooperate in Heterogeneous IoT Edge Cluster" (ICDCS 2021): the PICO
planner (DP + greedy heterogeneous adaptation), the LW/EFL/OFL
baselines, the APICO adaptive switcher, a numpy CNN engine with
bit-exact tiled execution, a discrete-event cluster simulator, and a
real multiprocess pipeline runtime.

Quick start::

    from repro import plan, evaluate
    from repro.models import vgg16
    from repro.cluster import pi_cluster

    p = plan(vgg16(), pi_cluster(8, 600))
    print(p.describe())
    print(evaluate(vgg16(), p))
"""

from repro.adaptive import AdaptiveSwitcher, build_apico_switcher
from repro.cluster import (
    Cluster,
    Device,
    heterogeneous_cluster,
    pi_cluster,
    raspberry_pi,
    simulate_adaptive,
    simulate_plan,
    utilization_table,
)
from repro.core import (
    PipelinePlan,
    PlanCost,
    StagePlan,
    bfs_optimal,
    dump_plan,
    load_plan,
    plan_cost,
)
from repro.report import render_plan, render_timeline
from repro.cost import CostOptions, NetworkModel, wifi_50mbps
from repro.models import get_model
from repro.nn import Engine, init_weights
from repro.runtime import (
    DistributedPipeline,
    InProcTransport,
    PipelineSession,
    PlanProgram,
    SimTransport,
    compile_plan,
)
from repro.schemes import (
    EarlyFusedScheme,
    LayerWiseScheme,
    OptimalFusedScheme,
    PicoScheme,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveSwitcher",
    "Cluster",
    "CostOptions",
    "Device",
    "DistributedPipeline",
    "EarlyFusedScheme",
    "Engine",
    "InProcTransport",
    "LayerWiseScheme",
    "NetworkModel",
    "OptimalFusedScheme",
    "PicoScheme",
    "PipelinePlan",
    "PipelineSession",
    "PlanCost",
    "PlanProgram",
    "SimTransport",
    "StagePlan",
    "bfs_optimal",
    "compile_plan",
    "dump_plan",
    "build_apico_switcher",
    "evaluate",
    "get_model",
    "heterogeneous_cluster",
    "init_weights",
    "load_plan",
    "pi_cluster",
    "plan",
    "plan_cost",
    "raspberry_pi",
    "render_plan",
    "render_timeline",
    "simulate_adaptive",
    "simulate_plan",
    "utilization_table",
    "wifi_50mbps",
]


def plan(model, cluster, network=None, **kwargs) -> PipelinePlan:
    """Plan a PICO pipeline for ``model`` on ``cluster``.

    Convenience wrapper over :class:`~repro.schemes.PicoScheme`;
    ``network`` defaults to the paper's 50 Mbps WiFi.
    """
    network = network or wifi_50mbps()
    return PicoScheme(**kwargs).plan(model, cluster, network)


def evaluate(model, pipeline_plan, network=None, options=None) -> PlanCost:
    """Analytic period/latency of a plan (Eq. 9-11)."""
    network = network or wifi_50mbps()
    options = options or CostOptions()
    return plan_cost(model, pipeline_plan, network, options)
