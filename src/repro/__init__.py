"""PICO — pipelined cooperative CNN inference on heterogeneous IoT edge
clusters.

A full reproduction of "Towards Efficient Inference: Adaptively
Cooperate in Heterogeneous IoT Edge Cluster" (ICDCS 2021): the PICO
planner (DP + greedy heterogeneous adaptation), the LW/EFL/OFL
baselines, the APICO adaptive switcher, a numpy CNN engine with
bit-exact tiled execution, a discrete-event cluster simulator, a real
multiprocess pipeline runtime, and a fault-tolerance layer (failure
detection, retry/backoff, churn-driven re-planning).

Quick start::

    import repro
    from repro.models import vgg16

    cluster = repro.pi_cluster(8, 600)
    result = repro.simulate(
        vgg16(), repro.get_scheme("pico"), cluster,
        arrivals=[i * 0.5 for i in range(20)],
    )
    print(result.avg_latency, result.throughput)
"""

from repro.adaptive import AdaptiveSwitcher, build_apico_switcher
from repro.cluster import (
    Cluster,
    Device,
    heterogeneous_cluster,
    pi_cluster,
    raspberry_pi,
    utilization_table,
)
from repro.cluster.simulator import simulate_adaptive as _simulate_adaptive
from repro.cluster.simulator import simulate_plan as _simulate_plan
from repro.core import (
    PipelinePlan,
    PlanCost,
    StagePlan,
    bfs_optimal,
    dump_plan,
    load_plan,
    plan_cost,
)
from repro.report import render_plan, render_timeline
from repro.cost import CostOptions, NetworkModel, wifi_50mbps
from repro.models import get_model
from repro.nn import Engine, init_weights
from repro.runtime import (
    DistributedPipeline,
    FaultSchedule,
    InProcTransport,
    PipelineSession,
    PlanProgram,
    RuntimeConfig,
    ShmTransport,
    SimTransport,
    TcpTransport,
    Tracer,
    churn_replanner,
    compile_plan,
)
from repro.schemes import (
    EarlyFusedScheme,
    LayerWiseScheme,
    OptimalFusedScheme,
    PicoScheme,
    Scheme,
    available_schemes,
    get_scheme,
)
from repro.serve import FrameRecord, PipelineServer, ServeResult, ServerConfig
from repro.sim import (
    ChurnEvent,
    NetworkLink,
    SimResult,
    SimStats,
    TaskRecord,
    Topology,
    correlated_churn,
    simulate_scenario,
)
from repro.workload import (
    ArrivalProcess,
    available_arrivals,
    get_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)

__version__ = "2.0.0"

__all__ = [
    "AdaptiveSwitcher",
    "ArrivalProcess",
    "ChurnEvent",
    "Cluster",
    "CostOptions",
    "Device",
    "DistributedPipeline",
    "EarlyFusedScheme",
    "Engine",
    "FaultSchedule",
    "FrameRecord",
    "InProcTransport",
    "LayerWiseScheme",
    "NetworkLink",
    "NetworkModel",
    "OptimalFusedScheme",
    "PicoScheme",
    "PipelinePlan",
    "PipelineServer",
    "PipelineSession",
    "PlanCost",
    "PlanProgram",
    "RuntimeConfig",
    "Scheme",
    "ServeResult",
    "ServerConfig",
    "ShmTransport",
    "SimResult",
    "SimStats",
    "SimTransport",
    "StagePlan",
    "TaskRecord",
    "TcpTransport",
    "Topology",
    "Tracer",
    "available_arrivals",
    "available_schemes",
    "bfs_optimal",
    "build_apico_switcher",
    "churn_replanner",
    "compile_plan",
    "correlated_churn",
    "dump_plan",
    "evaluate",
    "get_arrivals",
    "get_model",
    "get_scheme",
    "heterogeneous_cluster",
    "init_weights",
    "load_plan",
    "pi_cluster",
    "plan",
    "plan_cost",
    "poisson_arrivals",
    "raspberry_pi",
    "render_plan",
    "render_timeline",
    "simulate",
    "simulate_scenario",
    "uniform_arrivals",
    "utilization_table",
    "wifi_50mbps",
]


def plan(model, cluster, network=None, **kwargs) -> PipelinePlan:
    """Plan a PICO pipeline for ``model`` on ``cluster``.

    Convenience wrapper over :class:`~repro.schemes.PicoScheme`;
    ``network`` defaults to the paper's 50 Mbps WiFi.
    """
    network = network or wifi_50mbps()
    return PicoScheme(**kwargs).plan(model, cluster, network)


def evaluate(model, pipeline_plan, network=None, options=None) -> PlanCost:
    """Analytic period/latency of a plan (Eq. 9-11)."""
    network = network or wifi_50mbps()
    options = options or CostOptions()
    return plan_cost(model, pipeline_plan, network, options)


def simulate(
    model,
    plan_or_scheme,
    cluster=None,
    *,
    network=None,
    topology=None,
    arrivals=None,
    options=None,
    faults=None,
    trace=None,
    shared_medium=False,
    measured_services=None,
    queue_capacity=None,
    max_batch=1,
    batch_timeout=0.0,
):
    """The one simulation entry point: plan, scheme, name or switcher.

    ``plan_or_scheme`` may be

    * a scheme *name* from :func:`get_scheme` (``"pico"``, ``"lw"``,
      ``"efl"``, ``"ofl"``),
    * a :class:`~repro.schemes.Scheme` instance,
    * a ready :class:`PipelinePlan`, or
    * an :class:`AdaptiveSwitcher` (APICO switching replay).

    Schemes (and names) are planned over ``cluster`` first; ``network``
    defaults to the paper's 50 Mbps WiFi.  ``arrivals`` gives the task
    submit times in seconds.  ``faults`` — a :class:`FaultSchedule` —
    injects cluster churn (crash-at-frame); it needs a scheme (not a
    bare plan) so the survivors can be re-planned, and emits
    ``device_dead`` / ``replan`` / ``degraded`` events into ``trace``
    (the shared ``Tracer | bool | None`` contract).  ``queue_capacity``
    bounds the tasks concurrently in the system: overflow arrivals are
    shed and reported in ``SimResult.shed``.  Returns a
    :class:`~repro.cluster.simulator.SimResult`.

    ``max_batch`` / ``batch_timeout`` replay the serving layer's
    cross-frame micro-batching analytically (see
    :class:`~repro.serve.ServerConfig`): frames queued at the pipeline
    entrance coalesce into batches of up to ``max_batch`` that traverse
    the stages as one unit with the B-dependent service estimate.
    Batching composes with a plan, scheme or name plus
    ``queue_capacity``; it is not supported together with ``faults``,
    ``shared_medium``, ``measured_services`` or a switcher replay.

    ``topology`` — a :class:`Topology` — routes transfers over named
    links with per-link FIFO contention instead of the flat shared
    medium; the call then delegates to :func:`simulate_scenario`
    (which also takes churn and lazy arrival processes directly).
    ``arrivals`` may be an :class:`~repro.workload.ArrivalProcess` as
    well as a list of submit times.

    The pre-2.0 ``simulate_plan`` / ``simulate_adaptive`` aliases are
    gone; the module-level originals live on in
    :mod:`repro.cluster.simulator` for internal use.
    """
    if arrivals is None:
        raise ValueError(
            "simulate() needs arrivals= (task submit times, in seconds, "
            "or an ArrivalProcess)"
        )
    if topology is not None:
        incompatible = {
            "faults": faults is not None and not faults.empty,
            "shared_medium": shared_medium,
            "measured_services": measured_services is not None,
            "max_batch": max_batch > 1,
        }
        offending = [k for k, v in incompatible.items() if v]
        if offending:
            raise ValueError(
                f"topology= is not supported with {', '.join(offending)}; "
                "use simulate_scenario's churn= for topology-aware faults"
            )
        return simulate_scenario(
            model, plan_or_scheme, cluster,
            topology=topology, network=network, arrivals=arrivals,
            options=options, trace=trace, queue_capacity=queue_capacity,
        )
    network = network or wifi_50mbps()
    options = options or CostOptions()
    if isinstance(arrivals, ArrivalProcess) or hasattr(arrivals, "times"):
        arrivals = arrivals.sample()
    if max_batch > 1:
        if faults is not None and not faults.empty:
            raise ValueError("max_batch > 1 is not supported with faults=")
        if shared_medium:
            raise ValueError(
                "max_batch > 1 is not supported with shared_medium=True"
            )
        if measured_services is not None:
            raise ValueError(
                "max_batch > 1 is not supported with measured_services="
            )
        if isinstance(plan_or_scheme, AdaptiveSwitcher):
            raise ValueError(
                "max_batch > 1 is not supported with a switcher replay; "
                "serve through repro.serve.PipelineServer instead"
            )
    if isinstance(plan_or_scheme, AdaptiveSwitcher):
        if faults is not None and not faults.empty:
            raise ValueError(
                "faults= is not supported with an AdaptiveSwitcher replay; "
                "pass a scheme so the survivors can be re-planned"
            )
        return _simulate_adaptive(
            model, plan_or_scheme, network, arrivals, options,
            shared_medium, trace=trace, queue_capacity=queue_capacity,
        )
    scheme = None
    if isinstance(plan_or_scheme, str):
        scheme = get_scheme(plan_or_scheme)
    elif isinstance(plan_or_scheme, Scheme):
        scheme = plan_or_scheme
    if scheme is not None:
        if cluster is None:
            raise ValueError("a scheme needs cluster= to plan over")
        planned = scheme.plan(model, cluster, network, options)
        if max_batch > 1:
            return _simulate_batched(
                model, planned, network, arrivals, options, scheme.name,
                trace, queue_capacity, max_batch, batch_timeout,
            )
        return _simulate_plan(
            model, planned, network, arrivals, options,
            plan_name=scheme.name, shared_medium=shared_medium,
            measured_services=measured_services,
            faults=faults, cluster=cluster, scheme=scheme, trace=trace,
            queue_capacity=queue_capacity,
        )
    if isinstance(plan_or_scheme, PipelinePlan):
        if faults is not None and faults.crashes:
            raise ValueError(
                "simulating crash churn needs a scheme (or scheme name) "
                "to re-plan the survivors — a bare plan cannot be rebuilt"
            )
        if max_batch > 1:
            return _simulate_batched(
                model, plan_or_scheme, network, arrivals, options,
                plan_or_scheme.mode, trace, queue_capacity,
                max_batch, batch_timeout,
            )
        return _simulate_plan(
            model, plan_or_scheme, network, arrivals, options,
            shared_medium=shared_medium,
            measured_services=measured_services,
            faults=faults, trace=trace, queue_capacity=queue_capacity,
        )
    raise TypeError(
        "plan_or_scheme must be a PipelinePlan, Scheme, scheme name or "
        f"AdaptiveSwitcher, not {type(plan_or_scheme).__name__}"
    )


def _simulate_batched(
    model, plan, network, arrivals, options, plan_name, trace,
    queue_capacity, max_batch, batch_timeout,
):
    """Analytic micro-batching replay behind :func:`simulate`.

    Drives the serving layer's batched virtual-clock path
    (:class:`~repro.serve.PipelineServer` over a zero-compute
    :class:`SimTransport`) and repackages the records as a
    :class:`~repro.cluster.simulator.SimResult`.  ``started`` in the
    task records is the admission instant — batch forming and stage
    queueing both live inside the reported latency.  Device busy time
    accrues per batch from the timing tables, each stage share scaled
    by its batched-service ratio.
    """
    from repro.cluster.simulator import SimResult, TaskRecord
    from repro.runtime.program import compile_plan as _compile_plan
    from repro.runtime.timing import plan_timing as _plan_timing
    from repro.serve import PipelineServer, ServerConfig

    engine = Engine(model, init_weights(model, seed=0))
    transport = SimTransport(engine, network, options, compute=False)
    if queue_capacity is None:
        config = ServerConfig(
            queue_capacity=max(1, len(arrivals)) + max_batch,
            policy="block",
            max_batch=max_batch, batch_timeout=batch_timeout,
        )
    else:
        config = ServerConfig(
            queue_capacity=queue_capacity, policy="shed",
            max_batch=max_batch, batch_timeout=batch_timeout,
        )
    program = _compile_plan(model, plan)
    with PipelineServer(program, transport, config, tracer=trace) as server:
        served = server.serve(len(arrivals), arrivals=list(arrivals))
    timing = _plan_timing(model, plan, network, options, name=plan_name)
    device_busy: dict = {}
    for record in served.completed:
        for st in timing.stages:
            scale = (
                st.batched_service(record.batch) / (st.service * record.batch)
                if st.service > 0
                else 0.0
            )
            for device_name, share in st.busy_shares:
                device_busy[device_name] = (
                    device_busy.get(device_name, 0.0) + share * scale
                )
    tasks = [
        TaskRecord(r.frame, r.arrival, r.admitted_at, r.completion, plan_name)
        for r in served.completed
    ]
    usage = {plan_name: len(tasks)} if tasks else {}
    return SimResult(
        tasks,
        served.makespan,
        device_busy,
        usage,
        served.trace,
        tuple(r.frame for r in served.shed),
    )
