"""Analytic cost model: FLOPs, communication, stage and pipeline timing."""

from repro.cost.comm import NetworkModel, region_bytes, wifi_50mbps
from repro.cost.flops import (
    CostOptions,
    LayerProfile,
    full_unit_flops,
    head_flops,
    layer_flops,
    layer_profiles,
    model_flops,
    segment_flops,
    segment_owned_flops,
    unit_flops,
)
from repro.cost.profiler import CalibrationResult, calibrate_host, fit_alpha
from repro.cost.stage_cost import (
    DeviceCost,
    StageCost,
    homogeneous_stage_time,
    single_device_time,
    stage_time,
)
from repro.cost.tables import (
    SegmentCostTable,
    SegmentTable,
    get_cost_table,
    get_segment_table,
)

__all__ = [
    "CalibrationResult",
    "CostOptions",
    "DeviceCost",
    "LayerProfile",
    "NetworkModel",
    "SegmentCostTable",
    "SegmentTable",
    "StageCost",
    "get_cost_table",
    "get_segment_table",
    "calibrate_host",
    "fit_alpha",
    "full_unit_flops",
    "head_flops",
    "homogeneous_stage_time",
    "layer_flops",
    "layer_profiles",
    "model_flops",
    "region_bytes",
    "segment_flops",
    "segment_owned_flops",
    "single_device_time",
    "stage_time",
    "unit_flops",
    "wifi_50mbps",
]
