"""FLOP accounting (paper Eq. 2–4).

``f(l_i; F) = k_h * k_w * c_in * h * w * c_out`` for a conv layer
producing an ``h × w`` output region (Eq. 2, generalised to non-square
kernels).  Pool layers "require far fewer FLOPs than conv layers" and
are ignored by default, exactly as the paper does; set
``CostOptions(include_pool=True)`` to count them.

Besides the *actual* FLOPs of a fused tile (with halo overlap, Eq. 4),
this module computes the *owned* FLOPs — each device's disjoint share,
obtained by stride-projecting its final output partition backwards.
``actual − owned`` is the redundant computation reported in the paper's
Table I and Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.models.graph import BlockUnit, LayerUnit, Model, PlanUnit
from repro.models.layers import ConvSpec, PoolSpec, SpatialLayer
from repro.partition.fused import chain_backprop, unit_input_region, unit_owned_input
from repro.partition.regions import Region

__all__ = [
    "CostOptions",
    "layer_flops",
    "unit_flops",
    "full_unit_flops",
    "segment_flops",
    "segment_owned_flops",
    "model_flops",
    "head_flops",
    "LayerProfile",
    "layer_profiles",
]


@dataclass(frozen=True)
class CostOptions:
    """Knobs of the analytic cost model."""

    include_pool: bool = False  # paper ignores pool FLOPs (Eq. 2 remark)
    include_head: bool = True  # account FC layers to the final stage
    bytes_per_value: int = 4  # float32 feature maps
    #: Model WLAN contention across concurrent pipeline stages: all
    #: stages share one medium, so a pipelined plan's period is bounded
    #: below by the total per-period communication (extension; the
    #: paper's Eq. 10 assumes stage transfers do not collide).
    shared_medium: bool = False


DEFAULT_OPTIONS = CostOptions()


def layer_flops(
    layer: SpatialLayer, out_region: Region, options: CostOptions = DEFAULT_OPTIONS
) -> float:
    """FLOPs for one layer producing ``out_region`` (Eq. 2)."""
    if out_region.empty:
        return 0.0
    kh, kw = layer.kernel_size
    if isinstance(layer, ConvSpec):
        in_per_group = layer.in_channels // layer.groups
        return float(kh * kw * in_per_group * out_region.area * layer.out_channels)
    assert isinstance(layer, PoolSpec)
    if not options.include_pool:
        return 0.0
    return float(kh * kw * layer.channels * out_region.area)


def unit_flops(
    unit: PlanUnit,
    in_hw: "Tuple[int, int]",
    out_region: Region,
    options: CostOptions = DEFAULT_OPTIONS,
) -> float:
    """FLOPs for one plan unit producing ``out_region`` of its output.

    Block units sum over every internal layer, with regions
    back-propagated per path (halo included)."""
    if out_region.empty:
        return 0.0
    if isinstance(unit, LayerUnit):
        return layer_flops(unit.layer, out_region, options)
    assert isinstance(unit, BlockUnit)
    total = 0.0
    for path in unit.paths:
        if not path:
            continue  # identity shortcut: zero FLOPs
        tiles = chain_backprop(path, in_hw, out_region)
        for tile in tiles.tiles:
            total += layer_flops(tile.layer, tile.output, options)
    return total


def full_unit_flops(
    model: Model, unit_index: int, options: CostOptions = DEFAULT_OPTIONS
) -> float:
    """FLOPs of unit ``unit_index`` over its entire output map."""
    _, h_in, w_in = model.in_shape(unit_index)
    _, h_out, w_out = model.out_shape(unit_index)
    return unit_flops(
        model.units[unit_index], (h_in, w_in), Region.full(h_out, w_out), options
    )


def segment_flops(
    model: Model,
    start: int,
    end: int,
    out_region: Region,
    options: CostOptions = DEFAULT_OPTIONS,
) -> float:
    """Eq. (4): FLOPs a device spends producing ``out_region`` of unit
    ``end - 1`` with the fused segment ``[start, end)`` — halo included."""
    if not 0 <= start < end <= model.n_units:
        raise ValueError(f"bad segment [{start}, {end}) for {model.n_units} units")
    total = 0.0
    region = out_region
    for idx in range(end - 1, start - 1, -1):
        _, h, w = model.in_shape(idx)
        total += unit_flops(model.units[idx], (h, w), region, options)
        region = unit_input_region(model.units[idx], (h, w), region)
    return total


def segment_owned_flops(
    model: Model,
    start: int,
    end: int,
    out_region: Region,
    options: CostOptions = DEFAULT_OPTIONS,
) -> float:
    """The device's disjoint share of segment FLOPs.

    At each unit the owned output region is the stride-only projection
    of the final partition; owned FLOPs are the unit's full FLOPs scaled
    by the owned area fraction.  Summing over a stage's devices yields
    exactly the segment's full-map FLOPs, so redundancy ratios are
    well-defined."""
    if not 0 <= start < end <= model.n_units:
        raise ValueError(f"bad segment [{start}, {end}) for {model.n_units} units")
    total = 0.0
    owned = out_region
    for idx in range(end - 1, start - 1, -1):
        _, h_out, w_out = model.out_shape(idx)
        full_area = h_out * w_out
        if full_area > 0 and not owned.empty:
            total += full_unit_flops(model, idx, options) * owned.area / full_area
        _, h, w = model.in_shape(idx)
        owned = unit_owned_input(model.units[idx], (h, w), owned)
    return total


def head_flops(model: Model) -> float:
    """Multiply–accumulate count of the dense head."""
    return float(sum(d.in_features * d.out_features for d in model.head))


def model_flops(model: Model, options: CostOptions = DEFAULT_OPTIONS) -> float:
    """Full single-inference FLOPs of the model."""
    total = sum(full_unit_flops(model, i, options) for i in range(model.n_units))
    if options.include_head:
        total += head_flops(model)
    return total


@dataclass(frozen=True)
class LayerProfile:
    """Per-layer computation and communication profile (paper Fig. 2)."""

    name: str
    kind: str
    flops: float
    output_bytes: int


def layer_profiles(
    model: Model, options: CostOptions = DEFAULT_OPTIONS
) -> "List[LayerProfile]":
    """Per-layer FLOPs and output sizes across the whole model
    (block internals flattened), reproducing Fig. 2's data."""
    profiles = []
    for info in model.iter_layers():
        c, h, w = info.out_shape
        region = Region.full(h, w)
        profiles.append(
            LayerProfile(
                info.layer.name,
                info.layer.kind,
                layer_flops(info.layer, region, options),
                c * h * w * options.bytes_per_value,
            )
        )
    return profiles
