"""Stage and pipeline timing (paper Eq. 5–11).

A stage executes a fused unit segment ``[start, end)`` over a set of
``(device, output-region)`` assignments.  Its cost (Eq. 9) is

    T(S) = max_k t_comp(d_k)  +  Σ_k t_comm(d_f, d_k)

— compute is parallel (Eq. 6), communication shares the medium (Eq. 8).
The pipeline *period* is the maximum stage cost (Eq. 10), its *latency*
the sum (Eq. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.cluster.device import Device
from repro.cost.comm import NetworkModel, region_bytes
from repro.cost.flops import (
    CostOptions,
    DEFAULT_OPTIONS,
    head_flops,
    segment_flops,
    segment_owned_flops,
)
from repro.models.graph import Model
from repro.partition.fused import segment_input_region
from repro.partition.regions import Region
from repro.partition.strips import equal_partition, strip_regions

__all__ = ["DeviceCost", "StageCost", "stage_time", "branch_stage_time",
           "channel_stage_time", "channel_slice_flops",
           "homogeneous_stage_time", "single_device_time"]

Assignment = Tuple[Device, Region]


@dataclass(frozen=True)
class DeviceCost:
    """One device's share of a stage."""

    device: Device
    out_region: Region
    in_region: Region
    flops: float
    owned_flops: float
    t_comp: float
    t_comm: float

    @property
    def redundant_flops(self) -> float:
        return max(0.0, self.flops - self.owned_flops)

    @property
    def redundancy_ratio(self) -> float:
        """Fraction of this device's computation that is halo overlap."""
        if self.flops <= 0:
            return 0.0
        return self.redundant_flops / self.flops


@dataclass(frozen=True)
class StageCost:
    """Aggregate cost of one stage (Eq. 9)."""

    start: int
    end: int
    devices: Tuple[DeviceCost, ...]
    t_comp: float  # Eq. 6: max over devices
    t_comm: float  # Eq. 8: sum over devices
    t_head: float = 0.0  # dense head, serial on the stitching device

    @property
    def total(self) -> float:
        return self.t_comp + self.t_comm + self.t_head


def stage_time(
    model: Model,
    start: int,
    end: int,
    assignments: "Sequence[Assignment]",
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    with_head: bool = False,
) -> StageCost:
    """Cost of a stage executing units ``[start, end)`` with the given
    ``(device, final-output-region)`` assignments.

    ``with_head`` adds the dense-head compute (serial, on the fastest
    assigned device) — used by segments that end at the final unit.
    """
    if not assignments:
        raise ValueError("stage needs at least one device assignment")
    c_in = model.in_shape(start)[0]
    c_out = model.out_shape(end - 1)[0]
    device_costs = []
    for device, out_region in assignments:
        if out_region.empty:
            device_costs.append(
                DeviceCost(device, out_region, out_region, 0.0, 0.0, 0.0, 0.0)
            )
            continue
        in_region = segment_input_region(model, start, end, out_region)
        flops = segment_flops(model, start, end, out_region, options)
        owned = segment_owned_flops(model, start, end, out_region, options)
        t_comp = device.compute_time(flops)
        nbytes = region_bytes(c_in, in_region, options.bytes_per_value) + region_bytes(
            c_out, out_region, options.bytes_per_value
        )
        t_comm = network.transfer_time(nbytes)
        device_costs.append(
            DeviceCost(device, out_region, in_region, flops, owned, t_comp, t_comm)
        )
    t_head = 0.0
    if with_head and options.include_head and model.head:
        fastest = max((dc.device for dc in device_costs), key=lambda d: d.capacity)
        t_head = fastest.compute_time(head_flops(model))
    return StageCost(
        start,
        end,
        tuple(device_costs),
        t_comp=max(dc.t_comp for dc in device_costs),
        t_comm=sum(dc.t_comm for dc in device_costs),
        t_head=t_head,
    )


def branch_stage_time(
    model: Model,
    unit_index: int,
    assignments: "Sequence[Tuple[Device, Tuple[int, ...]]]",
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    with_head: bool = False,
) -> StageCost:
    """Cost of a *branch-parallel* stage over one concat block.

    Each device executes whole paths of the block over the full spatial
    map: it receives the union input region its paths need and returns
    its paths' output channels.  Channel outputs are disjoint, so owned
    FLOPs equal actual FLOPs — branch partitioning has zero redundancy
    (its price is that a single path cannot be split).
    """
    from repro.partition.branches import (
        path_flops,
        path_input_region,
        path_out_channels,
    )

    if not assignments:
        raise ValueError("stage needs at least one device assignment")
    flops_per_path = path_flops(model, unit_index, options)
    channels_per_path = path_out_channels(model, unit_index)
    covered = [idx for _, paths in assignments for idx in paths]
    if sorted(covered) != list(range(len(flops_per_path))):
        raise ValueError(
            f"path groups {covered} must cover every path of unit "
            f"{model.units[unit_index].name} exactly once"
        )
    c_in = model.in_shape(unit_index)[0]
    _, oh, ow = model.out_shape(unit_index)
    device_costs = []
    for device, paths in assignments:
        if not paths:
            empty = Region.from_bounds(0, 0, 0, 0)
            device_costs.append(
                DeviceCost(device, empty, empty, 0.0, 0.0, 0.0, 0.0)
            )
            continue
        flops = sum(flops_per_path[i] for i in paths)
        in_region = path_input_region(model, unit_index, paths)
        out_channels = sum(channels_per_path[i] for i in paths)
        nbytes = region_bytes(c_in, in_region, options.bytes_per_value) + (
            out_channels * oh * ow * options.bytes_per_value
        )
        device_costs.append(
            DeviceCost(
                device,
                Region.full(oh, ow),
                in_region,
                flops,
                flops,  # disjoint channels: nothing is redundant
                device.compute_time(flops),
                network.transfer_time(nbytes),
            )
        )
    t_head = 0.0
    if with_head and options.include_head and model.head:
        fastest = max((dc.device for dc in device_costs), key=lambda d: d.capacity)
        t_head = fastest.compute_time(head_flops(model))
    return StageCost(
        unit_index,
        unit_index + 1,
        tuple(device_costs),
        t_comp=max(dc.t_comp for dc in device_costs),
        t_comm=sum(dc.t_comm for dc in device_costs),
        t_head=t_head,
    )


def channel_slice_flops(
    model: Model,
    unit_index: int,
    lo: int,
    hi: int,
    options: CostOptions = DEFAULT_OPTIONS,
) -> float:
    """FLOPs for producing output channels ``[lo, hi)`` of one layer
    unit over its full spatial map.

    Eq. 2 is linear in ``c_out``, so a channel slice's cost is exactly
    the channel share of the full-map cost — computed in integer
    arithmetic so the vectorized table can reproduce it bit-for-bit.
    """
    from repro.models.graph import LayerUnit
    from repro.models.layers import ConvSpec, PoolSpec

    unit = model.units[unit_index]
    if not isinstance(unit, LayerUnit):
        raise ValueError(
            f"channel-parallel stages need a layer unit, got {unit.name!r}"
        )
    if hi <= lo:
        return 0.0
    _, oh, ow = model.out_shape(unit_index)
    layer = unit.layer
    kh, kw = layer.kernel_size
    if isinstance(layer, ConvSpec):
        in_per_group = layer.in_channels // layer.groups
        return float(kh * kw * in_per_group * (hi - lo) * oh * ow)
    assert isinstance(layer, PoolSpec)
    if not options.include_pool:
        return 0.0
    return float(kh * kw * (hi - lo) * oh * ow)


def channel_stage_time(
    model: Model,
    unit_index: int,
    assignments: "Sequence[Tuple[Device, Tuple[int, int]]]",
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    with_head: bool = False,
) -> StageCost:
    """Cost of a *channel-parallel* (IOP) stage over one layer unit.

    Each device receives the unit's **full** input map (the interleave
    exchange ships every input channel because a conv output channel
    reads all of them) and returns only its own output-channel slice
    (the de-interleave gather).  Output channels are disjoint, so owned
    FLOPs equal actual FLOPs — channel partitioning pays zero halo
    redundancy; its price is the full-input broadcast per stage.
    """
    if not assignments:
        raise ValueError("stage needs at least one device assignment")
    c_out, oh, ow = model.out_shape(unit_index)
    covered = sorted(
        (lo, hi) for _, (lo, hi) in assignments if hi > lo
    )
    cursor = 0
    for lo, hi in covered:
        if lo != cursor:
            raise ValueError(
                f"channel intervals {covered} must tile [0, {c_out}) exactly"
            )
        cursor = hi
    if cursor != c_out:
        raise ValueError(
            f"channel intervals {covered} must tile [0, {c_out}) exactly"
        )
    c_in, h_in, w_in = model.in_shape(unit_index)
    full_in = Region.full(h_in, w_in)
    device_costs = []
    for device, (lo, hi) in assignments:
        if hi <= lo:
            empty = Region.from_bounds(0, 0, 0, 0)
            device_costs.append(
                DeviceCost(device, empty, empty, 0.0, 0.0, 0.0, 0.0)
            )
            continue
        flops = channel_slice_flops(model, unit_index, lo, hi, options)
        nbytes = region_bytes(c_in, full_in, options.bytes_per_value) + (
            (hi - lo) * oh * ow * options.bytes_per_value
        )
        device_costs.append(
            DeviceCost(
                device,
                Region.full(oh, ow),
                full_in,
                flops,
                flops,  # disjoint channels: nothing is redundant
                device.compute_time(flops),
                network.transfer_time(nbytes),
            )
        )
    t_head = 0.0
    if with_head and options.include_head and model.head:
        fastest = max((dc.device for dc in device_costs), key=lambda d: d.capacity)
        t_head = fastest.compute_time(head_flops(model))
    return StageCost(
        unit_index,
        unit_index + 1,
        tuple(device_costs),
        t_comp=max(dc.t_comp for dc in device_costs),
        t_comm=sum(dc.t_comm for dc in device_costs),
        t_head=t_head,
    )


def homogeneous_stage_time(
    model: Model,
    start: int,
    end: int,
    n_devices: int,
    device: Device,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    with_head: bool = False,
) -> StageCost:
    """Stage cost with ``n_devices`` copies of ``device`` and an equal
    strip partition of the segment's final output map (§IV-A1)."""
    _, h, w = model.out_shape(end - 1)
    regions = strip_regions(h, w, equal_partition(h, n_devices))
    assignments = [(device, region) for region in regions]
    return stage_time(model, start, end, assignments, network, options, with_head)


def single_device_time(
    model: Model,
    device: Device,
    options: CostOptions = DEFAULT_OPTIONS,
) -> float:
    """Wall-clock for one device running the whole model locally
    (the paper's single-device baseline for speedup ratios, Fig. 12)."""
    total = 0.0
    for idx in range(model.n_units):
        _, h, w = model.out_shape(idx)
        total += device.compute_time(
            segment_flops(model, idx, idx + 1, Region.full(h, w), options)
        )
    if options.include_head and model.head:
        total += device.compute_time(head_flops(model))
    return total
