"""Communication cost model (paper Eq. 7–8).

All devices share one WLAN of bandwidth ``b`` (paper §III-A assumes a
uniform bandwidth, the common smart-home / factory case).  The transfer
time of a feature region between the stage's frame device ``d_f`` and a
compute device is ``(bytes_in + bytes_out) / b``; stage communication is
the *sum* over compute devices because the wireless medium is shared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partition.regions import Region

__all__ = ["NetworkModel", "coerce_network", "region_bytes", "wifi_50mbps"]


@dataclass(frozen=True)
class NetworkModel:
    """A shared-medium network with fixed bandwidth and optional
    per-message latency (extension; the paper uses pure bandwidth)."""

    bandwidth_bytes_per_s: float
    per_message_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.per_message_latency_s < 0:
            raise ValueError("latency must be non-negative")

    @classmethod
    def from_mbps(cls, mbps: float, per_message_latency_s: float = 0.0) -> "NetworkModel":
        """Construct from megabits per second (the paper's 50 Mbps AP)."""
        return cls(mbps * 1e6 / 8.0, per_message_latency_s)

    @property
    def mbps(self) -> float:
        return self.bandwidth_bytes_per_s * 8.0 / 1e6

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over the shared medium."""
        if nbytes <= 0:
            return 0.0
        return self.per_message_latency_s + nbytes / self.bandwidth_bytes_per_s


def coerce_network(network) -> "NetworkModel":
    """Normalise a ``network=`` argument to a flat :class:`NetworkModel`.

    ``None`` means the paper's 50 Mbps WiFi; a
    :class:`~repro.sim.topology.Topology` collapses through its
    ``as_network_model()`` summary (bottleneck bandwidth, mean link
    latency) — the planners cost against the flat view while the event
    engine charges the real per-link times.  Duck-typed so the cost
    layer never imports the topology layer.
    """
    if network is None:
        return wifi_50mbps()
    if isinstance(network, NetworkModel):
        return network
    collapse = getattr(network, "as_network_model", None)
    if callable(collapse):
        return collapse()
    raise TypeError(
        "network must be a NetworkModel, a Topology or None, not "
        f"{type(network).__name__}"
    )


def region_bytes(channels: int, region: Region, bytes_per_value: int = 4) -> int:
    """Size of a feature-map region: ``c × h × w`` values (Eq. 7's φ)."""
    return channels * region.area * bytes_per_value


def wifi_50mbps() -> NetworkModel:
    """The paper's testbed access point: 50 Mbps WiFi."""
    return NetworkModel.from_mbps(50.0)
