"""Per-device memory accounting.

The paper motivates cooperative inference with the "memory footprints
that are usually not available in a single IoT device" (its Pis have
2 GB, and DeepThings — the EFL baseline — exists primarily to shrink
per-device memory).  This module computes each device's peak working
set under a plan:

* **weights** — parameters of every layer in the device's segment
  (each stage device holds a full copy of its model segment);
* **activations** — the largest (input tile, output tile) pair live at
  once while executing the segment layer by layer.

``check_memory`` validates a plan against per-device budgets, which
lets deployments reject plans that a 2 GB Pi could not load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.plan import PipelinePlan
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.models.graph import BlockUnit, LayerUnit, Model
from repro.partition.fused import chain_backprop, unit_input_region
from repro.partition.regions import Region

__all__ = ["DeviceMemory", "MemoryError_", "plan_memory", "check_memory",
           "segment_weight_bytes", "segment_activation_bytes"]


class MemoryError_(RuntimeError):
    """A plan exceeds a device's memory budget (trailing underscore to
    avoid shadowing the builtin)."""


@dataclass(frozen=True)
class DeviceMemory:
    """Peak working set of one device under a plan."""

    device_name: str
    weight_bytes: int
    activation_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.activation_bytes


def segment_weight_bytes(
    model: Model, start: int, end: int, bytes_per_value: int = 4
) -> int:
    """Parameter bytes of units ``[start, end)`` (+ head for the last
    segment — the stitching device holds the dense layers)."""
    total = 0
    for info in model.iter_layers():
        if start <= info.unit_index < end and info.layer.kind == "conv":
            total += info.layer.weight_count * bytes_per_value
    if end == model.n_units:
        total += sum(d.weight_count for d in model.head) * bytes_per_value
    return total


def segment_activation_bytes(
    model: Model,
    start: int,
    end: int,
    out_region: Region,
    bytes_per_value: int = 4,
) -> int:
    """Peak live activation bytes while executing the segment on a tile.

    Layer-by-layer execution holds one input tile and one output tile
    at a time; block units hold the union input tile plus every path
    output until the merge.  Returns the maximum over execution steps.
    """
    if out_region.empty:
        return 0
    peak = 0
    region = out_region
    for idx in range(end - 1, start - 1, -1):
        unit = model.units[idx]
        c_in, h, w = model.in_shape(idx)
        c_out = model.out_shape(idx)[0]
        in_region = unit_input_region(unit, (h, w), region)
        if isinstance(unit, LayerUnit):
            live = (
                c_in * in_region.area + c_out * region.area
            ) * bytes_per_value
        else:
            assert isinstance(unit, BlockUnit)
            # Union input stays live; path outputs accumulate for merge.
            outputs = 0
            channels = c_in
            for path in unit.paths:
                path_out = path[-1].out_channels if path else channels
                outputs += path_out * region.area
                # Peak inside a path: its own input + output tiles.
                if path:
                    tiles = chain_backprop(path, (h, w), region)
                    for tile in tiles.tiles:
                        step_live = (
                            tile.layer.in_channels * tile.input.region.area
                            + tile.layer.out_channels * tile.output.area
                        )
                        peak = max(
                            peak,
                            (c_in * in_region.area + step_live) * bytes_per_value,
                        )
            live = (c_in * in_region.area + outputs) * bytes_per_value
        peak = max(peak, live)
        region = in_region
    return peak


def plan_memory(
    model: Model,
    plan: PipelinePlan,
    options: CostOptions = DEFAULT_OPTIONS,
) -> "List[DeviceMemory]":
    """Peak memory per device (a device appearing in several phases of
    an exclusive plan reports its maximum across them)."""
    weights: "Dict[str, int]" = {}
    activations: "Dict[str, int]" = {}
    for stage in plan.stages:
        w_bytes = segment_weight_bytes(
            model, stage.start, stage.end, options.bytes_per_value
        )
        for device, region in stage.assignments:
            a_bytes = segment_activation_bytes(
                model, stage.start, stage.end, region, options.bytes_per_value
            )
            weights[device.name] = max(weights.get(device.name, 0), w_bytes)
            activations[device.name] = max(
                activations.get(device.name, 0), a_bytes
            )
    return [
        DeviceMemory(name, weights[name], activations[name])
        for name in sorted(weights)
    ]


def check_memory(
    model: Model,
    plan: PipelinePlan,
    budget_bytes: "Dict[str, int] | int",
    options: CostOptions = DEFAULT_OPTIONS,
) -> "List[DeviceMemory]":
    """Validate a plan against memory budgets.

    ``budget_bytes`` is either one budget for every device or a
    per-device-name dict.  Raises :class:`MemoryError_` naming the first
    offender; returns the per-device report otherwise.
    """
    report = plan_memory(model, plan, options)
    for entry in report:
        if isinstance(budget_bytes, dict):
            budget = budget_bytes.get(entry.device_name)
            if budget is None:
                continue
        else:
            budget = budget_bytes
        if entry.total_bytes > budget:
            raise MemoryError_(
                f"device {entry.device_name} needs {entry.total_bytes} bytes "
                f"({entry.weight_bytes} weights + {entry.activation_bytes} "
                f"activations), budget is {budget}"
            )
    return report
