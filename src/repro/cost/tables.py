"""Vectorized per-segment cost tables for the planning layer.

The DP planner (Algorithm 1), the Pareto-frontier ablation, the BFS
baseline and the Table II experiment all evaluate the Eq. (9) stage cost
``Ts(start, end, p)`` for thousands of (segment, device-count) queries.
The reference implementation (:func:`repro.cost.stage_cost.stage_time`)
re-walks the segment layer-by-layer per query — an O(units × layers)
Python recursion over :class:`~repro.partition.regions.Region` objects.

This module precomputes, once per ``(model, options)``:

* the analytic halo recurrence as *boundary maps* — for every segment
  end the row coordinate of a strip boundary is propagated backwards
  through every unit with vectorized ``clip(a·s − pad)`` arithmetic over
  the whole boundary plane at once, and
* per-row FLOP prefix tables ``G``/``H`` such that the exact fused-tile
  FLOPs of any row strip ``[a, b)`` of the segment ``[start, end)`` is
  the integer difference ``G[start][b] − H[start][a]``.

Both tables are exact integer arithmetic: every conv/pool FLOP count is
an integer, the per-layer strip area decomposes into ``hi(b) − lo(a)``
because receptive-field propagation moves interval endpoints
independently, and all totals stay far below 2**53 — so the float cost
assembled from the tables is **bit-for-bit identical** to the reference
``homogeneous_stage_time(...).total`` / ``stage_time(...).total``.  The
scalar implementations remain the exactness oracle; the equivalence is
asserted by ``tests/test_cost_tables.py``.

The one corner the closed form cannot express is a strip whose region
becomes *empty* at an intermediate layer (possible only when a layer's
padding reaches its kernel size, which no real CNN here has).  The
builder detects that case per ``(start, end)`` and flags the segment, and
every consumer transparently falls back to the scalar oracle for it.

Tables are shared process-wide through a weak registry keyed by the
model, so ``plan_pareto`` ``t_lim`` sweeps, ``bfs_optimal``, the schemes
and the adaptive switcher all reuse one table per
``(model, cluster, network, options)`` instead of rebuilding caches.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.device import Device
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS, head_flops
from repro.cost.stage_cost import branch_stage_time, stage_time
from repro.models.graph import BlockUnit, LayerUnit, Model
from repro.models.layers import ConvSpec, PoolSpec, SpatialLayer
from repro.partition.branches import assign_paths_lpt, is_branchable, path_flops
from repro.partition.fused import chain_forward_hw
from repro.partition.regions import Interval, Region
from repro.partition.strips import equal_partition

__all__ = [
    "BATCH_AMORTIZED_FRACTION",
    "SegmentTable",
    "SegmentCostTable",
    "batched_service",
    "get_segment_table",
    "get_cost_table",
]

#: Default fraction of a stage's compute-side service that is paid once
#: per *batch* rather than once per frame: the im2col pack tap loop, the
#: bias/activation epilogue block loop and the per-layer / per-stage
#: Python dispatch.  Calibrated against ``repro.bench.batch`` (the
#: committed ``BENCH_batch.json`` records the measured amortisation);
#: BENCH_engine's Amdahl note puts the non-GEMM share of the fast path
#: at roughly this level.
BATCH_AMORTIZED_FRACTION = 0.25


def batched_service(
    comm: float,
    comp: float,
    batch: int,
    amortized: float = BATCH_AMORTIZED_FRACTION,
) -> float:
    """The Eq. 9 stage service generalised to a cross-frame batch of
    ``batch`` frames: the B-dependent estimate every consumer (virtual
    clock, plan timing, M/D/1 helpers, adaptive switcher) shares.

    Communication scales linearly — every frame's tile still crosses the
    wire — while a fraction ``amortized`` of the compute-side service is
    paid once per batch and the rest once per frame:

        ``service(B) = B·comm + comp·(amortized + B·(1 − amortized))``

    ``batch == 1`` returns exactly ``comm + comp`` (the existing
    single-frame service, bit-for-bit), which keeps every B=1 timing
    contract intact.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if not 0.0 <= amortized <= 1.0:
        raise ValueError(f"amortized fraction must be in [0, 1], got {amortized}")
    if batch == 1:
        return comm + comp
    return batch * comm + comp * (amortized + batch * (1.0 - amortized))

_Size2 = Tuple[int, int]
_Cols = Tuple[int, int]
#: A row strip assignment: device plus its row interval of the segment's
#: final (full-width) output map.
StripAssignment = Tuple[Device, Interval]


def _layer_coef(layer: SpatialLayer, options: CostOptions) -> int:
    """Integer FLOPs per output *cell* of ``layer`` (Eq. 2)."""
    kh, kw = layer.kernel_size
    if isinstance(layer, ConvSpec):
        return kh * kw * (layer.in_channels // layer.groups) * layer.out_channels
    assert isinstance(layer, PoolSpec)
    if not options.include_pool:
        return 0
    return kh * kw * layer.channels


def _propagate(
    lo: np.ndarray,
    hi: np.ndarray,
    cols: _Cols,
    layer: SpatialLayer,
    in_hw: _Size2,
) -> "Tuple[np.ndarray, np.ndarray, _Cols, bool]":
    """One receptive-field step of the boundary maps.

    ``lo[a]`` / ``hi[b]`` are the propagated start/end row coordinates of
    an original output strip ``[a, b)``; the recurrence of
    :func:`repro.partition.regions.receptive_interval` moves each
    endpoint independently, so whole boundary planes advance at once.
    The returned flag is False when some adjacent boundary pair would
    collapse to an empty interval (clipped entirely away) — the only
    case where the closed form diverges from the scalar recursion.
    """
    kv, kh = layer.kernel_size
    sv, sh = layer.stride
    pv, ph = layer.padding
    h_in, w_in = in_hw
    lo2 = np.clip(lo * sv - pv, 0, h_in)
    hi2 = np.clip((hi - 1) * sv + kv - pv, 0, h_in)
    c_lo = min(max(cols[0] * sh - ph, 0), w_in)
    c_hi = min(max((cols[1] - 1) * sh + kh - ph, 0), w_in)
    ok = c_hi > c_lo and bool(np.all(hi2[1:] > lo2[:-1]))
    return lo2, hi2, (c_lo, c_hi), ok


class _EndTable:
    """All per-start tables for segments ending at one fixed unit."""

    __slots__ = ("h", "w", "c_out", "G", "H", "in_lo", "in_hi", "in_cols", "exact")

    def __init__(
        self,
        h: int,
        w: int,
        c_out: int,
        G: np.ndarray,
        H: np.ndarray,
        in_lo: np.ndarray,
        in_hi: np.ndarray,
        in_cols: "List[_Cols]",
        exact: "List[bool]",
    ) -> None:
        self.h = h
        self.w = w
        self.c_out = c_out
        self.G = G  # (end, h+1) int64: per-start FLOP prefix over hi bounds
        self.H = H  # (end, h+1) int64: per-start FLOP prefix over lo bounds
        self.in_lo = in_lo  # (end, h+1) int64: segment input row starts
        self.in_hi = in_hi  # (end, h+1) int64: segment input row ends
        self.in_cols = in_cols  # per-start input column interval
        self.exact = exact  # per-start: closed form valid?


class SegmentTable:
    """Exact integer cost geometry for every unit segment of a model.

    Built once per ``(model, options)``; :meth:`strip_flops`,
    :meth:`strip_bytes` and :meth:`stage_total` then answer any row-strip
    cost query in O(1) per strip with values bit-identical to the scalar
    oracle (``stage_time``).
    """

    def __init__(self, model: Model, options: CostOptions = DEFAULT_OPTIONS) -> None:
        self.model = model
        self.options = options
        self._head_flops = head_flops(model) if model.head else 0.0
        self._ends: "List[Optional[_EndTable]]" = [None] * (model.n_units + 1)
        for end in range(1, model.n_units + 1):
            self._ends[end] = self._build_end(end)
        self._channel_coefs: "Dict[int, int]" = {}

    # ------------------------------------------------------------------
    # table construction

    def _build_end(self, end: int) -> _EndTable:
        model, options = self.model, self.options
        c_out, h, w = model.out_shape(end - 1)
        bounds = np.arange(h + 1, dtype=np.int64)
        lo, hi = bounds.copy(), bounds.copy()
        cols: _Cols = (0, w)
        G = np.zeros(h + 1, dtype=np.int64)
        H = np.zeros(h + 1, dtype=np.int64)
        ok = True
        g_rows: "List[np.ndarray]" = [np.empty(0)] * end
        h_rows: "List[np.ndarray]" = [np.empty(0)] * end
        lo_rows: "List[np.ndarray]" = [np.empty(0)] * end
        hi_rows: "List[np.ndarray]" = [np.empty(0)] * end
        in_cols: "List[_Cols]" = [(0, 0)] * end
        exact: "List[bool]" = [False] * end
        for idx in range(end - 1, -1, -1):
            unit = model.units[idx]
            _, h_in, w_in = model.in_shape(idx)
            lo, hi, cols, ok = self._account_unit(
                unit, (h_in, w_in), lo, hi, cols, G, H, ok
            )
            g_rows[idx] = G.copy()
            h_rows[idx] = H.copy()
            lo_rows[idx] = lo
            hi_rows[idx] = hi
            in_cols[idx] = cols
            exact[idx] = ok
        return _EndTable(
            h,
            w,
            c_out,
            np.stack(g_rows),
            np.stack(h_rows),
            np.stack(lo_rows),
            np.stack(hi_rows),
            in_cols,
            exact,
        )

    def _account_unit(
        self,
        unit,
        in_hw: _Size2,
        lo: np.ndarray,
        hi: np.ndarray,
        cols: _Cols,
        G: np.ndarray,
        H: np.ndarray,
        ok: bool,
    ) -> "Tuple[np.ndarray, np.ndarray, _Cols, bool]":
        """Add one unit's FLOP contribution to ``G``/``H`` (in place) and
        propagate the boundary maps to the unit's input."""
        if isinstance(unit, LayerUnit):
            coef = _layer_coef(unit.layer, self.options)
            cw = cols[1] - cols[0]
            if coef and cw > 0:
                G += coef * cw * hi
                H += coef * cw * lo
            lo, hi, cols, step_ok = _propagate(lo, hi, cols, unit.layer, in_hw)
            return lo, hi, cols, ok and step_ok
        assert isinstance(unit, BlockUnit)
        new_lo: Optional[np.ndarray] = None
        new_hi: Optional[np.ndarray] = None
        new_cols: Optional[_Cols] = None
        for path in unit.paths:
            if path:
                plo, phi, pcols = lo, hi, cols
                sizes = chain_forward_hw(path, in_hw)
                for i in range(len(path) - 1, -1, -1):
                    layer = path[i]
                    coef = _layer_coef(layer, self.options)
                    pcw = pcols[1] - pcols[0]
                    if coef and pcw > 0:
                        G += coef * pcw * phi
                        H += coef * pcw * plo
                    plo, phi, pcols, step_ok = _propagate(
                        plo, phi, pcols, layer, sizes[i]
                    )
                    ok = ok and step_ok
            else:  # identity shortcut: needs the output region itself
                plo, phi, pcols = lo, hi, cols
            # Union hull over paths (paper §IV-B).
            new_lo = plo if new_lo is None else np.minimum(new_lo, plo)
            new_hi = phi if new_hi is None else np.maximum(new_hi, phi)
            new_cols = (
                pcols
                if new_cols is None
                else (min(new_cols[0], pcols[0]), max(new_cols[1], pcols[1]))
            )
        assert new_lo is not None and new_hi is not None and new_cols is not None
        return new_lo, new_hi, new_cols, ok

    # ------------------------------------------------------------------
    # queries

    def exact(self, start: int, end: int) -> bool:
        """Whether the closed form is valid for segment ``[start, end)``."""
        table = self._ends[end]
        assert table is not None
        return table.exact[start]

    def out_shape(self, end: int) -> "Tuple[int, int, int]":
        """(channels, height, width) of the segment's final output map."""
        table = self._ends[end]
        assert table is not None
        return table.c_out, table.h, table.w

    def strip_flops(self, start: int, end: int, rows: Interval) -> int:
        """Exact fused-tile FLOPs (Eq. 4) of the full-width row strip
        ``rows`` of segment ``[start, end)`` — integer, halo included."""
        table = self._ends[end]
        assert table is not None
        return int(table.G[start, rows.end] - table.H[start, rows.start])

    def strip_bytes(self, start: int, end: int, rows: Interval) -> int:
        """Bytes transferred for the strip: segment input region plus
        final output region (Eq. 7), matching ``region_bytes``."""
        table = self._ends[end]
        assert table is not None
        options = self.options
        c_in = self.model.in_shape(start)[0]
        c0, c1 = table.in_cols[start]
        in_h = int(table.in_hi[start, rows.end] - table.in_lo[start, rows.start])
        in_bytes = c_in * in_h * (c1 - c0) * options.bytes_per_value
        out_bytes = table.c_out * len(rows) * table.w * options.bytes_per_value
        return in_bytes + out_bytes

    def stage_total(
        self,
        start: int,
        end: int,
        assignments: "Sequence[StripAssignment]",
        network: NetworkModel,
        with_head: bool = False,
    ) -> float:
        """Eq. (9) stage cost for row-strip assignments, bit-identical to
        ``stage_time(...).total`` on the equivalent Region assignments."""
        if not assignments:
            raise ValueError("stage needs at least one device assignment")
        if not self.exact(start, end):
            return self._oracle_total(start, end, assignments, network, with_head)
        t_comp = 0.0
        t_comm = 0.0
        for device, rows in assignments:
            if rows.empty:
                continue
            flops = float(self.strip_flops(start, end, rows))
            t = device.compute_time(flops)
            if t > t_comp:
                t_comp = t
            t_comm += network.transfer_time(self.strip_bytes(start, end, rows))
        t_head = 0.0
        if with_head and self.options.include_head and self.model.head:
            fastest = max((d for d, _ in assignments), key=lambda d: d.capacity)
            t_head = fastest.compute_time(self._head_flops)
        return t_comp + t_comm + t_head

    # ------------------------------------------------------------------
    # channel-parallel (IOP) stages

    def _channel_coef(self, unit_index: int) -> int:
        """Integer FLOPs per *output channel* of the layer unit — the
        full-map Eq. 2 cost divided by ``c_out``, exact because Eq. 2 is
        linear in the output channel count."""
        coef = self._channel_coefs.get(unit_index)
        if coef is None:
            unit = self.model.units[unit_index]
            if not isinstance(unit, LayerUnit):
                raise ValueError(
                    f"channel-parallel stages need a layer unit, got {unit.name!r}"
                )
            _, oh, ow = self.model.out_shape(unit_index)
            layer = unit.layer
            kh, kw = layer.kernel_size
            if isinstance(layer, ConvSpec):
                coef = kh * kw * (layer.in_channels // layer.groups) * oh * ow
            else:
                assert isinstance(layer, PoolSpec)
                coef = kh * kw * oh * ow if self.options.include_pool else 0
            self._channel_coefs[unit_index] = coef
        return coef

    def channel_flops(self, unit_index: int, lo: int, hi: int) -> int:
        """Exact integer FLOPs of output-channel slice ``[lo, hi)`` of
        one layer unit over its full spatial map (zero halo redundancy),
        matching ``channel_slice_flops`` bit-for-bit."""
        if hi <= lo:
            return 0
        return self._channel_coef(unit_index) * (hi - lo)

    def channel_stage_total(
        self,
        unit_index: int,
        assignments: "Sequence[Tuple[Device, Tuple[int, int]]]",
        network: NetworkModel,
        with_head: bool = False,
    ) -> float:
        """Eq. (9) stage cost of a channel-parallel (IOP) stage,
        bit-identical to ``channel_stage_time(...).total``: full input
        map broadcast per active device, disjoint output-channel slices
        back, compute max / communication sum over the assignments."""
        if not assignments:
            raise ValueError("stage needs at least one device assignment")
        c_out, oh, ow = self.model.out_shape(unit_index)
        covered = sorted((lo, hi) for _, (lo, hi) in assignments if hi > lo)
        cursor = 0
        for lo, hi in covered:
            if lo != cursor:
                raise ValueError(
                    f"channel intervals {covered} must tile [0, {c_out}) exactly"
                )
            cursor = hi
        if cursor != c_out:
            raise ValueError(
                f"channel intervals {covered} must tile [0, {c_out}) exactly"
            )
        bpv = self.options.bytes_per_value
        c_in, h_in, w_in = self.model.in_shape(unit_index)
        in_bytes = c_in * h_in * w_in * bpv
        t_comp = 0.0
        t_comm = 0.0
        for device, (lo, hi) in assignments:
            if hi <= lo:
                continue
            flops = float(self.channel_flops(unit_index, lo, hi))
            t = device.compute_time(flops)
            if t > t_comp:
                t_comp = t
            t_comm += network.transfer_time(
                in_bytes + (hi - lo) * oh * ow * bpv
            )
        t_head = 0.0
        if with_head and self.options.include_head and self.model.head:
            fastest = max((d for d, _ in assignments), key=lambda d: d.capacity)
            t_head = fastest.compute_time(self._head_flops)
        return t_comp + t_comm + t_head

    def _oracle_total(
        self,
        start: int,
        end: int,
        assignments: "Sequence[StripAssignment]",
        network: NetworkModel,
        with_head: bool,
    ) -> float:
        """Scalar fallback for segments the closed form cannot express."""
        _, _, w = self.out_shape(end)
        regions = [
            (device, Region(rows, Interval(0, w))) for device, rows in assignments
        ]
        return stage_time(
            self.model, start, end, regions, network, self.options, with_head
        ).total


class SegmentCostTable:
    """Memoised ``Ts(start, end, p)`` backed by a :class:`SegmentTable`.

    Drop-in replacement for the reference
    :class:`repro.core.dp_planner.StageTimeTable`: same ``best`` /
    ``is_branch`` / ``__call__`` protocol and bit-identical values, but
    each cache miss costs O(p) table lookups instead of an O(units ×
    layers) Python recursion.  Adds :meth:`min_cost_upto`, the monotone
    bound the pruned DP uses to skip dominated split points.
    """

    def __init__(
        self,
        model: Model,
        device: Device,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
        allow_branch: bool = False,
        segments: Optional[SegmentTable] = None,
    ) -> None:
        self.model = model
        self.device = device
        self.network = network
        self.options = options
        self.allow_branch = allow_branch
        self.segments = (
            segments if segments is not None else get_segment_table(model, options)
        )
        self._cache: "Dict[Tuple[int, int, int], Tuple[float, bool]]" = {}
        self._rows_cache: "Dict[Tuple[int, int], List[Interval]]" = {}
        self._min_upto: "Dict[Tuple[int, int], List[float]]" = {}

    def _equal_rows(self, h: int, p: int) -> "List[Interval]":
        key = (h, p)
        rows = self._rows_cache.get(key)
        if rows is None:
            rows = equal_partition(h, p)
            self._rows_cache[key] = rows
        return rows

    def best(self, start: int, end: int, p: int) -> "Tuple[float, bool]":
        """(cost, is_branch) of the cheapest layout for this stage."""
        key = (start, end, p)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        _, h, _ = self.segments.out_shape(end)
        with_head = end == self.model.n_units
        strip_cost = self.segments.stage_total(
            start,
            end,
            [(self.device, rows) for rows in self._equal_rows(h, p)],
            self.network,
            with_head,
        )
        result = (strip_cost, False)
        if (
            self.allow_branch
            and end == start + 1
            and p >= 2
            and is_branchable(self.model.units[start])
        ):
            weights = path_flops(self.model, start, self.options)
            groups = assign_paths_lpt(weights, [self.device.capacity] * p)
            branch_cost = branch_stage_time(
                self.model,
                start,
                tuple((self.device, g) for g in groups),
                self.network,
                self.options,
                with_head=with_head,
            ).total
            if branch_cost < strip_cost:
                result = (branch_cost, True)
        self._cache[key] = result
        return result

    def __call__(self, start: int, end: int, p: int) -> float:
        return self.best(start, end, p)[0]

    def is_branch(self, start: int, end: int, p: int) -> bool:
        return self.best(start, end, p)[1]

    def min_cost_upto(self, start: int, end: int, p_max: int) -> float:
        """``min over 1 <= p' <= p_max of Ts(start, end, p')`` — the
        cheapest any stage over this segment can be with at most
        ``p_max`` devices, used for dominance pruning in the DP."""
        mins = self._min_upto.setdefault((start, end), [])
        while len(mins) < p_max:
            cost = self(start, end, len(mins) + 1)
            mins.append(cost if not mins or cost < mins[-1] else mins[-1])
        return mins[p_max - 1]


# ----------------------------------------------------------------------
# shared registries — one geometry table per (model, options), one cost
# table per (model, device, network, options, branch) across all callers.

_SEGMENT_REGISTRY: "weakref.WeakKeyDictionary[Model, Dict[CostOptions, SegmentTable]]" = (
    weakref.WeakKeyDictionary()
)
_COST_REGISTRY: "weakref.WeakKeyDictionary[Model, Dict[tuple, SegmentCostTable]]" = (
    weakref.WeakKeyDictionary()
)


def get_segment_table(
    model: Model, options: CostOptions = DEFAULT_OPTIONS
) -> SegmentTable:
    """The shared :class:`SegmentTable` for ``(model, options)``."""
    per_model = _SEGMENT_REGISTRY.get(model)
    if per_model is None:
        per_model = {}
        _SEGMENT_REGISTRY[model] = per_model
    table = per_model.get(options)
    if table is None:
        table = SegmentTable(model, options)
        per_model[options] = table
    return table


def get_cost_table(
    model: Model,
    device: Device,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    allow_branch: bool = False,
) -> SegmentCostTable:
    """The shared :class:`SegmentCostTable` for a planner configuration.

    Repeated planner invocations — ``plan_pareto`` latency sweeps, the
    adaptive switcher re-planning on workload shifts, Table II cells —
    hit the same memoised ``Ts`` entries instead of rebuilding them.
    """
    per_model = _COST_REGISTRY.get(model)
    if per_model is None:
        per_model = {}
        _COST_REGISTRY[model] = per_model
    key = (device, network, options, allow_branch)
    table = per_model.get(key)
    if table is None:
        table = SegmentCostTable(
            model,
            device,
            network,
            options,
            allow_branch,
            segments=get_segment_table(model, options),
        )
        per_model[key] = table
    return table
