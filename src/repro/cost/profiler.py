"""Calibration of the Eq. (5) regression coefficient ``alpha_k``.

The paper estimates per-device inference time as
``t = alpha_k * FLOPs / vartheta(d_k)`` where ``alpha_k`` is "computed
by a regression model" against measured layer timings.  This module
implements that regression (least squares through the origin) plus a
host self-profiler that calibrates the numpy engine's effective FLOP/s
— used by the multiprocess runtime demo to predict its own timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["fit_alpha", "CalibrationResult", "calibrate_host"]


def fit_alpha(
    flops: "Sequence[float]", times: "Sequence[float]", capacity: float
) -> float:
    """Least-squares fit of ``alpha`` in ``t = alpha * flops / capacity``.

    Minimises ``Σ (t_i − alpha · f_i / θ)²`` over the measured
    ``(flops, seconds)`` samples.
    """
    if len(flops) != len(times):
        raise ValueError("flops and times must have equal length")
    if not flops:
        raise ValueError("need at least one sample")
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    x = np.asarray(flops, dtype=np.float64) / capacity
    y = np.asarray(times, dtype=np.float64)
    denom = float(np.dot(x, x))
    if denom == 0.0:
        raise ValueError("all FLOP samples are zero")
    alpha = float(np.dot(x, y) / denom)
    if alpha <= 0:
        raise ValueError(f"calibration produced non-positive alpha {alpha}")
    return alpha


@dataclass(frozen=True)
class CalibrationResult:
    """Host calibration output: effective FLOP/s and fit residual."""

    flops_per_second: float
    rms_residual_s: float
    samples: int


def calibrate_host(
    sizes: "Sequence[int]" = (64, 96, 128, 160),
    repeats: int = 3,
    rng_seed: int = 0,
) -> CalibrationResult:
    """Measure this host's effective matmul FLOP/s with numpy.

    Runs square matmuls (the conv engine's im2col inner loop is a
    matmul) and fits ``seconds = flops / capacity``.
    """
    rng = np.random.default_rng(rng_seed)
    flops_samples = []
    time_samples = []
    for n in sizes:
        a = rng.standard_normal((n, n)).astype(np.float32)
        b = rng.standard_normal((n, n)).astype(np.float32)
        a @ b  # warm-up
        for _ in range(repeats):
            start = time.perf_counter()
            a @ b
            elapsed = time.perf_counter() - start
            flops_samples.append(float(n) ** 3)
            time_samples.append(max(elapsed, 1e-9))
    # seconds = flops / capacity  <=>  alpha = 1 with capacity unknown.
    inv_capacity = fit_alpha(flops_samples, time_samples, capacity=1.0)
    capacity = 1.0 / inv_capacity
    predicted = np.asarray(flops_samples) / capacity
    residual = float(
        np.sqrt(np.mean((predicted - np.asarray(time_samples)) ** 2))
    )
    return CalibrationResult(capacity, residual, len(flops_samples))
