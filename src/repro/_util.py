"""Dependency-free helpers shared across subpackages."""

from __future__ import annotations

__all__ = ["out_size"]


def out_size(in_size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a conv/pool along one axis (floor mode)."""
    if in_size + 2 * padding < kernel:
        raise ValueError(
            f"input size {in_size} with padding {padding} smaller than kernel {kernel}"
        )
    return (in_size + 2 * padding - kernel) // stride + 1
