"""Fault model of the runtime core: detection, injection, recovery policy.

IoT edge clusters treat device churn as the normal case — a Pi drops
off WiFi mid-frame, a worker process dies, a link stalls.  This module
defines the three pieces every backend shares:

* :class:`RuntimeConfig` — the knobs of the fault-tolerance layer
  (timeouts, bounded exponential-backoff retries, heartbeat cadence,
  the re-plan threshold and the repartition policy), threaded through
  :func:`~repro.runtime.core.execute_stage` and the executors.
* :class:`FaultSchedule` — a deterministic fault-injection script
  (crash-at-frame, compute delay, dropped result, flaky link) honored
  by :class:`~repro.runtime.core.SimTransport` and
  :class:`~repro.runtime.core.InProcTransport`, so every recovery path
  is reproducible and testable without real hardware dying.
* the failure exceptions — :class:`TransientTaskError` (retry with
  backoff), :class:`DeviceDead` (repartition and replay the stage) and
  :class:`StageFailure` (a stage lost every device).

Recovery emits the extended trace kinds
(:data:`~repro.runtime.trace.RECOVERY_KINDS`): ``device_dead`` when a
device is first declared dead, ``retry`` per backoff attempt,
``frame_replayed`` when a stage is replayed from its input boundary,
and ``replan``/``degraded`` when the session adopts a fresh plan over
the survivors (or falls back to a single device).

The default repartition policy is ``"migrate"``: a dead device's
*compiled* tasks move wholesale to survivors, keeping every tile's
geometry — and therefore every GEMM reduction order — identical to the
fault-free run, so recovered outputs are **bit-identical** (the
``make fault-smoke`` gate).  ``"rebalance"`` re-splits the stage
capacity-weighted over the survivors instead (better balanced, only
float-close; what the TCP backend does, since its workers hold one
tile program each).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

__all__ = [
    "RuntimeConfig",
    "DEFAULT_RUNTIME_CONFIG",
    "FaultSchedule",
    "FaultInjector",
    "TransientTaskError",
    "DeviceDead",
    "StageFailure",
    "churn_replanner",
]


class StageFailure(RuntimeError):
    """A stage lost all of its workers."""


class DeviceDead(RuntimeError):
    """A device is gone for good; its stage must repartition and replay."""

    def __init__(self, device: str, reason: str = "crashed") -> None:
        super().__init__(f"device {device!r} {reason}")
        self.device = device


class TransientTaskError(RuntimeError):
    """A task attempt failed but the device may recover — retry it."""

    def __init__(self, device: str, reason: str = "transient failure") -> None:
        super().__init__(f"device {device!r}: {reason}")
        self.device = device


@dataclass(frozen=True)
class RuntimeConfig:
    """Fault-tolerance knobs shared by every executor.

    ``send_timeout_s``/``recv_timeout_s`` bound socket operations on
    the TCP backend (``None`` = block forever, the legacy behaviour).
    Transient task failures are retried up to ``max_retries`` times
    with exponential backoff ``backoff_base_s * backoff_factor**n``.
    The TCP coordinator probes worker liveness every
    ``heartbeat_interval_s``.  When the dead devices' share of cluster
    capacity *exceeds* ``replan_threshold`` the session asks its
    replanner for a fresh plan over the survivors; below it, recovery
    stays local to the affected stages (``repartition`` policy).
    """

    send_timeout_s: Optional[float] = None
    recv_timeout_s: Optional[float] = None
    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    heartbeat_interval_s: float = 0.25
    replan_threshold: float = 0.25
    repartition: str = "migrate"  # "migrate" | "rebalance"
    recover: bool = True
    worker_idle_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if not 0.0 <= self.replan_threshold <= 1.0:
            raise ValueError("replan_threshold must be in [0, 1]")
        if self.repartition not in ("migrate", "rebalance"):
            raise ValueError(
                f"unknown repartition policy {self.repartition!r}"
            )
        for name in ("send_timeout_s", "recv_timeout_s",
                     "worker_idle_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")

    def backoff(self, attempt: int) -> float:
        """Seconds to back off before retry number ``attempt`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor ** attempt


DEFAULT_RUNTIME_CONFIG = RuntimeConfig()


@dataclass(frozen=True)
class _Crash:
    device: str
    at_frame: int


@dataclass(frozen=True)
class _Delay:
    device: str
    frame: int
    seconds: float


@dataclass(frozen=True)
class _Drop:
    device: str
    frame: int
    times: int


@dataclass(frozen=True)
class _FlakyLink:
    device: str
    frame: int
    failures: int


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, chainable fault-injection script.

    Build one declaratively::

        faults = (FaultSchedule()
                  .crash("pi1", at_frame=2)
                  .drop("pi0", frame=0)
                  .flaky_link("pi2", frame=1)
                  .delay("pi3", frame=0, seconds=0.2))

    and hand it to a fault-aware transport (``InProcTransport(engine,
    faults=faults)``, ``SimTransport(engine, net, faults=faults)``) or
    to :func:`repro.simulate`.  The schedule itself is pure data;
    :meth:`start` mints the mutable per-run :class:`FaultInjector`, so
    one schedule can drive any number of runs deterministically.
    """

    crashes: Tuple[_Crash, ...] = ()
    delays: Tuple[_Delay, ...] = ()
    drops: Tuple[_Drop, ...] = ()
    flaky_links: Tuple[_FlakyLink, ...] = ()

    def crash(self, device: str, at_frame: int) -> "FaultSchedule":
        """Kill ``device`` permanently from frame ``at_frame`` onward."""
        if at_frame < 0:
            raise ValueError("at_frame must be non-negative")
        return replace(
            self, crashes=self.crashes + (_Crash(device, at_frame),)
        )

    def delay(
        self, device: str, frame: int, seconds: float
    ) -> "FaultSchedule":
        """Stall ``device``'s compute on ``frame`` by ``seconds``."""
        if seconds < 0:
            raise ValueError("delay must be non-negative")
        return replace(
            self, delays=self.delays + (_Delay(device, frame, seconds),)
        )

    def drop(
        self, device: str, frame: int, times: int = 1
    ) -> "FaultSchedule":
        """Lose ``device``'s result for ``frame``, ``times`` times."""
        if times < 1:
            raise ValueError("times must be >= 1")
        return replace(
            self, drops=self.drops + (_Drop(device, frame, times),)
        )

    def flaky_link(
        self, device: str, frame: int, failures: int = 1
    ) -> "FaultSchedule":
        """Fail the send to ``device`` on ``frame``, ``failures`` times."""
        if failures < 1:
            raise ValueError("failures must be >= 1")
        return replace(
            self,
            flaky_links=self.flaky_links + (_FlakyLink(device, frame, failures),),
        )

    @property
    def empty(self) -> bool:
        return not (self.crashes or self.delays or self.drops
                    or self.flaky_links)

    def start(self) -> "FaultInjector":
        """Mint the mutable per-run injector for this schedule."""
        return FaultInjector(self)


class FaultInjector:
    """Per-run consumable state of a :class:`FaultSchedule`.

    Decisions depend only on ``(device, frame)`` plus how many times a
    consumable fault has already fired, so concurrent task threads (the
    in-process backend) and a serial loop (the simulated backend) make
    identical injection decisions — which keeps their canonical traces
    equal even under faults.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._crash_at: "Dict[str, int]" = {}
        for c in schedule.crashes:
            prev = self._crash_at.get(c.device)
            self._crash_at[c.device] = (
                c.at_frame if prev is None else min(prev, c.at_frame)
            )
        self._delays = {
            (d.device, d.frame): d.seconds for d in schedule.delays
        }
        self._drops = {(d.device, d.frame): d.times for d in schedule.drops}
        self._flaky = {
            (f.device, f.frame): f.failures for f in schedule.flaky_links
        }
        self._lock = threading.Lock()

    def crashed(self, device: str, frame: int) -> bool:
        at = self._crash_at.get(device)
        return at is not None and frame >= at

    def compute_delay(self, device: str, frame: int) -> float:
        return self._delays.get((device, frame), 0.0)

    def _take(self, table: "Dict[Tuple[str, int], int]",
              device: str, frame: int) -> bool:
        with self._lock:
            remaining = table.get((device, frame), 0)
            if remaining <= 0:
                return False
            table[(device, frame)] = remaining - 1
            return True

    def take_drop(self, device: str, frame: int) -> bool:
        """Consume one dropped-result fault, if scheduled."""
        return self._take(self._drops, device, frame)

    def take_link_failure(self, device: str, frame: int) -> bool:
        """Consume one flaky-link send failure, if scheduled."""
        return self._take(self._flaky, device, frame)


def churn_replanner(
    model,
    cluster,
    network,
    options=None,
    scheme=None,
    switcher=None,
):
    """A session replanner: fresh plan over the survivors, or degrade.

    Returns a callable ``replan(dead) -> (PlanProgram, kind)`` for
    :class:`~repro.runtime.core.PipelineSession`: it re-plans the model
    over the surviving devices with ``scheme`` (or asks ``switcher`` —
    an :class:`~repro.adaptive.switcher.AdaptiveSwitcher` — for a fresh
    candidate set, APICO-style) and falls back to a single-device
    :func:`~repro.schemes.local.local_fallback_plan` when planning over
    the survivors is infeasible.  ``kind`` is ``"replan"`` or
    ``"degraded"`` and becomes the emitted trace event.
    """
    if scheme is None and switcher is None:
        raise ValueError("churn_replanner needs a scheme or a switcher")

    def replan(dead):
        from repro.cluster.device import Cluster
        from repro.cost.flops import DEFAULT_OPTIONS
        from repro.runtime.program import compile_plan
        from repro.schemes.base import PlanningError
        from repro.schemes.local import local_fallback_plan

        opts = options or DEFAULT_OPTIONS
        survivors = tuple(d for d in cluster if d.name not in dead)
        if not survivors:
            raise StageFailure("every device in the cluster is dead")
        try:
            if switcher is not None:
                fresh = switcher.replan(
                    model, Cluster(survivors), network, opts
                )
                plan = fresh.active.plan
            else:
                plan = scheme.plan(model, Cluster(survivors), network, opts)
            return compile_plan(model, plan), "replan"
        except PlanningError:
            best = max(survivors, key=lambda d: d.capacity)
            plan = local_fallback_plan(model, best)
            return compile_plan(model, plan), "degraded"

    return replan
