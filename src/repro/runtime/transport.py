"""Length-prefixed framed transport over TCP sockets.

Mirrors the paper's implementation ("a distributed framework …
using C++ extension and TCP/IP with socket"): each frame is an 8-byte
big-endian length followed by a pickled message.  Numpy arrays ride
along in the pickle — adequate on loopback, and the framing is what a
production serialisation swap (flatbuffers, etc.) would keep.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

__all__ = ["TransportClosed", "send_message", "recv_message", "Channel"]

_HEADER = struct.Struct(">Q")
#: Refuse absurd frames (corrupt header, protocol desync).
MAX_FRAME_BYTES = 1 << 31


class TransportClosed(ConnectionError):
    """The peer closed the connection."""


def send_message(sock: socket.socket, message: Any) -> None:
    """Serialise and send one framed message."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TransportClosed("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Any:
    """Receive one framed message (blocking)."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds limit")
    return pickle.loads(_recv_exact(sock, length))


class Channel:
    """A connected socket with message framing and idempotent close."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._closed = False

    def send(self, message: Any) -> None:
        if self._closed:
            raise TransportClosed("channel is closed")
        send_message(self._sock, message)

    def recv(self) -> Any:
        if self._closed:
            raise TransportClosed("channel is closed")
        return recv_message(self._sock)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
