"""Length-prefixed framed transport with a restricted, numpy-aware codec.

Mirrors the paper's implementation ("a distributed framework …
using C++ extension and TCP/IP with socket"): each frame is an 8-byte
big-endian length followed by the encoded message.  The payload is no
longer a raw pickle:

* numpy arrays are lifted out of the object graph and carried as
  header-tagged ``(dtype, shape, raw bytes)`` segments — no pickle
  round-trip for tensor payloads, and the receiver reconstructs them
  with :func:`numpy.frombuffer` straight off the receive buffer;
* the remaining object skeleton is pickled, but decoded through a
  restricted ``Unpickler`` whose ``find_class`` only resolves this
  package's dataclasses plus a small closed set of safe builtins — a
  frame from a hostile peer cannot name arbitrary callables.

Frame layout (after the 8-byte length)::

    u8 codec version | u32 n_arrays
    n_arrays × [u8 len | dtype descr | u8 ndim | u64×ndim shape |
                u64 nbytes | raw data]
    pickled skeleton (arrays replaced by persistent ids)

Oversized frames are rejected from the length header *before* any
payload allocation, and receives fill one preallocated buffer via
``socket.recv_into`` — large feature maps don't pay a per-chunk
``bytes`` join.  On the send side array data travels as ``memoryview``s
of the contiguous buffers straight into ``sendall`` — a multi-megabyte
tensor frame is never duplicated into an intermediate ``bytes``.

Two consumers build on the framing primitives:

* :class:`FrameAssembler` re-parses the same length-prefixed stream
  incrementally from arbitrary byte chunks, which is what lets a
  ``selectors``-driven coordinator read many worker sockets without a
  blocking recv per channel (see :meth:`Channel.recv_ready`);
* the shared-memory channel (:mod:`repro.runtime.shm`) reuses the
  skeleton pickler/unpickler via :func:`pickle_skeleton` /
  :func:`unpickle_skeleton` and swaps the array plane for ring slots.
"""

from __future__ import annotations

import io
import pickle
import select
import socket
import struct
from collections import deque
from typing import Any, Dict, List, Sequence, Set, Tuple

import numpy as np

__all__ = [
    "TransportClosed",
    "MAX_FRAME_BYTES",
    "encode_message",
    "encode_parts",
    "decode_message",
    "send_message",
    "send_parts",
    "recv_message",
    "pickle_skeleton",
    "unpickle_skeleton",
    "FrameAssembler",
    "Channel",
]

_HEADER = struct.Struct(">Q")
_PREAMBLE = struct.Struct(">BI")  # codec version, array count
_ARR_FIXED = struct.Struct(">B")  # dtype descr length (then descr, ndim, …)
_U8 = struct.Struct(">B")
_U64 = struct.Struct(">Q")
_CODEC_VERSION = 1

#: Refuse absurd frames (corrupt header, protocol desync) before any
#: allocation happens.
MAX_FRAME_BYTES = 1 << 31

#: Globals the restricted unpickler resolves outside this package.
#: Data containers only — nothing callable into the OS.
_SAFE_GLOBALS: "Dict[str, Set[str]]" = {
    "builtins": {"bytearray", "bytes", "complex", "frozenset", "range",
                 "set", "slice"},
    "collections": {"OrderedDict", "deque"},
    "numpy": {"dtype", "ndarray"},
    "numpy.core.multiarray": {"_reconstruct", "scalar"},
    "numpy._core.multiarray": {"_reconstruct", "scalar"},
}


class TransportClosed(ConnectionError):
    """The peer closed the connection."""


class _ArrayPickler(pickle.Pickler):
    """Pickles the skeleton; arrays leave via persistent ids."""

    def __init__(self, file: io.BytesIO, arrays: "List[np.ndarray]") -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays

    def persistent_id(self, obj: Any):  # noqa: D102 - pickle hook
        if isinstance(obj, np.ndarray):
            self._arrays.append(obj)
            return len(self._arrays) - 1
        return None


class _RestrictedUnpickler(pickle.Unpickler):
    """Resolves persistent ids to decoded arrays; gates ``find_class``."""

    def __init__(self, file, arrays: "List[np.ndarray]") -> None:
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid: Any) -> np.ndarray:  # noqa: D102
        if not isinstance(pid, int) or not 0 <= pid < len(self._arrays):
            raise pickle.UnpicklingError(f"bad array reference {pid!r}")
        return self._arrays[pid]

    def find_class(self, module: str, name: str) -> Any:  # noqa: D102
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        allowed = _SAFE_GLOBALS.get(module)
        if allowed is not None and name in allowed:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"frame references forbidden global {module}.{name}"
        )


def pickle_skeleton(message: Any) -> "Tuple[bytes, List[np.ndarray]]":
    """Pickle a message's object skeleton, lifting out its arrays.

    Returns ``(skeleton_bytes, arrays)``; each array is replaced in the
    pickle stream by its index into ``arrays``.  The inverse is
    :func:`unpickle_skeleton`.  This is the codec half every payload
    plane shares — the framed codec carries the arrays as raw segments,
    the shared-memory channel carries them as ring-slot references.
    """
    arrays: "List[np.ndarray]" = []
    skeleton = io.BytesIO()
    _ArrayPickler(skeleton, arrays).dump(message)
    return skeleton.getvalue(), arrays


def unpickle_skeleton(data: Any, arrays: "Sequence[np.ndarray]") -> Any:
    """Rebuild a message from its pickled skeleton and decoded arrays."""
    if isinstance(data, memoryview):
        data = bytes(data)
    return _RestrictedUnpickler(io.BytesIO(data), list(arrays)).load()


def require_wire_safe(arr: np.ndarray) -> None:
    """Reject dtypes the raw-bytes array plane cannot carry."""
    if arr.dtype.hasobject or arr.dtype.names is not None:
        raise TypeError(
            f"cannot encode array of dtype {arr.dtype} (object/"
            "structured dtypes are not wire-safe)"
        )


def array_header(contiguous: np.ndarray, shape: "Tuple[int, ...]") -> bytes:
    """The per-array descriptor (dtype descr, ndim, dims, nbytes)."""
    descr = contiguous.dtype.str.encode("ascii")
    parts = [_ARR_FIXED.pack(len(descr)), descr, _U8.pack(len(shape))]
    for dim in shape:
        parts.append(_U64.pack(dim))
    parts.append(_U64.pack(contiguous.nbytes))
    return b"".join(parts)


def encode_parts(message: Any) -> "Tuple[List[Any], int]":
    """Serialise one message into frame-payload parts plus total bytes.

    Array data contributes flat ``memoryview``s of the contiguous
    buffers — nothing tensor-sized is copied here; :func:`send_parts`
    hands the views to ``sendall`` directly.  The views keep their
    source arrays alive for as long as the parts list is.
    """
    skeleton, arrays = pickle_skeleton(message)
    parts: "List[Any]" = [_PREAMBLE.pack(_CODEC_VERSION, len(arrays))]
    for arr in arrays:
        require_wire_safe(arr)
        # ascontiguousarray promotes 0-d to 1-d; keep the true shape.
        contiguous = np.ascontiguousarray(arr)
        parts.append(array_header(contiguous, arr.shape))
        if contiguous.nbytes:
            parts.append(memoryview(contiguous).cast("B"))
    parts.append(skeleton)
    return parts, sum(len(p) for p in parts)


def encode_message(message: Any) -> bytes:
    """Serialise one message into a frame payload (no length prefix)."""
    parts, _total = encode_parts(message)
    return b"".join(parts)


def decode_message(payload: memoryview) -> Any:
    """Decode one frame payload produced by :func:`encode_message`."""
    if len(payload) < _PREAMBLE.size:
        raise ValueError(f"truncated frame: {len(payload)} byte payload")
    version, n_arrays = _PREAMBLE.unpack_from(payload, 0)
    if version != _CODEC_VERSION:
        raise ValueError(f"unsupported codec version {version}")
    offset = _PREAMBLE.size
    arrays: "List[np.ndarray]" = []
    try:
        for _ in range(n_arrays):
            (descr_len,) = _ARR_FIXED.unpack_from(payload, offset)
            offset += _ARR_FIXED.size
            descr = bytes(payload[offset : offset + descr_len]).decode("ascii")
            offset += descr_len
            (ndim,) = _U8.unpack_from(payload, offset)
            offset += _U8.size
            shape = []
            for _ in range(ndim):
                (dim,) = _U64.unpack_from(payload, offset)
                offset += _U64.size
                shape.append(dim)
            (nbytes,) = _U64.unpack_from(payload, offset)
            offset += _U64.size
            if offset + nbytes > len(payload):
                raise ValueError("array segment overruns the frame")
            dtype = np.dtype(descr)
            arr = np.frombuffer(
                payload[offset : offset + nbytes], dtype=dtype
            ).reshape(shape)
            offset += nbytes
            arrays.append(arr)
    except struct.error as exc:
        raise ValueError("truncated frame: bad array header") from exc
    return _RestrictedUnpickler(
        io.BytesIO(bytes(payload[offset:])), arrays
    ).load()


#: Parts below this coalesce into one buffer per ``sendall``; parts at
#: or above it (tensor data) go to the socket as-is, uncopied.
_COALESCE_BYTES = 1 << 20


def send_parts(sock: socket.socket, parts: "List[Any]", total: int) -> None:
    """Send one framed message from its encoded parts.

    Small frames ship as a single coalesced ``sendall``; large frames
    send the header first and then stream the parts, passing any
    tensor-sized ``memoryview`` straight to ``sendall`` — the
    no-recopy path now covers the whole encode+send pipeline.
    """
    if total > MAX_FRAME_BYTES:
        raise ValueError(
            f"message of {total} bytes exceeds MAX_FRAME_BYTES"
        )
    header = _HEADER.pack(total)
    if total < _COALESCE_BYTES:
        sock.sendall(header + b"".join(parts))
        return
    sock.sendall(header)
    small: "List[Any]" = []
    for part in parts:
        if isinstance(part, memoryview) and len(part) >= _COALESCE_BYTES:
            if small:
                sock.sendall(b"".join(small))
                small = []
            sock.sendall(part)
        else:
            small.append(part)
    if small:
        sock.sendall(b"".join(small))


def send_message(sock: socket.socket, message: Any) -> None:
    """Serialise and send one framed message."""
    parts, total = encode_parts(message)
    send_parts(sock, parts, total)


def _recv_exact_into(sock: socket.socket, buf: memoryview) -> None:
    """Fill ``buf`` from the socket (no per-chunk ``bytes`` join)."""
    view = buf
    while view.nbytes > 0:
        received = sock.recv_into(view)
        if received == 0:
            raise TransportClosed("peer closed the connection")
        view = view[received:]


def recv_message(sock: socket.socket) -> Any:
    """Receive one framed message (blocking)."""
    header = bytearray(_HEADER.size)
    _recv_exact_into(sock, memoryview(header))
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds limit")
    if length < _PREAMBLE.size:
        raise ValueError(f"truncated frame: {length} byte payload")
    payload = bytearray(length)
    _recv_exact_into(sock, memoryview(payload))
    return decode_message(memoryview(payload))


#: Bytes pulled off the socket per ``recv`` on the non-blocking path.
_RECV_CHUNK = 1 << 16


class FrameAssembler:
    """Incremental parser for the length-prefixed frame stream.

    Feed it byte chunks of any size (as a non-blocking socket hands
    them out); it yields complete frame payloads.  Each payload is
    filled into one preallocated ``bytearray`` — no quadratic joins,
    one copy per byte, same as the blocking ``recv_into`` path.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self._max = max_frame
        self._header = bytearray()
        self._payload: "bytearray | None" = None
        self._filled = 0

    @property
    def idle(self) -> bool:
        """True when no partial frame is buffered."""
        return self._payload is None and not self._header

    def feed(self, data) -> "List[memoryview]":
        """Consume a chunk; return any payloads it completed."""
        out: "List[memoryview]" = []
        view = memoryview(data)
        while view.nbytes:
            if self._payload is None:
                take = min(_HEADER.size - len(self._header), view.nbytes)
                self._header += view[:take]
                view = view[take:]
                if len(self._header) < _HEADER.size:
                    break
                (length,) = _HEADER.unpack(self._header)
                self._header.clear()
                if length > self._max:
                    raise ValueError(f"frame of {length} bytes exceeds limit")
                if length < _PREAMBLE.size:
                    raise ValueError(f"truncated frame: {length} byte payload")
                self._payload = bytearray(length)
                self._filled = 0
            else:
                take = min(len(self._payload) - self._filled, view.nbytes)
                self._payload[self._filled : self._filled + take] = view[:take]
                self._filled += take
                view = view[take:]
                if self._filled == len(self._payload):
                    out.append(memoryview(self._payload))
                    self._payload = None
        return out


class Channel:
    """A connected socket with message framing and idempotent close.

    Blocking by default (the worker and session paths).  The
    event-driven coordinator calls :meth:`set_nonblocking` once and
    then drains with :meth:`recv_ready`; sends transparently revert to
    blocking for their duration (frames must never be interleaved).
    Subclasses override :meth:`_encode_parts` / :meth:`_decode` to swap
    the payload plane (the shared-memory channel does).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._closed = False
        self._nonblocking = False
        self._timeout: "float | None" = None
        self._assembler: "FrameAssembler | None" = None
        self._pending: "deque" = deque()
        self._saw_eof = False

    @property
    def sock(self) -> socket.socket:
        return self._sock

    def fileno(self) -> int:
        return self._sock.fileno()

    def settimeout(self, seconds: "float | None") -> None:
        """Bound blocking sends/recvs (``None`` = block forever).

        A timeout mid-frame desyncs the length-prefixed codec, so a
        timed-out :meth:`recv` reports :class:`TransportClosed` — the
        peer must be declared dead, not retried on the same socket.
        """
        self._timeout = seconds
        if not self._nonblocking:
            self._sock.settimeout(seconds)

    def set_nonblocking(self) -> None:
        """Switch to non-blocking reads (one-way; the event loop's mode).

        Only legal between frames — switching mid-frame would desync
        the codec, so the coordinator flips every channel right after
        the handshake, before any tasks are in flight.
        """
        if self._assembler is not None and not self._assembler.idle:
            raise RuntimeError("cannot switch modes mid-frame")
        self._sock.setblocking(False)
        self._nonblocking = True
        if self._assembler is None:
            self._assembler = FrameAssembler()

    # -- codec hooks (overridden by the shared-memory channel) ---------
    def _encode_parts(self, message: Any) -> "Tuple[List[Any], int]":
        return encode_parts(message)

    def _decode(self, payload: memoryview) -> Any:
        return decode_message(payload)

    def send(self, message: Any) -> None:
        if self._closed:
            raise TransportClosed("channel is closed")
        parts, total = self._encode_parts(message)
        if self._nonblocking:
            # A partial non-blocking send would interleave frames; do
            # the whole send in blocking mode instead (the peer is a
            # worker draining its socket, so this cannot deadlock).
            self._sock.setblocking(True)
            try:
                send_parts(self._sock, parts, total)
            finally:
                self._sock.setblocking(False)
        else:
            send_parts(self._sock, parts, total)

    def recv(self) -> Any:
        if self._closed:
            raise TransportClosed("channel is closed")
        if self._pending:
            return self._pending.popleft()
        if self._nonblocking:
            while not self._pending:
                ready, _, _ = select.select([self._sock], [], [], self._timeout)
                if not ready:
                    raise TransportClosed("recv timed out")
                self._pending.extend(self.recv_ready())
            return self._pending.popleft()
        try:
            header = bytearray(_HEADER.size)
            _recv_exact_into(self._sock, memoryview(header))
            (length,) = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise ValueError(f"frame of {length} bytes exceeds limit")
            if length < _PREAMBLE.size:
                raise ValueError(f"truncated frame: {length} byte payload")
            payload = bytearray(length)
            _recv_exact_into(self._sock, memoryview(payload))
            return self._decode(memoryview(payload))
        except socket.timeout:
            raise TransportClosed("recv timed out") from None

    def recv_ready(self) -> "List[Any]":
        """Drain and decode whatever the socket holds, without blocking.

        Returns possibly-empty lists until the peer closes, then raises
        :class:`TransportClosed` (after delivering any messages that
        arrived ahead of the close).
        """
        if self._closed:
            raise TransportClosed("channel is closed")
        if self._assembler is None:
            self._assembler = FrameAssembler()
        messages: "List[Any]" = []
        while True:
            try:
                data = self._sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                break
            except socket.timeout:
                break
            except OSError as exc:
                raise TransportClosed(str(exc)) from None
            if not data:
                self._saw_eof = True
                break
            for payload in self._assembler.feed(data):
                messages.append(self._decode(payload))
        if self._saw_eof and not messages:
            raise TransportClosed("peer closed the connection")
        return messages

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
