"""Length-prefixed framed transport with a restricted, numpy-aware codec.

Mirrors the paper's implementation ("a distributed framework …
using C++ extension and TCP/IP with socket"): each frame is an 8-byte
big-endian length followed by the encoded message.  The payload is no
longer a raw pickle:

* numpy arrays are lifted out of the object graph and carried as
  header-tagged ``(dtype, shape, raw bytes)`` segments — no pickle
  round-trip for tensor payloads, and the receiver reconstructs them
  with :func:`numpy.frombuffer` straight off the receive buffer;
* the remaining object skeleton is pickled, but decoded through a
  restricted ``Unpickler`` whose ``find_class`` only resolves this
  package's dataclasses plus a small closed set of safe builtins — a
  frame from a hostile peer cannot name arbitrary callables.

Frame layout (after the 8-byte length)::

    u8 codec version | u32 n_arrays
    n_arrays × [u8 len | dtype descr | u8 ndim | u64×ndim shape |
                u64 nbytes | raw data]
    pickled skeleton (arrays replaced by persistent ids)

Oversized frames are rejected from the length header *before* any
payload allocation, and receives fill one preallocated buffer via
``socket.recv_into`` — large feature maps don't pay a per-chunk
``bytes`` join.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
from typing import Any, Dict, List, Set

import numpy as np

__all__ = [
    "TransportClosed",
    "MAX_FRAME_BYTES",
    "encode_message",
    "decode_message",
    "send_message",
    "recv_message",
    "Channel",
]

_HEADER = struct.Struct(">Q")
_PREAMBLE = struct.Struct(">BI")  # codec version, array count
_ARR_FIXED = struct.Struct(">B")  # dtype descr length (then descr, ndim, …)
_U8 = struct.Struct(">B")
_U64 = struct.Struct(">Q")
_CODEC_VERSION = 1

#: Refuse absurd frames (corrupt header, protocol desync) before any
#: allocation happens.
MAX_FRAME_BYTES = 1 << 31

#: Globals the restricted unpickler resolves outside this package.
#: Data containers only — nothing callable into the OS.
_SAFE_GLOBALS: "Dict[str, Set[str]]" = {
    "builtins": {"bytearray", "bytes", "complex", "frozenset", "range",
                 "set", "slice"},
    "collections": {"OrderedDict", "deque"},
    "numpy": {"dtype", "ndarray"},
    "numpy.core.multiarray": {"_reconstruct", "scalar"},
    "numpy._core.multiarray": {"_reconstruct", "scalar"},
}


class TransportClosed(ConnectionError):
    """The peer closed the connection."""


class _ArrayPickler(pickle.Pickler):
    """Pickles the skeleton; arrays leave via persistent ids."""

    def __init__(self, file: io.BytesIO, arrays: "List[np.ndarray]") -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays

    def persistent_id(self, obj: Any):  # noqa: D102 - pickle hook
        if isinstance(obj, np.ndarray):
            self._arrays.append(obj)
            return len(self._arrays) - 1
        return None


class _RestrictedUnpickler(pickle.Unpickler):
    """Resolves persistent ids to decoded arrays; gates ``find_class``."""

    def __init__(self, file, arrays: "List[np.ndarray]") -> None:
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid: Any) -> np.ndarray:  # noqa: D102
        if not isinstance(pid, int) or not 0 <= pid < len(self._arrays):
            raise pickle.UnpicklingError(f"bad array reference {pid!r}")
        return self._arrays[pid]

    def find_class(self, module: str, name: str) -> Any:  # noqa: D102
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        allowed = _SAFE_GLOBALS.get(module)
        if allowed is not None and name in allowed:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"frame references forbidden global {module}.{name}"
        )


def encode_message(message: Any) -> bytes:
    """Serialise one message into a frame payload (no length prefix)."""
    arrays: "List[np.ndarray]" = []
    skeleton = io.BytesIO()
    _ArrayPickler(skeleton, arrays).dump(message)
    parts: "List[bytes]" = [_PREAMBLE.pack(_CODEC_VERSION, len(arrays))]
    for arr in arrays:
        if arr.dtype.hasobject or arr.dtype.names is not None:
            raise TypeError(
                f"cannot encode array of dtype {arr.dtype} (object/"
                "structured dtypes are not wire-safe)"
            )
        # ascontiguousarray promotes 0-d to 1-d; keep the true shape.
        contiguous = np.ascontiguousarray(arr)
        descr = contiguous.dtype.str.encode("ascii")
        parts.append(_ARR_FIXED.pack(len(descr)))
        parts.append(descr)
        parts.append(_U8.pack(arr.ndim))
        for dim in arr.shape:
            parts.append(_U64.pack(dim))
        parts.append(_U64.pack(contiguous.nbytes))
        parts.append(contiguous.tobytes())
    parts.append(skeleton.getvalue())
    return b"".join(parts)


def decode_message(payload: memoryview) -> Any:
    """Decode one frame payload produced by :func:`encode_message`."""
    if len(payload) < _PREAMBLE.size:
        raise ValueError(f"truncated frame: {len(payload)} byte payload")
    version, n_arrays = _PREAMBLE.unpack_from(payload, 0)
    if version != _CODEC_VERSION:
        raise ValueError(f"unsupported codec version {version}")
    offset = _PREAMBLE.size
    arrays: "List[np.ndarray]" = []
    try:
        for _ in range(n_arrays):
            (descr_len,) = _ARR_FIXED.unpack_from(payload, offset)
            offset += _ARR_FIXED.size
            descr = bytes(payload[offset : offset + descr_len]).decode("ascii")
            offset += descr_len
            (ndim,) = _U8.unpack_from(payload, offset)
            offset += _U8.size
            shape = []
            for _ in range(ndim):
                (dim,) = _U64.unpack_from(payload, offset)
                offset += _U64.size
                shape.append(dim)
            (nbytes,) = _U64.unpack_from(payload, offset)
            offset += _U64.size
            if offset + nbytes > len(payload):
                raise ValueError("array segment overruns the frame")
            dtype = np.dtype(descr)
            arr = np.frombuffer(
                payload[offset : offset + nbytes], dtype=dtype
            ).reshape(shape)
            offset += nbytes
            arrays.append(arr)
    except struct.error as exc:
        raise ValueError("truncated frame: bad array header") from exc
    return _RestrictedUnpickler(
        io.BytesIO(bytes(payload[offset:])), arrays
    ).load()


def send_message(sock: socket.socket, message: Any) -> None:
    """Serialise and send one framed message."""
    payload = encode_message(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"message of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    header = _HEADER.pack(len(payload))
    if len(payload) < (1 << 20):
        sock.sendall(header + payload)
    else:  # avoid re-copying multi-megabyte tensor frames
        sock.sendall(header)
        sock.sendall(payload)


def _recv_exact_into(sock: socket.socket, buf: memoryview) -> None:
    """Fill ``buf`` from the socket (no per-chunk ``bytes`` join)."""
    view = buf
    while view.nbytes > 0:
        received = sock.recv_into(view)
        if received == 0:
            raise TransportClosed("peer closed the connection")
        view = view[received:]


def recv_message(sock: socket.socket) -> Any:
    """Receive one framed message (blocking)."""
    header = bytearray(_HEADER.size)
    _recv_exact_into(sock, memoryview(header))
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds limit")
    if length < _PREAMBLE.size:
        raise ValueError(f"truncated frame: {length} byte payload")
    payload = bytearray(length)
    _recv_exact_into(sock, memoryview(payload))
    return decode_message(memoryview(payload))


class Channel:
    """A connected socket with message framing and idempotent close."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._closed = False

    def settimeout(self, seconds: "float | None") -> None:
        """Bound blocking sends/recvs (``None`` = block forever).

        A timeout mid-frame desyncs the length-prefixed codec, so a
        timed-out :meth:`recv` reports :class:`TransportClosed` — the
        peer must be declared dead, not retried on the same socket.
        """
        self._sock.settimeout(seconds)

    def send(self, message: Any) -> None:
        if self._closed:
            raise TransportClosed("channel is closed")
        send_message(self._sock, message)

    def recv(self) -> Any:
        if self._closed:
            raise TransportClosed("channel is closed")
        try:
            return recv_message(self._sock)
        except socket.timeout:
            raise TransportClosed("recv timed out") from None

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
