"""Analytic per-stage timing tables for a plan — the virtual clock.

:func:`plan_timing` turns a plan into the service/communication/compute
times and per-device busy shares that both the event-driven cluster
simulator (:mod:`repro.cluster.simulator`) and the frame-level
:class:`~repro.runtime.core.SimTransport` consume.  It is the single
place the Eq. 9–11 stage costs are projected onto runtime behaviour:
pipelined plans keep one entry per stage, exclusive (one-stage-scheme)
plans collapse into a single server whose service time is the full
phase sequence, and ``measured_services`` substitutes measured
wall-clock stage times for the analytic ones.

Imports of the cost model are deferred to call time: this module is
imported from :mod:`repro.cluster.simulator`, which itself sits under
the package the cost model's device types live in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan import PipelinePlan, PlanCost
    from repro.cost.comm import NetworkModel
    from repro.cost.flops import CostOptions
    from repro.models.graph import Model

__all__ = ["StageTiming", "PlanTiming", "plan_timing"]


@dataclass(frozen=True)
class StageTiming:
    """One (virtual) pipeline stage's service decomposition."""

    service: float  # full stage time (comm + comp [+ head])
    comm: float  # transfer share (scatter + gather)
    comp: float  # compute share (incl. head)
    #: ``(device_name, busy_seconds)`` — compute plus own transfers,
    #: the single-core CPU accounting of the paper's Table I.
    busy_shares: Tuple[Tuple[str, float], ...]

    def batched_service(
        self, batch: int, amortized: Optional[float] = None
    ) -> float:
        """Service time for a cross-frame batch of ``batch`` frames.

        Delegates to :func:`repro.cost.tables.batched_service` on this
        stage's comm/comp split — comm scales with the batch, a
        fraction of comp is paid once.  ``batch == 1`` is exactly
        ``self.service``.
        """
        from repro.cost.tables import BATCH_AMORTIZED_FRACTION, batched_service

        if batch == 1:
            return self.service
        return batched_service(
            self.comm,
            self.comp,
            batch,
            BATCH_AMORTIZED_FRACTION if amortized is None else amortized,
        )


@dataclass(frozen=True)
class PlanTiming:
    """Timing tables for one plan under one network/cost configuration.

    ``stages`` are *virtual* servers: one per plan stage for pipelined
    plans, exactly one (the whole phase sequence) for exclusive plans.
    ``cost`` keeps the per-real-stage breakdown for consumers that need
    device-level times regardless of mode.
    """

    name: str
    mode: str
    period: float
    latency: float
    stages: Tuple[StageTiming, ...]
    cost: "PlanCost"

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    def batched_period(
        self, batch: int, amortized: Optional[float] = None
    ) -> float:
        """Effective *per-frame* period with cross-frame batches of
        ``batch``: the bottleneck stage's batched service divided by the
        batch size.  ``batch == 1`` is exactly ``self.period``."""
        if batch == 1:
            return self.period
        return max(
            st.batched_service(batch, amortized) for st in self.stages
        ) / batch

    def batched_latency(
        self, batch: int, amortized: Optional[float] = None
    ) -> float:
        """Pipeline traversal time of one ``batch``-frame batch: the sum
        of batched stage services.  ``batch == 1`` is ``self.latency``."""
        if batch == 1:
            return self.latency
        return sum(st.batched_service(batch, amortized) for st in self.stages)

    def stage_transfers(
        self, network: "NetworkModel", entry: Optional[str] = None
    ) -> "Tuple[Tuple[Tuple[str, str, float], ...], ...]":
        """Per-virtual-stage ``(src, dst, nbytes)`` transfers for the
        topology-aware simulator.

        The flat cost model (Eq. 7–8) folds each device's scatter and
        gather traffic into one communication time ``t_comm``; this
        inverts that time back to a byte count under ``network`` —
        ``(t_comm - latency) × bandwidth`` — so branch stages and head
        phases need no special-casing.  Each stage's transfers
        originate at the previous stage's *anchor* (its
        fastest-capacity device, where the serial head is billed; the
        first stage's source is ``entry``, or its own anchor when
        ``entry`` is None, which makes the transfer a no-op route).
        Exclusive plans collapse into the single virtual stage, same
        as their timing table.
        """
        def invert(t_comm: float) -> float:
            if t_comm <= 0:
                return 0.0
            wire = t_comm - network.per_message_latency_s
            return max(0.0, wire) * network.bandwidth_bytes_per_s

        per_real = []
        prev_anchor = entry
        for sc in self.cost.stage_costs:
            if not sc.devices:
                per_real.append(())
                continue
            anchor = max(
                sc.devices, key=lambda dc: dc.device.capacity
            ).device.name
            src = prev_anchor if prev_anchor is not None else anchor
            per_real.append(tuple(
                (src, dc.device.name, invert(dc.t_comm))
                for dc in sc.devices
            ))
            prev_anchor = anchor
        if self.mode == "pipelined":
            return tuple(per_real)
        return (tuple(t for stage in per_real for t in stage),)


def plan_timing(
    model: "Model",
    plan: "PipelinePlan",
    network: "NetworkModel",
    options: "Optional[CostOptions]" = None,
    name: Optional[str] = None,
    measured_services: "Optional[Sequence[float]]" = None,
) -> PlanTiming:
    """Build the timing tables for ``plan`` (see module docstring)."""
    from repro.core.plan import plan_cost
    from repro.cost.flops import DEFAULT_OPTIONS

    cost = plan_cost(model, plan, network, options or DEFAULT_OPTIONS)
    if plan.mode == "pipelined":
        services = [sc.total for sc in cost.stage_costs]
        comm = [sc.t_comm for sc in cost.stage_costs]
        comp = [sc.t_comp + sc.t_head for sc in cost.stage_costs]
        busy_shares = [
            [(dc.device.name, dc.t_comp + dc.t_comm) for dc in sc.devices]
            for sc in cost.stage_costs
        ]
        # The head runs serially on one stage device; bill it there.
        for sc, shares in zip(cost.stage_costs, busy_shares):
            if sc.t_head > 0 and shares:
                fastest = max(
                    range(len(sc.devices)),
                    key=lambda i: sc.devices[i].device.capacity,
                )
                name_, t = shares[fastest]
                shares[fastest] = (name_, t + sc.t_head)
    else:
        services = [cost.latency]
        merged = {}
        for sc in cost.stage_costs:
            for dc in sc.devices:
                merged[dc.device.name] = (
                    merged.get(dc.device.name, 0.0) + dc.t_comp + dc.t_comm
                )
            if sc.t_head > 0:
                fastest = max(sc.devices, key=lambda dc: dc.device.capacity)
                merged[fastest.device.name] = (
                    merged.get(fastest.device.name, 0.0) + sc.t_head
                )
        busy_shares = [sorted(merged.items())]
        total_comm = sum(sc.t_comm for sc in cost.stage_costs)
        comm = [total_comm]
        comp = [cost.latency - total_comm]
    if measured_services is not None:
        # Replace the analytic per-stage service times with measured
        # wall-clock ones (e.g. LocalPlanExecutor.measure); the comm
        # component keeps its analytic estimate and compute absorbs
        # the rest, so shared-medium contention still works.
        if len(measured_services) != len(services):
            raise ValueError(
                f"measured_services has {len(measured_services)} entries "
                f"for a {len(services)}-stage plan"
            )
        services = [float(s) for s in measured_services]
        comm = [min(c, s) for c, s in zip(comm, services)]
        comp = [max(0.0, s - c) for s, c in zip(services, comm)]
    stages = tuple(
        StageTiming(s, cm, cp, tuple(shares))
        for s, cm, cp, shares in zip(services, comm, comp, busy_shares)
    )
    return PlanTiming(
        name or plan.mode, plan.mode, cost.period, cost.latency, stages, cost
    )
