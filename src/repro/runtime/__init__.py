"""Real multiprocess pipeline runtime (processes + TCP, paper Fig. 6)."""

from repro.runtime.coordinator import DistributedPipeline, RuntimeStats, StageFailure
from repro.runtime.messages import (
    Hello,
    Reconfigure,
    Setup,
    Shutdown,
    TileResult,
    TileTask,
    WorkerError,
)
from repro.runtime.transport import Channel, TransportClosed, recv_message, send_message
from repro.runtime.worker import worker_main

__all__ = [
    "Channel",
    "DistributedPipeline",
    "Hello",
    "Reconfigure",
    "RuntimeStats",
    "Setup",
    "Shutdown",
    "StageFailure",
    "TileResult",
    "TileTask",
    "TransportClosed",
    "WorkerError",
    "recv_message",
    "send_message",
    "worker_main",
]
