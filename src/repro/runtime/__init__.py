"""The runtime core: one PlanProgram IR, pluggable transports, tracing.

Every executor — the in-process threaded runner, the multiprocess TCP
pipeline (paper Fig. 6), and the virtual-clock simulator — drives the
same compiled :class:`PlanProgram` through the same
:func:`~repro.runtime.core.execute_stage` path over a swappable
:class:`~repro.runtime.core.Transport`, emitting one shared per-frame
trace schema.
"""

from repro.runtime.coordinator import (
    DistributedPipeline,
    RuntimeStats,
    ShmTransport,
    StageFailure,
    TcpTransport,
)
from repro.runtime.core import (
    InProcTransport,
    PipelineSession,
    SimTransport,
    Transport,
    emit_stage_trace,
    execute_stage,
)
from repro.runtime.faults import (
    DEFAULT_RUNTIME_CONFIG,
    DeviceDead,
    FaultInjector,
    FaultSchedule,
    RuntimeConfig,
    TransientTaskError,
    churn_replanner,
)
from repro.runtime.messages import (
    Hello,
    Reconfigure,
    Setup,
    Shutdown,
    TileResult,
    TileTask,
    WorkerError,
)
from repro.runtime.program import (
    PlanProgram,
    StageProgram,
    TaskSpec,
    compile_plan,
    repartition_stage,
    split_stage,
    stitch_stage,
)
from repro.runtime.timing import PlanTiming, StageTiming, plan_timing
from repro.runtime.trace import (
    EVENT_KINDS,
    RECOVERY_KINDS,
    TraceEvent,
    Tracer,
    canonical_trace,
    coerce_tracer,
    device_busy,
    diff_traces,
    format_timeline,
    trace_makespan,
)
from repro.runtime.shm import ShmChannel, ShmRing, SlotExhausted
from repro.runtime.transport import (
    Channel,
    FrameAssembler,
    TransportClosed,
    decode_message,
    encode_message,
    recv_message,
    send_message,
)
from repro.runtime.worker import worker_main

__all__ = [
    "Channel",
    "DEFAULT_RUNTIME_CONFIG",
    "DeviceDead",
    "DistributedPipeline",
    "EVENT_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FrameAssembler",
    "Hello",
    "InProcTransport",
    "PipelineSession",
    "PlanProgram",
    "PlanTiming",
    "RECOVERY_KINDS",
    "Reconfigure",
    "RuntimeConfig",
    "RuntimeStats",
    "Setup",
    "ShmChannel",
    "ShmRing",
    "ShmTransport",
    "Shutdown",
    "SimTransport",
    "SlotExhausted",
    "StageFailure",
    "StageProgram",
    "StageTiming",
    "TaskSpec",
    "TcpTransport",
    "TileResult",
    "TileTask",
    "TraceEvent",
    "Tracer",
    "TransientTaskError",
    "Transport",
    "TransportClosed",
    "WorkerError",
    "canonical_trace",
    "churn_replanner",
    "coerce_tracer",
    "compile_plan",
    "decode_message",
    "device_busy",
    "diff_traces",
    "emit_stage_trace",
    "encode_message",
    "execute_stage",
    "format_timeline",
    "plan_timing",
    "recv_message",
    "repartition_stage",
    "send_message",
    "split_stage",
    "stitch_stage",
    "trace_makespan",
    "worker_main",
]
