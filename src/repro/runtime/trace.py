"""Structured per-frame trace events shared by every runtime backend.

Every backend — in-process queues, TCP workers, the virtual-clock
simulator — reports the same four event kinds per (frame, stage, device)
through :class:`Tracer`:

``enqueue``
    the frame arrived at the stage (``start``) and began service
    (``end``); the gap is queueing delay.
``send``
    the input tile travelled coordinator → device; ``nbytes`` is the
    tile payload.
``compute``
    the device executed its compiled segment program.
``recv``
    the output tile travelled device → coordinator; ``nbytes`` is the
    result payload.

Timestamps are seconds relative to the session epoch — wall-clock for
the real backends, virtual for :class:`~repro.runtime.core.SimTransport`
— so real and simulated runs produce directly comparable timelines.
The *canonical* projection drops timestamps entirely, leaving the
deterministic ``(frame, stage, kind, device, nbytes)`` sequence: two
backends executed the same plan iff their canonical traces are equal,
which is the exactness gate ``make trace-smoke`` enforces.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "EVENT_KINDS",
    "RECOVERY_KINDS",
    "ADMISSION_KINDS",
    "TraceEvent",
    "Tracer",
    "coerce_tracer",
    "canonical_trace",
    "diff_traces",
    "device_busy",
    "trace_makespan",
    "format_timeline",
    "dump_jsonl",
    "load_jsonl",
]

#: The trace schema's event kinds, in per-task emission order.
EVENT_KINDS = ("enqueue", "send", "compute", "recv")

#: Recovery event kinds, emitted by the fault-tolerance layer only:
#: ``device_dead`` the first time a device is declared dead,
#: ``device_join`` when scenario churn brings a device (back) into the
#: cluster, ``retry`` per backoff attempt after a transient failure,
#: ``frame_replayed`` when a stage replays a frame from its input
#: boundary after a repartition, and ``replan``/``degraded`` when the
#: session adopts a fresh plan over the survivors (or a single-device
#: fallback).  Fault-free runs never emit these, so the four-kind
#: canonical gate (``make trace-smoke``) is unchanged.
RECOVERY_KINDS = ("device_dead", "device_join", "retry", "frame_replayed",
                  "replan", "degraded")

#: Admission-control event kinds, emitted by the serving layer and the
#: bounded-queue simulator: ``shed`` when an arrival is rejected because
#: the queue is full.  Shed frames never enter a stage, so the four-kind
#: canonical gate on executed frames is unchanged.
ADMISSION_KINDS = ("shed",)

_ALL_KINDS = EVENT_KINDS + RECOVERY_KINDS + ADMISSION_KINDS


@dataclass(frozen=True)
class TraceEvent:
    """One timed step of one frame on one stage (and usually device)."""

    kind: str
    frame: int
    stage: int
    device: str  # "" for stage-level events (enqueue)
    start: float
    end: float
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _ALL_KINDS:
            raise ValueError(f"unknown trace event kind {self.kind!r}")
        if self.end < self.start:
            raise ValueError(
                f"{self.kind} event ends before it starts "
                f"({self.end} < {self.start})"
            )
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Thread-safe event sink.

    Stage threads of the TCP runtime emit concurrently; the in-process
    and simulated backends emit from one thread.  Events keep insertion
    order (which the core makes deterministic per backend).
    """

    def __init__(self) -> None:
        self._events: "List[TraceEvent]" = []
        self._lock = threading.Lock()

    def emit(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def extend(self, events: "Iterable[TraceEvent]") -> None:
        with self._lock:
            self._events.extend(events)

    @property
    def events(self) -> "Tuple[TraceEvent, ...]":
        with self._lock:
            return tuple(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def coerce_tracer(trace) -> "Tracer | None":
    """Normalise the ``trace=`` kwarg every executor accepts.

    One contract everywhere (``DistributedPipeline``,
    ``LocalPlanExecutor``, the simulators, :func:`repro.simulate`):
    ``None``/``False`` disables tracing, ``True`` mints a fresh
    :class:`Tracer`, and an existing :class:`Tracer` is used as-is (so
    one sink can aggregate several runs).
    """
    if trace is None or trace is False:
        return None
    if trace is True:
        return Tracer()
    if isinstance(trace, Tracer):
        return trace
    raise TypeError(
        f"trace must be a Tracer, bool or None, not {type(trace).__name__}"
    )


Canonical = Tuple[int, int, str, str, int]


def canonical_trace(events: "Sequence[TraceEvent]") -> "List[Canonical]":
    """The timestamp-free projection used for backend-equality diffs."""
    return [(e.frame, e.stage, e.kind, e.device, e.nbytes) for e in events]


def diff_traces(
    a: "Sequence[TraceEvent]",
    b: "Sequence[TraceEvent]",
    max_lines: int = 10,
) -> "List[str]":
    """Human-readable canonical differences; empty iff traces agree."""
    ca, cb = canonical_trace(a), canonical_trace(b)
    lines: "List[str]" = []
    for i, (ea, eb) in enumerate(zip(ca, cb)):
        if ea != eb:
            lines.append(f"event {i}: {ea} != {eb}")
            if len(lines) >= max_lines:
                lines.append("... (further mismatches suppressed)")
                return lines
    if len(ca) != len(cb):
        lines.append(f"event count: {len(ca)} != {len(cb)}")
    return lines


def device_busy(events: "Sequence[TraceEvent]") -> "Dict[str, float]":
    """Busy seconds per device: compute plus its own transfer time.

    Matches the simulator's accounting (and the paper's Table I): on a
    single-core device, socket I/O consumes the CPU like convolutions.
    """
    busy: "Dict[str, float]" = {}
    for e in events:
        if e.device and e.kind in ("send", "compute", "recv"):
            busy[e.device] = busy.get(e.device, 0.0) + e.duration
    return busy


def trace_makespan(events: "Sequence[TraceEvent]") -> float:
    """Last event end minus first event start (0 for empty traces)."""
    if not events:
        return 0.0
    return max(e.end for e in events) - min(e.start for e in events)


def format_timeline(events: "Sequence[TraceEvent]", unit: str = "ms") -> str:
    """A per-frame, per-stage table of the trace."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    lines = [
        f"{'frame':>5s} {'stage':>5s} {'kind':>8s} {'device':>16s} "
        f"{'start':>10s} {'end':>10s} {'bytes':>10s}"
    ]
    for e in events:
        lines.append(
            f"{e.frame:>5d} {e.stage:>5d} {e.kind:>8s} "
            f"{e.device or '-':>16s} {e.start * scale:>10.3f} "
            f"{e.end * scale:>10.3f} {e.nbytes:>10d}"
        )
    lines.append(
        f"-- {len(events)} events, makespan "
        f"{trace_makespan(events) * scale:.3f} {unit}"
    )
    return "\n".join(lines)


def dump_jsonl(events: "Sequence[TraceEvent]", path: str) -> None:
    """Write one JSON object per event (the trace interchange format)."""
    with open(path, "w") as handle:
        for e in events:
            handle.write(json.dumps(asdict(e)) + "\n")


def load_jsonl(path: str) -> "List[TraceEvent]":
    with open(path) as handle:
        return [TraceEvent(**json.loads(line)) for line in handle if line.strip()]
