"""Wire messages for the distributed runtime.

The coordinator ships each worker a one-time :class:`Setup` (its
compiled tile program plus the weights its segment touches — the model
copy of paper Fig. 6), then streams :class:`TileTask` frames per
inference.  Everything is a plain dataclass so the framed-pickle
transport can carry it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.models.graph import Model
from repro.nn.tiles import SegmentProgram
from repro.nn.weights import Weights

__all__ = [
    "Hello",
    "ShmAttach",
    "Setup",
    "Reconfigure",
    "TileTask",
    "TileResult",
    "WorkerError",
    "Shutdown",
]


@dataclass(frozen=True)
class Hello:
    """Worker → coordinator handshake."""

    worker_id: int


@dataclass(frozen=True)
class ShmAttach:
    """Coordinator → worker: switch tile payloads to shared memory.

    Sent right after the handshake (before :class:`Setup`) by the shm
    transport.  ``send_name`` is the ring this worker writes its
    results into, ``recv_name`` the ring it reads tiles from; both were
    created (and will be unlinked) by the coordinator.  Geometry is
    carried for validation — the rings' headers are authoritative.
    """

    send_name: str
    recv_name: str
    slot_bytes: int
    n_slots: int


@dataclass(frozen=True)
class Setup:
    """Coordinator → worker: model spec, segment program and weights."""

    model: Model
    program: SegmentProgram
    weights: Weights


@dataclass(frozen=True)
class Reconfigure:
    """Coordinator → worker: replace the tile program (e.g. after a
    peer failure redistributes the stage partition)."""

    program: SegmentProgram


@dataclass(frozen=True)
class TileTask:
    """Coordinator → worker: one input tile to process.

    ``epoch`` identifies the stage partition generation; it increments
    when a failure redistributes the stage, letting the coordinator
    discard results computed under a stale partition."""

    task_id: int
    tile: np.ndarray
    epoch: int = 0


@dataclass(frozen=True)
class TileResult:
    """Worker → coordinator: the computed output tile."""

    task_id: int
    worker_id: int
    tile: np.ndarray
    compute_s: float
    epoch: int = 0


@dataclass(frozen=True)
class WorkerError:
    """Worker → coordinator: the worker failed processing a task."""

    task_id: Optional[int]
    worker_id: int
    message: str
    epoch: int = 0


@dataclass(frozen=True)
class Shutdown:
    """Coordinator → worker: clean exit."""
